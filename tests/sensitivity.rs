//! Sensitivity-direction tests: the qualitative relationships the
//! paper's §6.5 sweeps rely on must hold in the models.

use wl_cache_repro::ehsim::{SimConfig, Simulator};
use wl_cache_repro::ehsim_cache::CacheGeometry;
use wl_cache_repro::prelude::*;

fn time(cfg: SimConfig, w: &dyn Workload) -> u64 {
    Simulator::new(cfg).run(w).expect("run").total_time_ps
}

#[test]
fn bigger_caches_hit_more() {
    let w = JpegEncode::small();
    let mut rates = Vec::new();
    for size in [128u32, 512, 2048] {
        let cfg = SimConfig::wl_cache().with_geometry(CacheGeometry::new(size, 2, 64));
        let r = Simulator::new(cfg).run(&w).unwrap();
        rates.push(r.cache.hit_rate());
    }
    assert!(rates[0] < rates[1] && rates[1] <= rates[2], "{rates:?}");
}

#[test]
fn bigger_caches_run_faster_without_failures() {
    let w = Qsort::small();
    let t_small = time(
        SimConfig::wl_cache().with_geometry(CacheGeometry::new(128, 2, 64)),
        &w,
    );
    let t_big = time(
        SimConfig::wl_cache().with_geometry(CacheGeometry::new(4096, 2, 64)),
        &w,
    );
    assert!(t_big < t_small);
}

#[test]
fn smaller_capacitors_fail_more_often() {
    // The energy buffer bounds each power-on interval: shrinking it
    // multiplies outages (the left side of Fig 10(b)'s U-shape).
    let w = AdpcmDecode::new(60_000);
    let outages = |uf: f64| {
        Simulator::new(
            SimConfig::wl_cache()
                .with_trace(TraceKind::Rf3)
                .with_capacitor_uf(uf),
        )
        .run(&w)
        .expect("run")
        .outages
    };
    let tiny = outages(0.15);
    let normal = outages(1.0);
    assert!(
        tiny > normal,
        "0.15 µF ({tiny} outages) must out-fail 1 µF ({normal})"
    );
}

#[test]
fn wl_maxline_bounds_checkpoint_size() {
    for maxline in [2usize, 4, 6] {
        let cfg = SimConfig::wl_cache_static(maxline).with_trace(TraceKind::Rf2);
        let r = Simulator::new(cfg).run(&GsmDecode::small()).unwrap();
        let wl = r.wl.expect("wl report");
        assert!(
            wl.avg_dirty_at_checkpoint <= maxline as f64 + 1e-9,
            "maxline {maxline}: flushed {} lines/interval on average",
            wl.avg_dirty_at_checkpoint
        );
    }
}

#[test]
fn wl_stall_overhead_is_small() {
    // §6.6: pipeline stalls cost < 1 % of execution time on average.
    let r = Simulator::new(SimConfig::wl_cache().with_trace(TraceKind::Rf1))
        .run(&AdpcmDecode::small())
        .unwrap();
    let wl = r.wl.expect("wl report");
    // The paper reports < 1 % on average across the suite; allow a few
    // percent for a single store-dense kernel at test scale.
    assert!(
        wl.stall_fraction < 0.06,
        "stall fraction {} too large",
        wl.stall_fraction
    );
}

#[test]
fn write_through_never_holds_dirty_lines() {
    let r = Simulator::new(SimConfig::vcache_wt().with_trace(TraceKind::Rf1))
        .run(&SusanCorners::small())
        .unwrap();
    assert_eq!(r.cache.checkpoint_lines, 0);
    assert_eq!(r.cache.async_writebacks, 0);
    assert_eq!(r.cache.evict_writebacks, 0);
}

#[test]
fn nvsram_reserves_for_every_line_but_wl_only_for_maxline() {
    use wl_cache_repro::ehsim_cache::designs::NvSramCache;
    use wl_cache_repro::ehsim_cache::{CacheDesign, ReplacementPolicy};
    use wl_cache_repro::ehsim_mem::NvmEnergy;
    use wl_cache_repro::wl_cache::WlCache;

    let geom = CacheGeometry::paper_default();
    let e = NvmEnergy::default();
    let nvsram = NvSramCache::new(geom, ReplacementPolicy::Lru).worst_checkpoint_pj(&e);
    let wl = WlCache::new().worst_checkpoint_pj(&e);
    assert!(
        nvsram > 10.0 * wl,
        "NVSRAM reserve {nvsram} pJ should dwarf WL's {wl} pJ"
    );
}
