//! Golden-checksum snapshots: every kernel's Small-scale checksum is
//! pinned, so any accidental behavioural change to a kernel, the cache
//! substrate, or the functional memory shows up immediately.
//!
//! If a change to a kernel is *intentional*, regenerate with:
//! `cargo test -p wl-cache-repro --test golden_checksums -- --nocapture`
//! (the failure message prints the new table).

use wl_cache_repro::ehsim_mem::FunctionalMem;
use wl_cache_repro::prelude::*;

#[test]
fn small_scale_checksums_are_pinned() {
    let mut table = String::new();
    let mut mismatches = Vec::new();
    for w in all23(Scale::Small) {
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let got = w.run(&mut mem);
        table.push_str(&format!("        (\"{}\", {:#018x}),\n", w.name(), got));
        if let Some((_, expected)) = GOLDEN.iter().find(|(n, _)| *n == w.name()) {
            if *expected != got {
                mismatches.push(format!(
                    "{}: expected {expected:#018x}, got {got:#018x}",
                    w.name()
                ));
            }
        } else {
            mismatches.push(format!("{}: no golden entry", w.name()));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden mismatches:\n{}\nfull regenerated table:\n{table}",
        mismatches.join("\n")
    );
}

const GOLDEN: &[(&str, u64)] = &[
    ("adpcmdecode", 0x67a2e6bef8e2f1f4),
    ("adpcmencode", 0x95deeabce14b4d75),
    ("epic", 0xb0cde86da4313113),
    ("g721decode", 0x1697669b8fa234e9),
    ("g721encode", 0xbef9d853bea7459b),
    ("gsmdecode", 0x1c4bc01a8522d042),
    ("gsmencode", 0xd1468ca1513904d5),
    ("jpegdecode", 0x5fb91cd403ac1d73),
    ("jpegencode", 0x1f0536780992530b),
    ("mpeg2decode", 0x85f5ddf229951d14),
    ("mpeg2encode", 0xa2781d7daf56bab0),
    ("pegwitdecrypt", 0x0af210a2ef6ae0d1),
    ("sha", 0xa1839e3c4d9d9542),
    ("susancorners", 0x6f458fb5bc06e635),
    ("susanedges", 0xac0c7bfb6ee3ff10),
    ("basicmath", 0xcb0cecd3123f2132),
    ("qsort", 0x9e7d2142140632af),
    ("dijkstra", 0xa50710263127cab9),
    ("FFT", 0xe8427ba64fa5d85e),
    ("FFT_i", 0x1a50314b106b2268),
    ("patricia", 0x6660346a0506c99a),
    ("rijndael_d", 0x4e20713f75c7d584),
    ("rijndael_e", 0x371ffdaf6d3776d2),
];
