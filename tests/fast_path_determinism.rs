//! Regression test for the energy-budgeted settlement fast path.
//!
//! The budgeted scheduler in `ehsim::Machine` skips per-retire
//! settlement checks whenever its conservative drain pool and
//! up-deadline prove the check would be a no-op. That optimization must
//! be invisible: with [`SimConfig::with_fast_settle`] off, the full
//! check runs at every retire, and the resulting [`Report`] — times,
//! outages, energy meter, cache statistics, WL counters, checksum —
//! must be *identical*, not merely close.

use ehsim::{SimConfig, Simulator};
use ehsim_energy::TraceKind;
use ehsim_workloads::prelude::*;

#[test]
fn fast_path_reports_are_bit_identical() {
    let workload = Sha::with_scale(Scale::Default);
    let mut total_outages = 0;
    for trace in [TraceKind::Rf1, TraceKind::Solar] {
        let designs = SimConfig::all_designs()
            .into_iter()
            .chain([SimConfig::wl_cache_dyn()]);
        for cfg in designs {
            let label = cfg.design.label();
            // The paper's alternative 0.344 µF capacitor drains fast
            // enough that even the small workload rides through real
            // outages on every design.
            let run = |fast: bool| {
                Simulator::new(
                    cfg.clone()
                        .with_trace(trace)
                        .with_capacitor_uf(0.344)
                        .with_fast_settle(fast),
                )
                .run(&workload)
                .unwrap_or_else(|e| panic!("{label} on {trace:?} (fast={fast}): {e}"))
            };
            let fast = run(true);
            let slow = run(false);
            total_outages += fast.outages;
            assert_eq!(fast, slow, "{label} on {trace:?}: fast path diverged");
        }
    }
    // The comparison is only meaningful if the failure protocol
    // actually exercised on at least some of the runs.
    assert!(total_outages > 0, "no run saw a single outage");
}
