//! Property-based integration tests: random access streams and random
//! power schedules against oracle semantics.

use proptest::prelude::*;
use wl_cache_repro::ehsim::{SimConfig, Simulator};
use wl_cache_repro::ehsim_energy::{PowerTrace, TraceKind};
use wl_cache_repro::ehsim_mem::{AccessSize, Bus, FunctionalMem, Workload};

/// One memory operation of a random program.
#[derive(Debug, Clone)]
enum Op {
    Load(u32, u8),
    Store(u32, u8, u64),
    Compute(u16),
}

fn op_strategy(mem: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..mem, 0..4u8).prop_map(|(a, s)| Op::Load(a, s)),
        (0..mem, 0..4u8, any::<u64>()).prop_map(|(a, s, v)| Op::Store(a, s, v)),
        (1..500u16).prop_map(Op::Compute),
    ]
}

fn size_of(code: u8) -> AccessSize {
    match code {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    }
}

/// A workload that replays a recorded op list and folds every loaded
/// value into a checksum.
struct Replayed {
    mem: u32,
    ops: Vec<Op>,
}

impl Workload for Replayed {
    fn name(&self) -> &str {
        "replayed-random-ops"
    }
    fn mem_bytes(&self) -> u32 {
        self.mem
    }
    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut acc = 0u64;
        for op in &self.ops {
            match *op {
                Op::Load(a, s) => {
                    let size = size_of(s);
                    // Natural alignment, as the Bus contract requires.
                    let a = (a.min(self.mem - size.bytes())) & !(size.bytes() - 1);
                    acc = acc.rotate_left(7).wrapping_add(bus.load(a, size));
                }
                Op::Store(a, s, v) => {
                    let size = size_of(s);
                    let a = (a.min(self.mem - size.bytes())) & !(size.bytes() - 1);
                    bus.store(a, size, v);
                }
                Op::Compute(n) => bus.compute(u64::from(n)),
            }
        }
        acc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every design, under power failures with per-checkpoint
    /// verification, computes exactly what a flat memory computes.
    #[test]
    fn random_programs_survive_power_failures(
        ops in prop::collection::vec(op_strategy(4096), 50..400),
        design in 0usize..5,
        trace_ix in 0usize..3,
    ) {
        let w = Replayed { mem: 4096, ops };
        let mut flat = FunctionalMem::new(w.mem_bytes());
        let expected = w.run(&mut flat);

        let cfg = SimConfig::all_designs().swap_remove(design);
        let trace = [TraceKind::Rf1, TraceKind::Rf3, TraceKind::Solar][trace_ix];
        // A tiny capacitor forces outages even for short programs.
        let r = Simulator::new(
            cfg.with_trace(trace).with_capacitor_uf(0.15).with_verify(),
        )
        .run(&w)
        .expect("simulation");
        prop_assert_eq!(r.checksum, expected);
    }

    /// Custom synthetic power traces (arbitrary segment lists) never
    /// break the recharge logic: either the run completes consistently
    /// or it reports a dead source — it must not hang or corrupt.
    #[test]
    fn arbitrary_traces_cannot_corrupt_state(
        segs in prop::collection::vec((1_000_000u64..500_000_000, 0.0f64..30_000.0), 2..12),
        ops in prop::collection::vec(op_strategy(1024), 30..120),
    ) {
        // Build a machine-level config with a custom trace by reusing
        // the public PowerTrace API through energy accounting: the sim
        // only accepts TraceKind, so exercise PowerTrace's own
        // invariants directly instead.
        let trace = PowerTrace::from_segments(segs);
        let mut cursor = trace.cursor();
        let mut total = 0.0;
        for _ in 0..50 {
            total += cursor.advance(10_000_000);
        }
        prop_assert!(total >= 0.0);

        // And the workload itself still round-trips on a flat memory.
        let w = Replayed { mem: 1024, ops };
        let mut a = FunctionalMem::new(1024);
        let mut b = FunctionalMem::new(1024);
        prop_assert_eq!(w.run(&mut a), w.run(&mut b));
    }

    /// The capacitor's reserve invariant: after any simulated run the
    /// report's accounting is self-consistent.
    #[test]
    fn report_accounting_is_self_consistent(
        ops in prop::collection::vec(op_strategy(2048), 50..200),
        design in 0usize..5,
    ) {
        let w = Replayed { mem: 2048, ops };
        let cfg = SimConfig::all_designs().swap_remove(design);
        let r = Simulator::new(cfg.with_trace(TraceKind::Rf2).with_capacitor_uf(0.2))
            .run(&w)
            .expect("simulation");
        prop_assert_eq!(r.on_time_ps + r.off_time_ps, r.total_time_ps);
        prop_assert!(r.checkpoint_time_ps <= r.on_time_ps);
        prop_assert!(r.energy.total() > 0.0);
        prop_assert!(r.cache.load_hits <= r.cache.loads);
        prop_assert!(r.cache.store_hits <= r.cache.stores);
    }
}
