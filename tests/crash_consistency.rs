//! Cross-crate crash-consistency tests: every design must survive
//! arbitrary power-failure schedules without corrupting program state.
//!
//! Two independent oracles are used:
//!
//! 1. the machine's built-in verifier (`with_verify`) compares the
//!    persistent state against an oracle memory at *every* checkpoint;
//! 2. the workload checksum is compared against a pure functional run,
//!    proving end-to-end equivalence.

use wl_cache_repro::ehsim::SimConfig as Cfg;
use wl_cache_repro::ehsim_mem::FunctionalMem;
use wl_cache_repro::prelude::*;

fn functional_checksum(w: &dyn Workload) -> u64 {
    let mut mem = FunctionalMem::new(w.mem_bytes());
    w.run(&mut mem)
}

#[test]
fn every_design_is_crash_consistent_on_rf1() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Qsort::small()),
        Box::new(Sha::small()),
        Box::new(AdpcmEncode::small()),
        Box::new(Patricia::small()),
    ];
    for w in &workloads {
        let expected = functional_checksum(w.as_ref());
        for cfg in Cfg::all_designs() {
            let label = cfg.design.label();
            let r = Simulator::new(cfg.with_trace(TraceKind::Rf1).with_verify())
                .run(w.as_ref())
                .unwrap_or_else(|e| panic!("{label}/{}: {e}", w.name()));
            assert_eq!(r.checksum, expected, "{label} corrupted {}", w.name());
        }
    }
}

#[test]
fn wl_cache_survives_the_most_hostile_trace() {
    // tr3 has the most frequent outages; run the most store-intensive
    // kernel with verification at every checkpoint.
    let w = Qsort::small();
    let expected = functional_checksum(&w);
    let r = Simulator::new(Cfg::wl_cache().with_trace(TraceKind::Rf3).with_verify())
        .run(&w)
        .expect("simulation must complete");
    assert_eq!(r.checksum, expected);
}

#[test]
fn tiny_capacitor_forces_frequent_checkpoints_and_stays_consistent() {
    // A 0.1 µF buffer shrinks every on-interval, multiplying outages:
    // stress the checkpoint path specifically. The kernel must be long
    // enough to deterministically cross several RF fades.
    let w = AdpcmDecode::new(60_000);
    let expected = functional_checksum(&w);
    for cfg in [Cfg::wl_cache(), Cfg::nvsram(), Cfg::replay()] {
        let label = cfg.design.label();
        let r = Simulator::new(
            cfg.with_capacitor_uf(0.1)
                .with_trace(TraceKind::Rf3)
                .with_verify(),
        )
        .run(&w)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(r.outages > 0, "{label}: stress test produced no outages");
        assert_eq!(r.checksum, expected, "{label}");
    }
}

#[test]
fn dynamic_adaptation_does_not_break_consistency() {
    let w = JpegEncode::small();
    let expected = functional_checksum(&w);
    for trace in [TraceKind::Rf1, TraceKind::Thermal] {
        let r = Simulator::new(Cfg::wl_cache_dyn().with_trace(trace).with_verify())
            .run(&w)
            .expect("wl-dyn run");
        assert_eq!(r.checksum, expected, "{trace:?}");
    }
}

#[test]
fn dq_lru_policy_is_also_consistent() {
    use wl_cache_repro::wl_cache::DqPolicy;
    let w = Epic::small();
    let expected = functional_checksum(&w);
    let cfg = Cfg::wl_cache()
        .with_dq_policy(DqPolicy::Lru)
        .with_trace(TraceKind::Rf1)
        .with_verify();
    let r = Simulator::new(cfg).run(&w).expect("DQ-LRU run");
    assert_eq!(r.checksum, expected);
}

#[test]
fn direct_mapped_and_4way_geometries_are_consistent() {
    use wl_cache_repro::ehsim_cache::CacheGeometry;
    let w = Dijkstra::small();
    let expected = functional_checksum(&w);
    for ways in [1u32, 4] {
        let cfg = Cfg::wl_cache()
            .with_geometry(CacheGeometry::new(512, ways, 64))
            .with_trace(TraceKind::Rf2)
            .with_verify();
        let r = Simulator::new(cfg).run(&w).expect("geometry run");
        assert_eq!(r.checksum, expected, "{ways}-way");
    }
}
