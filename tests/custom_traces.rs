//! Driving the simulator with user-supplied (recorded) power traces.

use wl_cache_repro::ehsim::{SimConfig, SimError, Simulator};
use wl_cache_repro::ehsim_energy::{parse_trace, PowerTrace};
use wl_cache_repro::prelude::*;

#[test]
fn recorded_trace_text_drives_the_simulation() {
    // A bursty source written in the data-logger text format.
    let trace = parse_trace(
        "# strong burst, deep fade, repeat\n\
         400 15000\n\
         900 50\n\
         300 18000\n\
         1200 0\n",
    )
    .unwrap();
    // Long enough to span several burst/fade cycles.
    let w = AdpcmEncode::new(40_000);
    let r = Simulator::new(SimConfig::wl_cache().with_custom_trace(trace).with_verify())
        .run(&w)
        .expect("run");
    assert_eq!(r.trace, "custom");
    assert!(r.outages > 0, "the fades must cause outages");

    // Identical results to a failure-free run.
    let calm = Simulator::new(SimConfig::wl_cache()).run(&w).unwrap();
    assert_eq!(r.checksum, calm.checksum);
}

#[test]
fn dead_source_is_reported_not_hung() {
    // 0.05 µW forever: charging to Von would take minutes of simulated
    // time, beyond the recharge budget — the source is declared dead.
    let trace = PowerTrace::constant(0.05);
    let err = Simulator::new(SimConfig::wl_cache().with_custom_trace(trace))
        .run(&Sha::small())
        .unwrap_err();
    assert!(matches!(err, SimError::SourceDead { .. }), "{err}");
}

#[test]
fn custom_trace_is_deterministic() {
    let text = "250 16000\n800 20\n";
    let w = Dijkstra::small();
    let run = || {
        Simulator::new(SimConfig::nvsram().with_custom_trace(parse_trace(text).unwrap()))
            .run(&w)
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total_time_ps, b.total_time_ps);
    assert_eq!(a.outages, b.outages);
}
