//! End-to-end observability checks on a real paper kernel: a traced run
//! must (a) leave the simulation bit-identical to an untraced run,
//! (b) produce event counts that reconcile exactly with the run's
//! [`Report`] counters, and (c) export a structurally valid Chrome
//! `trace_event` JSON and per-interval metrics TSV.

use wl_cache_repro::ehsim::Event;
use wl_cache_repro::ehsim_obs::validate_chrome_trace;
use wl_cache_repro::prelude::*;

fn fft_i() -> Box<dyn Workload> {
    all23(Scale::Small)
        .into_iter()
        .find(|w| w.name() == "FFT_i")
        .expect("FFT_i kernel present")
}

#[test]
fn traced_fft_run_reconciles_with_its_report() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let w = fft_i();
    let plain = Simulator::new(cfg.clone()).run(w.as_ref()).unwrap();
    let (report, trace) = Simulator::new(cfg).run_traced(w.as_ref()).unwrap();

    // Observation must not perturb any simulated value.
    assert_eq!(plain, report);
    assert!(report.outages > 0, "FFT_i on rf3 must see outages");

    // Exact reconciliation between event counts and Report counters.
    assert_eq!(trace.counters.outages, report.outages);
    assert_eq!(trace.counters.checkpoints, report.outages);
    assert_eq!(trace.counters.power_ons, report.outages + 1);
    let wl = report.wl.as_ref().expect("WL design reports WL stats");
    assert_eq!(
        trace.counters.reconfigurations + trace.counters.dyn_raises,
        wl.reconfigurations,
        "threshold events must account for every reconfiguration"
    );
    assert_eq!(trace.counters.dyn_raises, wl.dyn_raises);
    assert_eq!(trace.counters.dq_stalls, wl.stalls);

    // The raw event stream agrees with the aggregated counters.
    let outage_events = trace.count(|e| matches!(e, Event::OutageBegin { .. }));
    let ckpt_events = trace.count(|e| matches!(e, Event::CheckpointBegin { .. }));
    let reconfig_events = trace.count(|e| matches!(e, Event::Reconfigure { .. }));
    let raise_events = trace.count(|e| matches!(e, Event::DynRaise { .. }));
    assert_eq!(outage_events, report.outages);
    assert_eq!(ckpt_events, report.outages);
    assert_eq!(reconfig_events + raise_events, wl.reconfigurations);

    // Histogram totals line up with the per-interval averages.
    assert_eq!(trace.histograms.dirty_at_checkpoint.count(), report.outages);
    let avg = trace.histograms.dirty_at_checkpoint.sum() as f64 / report.outages as f64;
    assert!((avg - wl.avg_dirty_at_checkpoint).abs() < 1e-9);
}

#[test]
fn exported_trace_json_is_valid_and_counts_match() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (report, trace) = Simulator::new(cfg).run_traced(fft_i().as_ref()).unwrap();
    let json = trace.chrome_trace("FFT_i / WL-Cache / rf3");
    let check = validate_chrome_trace(&json).expect("structurally valid trace");
    assert!(check.events > 0);
    assert!(check.spans > 0, "checkpoint/on spans expected");
    assert!(check.counters > 0, "dq occupancy counters expected");

    // Every outage leaves exactly one "checkpoint" span in the JSON
    // text: reconcile the rendered output, not just the in-memory
    // counters, against the report.
    let ckpt_spans = json
        .lines()
        .filter(|l| l.contains("\"ph\":\"B\"") && l.contains("\"name\":\"checkpoint\""))
        .count();
    assert_eq!(ckpt_spans as u64, report.outages);

    // One TSV row per completed power-on interval plus the final
    // partial interval closed by RunEnd (and one header line).
    let tsv = trace.interval_metrics_tsv();
    let rows = tsv.lines().filter(|l| !l.starts_with('#')).count() - 1;
    assert_eq!(rows as u64, report.outages + 1);

    // The `#` footer renders all three run-wide histograms, and the
    // outage-interval one reconciles with the report.
    let outage_summary = tsv
        .lines()
        .find(|l| l.starts_with("# histogram\toutage_interval_ps"))
        .expect("histogram footer present");
    assert!(
        outage_summary.contains(&format!("count={}", report.outages)),
        "footer disagrees with report ({} outages): {outage_summary}",
        report.outages
    );
    for name in ["dirty_at_checkpoint", "writeback_latency_ps"] {
        assert!(
            tsv.lines()
                .any(|l| l.starts_with(&format!("# histogram\t{name}"))),
            "missing {name} summary in footer"
        );
    }
}

#[test]
fn noop_observer_runs_report_no_events() {
    // A default (Noop) machine must claim to be disabled so emission
    // sites skip all work: this is the zero-cost contract's visible
    // half (the goldens pin the byte-identity half).
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (_, machine) = Simulator::new(cfg)
        .run_with(fft_i().as_ref(), ObserverBox::Noop)
        .unwrap();
    assert!(!machine.observer().enabled());
    assert!(machine.observer().recorder().is_none());
}
