//! Integration checks over the whole 23-kernel suite (Small scale):
//! determinism, checksum equivalence across designs, and the basic
//! performance orderings the paper's evaluation is built on.

use wl_cache_repro::ehsim::{Report, SimConfig, Simulator};
use wl_cache_repro::ehsim_mem::FunctionalMem;
use wl_cache_repro::prelude::*;

fn run_all(cfg: &SimConfig) -> Vec<Report> {
    all23(Scale::Small)
        .iter()
        .map(|w| {
            Simulator::new(cfg.clone())
                .run(w.as_ref())
                .unwrap_or_else(|e| panic!("{}/{}: {e}", cfg.design.label(), w.name()))
        })
        .collect()
}

#[test]
fn all_23_kernels_match_functional_checksums_on_wl_cache() {
    let cfg = SimConfig::wl_cache()
        .with_trace(TraceKind::Rf1)
        .with_verify();
    for w in all23(Scale::Small) {
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let expected = w.run(&mut mem);
        let r = Simulator::new(cfg.clone()).run(w.as_ref()).unwrap();
        assert_eq!(r.checksum, expected, "{}", w.name());
    }
}

#[test]
fn simulations_are_deterministic_across_repeats() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf2);
    let a = run_all(&cfg);
    let b = run_all(&cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.total_time_ps, y.total_time_ps, "{}", x.workload);
        assert_eq!(x.outages, y.outages, "{}", x.workload);
        assert_eq!(x.cache, y.cache, "{}", x.workload);
    }
}

#[test]
fn designs_agree_on_results_but_not_on_time() {
    let wl = run_all(&SimConfig::wl_cache());
    let nv = run_all(&SimConfig::nvcache_wb());
    let mut some_time_differs = false;
    for (a, b) in wl.iter().zip(&nv) {
        assert_eq!(a.checksum, b.checksum, "{}", a.workload);
        some_time_differs |= a.total_time_ps != b.total_time_ps;
    }
    assert!(some_time_differs, "designs should have distinct timing");
}

#[test]
fn nvcache_is_slower_than_nvsram_everywhere() {
    // The paper's most robust ordering: the all-ReRAM cache loses to
    // the SRAM-based NVSRAM on every application (Fig 4).
    let base = run_all(&SimConfig::nvsram());
    let nv = run_all(&SimConfig::nvcache_wb());
    for (b, n) in base.iter().zip(&nv) {
        assert!(
            n.total_time_ps > b.total_time_ps,
            "{}: NVCache {} <= NVSRAM {}",
            b.workload,
            n.total_time_ps,
            b.total_time_ps
        );
    }
}

#[test]
fn write_through_pays_for_every_store() {
    let wt = run_all(&SimConfig::vcache_wt());
    for r in &wt {
        assert_eq!(
            r.cache.word_writes, r.cache.stores,
            "{}: WT must issue one NVM word write per store",
            r.workload
        );
    }
}

#[test]
fn wl_cache_bounds_write_traffic_between_wb_and_wt() {
    let wt = run_all(&SimConfig::vcache_wt());
    let wl = run_all(&SimConfig::wl_cache());
    let nvsram = run_all(&SimConfig::nvsram());
    let sum = |rs: &[Report]| rs.iter().map(|r| r.cache.nvm_write_bytes).sum::<u64>();
    let (wt_b, wl_b, nvsram_b) = (sum(&wt), sum(&wl), sum(&nvsram));
    assert!(
        wl_b >= nvsram_b,
        "WL ({wl_b}) must write at least as much as NVSRAM ({nvsram_b})"
    );
    // WT writes word-granular but on *every* store; in aggregate the
    // suite's stores far exceed WL's line cleanings.
    assert!(wl_b < 4 * wt_b, "WL ({wl_b}) vs WT ({wt_b}) out of range");
}

#[test]
fn outage_counts_follow_trace_quality() {
    let w = FftInverse::small();
    let mut outages = Vec::new();
    for trace in [TraceKind::Rf1, TraceKind::Rf3] {
        let r = Simulator::new(SimConfig::wl_cache().with_trace(trace))
            .run(&w)
            .unwrap();
        outages.push(r.outages);
    }
    assert!(
        outages[1] > outages[0],
        "tr3 ({}) must out-fail tr1 ({})",
        outages[1],
        outages[0]
    );
}

#[test]
fn no_failure_reports_are_failure_free() {
    for r in run_all(&SimConfig::wl_cache()) {
        assert_eq!(r.outages, 0, "{}", r.workload);
        assert_eq!(r.off_time_ps, 0, "{}", r.workload);
        assert_eq!(r.checkpoint_time_ps, 0, "{}", r.workload);
    }
}
