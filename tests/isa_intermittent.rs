//! Instruction-level crash-consistency: assembled programs (fetches
//! included) must compute identical results across all cache designs
//! and power schedules.

use wl_cache_repro::ehsim::{SimConfig, Simulator};
use wl_cache_repro::ehsim_isa::programs;
use wl_cache_repro::prelude::*;

#[test]
fn crc32_survives_every_design_and_trace() {
    let w = programs::crc32(768);
    let expected = u64::from(programs::crc32_reference(768));
    for trace in [TraceKind::None, TraceKind::Rf1, TraceKind::Rf3] {
        for cfg in SimConfig::all_designs() {
            let label = cfg.design.label();
            let r = Simulator::new(cfg.with_trace(trace).with_verify())
                .run(&w)
                .unwrap_or_else(|e| panic!("{label}/{trace:?}: {e}"));
            assert_eq!(r.checksum, expected, "{label}/{trace:?}");
        }
    }
}

#[test]
fn assembly_sort_is_crash_consistent() {
    let w = programs::insertion_sort(120);
    let (min, fold) = programs::insertion_sort_reference(120);
    let expected = (u64::from(min) << 32) | u64::from(fold);
    let r = Simulator::new(
        SimConfig::wl_cache()
            .with_trace(TraceKind::Rf2)
            .with_capacitor_uf(0.3)
            .with_verify(),
    )
    .run(&w)
    .expect("run");
    assert_eq!(r.checksum, expected);
}

#[test]
fn instruction_fetches_account_for_most_loads() {
    // Instruction-level simulation differs from the native kernels in
    // that fetches dominate load traffic — confirm the machinery is
    // actually fetching through the cache.
    let w = programs::dot_product(200);
    let r = Simulator::new(SimConfig::wl_cache()).run(&w).unwrap();
    assert_eq!(r.checksum, programs::dot_product_reference(200));
    // Machine instruction counting sees both the fetch load and the
    // ALU compute of each retired instruction, so fetches are roughly
    // a third to a half of the machine's instruction count.
    assert!(
        r.cache.loads > r.instructions / 3,
        "fetch traffic missing: {} loads for {} instructions",
        r.cache.loads,
        r.instructions
    );
    // Hot loops sit in a handful of lines: fetch locality must show up
    // as a high hit rate.
    assert!(r.cache.hit_rate() > 0.9, "hit rate {}", r.cache.hit_rate());
}
