//! End-to-end checks for the trace-analysis subsystem on real paper
//! kernels: lossless JSONL round-trips, lossy-but-reconciling Chrome
//! round-trips, cross-run diffing (self-diff must be clean, WL vs
//! WL-dyn must name its first divergence), constant-memory streaming,
//! and exact energy-column reconciliation with the [`EnergyMeter`].

use wl_cache_repro::ehsim::Event;
use wl_cache_repro::ehsim_analyze::{diff_runs, render_diff, Run};
use wl_cache_repro::ehsim_obs::{StreamingObserver, DEFAULT_STREAM_CAPACITY};
use wl_cache_repro::prelude::*;

fn kernel(name: &str, scale: Scale) -> Box<dyn Workload> {
    all23(scale)
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("{name} kernel present"))
}

fn traced(cfg: SimConfig, name: &str, scale: Scale) -> (Report, RunTrace) {
    Simulator::new(cfg)
        .run_traced(kernel(name, scale).as_ref())
        .expect("simulation succeeds")
}

#[test]
fn jsonl_round_trip_is_lossless_on_a_real_run() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (report, trace) = traced(cfg, "FFT_i", Scale::Small);
    assert!(report.outages > 0, "rf3 must cause outages");

    let run = Run::parse(&trace.jsonl()).expect("own JSONL parses");
    assert_eq!(run.events, trace.events, "event-for-event identical");
    assert_eq!(run.counters, trace.counters);
    assert_eq!(run.histograms, trace.histograms);
    assert_eq!(run.intervals, trace.intervals(), "interval rows rebuild");

    // And the reloaded run re-renders byte-identical exports.
    let back = run.to_trace();
    assert_eq!(back.jsonl(), trace.jsonl());
    assert_eq!(back.interval_metrics_tsv(), trace.interval_metrics_tsv());
}

#[test]
fn chrome_round_trip_reconciles_on_a_real_run() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (report, trace) = traced(cfg, "FFT_i", Scale::Small);

    let run = Run::parse(&trace.chrome_trace("FFT_i / WL-Cache / rf3")).expect("own JSON parses");
    assert_eq!(run.name.as_deref(), Some("FFT_i / WL-Cache / rf3"));

    // Chrome JSON is lossy only where documented (stale drops fold into
    // acks); every other counter and all histograms survive the trip.
    let (a, b) = (&run.counters, &trace.counters);
    assert_eq!(a.power_ons, b.power_ons);
    assert_eq!(a.outages, b.outages);
    assert_eq!(a.outages, report.outages);
    assert_eq!(a.checkpoints, b.checkpoints);
    assert_eq!(a.dq_enqueues, b.dq_enqueues);
    assert_eq!(a.dq_acks + a.stale_drops, b.dq_acks + b.stale_drops);
    assert_eq!(a.dq_stalls, b.dq_stalls);
    assert_eq!(a.writebacks_issued, b.writebacks_issued);
    assert_eq!(a.reconfigurations, b.reconfigurations);
    assert_eq!(a.dyn_raises, b.dyn_raises);
    assert_eq!(a.voltage_crossings, b.voltage_crossings);
    assert_eq!(a.energy_samples, b.energy_samples);
    assert_eq!(run.histograms, trace.histograms);

    // Interval rows reconcile too (timing fields are ps-exact because
    // the export renders microseconds with six decimals).
    let original = trace.intervals();
    assert_eq!(run.intervals.len(), original.len());
    for (ra, rb) in run.intervals.iter().zip(&original) {
        assert_eq!(ra.start_ps, rb.start_ps);
        assert_eq!(ra.end_ps, rb.end_ps);
        assert_eq!(ra.on_ps, rb.on_ps);
        assert_eq!(ra.dirty_flushed, rb.dirty_flushed);
        assert_eq!(ra.maxline, rb.maxline);
        assert_eq!(ra.waterline, rb.waterline);
        assert_eq!(ra.harvested_cum_pj, rb.harvested_cum_pj);
        assert_eq!(ra.consumed_cum_pj, rb.consumed_cum_pj);
    }
}

#[test]
fn self_diff_reports_no_divergence() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (_, trace) = traced(cfg.clone(), "FFT_i", Scale::Small);
    let (_, again) = traced(cfg, "FFT_i", Scale::Small);

    let a = Run::parse(&trace.jsonl()).unwrap();
    let b = Run::parse(&again.jsonl()).unwrap();
    let report = diff_runs(&a, "a.jsonl", &b, "b.jsonl");
    assert!(report.identical(), "identical configs must not diverge");
    let text = render_diff(&report, &a, &b);
    assert!(text.contains("no divergence"), "{text}");
}

#[test]
fn wl_vs_wl_dyn_diff_names_the_first_divergence() {
    let (_, wl) = traced(
        SimConfig::wl_cache().with_trace(TraceKind::Rf3),
        "FFT_i",
        Scale::Small,
    );
    let (_, dyn_) = traced(
        SimConfig::wl_cache_dyn().with_trace(TraceKind::Rf3),
        "FFT_i",
        Scale::Small,
    );

    let a = Run::parse(&wl.jsonl()).unwrap();
    let b = Run::parse(&dyn_.jsonl()).unwrap();
    let report = diff_runs(&a, "wl", &b, "wl-dyn");
    let div = report
        .divergence
        .as_ref()
        .expect("adaptive and dynamic adaptation must diverge");
    assert!(!div.fields.is_empty(), "divergence names concrete fields");
    assert!(
        div.a_state.is_some() && div.b_state.is_some(),
        "threshold state reported for both runs"
    );
    let text = render_diff(&report, &a, &b);
    assert!(text.contains("first divergence"), "{text}");
    assert!(text.contains("maxline"), "threshold state rendered: {text}");
}

#[test]
fn streaming_observer_is_constant_memory_on_a_heavy_run() {
    // qsort at default scale floods the recorder with well over 100k
    // events; the streaming observer must hold at most its fixed
    // capacity at any moment while losing nothing.
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (_, trace) = traced(cfg.clone(), "qsort", Scale::Default);
    assert!(
        trace.events.len() >= 100_000,
        "scenario must be heavy, got {} events",
        trace.events.len()
    );

    let dir = std::env::temp_dir();
    let path = dir.join("ehsim_trace_analysis_stream.jsonl");
    let obs = StreamingObserver::to_path(&path).unwrap();
    let stats = obs.stats_handle();
    let (_, _machine) = Simulator::new(cfg)
        .run_with(
            kernel("qsort", Scale::Default).as_ref(),
            ObserverBox::custom(obs),
        )
        .unwrap();

    let snap = stats.lock().unwrap().clone();
    assert_eq!(snap.io_error, None);
    assert!(snap.ended, "stream closed with RunEnd");
    assert_eq!(snap.events as usize, trace.events.len());
    assert!(
        snap.peak_buffered <= DEFAULT_STREAM_CAPACITY,
        "peak {} exceeds capacity {}",
        snap.peak_buffered,
        DEFAULT_STREAM_CAPACITY
    );
    assert_eq!(snap.counters, trace.counters);
    assert_eq!(snap.histograms, trace.histograms);

    // The streamed file reconciles event-for-event with the in-memory
    // recording of the identical run.
    let streamed = Run::load(&path.display().to_string()).unwrap();
    assert_eq!(streamed.events, trace.events);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interval_energy_columns_reconcile_with_the_meter() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf3);
    let (report, trace) = traced(cfg, "FFT_i", Scale::Small);
    let rows = trace.intervals();
    assert!(rows.len() as u64 > report.outages);

    // Every interval that closed with an energy sample carries exact
    // cumulative and delta columns: the delta is bit-identical to the
    // difference of adjacent cumulatives, and the final cumulative
    // consumed energy is bit-identical to the meter's total.
    let mut prev_h = 0.0f64;
    let mut prev_c = 0.0f64;
    let mut sampled = 0;
    for row in &rows {
        let (Some(h), Some(c)) = (row.harvested_cum_pj, row.consumed_cum_pj) else {
            continue;
        };
        sampled += 1;
        assert_eq!(
            row.harvested_delta_pj,
            Some(h - prev_h),
            "interval {}",
            row.interval
        );
        assert_eq!(
            row.consumed_delta_pj,
            Some(c - prev_c),
            "interval {}",
            row.interval
        );
        assert!(h >= prev_h && c >= prev_c, "cumulative energy is monotone");
        prev_h = h;
        prev_c = c;
    }
    assert!(
        sampled as u64 > report.outages,
        "every checkpoint and the run end sample energy"
    );
    assert_eq!(
        prev_c,
        report.energy.total(),
        "final cumulative consumed energy equals the meter total bit-for-bit"
    );
    assert!(prev_h > 0.0, "harvesting recorded on an rf3 run");

    // The final EnergySample event is the run-end one.
    let last_energy = trace
        .events
        .iter()
        .rev()
        .find_map(|&(_, ev)| match ev {
            Event::EnergySample {
                harvested_pj,
                consumed_pj,
            } => Some((harvested_pj, consumed_pj)),
            _ => None,
        })
        .expect("run ends with an energy sample");
    assert_eq!(last_energy.0, prev_h);
    assert_eq!(last_energy.1, prev_c);
}
