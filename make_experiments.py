#!/usr/bin/env python3
"""Generates EXPERIMENTS.md from results/*.tsv (run after all_figures)."""
import os

R = "results"

def read(name):
    with open(os.path.join(R, name + ".tsv")) as f:
        return [line.rstrip("\n").split("\t") for line in f if line.strip()]

def md_table(rows):
    out = ["| " + " | ".join(rows[0]) + " |",
           "|" + "---|" * len(rows[0])]
    for r in rows[1:]:
        out.append("| " + " | ".join(r) + " |")
    return "\n".join(out)

def gmean_cols(name):
    """Return {design: gmean(Total)} from a speedup figure TSV."""
    rows = read(name)
    ix = rows[0].index("gmean(Total)")
    return {r[0]: float(r[ix]) for r in rows[1:]}

f4, f5, f6 = gmean_cols("fig04"), gmean_cols("fig05"), gmean_cols("fig06")
f7 = read("fig07")
f8a, f8b = read("fig08a"), read("fig08b")
f10a, f10b = read("fig10a"), read("fig10b")
f11, f12 = gmean_cols("fig11"), gmean_cols("fig12")
f13a, f13b = read("fig13a"), read("fig13b")
s66 = read("stats66")
hw = read("hwcost")

def spd(d, f):
    return f"{f[d]:.2f}"

fig7_total = [r for r in f7 if r[0] == "gmean(Total)"][-1][1]

ab = {r[0]: r[1:] for r in read("ablation_wbuf")}
wb_area = float(ab["area (mm^2)"][1]) / float(ab["area (mm^2)"][0])
wb_dyn = float(ab["dynamic (pJ/access)"][1]) / float(ab["dynamic (pJ/access)"][0])

doc = f"""# EXPERIMENTS — paper vs. measured

Every table/figure of the paper, the command that regenerates it, and a
comparison of the paper's reported numbers against this reproduction.
All measured numbers come from `cargo run --release -p ehsim-bench
--bin all_figures` (TSVs under `results/`); they are deterministic
(fixed seeds).

**Reading guide.** Absolute numbers cannot match the paper — the
substrate is a from-scratch simulator with documented calibration
(DESIGN.md §2.4) and the kernels are smaller than the original
applications — so the comparison targets are the paper's *shapes*: who
wins, by roughly what factor, and where the crossovers fall.

## Headline (abstract / Figs 4–6)

| Quantity | Paper | Measured |
|---|---|---|
| WL-Cache vs NVSRAM(ideal), no failures | ~0.97× (slightly slower) | {spd("WL-Cache", f4)}× |
| WL-Cache vs NVSRAM(ideal), Trace 1 | 1.09× | {spd("WL-Cache", f5)}× |
| WL-Cache vs NVSRAM(ideal), Trace 2 | 1.12× | {spd("WL-Cache", f6)}× |
| NVCache-WB vs NVSRAM, no failures | ~0.32× | {spd("NVCache-WB", f4)}× |
| VCache-WT vs NVSRAM, no failures | ~0.50× | {spd("VCache-WT", f4)}× |
| ReplayCache vs NVSRAM, no failures | ~0.80× | {spd("ReplayCache", f4)}× |
| NVCache-WB vs NVSRAM, Trace 1 | ~0.33× | {spd("NVCache-WB", f5)}× |
| VCache-WT vs NVSRAM, Trace 1 | ~0.64× | {spd("VCache-WT", f5)}× |
| ReplayCache vs NVSRAM, Trace 1 | ~0.83× | {spd("ReplayCache", f5)}× |

The design ordering under power failures (WL > NVSRAM > VCache-WT >
NVCache, Figs 5/6) is reproduced; our ReplayCache approximation is the
one deviation — it lands at ≈ NVSRAM under outages instead of the
paper's 0.83× because the region-persistence costs that the real
compiler inserts are under-modelled (DESIGN.md §4, substitution 3). The
WL > ReplayCache ordering is preserved.

Regenerate: `--bin fig04`, `--bin fig05`, `--bin fig06`.

## Fig 7 — NVM write traffic (WL / NVSRAM, Trace 1)

Paper: ≤ 1.08× per application. Measured (gmean): **{fig7_total}×**.
Our kernels re-dirty hot lines (codec state, tables) more aggressively
than the paper's applications, so waterline cleaning writes more often;
the paper's qualitative point — WL pays a modest write-traffic premium
that asynchronous cleaning hides — still holds (Fig 5 shows the premium
does not cost performance). Regenerate: `--bin fig07`.

## Fig 8(a) — DirtyQueue replacement policy

{md_table(f8a)}

Paper: DQ-FIFO ≈ slightly above DQ-LRU under failures. Measured: the
two are within ~1% of each other; the LRU search-energy penalty that
tips the paper's balance is too small to matter under our
dropout-driven outages. Regenerate: `--bin fig08a`.

## Fig 8(b) — set associativity

{md_table(f8b)}

Paper: direct-mapped slowest, 2-way ≈ 4-way with 2-way slightly ahead.
Regenerate: `--bin fig08b`.

## Fig 9 — maxline sensitivity (per-application)

Full table in `results/fig09.tsv` (23 apps × maxline 2/4/6/8 × FIFO/LRU
cache replacement vs NVSRAM). Paper's findings to check: best
performance at maxline 4–6, degradation at 2 (too write-through-like)
and at 8 (larger reserve/Von), FIFO ≥ LRU for cache replacement.
Regenerate: `--bin fig09`.

## Fig 10(a) — cache size sweep (Trace 1, gmean vs 1 kB NVSRAM)

{md_table(f10a)}

Paper: speedups grow with cache size; the WL↔NVSRAM gap narrows as the
cache shrinks. Regenerate: `--bin fig10a`.

## Fig 10(b) — capacitor size sweep (Trace 1, mean execution seconds)

{md_table(f10b)}

Paper: all schemes are best near 1 µF and get exponentially slower with
larger capacitors (charging time dominates); the initial charge of the
oversized buffer is the driver. Regenerate: `--bin fig10b`.

## Figs 11/12 — adaptive vs best-static thresholds

Trace 1 (gmean(Total) vs NVSRAM): """ + ", ".join(f"{k} = {v:.2f}" for k, v in f11.items()) + """.
Trace 2: """ + ", ".join(f"{k} = {v:.2f}" for k, v in f12.items()) + f"""

Paper (Trace 1): FIFO(Adap) 1.35 / FIFO(Best) 1.26 / LRU(Adap) 1.18 /
LRU(Best) 1.10; (Trace 2): 1.44 / 1.30 / 1.24 / 1.15. Measured values
are closer to 1.0–1.2 and Adap ≈ Best: with ~5 outages per run (vs the
paper's ~33–45) the boot-time controller has few chances to adapt, so
the static default is near-optimal. The FIFO ≥ LRU ordering holds.
Regenerate: `--bin fig11`, `--bin fig12`.

## Fig 13(a) — power-trace sensitivity

{md_table(f13a)}

Paper: WL wins clearly on all RF traces; on solar/thermal NVSRAM closes
to within 8%/2% and WL-Cache(dyn) adds ~5%/3% over WL. Regenerate:
`--bin fig13a`.

## Fig 13(b) — energy breakdown (Trace 1, % of NVSRAM total)

{md_table(f13b)}

Paper: WL total ≈ 83% of NVSRAM with the cache component reduced most;
NVCache dominated by cache energy; WT dominated by memory writes.
Regenerate: `--bin fig13b`.

## §6.6 statistics (WL-Cache, adaptive, DQ-FIFO)

{md_table(s66)}

Paper: ~11/12 reconfigurations, maxline range 2–6, >98% prediction
accuracy, ~6 dirty lines and 2–3 write-backs per on-period, <1% stall
time. Our on-periods are ~100× longer (fewer, longer intervals at our
workload scale), so per-interval write-back counts are proportionally
larger and the direction-prediction accuracy is lower on the choppier
trace 2; reconfiguration counts scale with outage counts. The maxline
range and stall bound match. Regenerate: `--bin stats66`.

## §6.2 hardware cost (CACTI-lite)

{md_table(hw)}

Paper: DirtyQueue ≤ 0.005 mm², ≤ 0.0008 nJ/access, ~0.1 mW leakage ≈ 9%
of NV-cache leakage. Regenerate: `--bin hwcost`.

## Tables 1–3

- Table 1 (qualitative design comparison): regenerated structurally from
  the implemented models — `--bin table1` (`results/table1.tsv`).
- Table 2 (simulation configuration): `--bin table2`
  (`results/table2.tsv`); matches the paper's Table 2 with the
  documented cache-size scaling.
- Table 3 (related-work comparison) is verbatim prose; see the paper.

## Extensions beyond the paper

- **§3.3 write-buffer ablation** (`--bin ablation_wbuf`,
  `results/ablation_wbuf.tsv`): we implemented the write-through +
  CAM-write-buffer alternative the paper rejects. The hardware-cost
  objections reproduce decisively — {wb_area:.0f}× the DirtyQueue's area
  and {wb_dyn:.1f}× its per-access dynamic energy — but under our
  banked-NVM timing model the *performance* objection does not: the
  buffer design avoids the synchronous dirty-eviction write-backs that
  write-back caches pay, and lands slightly above WL-Cache on speedup.
  This is a substrate-dependent conclusion worth noting: with a
  single-bank NVM (where `tWR` recovery serialises evictions behind
  fills) the balance tips back toward WL-Cache.
- **Instruction-level frontend** (`ehsim-isa`): a small RISC ISA,
  assembler and interpreter whose fetches and data accesses all run
  through the simulated hierarchy, for users who need
  instruction-granular studies (the paper's gem5 setting).
- **CLI** (`ehsim-cli`): run/compare any workload × design × trace from
  the command line.
"""
open("EXPERIMENTS.md", "w").write(doc)
print("EXPERIMENTS.md written,", len(doc), "bytes")
