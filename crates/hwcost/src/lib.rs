//! CACTI-lite: an analytical area/energy/leakage model for small on-chip
//! arrays, standing in for CACTI \[62\] in the paper's §6.2 hardware-cost
//! analysis.
//!
//! The model is deliberately simple — linear area and leakage in the bit
//! count, square-root dynamic energy (wordline/bitline geometry), plus a
//! fixed control-logic overhead — with constants anchored at 90 nm so
//! that:
//!
//! - an 8-entry DirtyQueue lands within the paper's reported envelope
//!   (≤ 0.005 mm², ≤ 0.0008 nJ per access, ≈ 0.1 mW leakage), and
//! - the paper's default 8 kB cache yields per-access energies
//!   consistent with the `ehsim-cache` technology constants and a
//!   leakage around 1.1 mW for the NV variant, making the DirtyQueue
//!   ≈ 9 % of NV-cache leakage as reported.
//!
//! # Examples
//!
//! ```
//! use ehsim_hwcost::{dirty_queue_spec, estimate};
//!
//! let dq = estimate(&dirty_queue_spec(8, 32));
//! assert!(dq.area_mm2 <= 0.005);
//! assert!(dq.dynamic_pj_per_access <= 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cell technology of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// 6T SRAM.
    Sram,
    /// 1T1R ReRAM (denser cells, leakier periphery, pricier writes).
    Reram,
}

/// A memory array to be costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArraySpec {
    /// Total storage bits (including tags/metadata).
    pub bits: u64,
    /// Technology node in nanometres (the paper uses 90 nm).
    pub tech_nm: u32,
    /// Cell technology.
    pub kind: ArrayKind,
    /// Whether the array needs associative (CAM-style) lookup, which
    /// inflates both area and dynamic energy.
    pub cam: bool,
}

/// Cost estimate produced by [`estimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Dynamic energy per access in pJ.
    pub dynamic_pj_per_access: f64,
    /// Leakage power in µW (array + periphery + control logic).
    pub leakage_uw: f64,
}

/// 6T SRAM cell area at 90 nm (µm²/bit).
const SRAM_CELL_UM2_90: f64 = 1.1;
/// 1T1R ReRAM cell area at 90 nm (µm²/bit).
const RERAM_CELL_UM2_90: f64 = 0.45;
/// Fixed control/periphery area overhead factor.
const PERIPHERY_AREA_FACTOR: f64 = 1.35;
/// Extra area factor for CAM-searchable arrays.
const CAM_AREA_FACTOR: f64 = 2.2;

/// Dynamic energy model: `E = A + B·sqrt(bits)` (pJ, 90 nm, read).
const DYN_BASE_PJ: f64 = 0.05;
const DYN_SQRT_PJ: f64 = 0.04;
/// CAM search multiplier on dynamic energy.
const CAM_DYN_FACTOR: f64 = 3.0;

/// Leakage model: `P = A + B·bits` (µW, 90 nm).
const LEAK_BASE_UW: f64 = 50.0;
const LEAK_SRAM_PER_BIT_UW: f64 = 0.15;
/// ReRAM cells barely leak but their periphery does.
const LEAK_RERAM_PER_BIT_UW: f64 = 0.014;
const LEAK_RERAM_BASE_UW: f64 = 200.0;

/// Estimates area, per-access dynamic energy and leakage for `spec`.
///
/// Area scales with the square of the technology node, dynamic energy
/// and leakage linearly (a standard first-order Dennard approximation —
/// only 90 nm is exercised by the reproduction).
pub fn estimate(spec: &ArraySpec) -> CostEstimate {
    let s = spec.tech_nm as f64 / 90.0;
    let bits = spec.bits as f64;

    let cell_um2 = match spec.kind {
        ArrayKind::Sram => SRAM_CELL_UM2_90,
        ArrayKind::Reram => RERAM_CELL_UM2_90,
    };
    let mut area_um2 = bits * cell_um2 * PERIPHERY_AREA_FACTOR * s * s;
    if spec.cam {
        area_um2 *= CAM_AREA_FACTOR;
    }

    let mut dyn_pj = (DYN_BASE_PJ + DYN_SQRT_PJ * bits.sqrt()) * s;
    if spec.cam {
        dyn_pj *= CAM_DYN_FACTOR;
    }
    if spec.kind == ArrayKind::Reram {
        dyn_pj *= 2.5; // sensing a resistive cell costs more
    }

    let leak_uw = match spec.kind {
        ArrayKind::Sram => LEAK_BASE_UW + LEAK_SRAM_PER_BIT_UW * bits,
        ArrayKind::Reram => LEAK_RERAM_BASE_UW + LEAK_RERAM_PER_BIT_UW * bits,
    } * s;

    CostEstimate {
        area_mm2: area_um2 / 1e6,
        dynamic_pj_per_access: dyn_pj,
        leakage_uw: leak_uw,
    }
}

/// The DirtyQueue of WL-Cache: `entries` slots each holding a line
/// address of `addr_bits` bits plus a state bit and head/tail logic
/// (§5.5 adds two 1-byte threshold registers and two 2-byte power-on
/// timers; those 48 bits are included).
///
/// The DirtyQueue is a plain circular queue — no CAM search (§3.3 calls
/// out avoiding CAM as a key cost advantage over a write-back buffer).
pub fn dirty_queue_spec(entries: u64, addr_bits: u64) -> ArraySpec {
    ArraySpec {
        bits: entries * (addr_bits + 1) + 48,
        tech_nm: 90,
        kind: ArrayKind::Sram,
        cam: false,
    }
}

/// A data cache array of `size_bytes` with `tag_bits` of metadata per
/// `line_bytes` line.
pub fn cache_spec(size_bytes: u64, line_bytes: u64, tag_bits: u64, kind: ArrayKind) -> ArraySpec {
    let lines = size_bytes / line_bytes;
    ArraySpec {
        bits: size_bytes * 8 + lines * tag_bits,
        tech_nm: 90,
        kind,
        cam: false,
    }
}

/// The write-back-buffer alternative discussed (and rejected) in §3.3:
/// a CAM-searched buffer of whole lines. Used by the ablation bench to
/// show why WL-Cache's decoupled metadata design is cheaper.
pub fn write_buffer_spec(entries: u64, line_bytes: u64, addr_bits: u64) -> ArraySpec {
    ArraySpec {
        bits: entries * (line_bytes * 8 + addr_bits),
        tech_nm: 90,
        kind: ArrayKind::Sram,
        cam: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_queue_meets_paper_envelope() {
        // §6.2: ≤ 0.005 mm², ≤ 0.0008 nJ (= 0.8 pJ), ≈ 0.1 mW leakage.
        let e = estimate(&dirty_queue_spec(8, 32));
        assert!(e.area_mm2 <= 0.005, "area {}", e.area_mm2);
        assert!(
            e.dynamic_pj_per_access <= 0.8,
            "dyn {}",
            e.dynamic_pj_per_access
        );
        assert!(
            (0.05..=0.15).contains(&(e.leakage_uw / 1_000.0)),
            "leakage {} uW",
            e.leakage_uw
        );
    }

    #[test]
    fn dirty_queue_is_about_nine_percent_of_nv_cache_leakage() {
        let dq = estimate(&dirty_queue_spec(8, 32));
        let nv = estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Reram));
        let ratio = dq.leakage_uw / nv.leakage_uw;
        assert!((0.06..=0.12).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sram_cache_energy_consistent_with_cache_tech() {
        // The 8 kB SRAM array should land near the 8–10 pJ/access used
        // by ehsim-cache's CacheTech::sram().
        let e = estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Sram));
        assert!(
            (6.0..=14.0).contains(&e.dynamic_pj_per_access),
            "dyn {}",
            e.dynamic_pj_per_access
        );
    }

    #[test]
    fn cam_write_buffer_is_much_more_expensive_than_dirty_queue() {
        // §3.3: the rejected write-back-buffer design needs CAM search
        // over whole lines.
        let dq = estimate(&dirty_queue_spec(8, 32));
        let wb = estimate(&write_buffer_spec(8, 64, 32));
        assert!(wb.area_mm2 > 10.0 * dq.area_mm2);
        assert!(wb.dynamic_pj_per_access > 10.0 * dq.dynamic_pj_per_access);
    }

    #[test]
    fn technology_scaling_is_monotone() {
        let at90 = estimate(&dirty_queue_spec(8, 32));
        let mut spec45 = dirty_queue_spec(8, 32);
        spec45.tech_nm = 45;
        let at45 = estimate(&spec45);
        assert!(at45.area_mm2 < at90.area_mm2);
        assert!(at45.dynamic_pj_per_access < at90.dynamic_pj_per_access);
        assert!(at45.leakage_uw < at90.leakage_uw);
    }

    #[test]
    fn reram_cells_denser_but_periphery_leakier() {
        let s = estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Sram));
        let r = estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Reram));
        assert!(r.area_mm2 < s.area_mm2);
        assert!(r.dynamic_pj_per_access > s.dynamic_pj_per_access);
    }
}
