//! Equivalence pins for the batched settlement engine: over random
//! kernels and harvesting traces — including the dyn-raise design whose
//! mid-run threshold moves are the batcher's hardest boundary — the
//! default (batched) path and the per-retire reference path must
//! produce field-for-field identical [`Report`]s. This is the
//! machine-level counterpart of the `EHSIM_BATCH_CHECK=1` sweep switch
//! and the fig13a determinism suite in `ehsim-bench`.

use ehsim::{with_settle_batching_disabled, Report, SimConfig, SimError, Simulator};
use ehsim_energy::TraceKind;
use ehsim_mem::{Bus, Workload};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Load(u32),
    Store(u32, u32),
    Compute(u64),
}

/// A kernel defined entirely by a generated op list: deterministic,
/// replayable, and free to mix bus traffic with compute stretches long
/// enough to sag the capacitor mid-run.
#[derive(Debug, Clone)]
struct RandKernel {
    ops: Vec<Op>,
}

impl Workload for RandKernel {
    fn name(&self) -> &str {
        "randkernel"
    }
    fn mem_bytes(&self) -> u32 {
        4096
    }
    fn run(&self, bus: &mut dyn Bus) -> u64 {
        let mut acc = 0u64;
        for op in &self.ops {
            match *op {
                Op::Load(a) => acc = acc.wrapping_add(u64::from(bus.load_u32(a))),
                Op::Store(a, v) => bus.store_u32(a, v),
                Op::Compute(c) => bus.compute(c),
            }
        }
        acc
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Unweighted union (the vendored proptest has no weight syntax);
    // the repeated arms skew the mix toward bus traffic, with one rare
    // long stretch that crosses many chunk boundaries and forces
    // outages inside the fused compute loop, not only at bus ops.
    prop_oneof![
        (0u32..1024).prop_map(|a| Op::Load(a * 4)),
        (0u32..512).prop_map(|a| Op::Load(a * 8)),
        ((0u32..1024), any::<u32>()).prop_map(|(a, v)| Op::Store(a * 4, v)),
        ((0u32..512), any::<u32>()).prop_map(|(a, v)| Op::Store(a * 8, v)),
        (1u64..6000).prop_map(Op::Compute),
        Just(Op::Compute(300_000)),
    ]
}

fn configs() -> Vec<SimConfig> {
    let designs = [
        SimConfig::nvsram(),
        SimConfig::vcache_wt(),
        SimConfig::replay(),
        SimConfig::wl_cache(),
        SimConfig::wl_cache_dyn(),
    ];
    let traces = [TraceKind::None, TraceKind::Rf1, TraceKind::Solar];
    designs
        .iter()
        .flat_map(|d| traces.iter().map(|&t| d.clone().with_trace(t)))
        .collect()
}

fn label(r: &Result<Report, SimError>) -> String {
    match r {
        Ok(rep) => format!("ok: {} outages, {} instrs", rep.outages, rep.instructions),
        Err(e) => format!("err: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batched_and_per_retire_reports_are_identical(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let kernel = RandKernel { ops };
        for cfg in configs() {
            let batched = Simulator::new(cfg.clone()).run(&kernel);
            let reference =
                with_settle_batching_disabled(|| Simulator::new(cfg.clone()).run(&kernel));
            match (&batched, &reference) {
                (Ok(b), Ok(r)) => prop_assert_eq!(
                    b,
                    r,
                    "engines diverged for {} on {}",
                    cfg.design.label(),
                    cfg.trace_label()
                ),
                (b, r) => prop_assert!(
                    false,
                    "paths disagreed on outcome for {} on {}: batched={}, reference={}",
                    cfg.design.label(),
                    cfg.trace_label(),
                    label(b),
                    label(r)
                ),
            }
        }
    }
}
