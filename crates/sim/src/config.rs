//! Simulation configuration.

use crate::params::CpuParams;
use ehsim_cache::{CacheGeometry, ReplacementPolicy};
use ehsim_energy::{ChargingModel, PowerTrace, TraceKind};
use ehsim_mem::{NvmEnergy, NvmTiming};
use wl_cache::{AdaptationMode, DqPolicy, Thresholds};

/// Which cache design the machine is built around.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignKind {
    /// Volatile write-through SRAM cache.
    VCacheWt,
    /// Fully non-volatile write-back cache.
    NvCacheWb,
    /// NVSRAM(ideal): volatile write-back SRAM + NV checkpoint copy.
    NvSram,
    /// ReplayCache with the given region length in instructions.
    Replay {
        /// Instructions per persistence region.
        region_instrs: u64,
    },
    /// The §3.3 write-buffer alternative (for ablation studies).
    WBuf {
        /// Write-buffer capacity in lines.
        capacity: usize,
    },
    /// WL-Cache.
    Wl {
        /// DirtyQueue thresholds (capacity / maxline / waterline).
        thresholds: Thresholds,
        /// DirtyQueue replacement policy (§5.2).
        dq_policy: DqPolicy,
        /// Threshold adaptation mode (§4).
        adaptation: AdaptationMode,
    },
}

impl DesignKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            DesignKind::VCacheWt => "VCache-WT",
            DesignKind::NvCacheWb => "NVCache-WB",
            DesignKind::NvSram => "NVSRAM(ideal)",
            DesignKind::Replay { .. } => "ReplayCache",
            DesignKind::WBuf { .. } => "WBuf-Cache",
            DesignKind::Wl {
                adaptation: AdaptationMode::Dynamic,
                ..
            } => "WL-Cache(dyn)",
            DesignKind::Wl { .. } => "WL-Cache",
        }
    }
}

/// Full configuration of one simulation run.
///
/// Use the design-specific constructors ([`SimConfig::wl_cache`],
/// [`SimConfig::nvsram`], …) and chain `with_*` modifiers:
///
/// ```
/// use ehsim::SimConfig;
/// use ehsim_energy::{ChargingModel, PowerTrace, TraceKind};
/// use ehsim_cache::CacheGeometry;
///
/// let cfg = SimConfig::nvsram()
///     .with_trace(TraceKind::Rf2)
///     .with_geometry(CacheGeometry::new(512, 2, 64))
///     .with_capacitor_uf(10.0);
/// assert_eq!(cfg.design.label(), "NVSRAM(ideal)");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The cache design under test.
    pub design: DesignKind,
    /// Cache layout.
    ///
    /// Default: 1 kB, 2-way, 64 B lines. The kernels in
    /// `ehsim-workloads` have footprints of a few kB–tens of kB (far
    /// smaller than the paper's full applications), so the default cache
    /// is scaled down proportionally from the paper's 8 kB to keep miss
    /// ratios realistic; [`SimConfig::with_paper_geometry`] selects the
    /// full Table 2 layout, and Fig 10(a) sweeps 128 B–4 kB.
    pub geometry: CacheGeometry,
    /// Cache replacement policy (§5.4; LRU is the paper default,
    /// §6.5 sweeps FIFO).
    pub cache_policy: ReplacementPolicy,
    /// Harvesting environment.
    pub trace: TraceKind,
    /// A user-supplied trace (e.g. loaded with
    /// [`ehsim_energy::load_trace`]); overrides [`SimConfig::trace`]
    /// when present, and enables power failures.
    pub custom_trace: Option<PowerTrace>,
    /// Capacitor size in µF (Table 2 default: 1 µF).
    pub capacitor_uf: f64,
    /// Core parameters.
    pub cpu: CpuParams,
    /// NVM timing (Table 2).
    pub nvm_timing: NvmTiming,
    /// NVM energy.
    pub nvm_energy: NvmEnergy,
    /// Harvesting front-end charging model (voltage-dependent
    /// efficiency).
    pub charging: ChargingModel,
    /// Maintain an oracle memory and verify crash consistency at every
    /// checkpoint (slower; meant for tests).
    pub verify: bool,
    /// Abort if the run exceeds this many outages (runaway guard).
    pub max_outages: u64,
}

impl SimConfig {
    fn base(design: DesignKind) -> Self {
        Self {
            design,
            geometry: CacheGeometry::new(1024, 2, 64),
            cache_policy: ReplacementPolicy::Lru,
            trace: TraceKind::None,
            custom_trace: None,
            capacitor_uf: 1.0,
            cpu: CpuParams::default(),
            nvm_timing: NvmTiming::default(),
            nvm_energy: NvmEnergy::default(),
            charging: ChargingModel::paper_default(),
            verify: false,
            max_outages: 1_000_000,
        }
    }

    /// WL-Cache with the paper's defaults (DirtyQueue 8, maxline 6,
    /// FIFO DirtyQueue replacement, adaptive management).
    pub fn wl_cache() -> Self {
        Self::base(DesignKind::Wl {
            thresholds: Thresholds::paper_default(),
            dq_policy: DqPolicy::Fifo,
            adaptation: AdaptationMode::Adaptive,
        })
    }

    /// WL-Cache with static thresholds at the given maxline
    /// (waterline = maxline − 1), for the Fig 9/11/12 sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `maxline` is 0 or exceeds the default DirtyQueue
    /// capacity of 8.
    pub fn wl_cache_static(maxline: usize) -> Self {
        Self::base(DesignKind::Wl {
            thresholds: Thresholds::with_maxline(8, maxline)
                .expect("maxline must be within the 8-entry DirtyQueue"),
            dq_policy: DqPolicy::Fifo,
            adaptation: AdaptationMode::Static,
        })
    }

    /// WL-Cache (dyn): adaptive plus opportunistic dynamic raises
    /// (Fig 13(a)).
    pub fn wl_cache_dyn() -> Self {
        Self::base(DesignKind::Wl {
            thresholds: Thresholds::paper_default(),
            dq_policy: DqPolicy::Fifo,
            adaptation: AdaptationMode::Dynamic,
        })
    }

    /// NVSRAM(ideal) — the paper's baseline for all speedup figures.
    pub fn nvsram() -> Self {
        Self::base(DesignKind::NvSram)
    }

    /// Volatile write-through cache.
    pub fn vcache_wt() -> Self {
        Self::base(DesignKind::VCacheWt)
    }

    /// Non-volatile write-back cache.
    pub fn nvcache_wb() -> Self {
        Self::base(DesignKind::NvCacheWb)
    }

    /// ReplayCache with the default 64-instruction regions.
    pub fn replay() -> Self {
        Self::base(DesignKind::Replay { region_instrs: 64 })
    }

    /// The §3.3 write-buffer alternative with a 6-line buffer (matching
    /// WL-Cache's default maxline), for the ablation bench.
    pub fn write_buffer() -> Self {
        Self::base(DesignKind::WBuf { capacity: 6 })
    }

    /// The five designs of Figs 4–6, in the paper's legend order.
    pub fn all_designs() -> Vec<SimConfig> {
        vec![
            Self::nvsram(),
            Self::nvcache_wb(),
            Self::vcache_wt(),
            Self::replay(),
            Self::wl_cache(),
        ]
    }

    /// Sets the harvesting trace.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceKind) -> Self {
        self.trace = trace;
        self
    }

    /// Supplies a recorded/custom power trace (see
    /// [`ehsim_energy::parse_trace`]); power failures are simulated
    /// against it regardless of [`SimConfig::trace`].
    #[must_use]
    pub fn with_custom_trace(mut self, trace: PowerTrace) -> Self {
        self.custom_trace = Some(trace);
        self
    }

    /// Label of the effective trace, for reports.
    pub fn trace_label(&self) -> &'static str {
        if self.custom_trace.is_some() {
            "custom"
        } else {
            self.trace.label()
        }
    }

    /// Sets the cache geometry.
    #[must_use]
    pub fn with_geometry(mut self, geometry: CacheGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Selects the paper's full 8 kB, 2-way, 64 B geometry (Table 2).
    #[must_use]
    pub fn with_paper_geometry(mut self) -> Self {
        self.geometry = CacheGeometry::paper_default();
        self
    }

    /// Sets the cache replacement policy.
    #[must_use]
    pub fn with_cache_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Sets the DirtyQueue replacement policy (WL-Cache only; no-op for
    /// other designs).
    #[must_use]
    pub fn with_dq_policy(mut self, policy: DqPolicy) -> Self {
        if let DesignKind::Wl { dq_policy, .. } = &mut self.design {
            *dq_policy = policy;
        }
        self
    }

    /// Sets the capacitor size in µF.
    #[must_use]
    pub fn with_capacitor_uf(mut self, uf: f64) -> Self {
        self.capacitor_uf = uf;
        self
    }

    /// Enables crash-consistency verification against an oracle memory.
    #[must_use]
    pub fn with_verify(mut self) -> Self {
        self.verify = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figures() {
        assert_eq!(SimConfig::wl_cache().design.label(), "WL-Cache");
        assert_eq!(SimConfig::wl_cache_dyn().design.label(), "WL-Cache(dyn)");
        assert_eq!(SimConfig::nvsram().design.label(), "NVSRAM(ideal)");
        assert_eq!(SimConfig::replay().design.label(), "ReplayCache");
    }

    #[test]
    fn default_trace_is_no_failure() {
        assert_eq!(SimConfig::wl_cache().trace, TraceKind::None);
    }

    #[test]
    fn with_modifiers_compose() {
        let cfg = SimConfig::vcache_wt()
            .with_trace(TraceKind::Rf1)
            .with_capacitor_uf(0.344)
            .with_paper_geometry()
            .with_verify();
        assert_eq!(cfg.trace, TraceKind::Rf1);
        assert_eq!(cfg.capacitor_uf, 0.344);
        assert_eq!(cfg.geometry.size_bytes(), 8 * 1024);
        assert!(cfg.verify);
    }

    #[test]
    fn wl_static_sets_thresholds() {
        let cfg = SimConfig::wl_cache_static(4);
        match cfg.design {
            DesignKind::Wl {
                thresholds,
                adaptation,
                ..
            } => {
                assert_eq!(thresholds.maxline(), 4);
                assert_eq!(thresholds.waterline(), 3);
                assert_eq!(adaptation, AdaptationMode::Static);
            }
            _ => panic!("expected WL design"),
        }
    }

    #[test]
    fn all_designs_has_five_entries() {
        assert_eq!(SimConfig::all_designs().len(), 5);
    }
}
