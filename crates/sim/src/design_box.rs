//! Static-dispatch wrapper over the five cache designs.

use crate::config::{DesignKind, SimConfig};
use ehsim_cache::designs::{NvCacheWb, NvSramCache, ReplayCache, VCacheWt, WriteBufferCache};
use ehsim_cache::{CacheDesign, MemCtx};
use ehsim_energy::VoltageThresholds;
use ehsim_mem::{AccessSize, FunctionalMem, NvmEnergy, Pj, Ps};
use wl_cache::{WlCache, WlCacheBuilder};

/// One of the five evaluated cache designs, dispatched statically.
///
/// An enum (rather than `Box<dyn CacheDesign>`) keeps the hot
/// load/store path free of virtual calls and lets the report builder
/// reach the concrete [`WlCache`] for its §6.6 statistics.
// One long-lived instance per Machine: the size spread between
// variants costs nothing, while boxing the large ones would put a
// pointer chase back on the per-access path this enum exists to avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum DesignBox {
    /// Volatile write-through cache.
    VCacheWt(VCacheWt),
    /// Non-volatile write-back cache.
    NvCacheWb(NvCacheWb),
    /// NVSRAM(ideal).
    NvSram(NvSramCache),
    /// ReplayCache.
    Replay(ReplayCache),
    /// WL-Cache.
    Wl(WlCache),
    /// The §3.3 write-buffer alternative.
    WBuf(WriteBufferCache),
}

impl DesignBox {
    /// Instantiates the design described by `cfg`.
    pub fn from_config(cfg: &SimConfig) -> Self {
        match &cfg.design {
            DesignKind::VCacheWt => {
                DesignBox::VCacheWt(VCacheWt::new(cfg.geometry, cfg.cache_policy))
            }
            DesignKind::NvCacheWb => {
                DesignBox::NvCacheWb(NvCacheWb::new(cfg.geometry, cfg.cache_policy))
            }
            DesignKind::NvSram => {
                DesignBox::NvSram(NvSramCache::new(cfg.geometry, cfg.cache_policy))
            }
            DesignKind::Replay { region_instrs } => DesignBox::Replay(ReplayCache::new(
                cfg.geometry,
                cfg.cache_policy,
                *region_instrs,
                cfg.cpu.compute_pj_per_cycle,
            )),
            DesignKind::WBuf { capacity } => DesignBox::WBuf(WriteBufferCache::new(
                cfg.geometry,
                cfg.cache_policy,
                *capacity,
            )),
            DesignKind::Wl {
                thresholds,
                dq_policy,
                adaptation,
            } => {
                let mut b = WlCacheBuilder::new();
                b.geometry(cfg.geometry)
                    .cache_policy(cfg.cache_policy)
                    .thresholds(*thresholds)
                    .dq_policy(*dq_policy)
                    .adaptation(*adaptation);
                DesignBox::Wl(b.build())
            }
        }
    }

    /// The concrete WL-Cache, if this is one.
    pub fn as_wl(&self) -> Option<&WlCache> {
        match self {
            DesignBox::Wl(wl) => Some(wl),
            _ => None,
        }
    }

    /// Whether this design overrides
    /// [`CacheDesign::on_instructions`]. For every other design the
    /// default implementation returns `ctx.now` unchanged, so the
    /// machine can skip building a [`MemCtx`] per retired instruction
    /// entirely — a pure hot-path saving with no observable effect.
    pub fn has_instruction_hook(&self) -> bool {
        matches!(self, DesignBox::Replay(_))
    }
}

macro_rules! delegate {
    ($self:ident, $d:ident => $e:expr) => {
        match $self {
            DesignBox::VCacheWt($d) => $e,
            DesignBox::NvCacheWb($d) => $e,
            DesignBox::NvSram($d) => $e,
            DesignBox::Replay($d) => $e,
            DesignBox::Wl($d) => $e,
            DesignBox::WBuf($d) => $e,
        }
    };
}

impl CacheDesign for DesignBox {
    fn name(&self) -> &'static str {
        delegate!(self, d => d.name())
    }
    fn thresholds(&self) -> VoltageThresholds {
        delegate!(self, d => d.thresholds())
    }
    fn load(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize) -> (Ps, u64) {
        delegate!(self, d => d.load(ctx, addr, size))
    }
    fn store(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize, value: u64) -> Ps {
        delegate!(self, d => d.store(ctx, addr, size, value))
    }
    fn checkpoint(&mut self, ctx: &mut MemCtx<'_>) -> Ps {
        delegate!(self, d => d.checkpoint(ctx))
    }
    fn power_off(&mut self) {
        delegate!(self, d => d.power_off())
    }
    fn reboot(&mut self, ctx: &mut MemCtx<'_>, on_time_ps: Ps) -> Ps {
        delegate!(self, d => d.reboot(ctx, on_time_ps))
    }
    fn on_instructions(&mut self, ctx: &mut MemCtx<'_>, total_instrs: u64) -> Ps {
        delegate!(self, d => d.on_instructions(ctx, total_instrs))
    }
    fn dirty_lines(&self) -> usize {
        delegate!(self, d => d.dirty_lines())
    }
    fn worst_checkpoint_pj(&self, energy: &NvmEnergy) -> Pj {
        delegate!(self, d => d.worst_checkpoint_pj(energy))
    }
    fn persistent_overlay(&self, nvm: &FunctionalMem) -> FunctionalMem {
        delegate!(self, d => d.persistent_overlay(nvm))
    }
    fn persistent_line(&self, base: u32) -> Option<&[u8]> {
        delegate!(self, d => d.persistent_line(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    #[test]
    fn from_config_builds_matching_design() {
        for cfg in SimConfig::all_designs() {
            let d = DesignBox::from_config(&cfg);
            assert_eq!(d.name(), cfg.design.label());
        }
    }

    #[test]
    fn as_wl_only_for_wl() {
        assert!(DesignBox::from_config(&SimConfig::wl_cache())
            .as_wl()
            .is_some());
        assert!(DesignBox::from_config(&SimConfig::nvsram())
            .as_wl()
            .is_none());
    }

    #[test]
    fn dyn_label_differs() {
        let d = DesignBox::from_config(&SimConfig::wl_cache_dyn());
        // The design's own name is WL-Cache; the config label carries
        // the (dyn) distinction for figures.
        assert_eq!(d.name(), "WL-Cache");
        assert_eq!(SimConfig::wl_cache_dyn().design.label(), "WL-Cache(dyn)");
    }
}
