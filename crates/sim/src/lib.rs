//! `ehsim`: the energy-harvesting system simulator.
//!
//! This crate ties the substrates together into the machine the paper
//! evaluates on: a 1 GHz in-order core with a single cache design and a
//! ReRAM main memory, powered by a capacitor charged from a harvesting
//! trace, with JIT checkpointing at `Vbackup` and recovery at `Von`
//! (Fig 1 / Table 2 of the paper).
//!
//! The central abstraction is [`Simulator::run`]: give it a workload and
//! a [`SimConfig`] and it returns a [`Report`] with execution time,
//! outage counts, energy breakdown, cache statistics and — for WL-Cache —
//! the §6.6 adaptive-management statistics. Because every design
//! guarantees crash consistency via checkpointing, execution never rolls
//! back: the machine runs the workload in one forward pass, injecting
//! checkpoint/off/recharge/restore costs whenever the capacitor sags
//! below the design's `Vbackup`.
//!
//! # Examples
//!
//! ```
//! use ehsim::{SimConfig, Simulator};
//! use ehsim_energy::TraceKind;
//! use ehsim_mem::{Bus, Workload};
//!
//! struct Touch;
//! impl Workload for Touch {
//!     fn name(&self) -> &str { "touch" }
//!     fn mem_bytes(&self) -> u32 { 1024 }
//!     fn run(&self, bus: &mut dyn Bus) -> u64 {
//!         for i in 0..256 {
//!             bus.store_u32(i * 4, i);
//!         }
//!         (0..256).map(|i| u64::from(bus.load_u32(i * 4))).sum()
//!     }
//! }
//!
//! let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf1);
//! let report = Simulator::new(cfg).run(&Touch)?;
//! assert_eq!(report.checksum, (0..256u64).sum());
//! # Ok::<(), ehsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod design_box;
mod error;
mod machine;
pub mod params;
mod report;
mod simulator;

pub use batch::with_settle_batching_disabled;
pub use config::{DesignKind, SimConfig};
pub use ehsim_mem::{BusOp, BusTrace, TraceRecorder};
pub use ehsim_obs::{Event, ObserverBox, Recorder, RunTrace};
pub use error::SimError;
pub use machine::Machine;
pub use params::CpuParams;
pub use report::{gmean, Report, WlReport};
pub use simulator::Simulator;
