//! The simulated energy-harvesting machine.

use crate::config::SimConfig;
use crate::design_box::DesignBox;
use crate::error::SimError;
use crate::params::{COMPUTE_CHUNK_CYCLES, MAX_RECHARGE_PS};
use ehsim_cache::{CacheDesign, CacheStats, MemCtx};
use ehsim_energy::{Capacitor, ChargingModel, EnergyCategory, EnergyMeter, TraceCursor, TraceKind};
use ehsim_mem::{AccessSize, Bus, FunctionalMem, NvmPort, Pj, Ps};

/// Panic payload used to abort a run from inside the [`Bus`] methods
/// (which cannot return `Result`); `Simulator::run` catches it and
/// surfaces the recorded [`SimError`].
pub(crate) struct Abort;

/// The energy-harvesting machine: an in-order core, one cache design,
/// NVM main memory, and a capacitor fed by a harvesting trace.
///
/// `Machine` implements [`Bus`], so workloads execute directly against
/// it. After every operation the machine integrates harvested energy,
/// drains consumed energy, and — when the voltage sags below the
/// design's `Vbackup` — runs the full power-failure protocol:
/// JIT checkpoint (design state + registers), power-off, recharge to
/// `Von`, reboot/restore, and adaptive threshold reconfiguration.
#[derive(Debug)]
pub struct Machine {
    design: DesignBox,
    port: NvmPort,
    timing: ehsim_mem::NvmTiming,
    energy: ehsim_mem::NvmEnergy,
    nvm: FunctionalMem,
    meter: EnergyMeter,
    stats: CacheStats,
    cap: Capacitor,
    cursor: TraceCursor,
    charging: ChargingModel,
    cpu: crate::CpuParams,
    failures_enabled: bool,
    verify_oracle: Option<FunctionalMem>,
    max_outages: u64,

    booted: bool,
    now: Ps,
    boot_time: Ps,
    last_sync: Ps,
    drained_pj: Pj,
    instructions: u64,
    outages: u64,
    off_time_ps: Ps,
    checkpoint_time_ps: Ps,
    restore_time_ps: Ps,
    error: Option<SimError>,
}

impl Machine {
    /// Builds a machine for `cfg` with an NVM of at least `mem_bytes`
    /// bytes (rounded up to a whole number of cache lines).
    pub fn new(cfg: &SimConfig, mem_bytes: u32) -> Self {
        let design = DesignBox::from_config(cfg);
        let line = cfg.geometry.line_bytes();
        let size = mem_bytes.max(line).div_ceil(line) * line;
        let failures = cfg.custom_trace.is_some() || cfg.trace != TraceKind::None;
        let mut cap = Capacitor::with_uf(cfg.capacitor_uf, 2.8, 3.5);
        // With failures enabled, the node starts unpowered and must
        // first harvest its way up to `Von` — the initial charge is what
        // makes oversized capacitors slow (Fig 10(b)). Without a trace,
        // the buffer is simply full.
        if failures {
            cap.set_voltage(0.0);
        } else {
            cap.set_voltage(design.thresholds().v_on.min(cap.v_max()));
        }
        let trace = cfg
            .custom_trace
            .clone()
            .unwrap_or_else(|| cfg.trace.build());
        Self {
            design,
            port: NvmPort::new(),
            timing: cfg.nvm_timing.clone(),
            energy: cfg.nvm_energy.clone(),
            nvm: FunctionalMem::new(size),
            meter: EnergyMeter::new(),
            stats: CacheStats::new(),
            cap,
            cursor: trace.cursor(),
            charging: cfg.charging.clone(),
            cpu: cfg.cpu.clone(),
            failures_enabled: failures,
            verify_oracle: cfg.verify.then(|| FunctionalMem::new(size)),
            max_outages: cfg.max_outages,
            booted: false,
            now: 0,
            boot_time: 0,
            last_sync: 0,
            drained_pj: 0.0,
            instructions: 0,
            outages: 0,
            off_time_ps: 0,
            checkpoint_time_ps: 0,
            restore_time_ps: 0,
            error: None,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Power outages endured so far.
    pub fn outages(&self) -> u64 {
        self.outages
    }

    /// Accumulated off (recharge) time.
    pub fn off_time_ps(&self) -> Ps {
        self.off_time_ps
    }

    /// Accumulated JIT-checkpoint time (design flush + register save).
    pub fn checkpoint_time_ps(&self) -> Ps {
        self.checkpoint_time_ps
    }

    /// Accumulated restore time (design reboot + register restore).
    pub fn restore_time_ps(&self) -> Ps {
        self.restore_time_ps
    }

    /// Energy meter (consumption by category).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The cache design under simulation.
    pub fn design(&self) -> &DesignBox {
        &self.design
    }

    /// The error that aborted the run, if any.
    pub(crate) fn take_error(&mut self) -> Option<SimError> {
        self.error.take()
    }

    fn abort(&mut self, e: SimError) -> ! {
        self.error = Some(e);
        std::panic::panic_any(Abort)
    }

    fn check_error(&self) {
        if self.error.is_some() {
            std::panic::panic_any(Abort)
        }
    }

    /// Integrates harvested energy and drains metered consumption,
    /// without triggering the failure protocol.
    fn sync_energy(&mut self) {
        let dt = self.now - self.last_sync;
        if dt > 0 {
            // Static draw accrues with wall-clock on-time (stalls are
            // not energy-free).
            self.meter.add(
                EnergyCategory::Compute,
                dt as f64 * self.cpu.static_power_uw * 1e-6,
            );
        }
        if self.failures_enabled {
            if dt > 0 {
                let harvested = self.cursor.advance(dt);
                let eta = self.charging.efficiency(self.cap.voltage());
                self.cap.charge_pj(harvested * eta);
            }
            let spent = self.meter.total() - self.drained_pj;
            if spent > 0.0 {
                self.cap.drain_pj(spent);
            }
        }
        self.last_sync = self.now;
        self.drained_pj = self.meter.total();
    }

    /// First power-up: harvest from an empty capacitor to `Von` before
    /// any work happens. This initial charge is part of execution time
    /// (the paper's Fig 10(b) sweeps hinge on it) but is not an outage.
    fn boot_if_needed(&mut self) {
        if self.booted || !self.failures_enabled {
            self.booted = true;
            return;
        }
        self.booted = true;
        self.recharge_to_von();
        self.boot_time = self.now;
        self.last_sync = self.now;
    }

    /// Energy settlement plus the power-failure check.
    fn settle(&mut self) {
        self.sync_energy();
        if self.failures_enabled {
            while self.cap.voltage() < self.design.thresholds().v_backup {
                self.power_failure();
            }
        }
    }

    /// The full outage protocol (§3.2): checkpoint, verify, power off,
    /// recharge to `Von`, reboot, adapt.
    fn power_failure(&mut self) {
        if self.outages >= self.max_outages {
            self.abort(SimError::TooManyOutages {
                limit: self.max_outages,
            });
        }
        let fail_at = self.now;
        let on_time = self.now - self.boot_time;

        // JIT checkpoint: dirty lines (design-specific) + registers.
        let done = self.with_ctx(|design, ctx| design.checkpoint(ctx));
        self.now = done + self.cpu.reg_checkpoint_ps;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.reg_checkpoint_pj);
        self.sync_energy();
        self.checkpoint_time_ps += self.now - fail_at;

        // The reserve below Vbackup must have covered the checkpoint.
        let v_min = self.design.thresholds().v_min;
        if self.cap.voltage() < v_min - 1e-9 {
            let voltage = self.cap.voltage();
            self.abort(SimError::ReserveViolated { voltage, v_min });
        }

        // Crash-consistency verification: persistent state must
        // reconstruct the oracle.
        if let Some(oracle) = &self.verify_oracle {
            let view = self.design.persistent_overlay(&self.nvm);
            if let Some(addr) = view
                .as_bytes()
                .iter()
                .zip(oracle.as_bytes())
                .position(|(a, b)| a != b)
            {
                let e = SimError::ConsistencyViolation {
                    addr: addr as u32,
                    expected: oracle.as_bytes()[addr],
                    actual: view.as_bytes()[addr],
                    outage: self.outages,
                };
                self.abort(e);
            }
        }

        // Power off: volatile state is lost.
        self.design.power_off();
        self.port.reset();

        // Recharge to the design's Von.
        self.recharge_to_von();
        self.last_sync = self.now;

        // Reboot: restore registers, warm/cold cache, adapt thresholds.
        let boot_start = self.now;
        let done = self.with_ctx(|design, ctx| design.reboot(ctx, on_time));
        self.now = done + self.cpu.reg_restore_ps;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.reg_restore_pj);
        self.sync_energy();
        self.restore_time_ps += self.now - boot_start;

        self.outages += 1;
        self.boot_time = self.now;
    }

    /// Charges the (powered-off) capacitor up to the design's `Von`,
    /// stepping the voltage so the front end's falling efficiency near
    /// `Vmax` is honoured; the elapsed time is counted as off-time.
    fn recharge_to_von(&mut self) {
        let v_on = self.design.thresholds().v_on.min(self.cap.v_max());
        let mut budget = MAX_RECHARGE_PS;
        while self.cap.voltage() < v_on - 1e-12 {
            let v = self.cap.voltage();
            let v_next = (v + 0.05).min(v_on);
            let need = self.cap.energy_between_pj(v_next, v);
            let eta = self.charging.efficiency((v + v_next) / 2.0);
            let dead = eta <= 1e-6;
            let dt = (!dead)
                .then(|| self.cursor.time_to_harvest(need / eta, budget))
                .flatten();
            match dt {
                Some(dt) => {
                    self.now += dt;
                    self.off_time_ps += dt;
                    budget = budget.saturating_sub(dt);
                    self.cap.set_voltage(v_next);
                }
                None => {
                    let at_ps = self.now;
                    self.abort(SimError::SourceDead { at_ps });
                }
            }
        }
    }

    /// Runs `f` with a fresh [`MemCtx`] at the current time; returns
    /// `f`'s result (usually a completion time).
    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut DesignBox, &mut MemCtx<'_>) -> R) -> R {
        let cap_voltage = self.cap.voltage();
        let cap_energy_pj = self.cap.energy_above_pj(self.cap.v_min());
        let mut ctx = MemCtx {
            now: self.now,
            port: &mut self.port,
            timing: &self.timing,
            energy: &self.energy,
            nvm: &mut self.nvm,
            meter: &mut self.meter,
            stats: &mut self.stats,
            cap_voltage,
            cap_energy_pj,
        };
        f(&mut self.design, &mut ctx)
    }

    fn retire_instruction(&mut self) {
        self.instructions += 1;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.compute_pj_per_cycle);
        let n = self.instructions;
        let done = self.with_ctx(|design, ctx| design.on_instructions(ctx, n));
        self.now = self.now.max(done);
    }
}

impl Bus for Machine {
    fn load(&mut self, addr: u32, size: AccessSize) -> u64 {
        self.check_error();
        self.boot_if_needed();
        let start = self.now;
        let (done, value) = self.with_ctx(|design, ctx| design.load(ctx, addr, size));
        // In-order core: an instruction takes at least one cycle.
        self.now = done.max(start + self.cpu.ps_per_cycle);
        self.retire_instruction();
        self.settle();
        value
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u64) {
        self.check_error();
        self.boot_if_needed();
        let start = self.now;
        let done = self.with_ctx(|design, ctx| design.store(ctx, addr, size, value));
        self.now = done.max(start + self.cpu.ps_per_cycle);
        if let Some(oracle) = &mut self.verify_oracle {
            oracle.write(addr, size, value);
        }
        self.retire_instruction();
        self.settle();
    }

    fn compute(&mut self, cycles: u64) {
        self.check_error();
        self.boot_if_needed();
        let mut remaining = cycles;
        while remaining > 0 {
            let chunk = remaining.min(COMPUTE_CHUNK_CYCLES);
            remaining -= chunk;
            self.now += chunk * self.cpu.ps_per_cycle;
            self.meter.add(
                EnergyCategory::Compute,
                chunk as f64 * self.cpu.compute_pj_per_cycle,
            );
            self.instructions += chunk;
            let n = self.instructions;
            let done = self.with_ctx(|design, ctx| design.on_instructions(ctx, n));
            self.now = self.now.max(done);
            self.settle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use ehsim_energy::TraceKind;

    fn machine(cfg: SimConfig) -> Machine {
        Machine::new(&cfg, 4096)
    }

    #[test]
    fn no_failure_mode_never_fails() {
        let mut m = machine(SimConfig::wl_cache());
        for i in 0..10_000u32 {
            m.store_u32((i % 512) * 4, i);
        }
        m.compute(100_000);
        assert_eq!(m.outages(), 0);
        assert!(m.now() > 0);
    }

    #[test]
    fn instructions_count_all_ops() {
        let mut m = machine(SimConfig::wl_cache());
        m.store_u32(0, 1);
        let _ = m.load_u32(0);
        m.compute(10);
        assert_eq!(m.instructions(), 12);
    }

    #[test]
    fn read_your_writes_through_the_hierarchy() {
        for cfg in SimConfig::all_designs() {
            let mut m = machine(cfg);
            for i in 0..1024u32 {
                m.store_u32(i * 4, i ^ 0xabcd);
            }
            for i in 0..1024u32 {
                assert_eq!(m.load_u32(i * 4), i ^ 0xabcd, "{}", m.design().name());
            }
        }
    }

    #[test]
    fn rf_trace_causes_outages_and_recovery() {
        for cfg in SimConfig::all_designs() {
            let design = cfg.design.label();
            let mut m = machine(cfg.with_trace(TraceKind::Rf1).with_verify());
            for round in 0..200u32 {
                for i in 0..512u32 {
                    m.store_u32(i * 8 % 4096, i.wrapping_mul(round + 1));
                }
                m.compute(100_000);
            }
            assert!(m.outages() > 0, "{design}: expected at least one outage");
            assert!(m.off_time_ps() > 0);
            // Data survived every outage (verified against the oracle at
            // each checkpoint; spot-check final contents here).
            for i in 0..512u32 {
                assert_eq!(m.load_u32(i * 8 % 4096), i.wrapping_mul(200), "{design}");
            }
        }
    }

    #[test]
    fn on_plus_off_equals_total() {
        let mut m = machine(SimConfig::wl_cache().with_trace(TraceKind::Rf2));
        for i in 0..20_000u32 {
            m.store_u32((i % 1024) * 4, i);
            m.compute(500);
        }
        assert!(m.off_time_ps() < m.now());
        assert!(m.outages() > 0);
    }

    #[test]
    fn checkpoint_time_is_tracked() {
        let mut m = machine(SimConfig::wl_cache().with_trace(TraceKind::Rf1));
        for i in 0..50_000u32 {
            m.store_u32((i % 1024) * 4, i);
            m.compute(200);
        }
        assert!(m.outages() > 0);
        assert!(m.checkpoint_time_ps() > 0);
        assert!(m.restore_time_ps() > 0);
    }

    #[test]
    fn energy_meter_accumulates_all_categories() {
        let mut m = machine(SimConfig::wl_cache());
        for i in 0..2_000u32 {
            m.store_u32(i * 4 % 4096, i);
        }
        m.compute(1_000);
        let meter = m.meter();
        assert!(meter.compute > 0.0);
        assert!(meter.cache_write > 0.0);
        assert!(meter.mem_read > 0.0, "miss fills read NVM");
        assert!(meter.mem_write > 0.0, "cleanings write NVM");
    }
}
