//! The simulated energy-harvesting machine.

use crate::config::SimConfig;
use crate::design_box::DesignBox;
use crate::error::SimError;
use crate::params::{COMPUTE_CHUNK_CYCLES, MAX_RECHARGE_PS};
use ehsim_cache::{CacheDesign, CacheStats, MemCtx};
use ehsim_energy::{
    Capacitor, ChargingModel, EnergyCategory, EnergyMeter, TraceCursor, TraceKind,
    VoltageThresholds,
};
use ehsim_mem::{AccessSize, Bus, FunctionalMem, NvmPort, Pj, Ps};
use ehsim_obs::{Event, ObserverBox};

/// Panic payload used to abort a run from inside the [`Bus`] methods
/// (which cannot return `Result`); `Simulator::run` catches it and
/// surfaces the recorded [`SimError`].
pub(crate) struct Abort;

/// The energy-harvesting machine: an in-order core, one cache design,
/// NVM main memory, and a capacitor fed by a harvesting trace.
///
/// `Machine` implements [`Bus`], so workloads execute directly against
/// it. After every operation the machine integrates harvested energy,
/// drains consumed energy, and — when the voltage sags below the
/// design's `Vbackup` — runs the full power-failure protocol:
/// JIT checkpoint (design state + registers), power-off, recharge to
/// `Von`, reboot/restore, and adaptive threshold reconfiguration.
#[derive(Debug)]
pub struct Machine {
    design: DesignBox,
    port: NvmPort,
    timing: ehsim_mem::NvmTiming,
    energy: ehsim_mem::NvmEnergy,
    nvm: FunctionalMem,
    meter: EnergyMeter,
    stats: CacheStats,
    cap: Capacitor,
    cursor: TraceCursor,
    charging: ChargingModel,
    cpu: crate::CpuParams,
    failures_enabled: bool,
    /// Whether the design overrides `on_instructions` (ReplayCache
    /// only); when false, `retire_instruction` skips building a
    /// [`MemCtx`] — the default hook returns `ctx.now` unchanged.
    instr_hook: bool,
    verify_oracle: Option<FunctionalMem>,
    /// Line size used by the incremental consistency checker's write
    /// tracking (one cache line).
    verify_line_bytes: u32,
    max_outages: u64,
    /// Whether this machine uses the batched settlement engine
    /// (default) or the per-retire reference path (`EHSIM_NO_BATCH=1` /
    /// [`crate::with_settle_batching_disabled`]). Sampled once at
    /// construction; both engines produce bit-identical results.
    batch: bool,
    /// Mirror of `design.thresholds()`, re-derived after every piece of
    /// design code runs (every [`Machine::with_ctx`] call and
    /// `power_off`) when `vth_volatile` — the *only* sites where
    /// WL-Cache's adaptive controller can move a threshold (dyn-raise
    /// during a store, reconfigure during reboot). For designs with
    /// construction-fixed thresholds the mirror is derived once. The
    /// batched engine reads `Vbackup` from here instead of re-querying
    /// the design per settlement; a debug assert pins mirror == design
    /// at every batched failure check. (PR 2 tried a Vbackup mirror
    /// without the re-derive-after-design-code discipline and the
    /// fig13a golden caught it; this one is invalidated at exactly the
    /// sites that can move thresholds.)
    vth: VoltageThresholds,
    /// Whether `vth` must be re-derived after design code runs (true
    /// only for WL-Cache, the one design whose controller moves
    /// thresholds mid-run).
    vth_volatile: bool,
    /// Event sink. [`ObserverBox::Noop`] by default; every emission site
    /// is guarded by [`ObserverBox::enabled`] and observers can never
    /// mutate simulation state, so results are bit-identical with or
    /// without one attached.
    obs: ObserverBox,
    /// Whether the sink asked for per-settlement
    /// [`Event::VoltageSample`]s (cached at construction; the answer is
    /// part of the observer's type, not its state).
    obs_voltage: bool,
    /// Cumulative trace-side harvested energy (pJ), maintained only
    /// while an observer is attached — it feeds
    /// [`Event::EnergySample`]s and nothing in the simulation reads it.
    harvested_pj: Pj,

    booted: bool,
    now: Ps,
    boot_time: Ps,
    last_sync: Ps,
    drained_pj: Pj,
    /// Meter version at which `drained_pj` was last brought up to date;
    /// when unchanged, nothing was metered and the capacitor drain can
    /// be skipped without re-summing the meter.
    drained_version: u64,
    instructions: u64,
    outages: u64,
    off_time_ps: Ps,
    checkpoint_time_ps: Ps,
    restore_time_ps: Ps,
    error: Option<SimError>,
}

impl Machine {
    /// Builds a machine for `cfg` with an NVM of at least `mem_bytes`
    /// bytes (rounded up to a whole number of cache lines).
    pub fn new(cfg: &SimConfig, mem_bytes: u32) -> Self {
        Self::with_observer(cfg, mem_bytes, ObserverBox::Noop)
    }

    /// [`Machine::new`] with an event sink attached. The observer only
    /// watches — simulated results are identical to an unobserved run.
    pub fn with_observer(cfg: &SimConfig, mem_bytes: u32, obs: ObserverBox) -> Self {
        let design = DesignBox::from_config(cfg);
        let line = cfg.geometry.line_bytes();
        let size = mem_bytes.max(line).div_ceil(line) * line;
        let failures = cfg.custom_trace.is_some() || cfg.trace != TraceKind::None;
        let mut cap = Capacitor::with_uf(cfg.capacitor_uf, 2.8, 3.5);
        // With failures enabled, the node starts unpowered and must
        // first harvest its way up to `Von` — the initial charge is what
        // makes oversized capacitors slow (Fig 10(b)). Without a trace,
        // the buffer is simply full.
        if failures {
            cap.set_voltage(0.0);
        } else {
            cap.set_voltage(design.thresholds().v_on.min(cap.v_max()));
        }
        let trace = cfg
            .custom_trace
            .clone()
            .unwrap_or_else(|| cfg.trace.build());
        let mut nvm = FunctionalMem::new(size);
        let verify_oracle = cfg.verify.then(|| {
            // Track NVM writes and oracle (store) writes at line
            // granularity: the union of both sets covers every address
            // at which the persistent view or the oracle can have
            // changed since the previous consistency check.
            nvm.enable_write_tracking(line);
            let mut oracle = FunctionalMem::new(size);
            oracle.enable_write_tracking(line);
            oracle
        });
        let instr_hook = design.has_instruction_hook();
        let vth = design.thresholds();
        let vth_volatile = matches!(cfg.design, crate::DesignKind::Wl { .. });
        let mut obs = obs;
        if obs.enabled() {
            if let Some(wl) = design.as_wl() {
                let t = wl.thresholds_config();
                obs.emit(
                    0,
                    Event::InitialThresholds {
                        maxline: t.maxline(),
                        waterline: t.waterline(),
                    },
                );
            }
        }
        Self {
            design,
            port: NvmPort::new(),
            timing: cfg.nvm_timing.clone(),
            energy: cfg.nvm_energy.clone(),
            nvm,
            meter: EnergyMeter::new(),
            stats: CacheStats::new(),
            cap,
            cursor: trace.cursor(),
            charging: cfg.charging.clone(),
            cpu: cfg.cpu.clone(),
            failures_enabled: failures,
            instr_hook,
            verify_oracle,
            verify_line_bytes: line,
            max_outages: cfg.max_outages,
            batch: crate::batch::batching_enabled(),
            vth,
            vth_volatile,
            obs_voltage: obs.voltage_sampling(),
            obs,
            harvested_pj: 0.0,
            booted: false,
            now: 0,
            boot_time: 0,
            last_sync: 0,
            drained_pj: 0.0,
            drained_version: 0,
            instructions: 0,
            outages: 0,
            off_time_ps: 0,
            checkpoint_time_ps: 0,
            restore_time_ps: 0,
            error: None,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Power outages endured so far.
    pub fn outages(&self) -> u64 {
        self.outages
    }

    /// Accumulated off (recharge) time.
    pub fn off_time_ps(&self) -> Ps {
        self.off_time_ps
    }

    /// Accumulated JIT-checkpoint time (design flush + register save).
    pub fn checkpoint_time_ps(&self) -> Ps {
        self.checkpoint_time_ps
    }

    /// Accumulated restore time (design reboot + register restore).
    pub fn restore_time_ps(&self) -> Ps {
        self.restore_time_ps
    }

    /// Energy meter (consumption by category).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The cache design under simulation.
    pub fn design(&self) -> &DesignBox {
        &self.design
    }

    /// The design's voltage thresholds (`Von`/`Vbackup`/`Vmin`), e.g.
    /// for overlaying rails on an exported voltage trajectory.
    pub fn voltage_thresholds(&self) -> VoltageThresholds {
        self.design.thresholds()
    }

    /// The attached event sink.
    pub fn observer(&self) -> &ObserverBox {
        &self.obs
    }

    /// Detaches the event sink (replacing it with the no-op), e.g. to
    /// finish a recording into a `RunTrace` after the workload ran.
    pub fn take_observer(&mut self) -> ObserverBox {
        std::mem::take(&mut self.obs)
    }

    /// Signals the end of observation: emits the final cumulative
    /// [`Event::EnergySample`] (closing the last power-on interval's
    /// energy accounting) and forwards `Observer::end`, which delivers
    /// the terminating `RunEnd` and lets buffered sinks (the streaming
    /// observer) flush. A no-op without an observer. Call once, after
    /// the workload finished and before [`Machine::take_observer`].
    pub fn end_observation(&mut self) {
        if self.obs.enabled() {
            self.emit_energy_sample();
            self.obs.end(self.now);
        }
    }

    /// Emits the cumulative harvested/consumed totals at `now`;
    /// consecutive samples telescope into exact per-interval deltas.
    fn emit_energy_sample(&mut self) {
        if self.obs.enabled() {
            self.obs.emit(
                self.now,
                Event::EnergySample {
                    harvested_pj: self.harvested_pj,
                    consumed_pj: self.meter.total(),
                },
            );
        }
    }

    /// The error that aborted the run, if any.
    pub(crate) fn take_error(&mut self) -> Option<SimError> {
        self.error.take()
    }

    fn abort(&mut self, e: SimError) -> ! {
        self.error = Some(e);
        std::panic::panic_any(Abort)
    }

    fn check_error(&self) {
        if self.error.is_some() {
            std::panic::panic_any(Abort)
        }
    }

    /// Integrates harvested energy and drains metered consumption,
    /// without triggering the failure protocol.
    ///
    /// `drained_pj` caches `meter.total()` as of the previous
    /// settlement, tagged with the meter's add-count
    /// (`drained_version`). Because `total()` is a fixed left-to-right
    /// sum over the category fields, re-evaluating it only when
    /// something was metered — and only once per settlement — yields the
    /// exact values the seed computed by re-summing (twice) every time;
    /// accumulating deltas instead would round differently and was
    /// rejected. With failures disabled the cache is never read, so
    /// no-failure runs do no total-summing at all.
    fn sync_energy(&mut self) {
        let dt = self.now - self.last_sync;
        if dt > 0 {
            // Static draw accrues with wall-clock on-time (stalls are
            // not energy-free).
            self.meter.add(
                EnergyCategory::Compute,
                dt as f64 * self.cpu.static_power_uw * 1e-6,
            );
        }
        if self.failures_enabled {
            let v_before = self.cap.voltage();
            if dt > 0 {
                let harvested = self.cursor.advance(dt);
                let eta = self.charging.efficiency(self.cap.voltage());
                self.cap.charge_pj(harvested * eta);
                if self.obs.enabled() {
                    self.harvested_pj += harvested;
                }
            }
            if self.meter.version() != self.drained_version {
                let total = self.meter.total();
                let spent = total - self.drained_pj;
                if spent > 0.0 {
                    self.cap.drain_pj(spent);
                }
                self.drained_pj = total;
                self.drained_version = self.meter.version();
            }
            if self.obs.enabled() {
                let th = self.design.thresholds();
                Self::emit_crossings(&mut self.obs, &th, self.now, v_before, self.cap.voltage());
                if self.obs_voltage && dt > 0 {
                    let voltage = self.cap.voltage();
                    self.obs.emit(self.now, Event::VoltageSample { voltage });
                }
            }
        }
        self.last_sync = self.now;
    }

    /// Reports every named-rail crossing of the step `v0 → v1`.
    fn emit_crossings(obs: &mut ObserverBox, th: &VoltageThresholds, at: Ps, v0: f64, v1: f64) {
        if !obs.enabled() {
            return;
        }
        for (rail, rising) in th.crossings(v0, v1).into_iter().flatten() {
            obs.emit(at, Event::VoltageCross { rail, rising });
        }
    }

    /// First power-up: harvest from an empty capacitor to `Von` before
    /// any work happens. This initial charge is part of execution time
    /// (the paper's Fig 10(b) sweeps hinge on it) but is not an outage.
    fn boot_if_needed(&mut self) {
        if self.booted {
            return;
        }
        self.booted = true;
        if self.failures_enabled {
            self.recharge_to_von();
            self.boot_time = self.now;
            self.last_sync = self.now;
        }
        if self.obs.enabled() {
            self.obs.emit(self.now, Event::PowerOn { interval: 0 });
        }
    }

    /// Energy settlement plus the power-failure check.
    fn settle(&mut self) {
        if !self.batch || self.obs.enabled() {
            // Reference path (`EHSIM_NO_BATCH=1`), also taken whenever
            // an observer is attached: crossing detection needs the
            // pre-settlement voltage and the full threshold set anyway.
            self.sync_energy();
            if self.failures_enabled {
                // `Vbackup` must be re-read from the design on every
                // check: WL-Cache(dyn) raises it mid-run via the
                // opportunistic dynamic `maxline` raise, not only at
                // reboot.
                while self.cap.voltage() < self.design.thresholds().v_backup {
                    self.power_failure();
                }
            }
            return;
        }
        self.settle_lean();
    }

    /// The batched engine's per-access settlement: the same f64
    /// operations in the same order as [`Machine::sync_energy`] plus
    /// the failure check, with everything the reference path does for
    /// observers stripped (no observer is attached here), the carried
    /// voltage kept in a register between charge and drain, and
    /// `Vbackup` read from the `vth` mirror instead of re-queried from
    /// the design.
    fn settle_lean(&mut self) {
        let dt = self.now - self.last_sync;
        if dt > 0 {
            self.meter.add(
                EnergyCategory::Compute,
                dt as f64 * self.cpu.static_power_uw * 1e-6,
            );
        }
        self.last_sync = self.now;
        if !self.failures_enabled {
            return;
        }
        let mut v = self.cap.voltage();
        if dt > 0 {
            let harvested = self.cursor.advance(dt);
            let eta = self.charging.efficiency(v);
            v = self.cap.charged_voltage_at(v, harvested * eta);
        }
        if self.meter.version() != self.drained_version {
            let total = self.meter.total();
            let spent = total - self.drained_pj;
            if spent > 0.0 {
                v = self.cap.drained_voltage_at(v, spent);
            }
            self.drained_pj = total;
            self.drained_version = self.meter.version();
        }
        self.cap.set_voltage(v);
        debug_assert_eq!(
            self.vth,
            self.design.thresholds(),
            "threshold mirror out of date — a design-code site is missing its re-derive"
        );
        while self.cap.voltage() < self.vth.v_backup {
            self.power_failure();
        }
    }

    /// The full outage protocol (§3.2): checkpoint, verify, power off,
    /// recharge to `Von`, reboot, adapt.
    fn power_failure(&mut self) {
        if self.outages >= self.max_outages {
            self.abort(SimError::TooManyOutages {
                limit: self.max_outages,
            });
        }
        let fail_at = self.now;
        let on_time = self.now - self.boot_time;
        if self.obs.enabled() {
            self.obs.emit(
                self.now,
                Event::OutageBegin {
                    on_ps: on_time,
                    voltage: self.cap.voltage(),
                },
            );
            let dirty_lines = self.design.dirty_lines();
            self.obs
                .emit(self.now, Event::CheckpointBegin { dirty_lines });
        }
        let ckpt_lines_before = self.stats.checkpoint_lines;

        // JIT checkpoint: dirty lines (design-specific) + registers.
        let done = self.with_ctx(|design, ctx| design.checkpoint(ctx));
        self.now = done + self.cpu.reg_checkpoint_ps;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.reg_checkpoint_pj);
        self.sync_energy();
        self.checkpoint_time_ps += self.now - fail_at;
        if self.obs.enabled() {
            let flushed_lines = self.stats.checkpoint_lines - ckpt_lines_before;
            // Energy totals close the interval just before its
            // CheckpointEnd.
            self.emit_energy_sample();
            self.obs
                .emit(self.now, Event::CheckpointEnd { flushed_lines });
        }

        // The reserve below Vbackup must have covered the checkpoint.
        let v_min = self.design.thresholds().v_min;
        if self.cap.voltage() < v_min - 1e-9 {
            let voltage = self.cap.voltage();
            self.abort(SimError::ReserveViolated { voltage, v_min });
        }

        // Crash-consistency verification: persistent state must
        // reconstruct the oracle.
        if self.verify_oracle.is_some() {
            self.verify_consistency();
        }

        // Power off: volatile state is lost.
        self.design.power_off();
        if self.vth_volatile {
            self.vth = self.design.thresholds();
        }
        self.port.reset();
        if self.obs.enabled() {
            self.obs.emit(self.now, Event::PowerOff);
        }

        // Recharge to the design's Von.
        self.recharge_to_von();
        self.last_sync = self.now;
        if self.obs.enabled() {
            self.obs.emit(self.now, Event::RestoreBegin);
        }

        // Reboot: restore registers, warm/cold cache, adapt thresholds.
        let boot_start = self.now;
        let done = self.with_ctx(|design, ctx| design.reboot(ctx, on_time));
        self.now = done + self.cpu.reg_restore_ps;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.reg_restore_pj);
        self.sync_energy();
        self.restore_time_ps += self.now - boot_start;
        if self.obs.enabled() {
            self.obs.emit(self.now, Event::RestoreEnd);
            let interval = self.outages + 1;
            self.obs.emit(self.now, Event::PowerOn { interval });
        }

        self.outages += 1;
        self.boot_time = self.now;
    }

    /// Incremental crash-consistency check: compares the persistent
    /// view against the oracle only at the lines written (to NVM, or to
    /// the oracle by stores) since the previous check, in ascending
    /// address order — aborting with the same
    /// [`SimError::ConsistencyViolation`] (`addr`/`expected`/`actual`)
    /// the seed's full scan reported.
    ///
    /// Why the candidate set suffices: at the previous check every byte
    /// of the view matched the oracle. A byte of the *oracle* changes
    /// only through a store (tracked by the oracle's writes). A byte of
    /// the *view* is either NVM (every NVM write is tracked — demand
    /// evictions, cleanings, drains, checkpoints, replay landings all go
    /// through `FunctionalMem`) or a valid line of an NV array, whose
    /// contents change only through stores — which update the oracle at
    /// the same addresses and are therefore tracked too. Fills copy NVM
    /// bytes verbatim and evictions of clean lines drop data equal to
    /// NVM, so coverage transitions never change the view. In debug
    /// builds the full-overlay scan cross-checks this argument on every
    /// outage.
    fn verify_consistency(&mut self) {
        let Some(oracle) = self.verify_oracle.as_mut() else {
            return; // verification disabled for this run
        };
        let mut lines: Vec<u32> = Vec::new();
        self.nvm.take_written_lines(&mut lines);
        oracle.take_written_lines(&mut lines);
        lines.sort_unstable();
        lines.dedup();

        let oracle = &*oracle;
        let lb = self.verify_line_bytes as usize;
        let mut mismatch: Option<(u32, u8, u8)> = None;
        'scan: for &base in &lines {
            let a = base as usize;
            let view: &[u8] = match self.design.persistent_line(base) {
                Some(cached) => cached,
                None => &self.nvm.as_bytes()[a..a + lb],
            };
            let expected = &oracle.as_bytes()[a..a + lb];
            for (i, (v, e)) in view.iter().zip(expected).enumerate() {
                if v != e {
                    mismatch = Some((base + i as u32, *e, *v));
                    break 'scan;
                }
            }
        }

        #[cfg(debug_assertions)]
        {
            // Oracle the oracle: the seed's full clone-and-scan must
            // agree with the incremental verdict.
            let full_view = self.design.persistent_overlay(&self.nvm);
            let full = full_view
                .as_bytes()
                .iter()
                .zip(oracle.as_bytes())
                .position(|(a, b)| a != b)
                .map(|addr| addr as u32);
            assert_eq!(
                full,
                mismatch.map(|(addr, ..)| addr),
                "incremental consistency check diverged from the full scan"
            );
        }

        if let Some((addr, expected, actual)) = mismatch {
            let e = SimError::ConsistencyViolation {
                addr,
                expected,
                actual,
                outage: self.outages,
            };
            self.abort(e);
        }
    }

    /// Charges the (powered-off) capacitor up to the design's `Von`,
    /// stepping the voltage so the front end's falling efficiency near
    /// `Vmax` is honoured; the elapsed time is counted as off-time.
    fn recharge_to_von(&mut self) {
        let v_start = self.cap.voltage();
        let v_on = self.design.thresholds().v_on.min(self.cap.v_max());
        let mut budget = MAX_RECHARGE_PS;
        while self.cap.voltage() < v_on - 1e-12 {
            let v = self.cap.voltage();
            let v_next = (v + 0.05).min(v_on);
            let need = self.cap.energy_between_pj(v_next, v);
            let eta = self.charging.efficiency((v + v_next) / 2.0);
            let dead = eta <= 1e-6;
            let dt = (!dead)
                .then(|| self.cursor.time_to_harvest(need / eta, budget))
                .flatten();
            match dt {
                Some(dt) => {
                    self.now += dt;
                    self.off_time_ps += dt;
                    budget = budget.saturating_sub(dt);
                    self.cap.set_voltage(v_next);
                    if self.obs.enabled() {
                        self.harvested_pj += need / eta;
                        if self.obs_voltage {
                            self.obs
                                .emit(self.now, Event::VoltageSample { voltage: v_next });
                        }
                    }
                }
                None => {
                    let at_ps = self.now;
                    self.abort(SimError::SourceDead { at_ps });
                }
            }
        }
        if self.obs.enabled() {
            // One rising crossing per rail for the whole recharge; the
            // step-by-step detail adds nothing to the timeline.
            let th = self.design.thresholds();
            Self::emit_crossings(&mut self.obs, &th, self.now, v_start, self.cap.voltage());
        }
    }

    /// Runs `f` with a fresh [`MemCtx`] at the current time; returns
    /// `f`'s result (usually a completion time).
    ///
    /// Every run of design code goes through here (loads, stores,
    /// `on_instructions`, checkpoint, reboot), so re-deriving the
    /// threshold mirror on exit catches every site where WL-Cache's
    /// controller can have moved a threshold — including the mid-store
    /// dynamic `maxline` raise.
    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut DesignBox, &mut MemCtx<'_>) -> R) -> R {
        let cap_voltage = self.cap.voltage();
        let mut ctx = MemCtx {
            now: self.now,
            port: &mut self.port,
            timing: &self.timing,
            energy: &self.energy,
            nvm: &mut self.nvm,
            meter: &mut self.meter,
            stats: &mut self.stats,
            cap_voltage,
            obs: &mut self.obs,
        };
        let r = f(&mut self.design, &mut ctx);
        if self.vth_volatile {
            self.vth = self.design.thresholds();
        }
        r
    }

    /// The batched settlement engine's compute loop: the whole stretch
    /// is one *run* in the sense of DESIGN.md §2.10 — no design code
    /// executes inside it (the caller checked `instr_hook` is off and a
    /// compute stretch issues no bus ops), so every design threshold is
    /// constant between outages and the per-chunk settlement sequence
    /// can be fused into a loop that keeps the capacitor voltage in a
    /// register and compares it against a hoisted `Vbackup`.
    ///
    /// Flush boundaries: an outage runs design code (checkpoint,
    /// power-off, reboot/adapt), each site re-deriving the `vth` mirror
    /// through [`Machine::with_ctx`] / `power_off`, so the outer `'runs`
    /// loop re-hoists the thresholds and re-loads the voltage after
    /// every failure before fusing the next stretch.
    ///
    /// Every f64 operation below reproduces, in order, exactly what the
    /// reference path (`compute` chunk loop + [`Machine::sync_energy`] +
    /// the `Vbackup` while-check) performs for the same chunk sequence —
    /// the equivalence pins live in `tests/batch_equiv.rs` and the
    /// fig13a determinism suite.
    fn compute_batched(&mut self, cycles: u64) {
        let ppc = self.cpu.ps_per_cycle;
        let cpj = self.cpu.compute_pj_per_cycle;
        let static_uw = self.cpu.static_power_uw;
        let mut remaining = cycles;
        if !self.failures_enabled {
            // No capacitor in play: only time, instruction count and the
            // two meter adds per chunk (dynamic, then static — the
            // seed's order).
            while remaining > 0 {
                let chunk = remaining.min(COMPUTE_CHUNK_CYCLES);
                remaining -= chunk;
                self.now += chunk * ppc;
                self.meter.add(EnergyCategory::Compute, chunk as f64 * cpj);
                self.instructions += chunk;
                let dt = self.now - self.last_sync;
                if dt > 0 {
                    self.meter
                        .add(EnergyCategory::Compute, dt as f64 * static_uw * 1e-6);
                }
                self.last_sync = self.now;
            }
            return;
        }
        'runs: while remaining > 0 {
            debug_assert_eq!(
                self.vth,
                self.design.thresholds(),
                "threshold mirror out of date — a design-code site is missing its re-derive"
            );
            let v_backup = self.vth.v_backup;
            let mut v = self.cap.voltage();
            while remaining > 0 {
                let chunk = remaining.min(COMPUTE_CHUNK_CYCLES);
                remaining -= chunk;
                self.now += chunk * ppc;
                self.meter.add(EnergyCategory::Compute, chunk as f64 * cpj);
                self.instructions += chunk;
                let dt = self.now - self.last_sync;
                if dt > 0 {
                    self.meter
                        .add(EnergyCategory::Compute, dt as f64 * static_uw * 1e-6);
                }
                self.last_sync = self.now;
                if dt > 0 {
                    let harvested = self.cursor.advance(dt);
                    let eta = self.charging.efficiency(v);
                    v = self.cap.charged_voltage_at(v, harvested * eta);
                }
                if self.meter.version() != self.drained_version {
                    let total = self.meter.total();
                    let spent = total - self.drained_pj;
                    if spent > 0.0 {
                        v = self.cap.drained_voltage_at(v, spent);
                    }
                    self.drained_pj = total;
                    self.drained_version = self.meter.version();
                }
                if v < v_backup {
                    // Run boundary: the outage protocol reads the
                    // capacitor, so write the carried voltage back
                    // first, then re-hoist everything it may have
                    // changed.
                    self.cap.set_voltage(v);
                    while self.cap.voltage() < self.vth.v_backup {
                        self.power_failure();
                    }
                    continue 'runs;
                }
            }
            self.cap.set_voltage(v);
        }
    }

    fn retire_instruction(&mut self) {
        self.instructions += 1;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.compute_pj_per_cycle);
        if self.instr_hook {
            let n = self.instructions;
            let done = self.with_ctx(|design, ctx| design.on_instructions(ctx, n));
            self.now = self.now.max(done);
        }
    }
}

impl Bus for Machine {
    fn load(&mut self, addr: u32, size: AccessSize) -> u64 {
        self.check_error();
        self.boot_if_needed();
        let start = self.now;
        let (done, value) = self.with_ctx(|design, ctx| design.load(ctx, addr, size));
        // In-order core: an instruction takes at least one cycle.
        self.now = done.max(start + self.cpu.ps_per_cycle);
        self.retire_instruction();
        self.settle();
        value
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u64) {
        self.check_error();
        self.boot_if_needed();
        let start = self.now;
        let done = self.with_ctx(|design, ctx| design.store(ctx, addr, size, value));
        self.now = done.max(start + self.cpu.ps_per_cycle);
        if let Some(oracle) = &mut self.verify_oracle {
            oracle.write(addr, size, value);
        }
        self.retire_instruction();
        self.settle();
    }

    fn compute(&mut self, cycles: u64) {
        self.check_error();
        self.boot_if_needed();
        if self.batch && !self.instr_hook && !self.obs.enabled() {
            // A pure compute stretch runs no design code (no bus ops,
            // no instruction hook), so it is a fusable run: see
            // `Machine::compute_batched` and DESIGN.md §2.10.
            self.compute_batched(cycles);
            return;
        }
        let mut remaining = cycles;
        while remaining > 0 {
            let chunk = remaining.min(COMPUTE_CHUNK_CYCLES);
            remaining -= chunk;
            self.now += chunk * self.cpu.ps_per_cycle;
            self.meter.add(
                EnergyCategory::Compute,
                chunk as f64 * self.cpu.compute_pj_per_cycle,
            );
            self.instructions += chunk;
            if self.instr_hook {
                let n = self.instructions;
                let done = self.with_ctx(|design, ctx| design.on_instructions(ctx, n));
                self.now = self.now.max(done);
            }
            self.settle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use ehsim_energy::TraceKind;

    fn machine(cfg: SimConfig) -> Machine {
        Machine::new(&cfg, 4096)
    }

    #[test]
    fn no_failure_mode_never_fails() {
        let mut m = machine(SimConfig::wl_cache());
        for i in 0..10_000u32 {
            m.store_u32((i % 512) * 4, i);
        }
        m.compute(100_000);
        assert_eq!(m.outages(), 0);
        assert!(m.now() > 0);
    }

    #[test]
    fn instructions_count_all_ops() {
        let mut m = machine(SimConfig::wl_cache());
        m.store_u32(0, 1);
        let _ = m.load_u32(0);
        m.compute(10);
        assert_eq!(m.instructions(), 12);
    }

    #[test]
    fn read_your_writes_through_the_hierarchy() {
        for cfg in SimConfig::all_designs() {
            let mut m = machine(cfg);
            for i in 0..1024u32 {
                m.store_u32(i * 4, i ^ 0xabcd);
            }
            for i in 0..1024u32 {
                assert_eq!(m.load_u32(i * 4), i ^ 0xabcd, "{}", m.design().name());
            }
        }
    }

    #[test]
    fn rf_trace_causes_outages_and_recovery() {
        for cfg in SimConfig::all_designs() {
            let design = cfg.design.label();
            let mut m = machine(cfg.with_trace(TraceKind::Rf1).with_verify());
            for round in 0..200u32 {
                for i in 0..512u32 {
                    m.store_u32(i * 8 % 4096, i.wrapping_mul(round + 1));
                }
                m.compute(100_000);
            }
            assert!(m.outages() > 0, "{design}: expected at least one outage");
            assert!(m.off_time_ps() > 0);
            // Data survived every outage (verified against the oracle at
            // each checkpoint; spot-check final contents here).
            for i in 0..512u32 {
                assert_eq!(m.load_u32(i * 8 % 4096), i.wrapping_mul(200), "{design}");
            }
        }
    }

    #[test]
    fn consistency_violation_detected_incrementally_with_seed_semantics() {
        // Corrupt NVM behind the oracle's back through the tracked write
        // path: the incremental checker must catch it at the next outage
        // and report the same addr/expected/actual the full scan would
        // (the debug-build cross-check inside verify_consistency
        // additionally asserts agreement with the full clone-and-scan).
        let cfg = SimConfig::wl_cache()
            .with_trace(TraceKind::Rf1)
            .with_verify();
        let mut m = machine(cfg);
        m.store_u32(0, 1);
        // Line 3968..4032 is never touched by the workload below.
        m.nvm.write(4000, AccessSize::B1, 0xee);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for round in 0..2_000u32 {
                for i in 0..512u32 {
                    m.store_u32(i * 8 % 2048, i ^ round);
                }
                m.compute(100_000);
            }
        }));
        assert!(run.is_err(), "corruption must abort at an outage");
        match m.take_error() {
            Some(SimError::ConsistencyViolation {
                addr,
                expected,
                actual,
                ..
            }) => {
                assert_eq!(addr, 4000);
                assert_eq!(expected, 0, "oracle still holds the boot value");
                assert_eq!(actual, 0xee);
            }
            e => panic!("expected ConsistencyViolation, got {e:?}"),
        }
    }

    #[test]
    fn on_plus_off_equals_total() {
        let mut m = machine(SimConfig::wl_cache().with_trace(TraceKind::Rf2));
        for i in 0..20_000u32 {
            m.store_u32((i % 1024) * 4, i);
            m.compute(500);
        }
        assert!(m.off_time_ps() < m.now());
        assert!(m.outages() > 0);
    }

    #[test]
    fn checkpoint_time_is_tracked() {
        let mut m = machine(SimConfig::wl_cache().with_trace(TraceKind::Rf1));
        for i in 0..50_000u32 {
            m.store_u32((i % 1024) * 4, i);
            m.compute(200);
        }
        assert!(m.outages() > 0);
        assert!(m.checkpoint_time_ps() > 0);
        assert!(m.restore_time_ps() > 0);
    }

    #[test]
    fn energy_meter_accumulates_all_categories() {
        let mut m = machine(SimConfig::wl_cache());
        for i in 0..2_000u32 {
            m.store_u32(i * 4 % 4096, i);
        }
        m.compute(1_000);
        let meter = m.meter();
        assert!(meter.compute > 0.0);
        assert!(meter.cache_write > 0.0);
        assert!(meter.mem_read > 0.0, "miss fills read NVM");
        assert!(meter.mem_write > 0.0, "cleanings write NVM");
    }
}
