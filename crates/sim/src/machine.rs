//! The simulated energy-harvesting machine.
//!
//! # Energy-budgeted settlement (the hot-loop fast path)
//!
//! The seed implementation re-settled the capacitor after **every**
//! retired operation: advance the harvesting cursor, apply the
//! charging efficiency, drain the metered consumption, and compare the
//! voltage against `Vbackup`. That walk dominated simulation time.
//!
//! This version makes the capacitor energy a *pure function* of
//! simulation time between re-anchor points ("marks"). At a mark the
//! machine freezes the charging efficiency `η` at the mark voltage and
//! records `(e_mark, t_mark, spent_mark)`; from then on
//!
//! ```text
//! X(t) = e_mark + η_mark · harvest(t_mark → t) − (spent(t) − spent_mark)
//! ```
//!
//! where `harvest` is an O(1) prefix-sum lookup on the power trace and
//! `spent` is the energy meter total. Because `X` is pure, the machine
//! does not need to evaluate it every retire. Instead it computes, at
//! each (re)schedule point, a *drain pool* — how much metered energy
//! may be consumed before `X` could possibly fall below both the
//! η-refreeze band and the **highest `Vbackup` the design can ever
//! adapt to** — and an *up deadline* — the earliest time `X` could
//! possibly climb above the band, bounding the growth rate by the
//! trace's maximum power. Until the pool is exhausted and the deadline
//! is not reached, a retire costs one meter subtraction and two
//! compares; the full check (outage detection, saturation clamp, band
//! re-freeze) runs only when it could matter.
//!
//! Both bounds are conservative (harvest is non-negative; drain is
//! metered exactly, not estimated), so a skipped full check is always
//! a check that would have been a no-op. Consequently the fast path is
//! *bit-exact*: running with [`SimConfig::fast_settle`] off performs
//! the full check at every retire and produces the identical
//! [`Report`](crate::Report) — a property pinned by a regression test.
//!
//! The one subtlety is WL-Cache's dynamic adaptation: `maxline` (and
//! with it `Vbackup`) can be raised in the middle of a store. The
//! drain pool is therefore computed against the ceiling
//! `Vbackup(maxline = dq_capacity)`, while the outage comparison in the
//! full check always reads the design's *fresh* thresholds.

use crate::config::{DesignKind, SimConfig};
use crate::design_box::DesignBox;
use crate::error::SimError;
use crate::params::{COMPUTE_CHUNK_CYCLES, MAX_RECHARGE_PS};
use ehsim_cache::{CacheDesign, CacheStats, MemCtx};
use ehsim_energy::{
    Capacitor, ChargingModel, EnergyCategory, EnergyMeter, TraceCursor, TraceKind,
    VoltageThresholds,
};
use ehsim_mem::{AccessSize, Bus, FunctionalMem, NvmPort, Pj, Ps};

/// Panic payload used to abort a run from inside the [`Bus`] methods
/// (which cannot return `Result`); `Simulator::run` catches it and
/// surfaces the recorded [`SimError`].
pub(crate) struct Abort;

/// Half-width of the η-refreeze band, in volts. While the capacitor
/// stays within ±`ETA_BAND_V` of the mark voltage, the frozen charging
/// efficiency is considered representative; leaving the band re-marks.
const ETA_BAND_V: f64 = 0.05;

/// The energy-harvesting machine: an in-order core, one cache design,
/// NVM main memory, and a capacitor fed by a harvesting trace.
///
/// `Machine` implements [`Bus`], so workloads execute directly against
/// it. After every operation the machine accounts harvested and
/// consumed energy (see the module docs for the budgeted fast path)
/// and — when the stored energy sags below the design's `Vbackup` —
/// runs the full power-failure protocol: JIT checkpoint (design state
/// and registers), power-off, recharge to `Von`, reboot/restore, and
/// adaptive threshold reconfiguration.
#[derive(Debug)]
pub struct Machine {
    design: DesignBox,
    port: NvmPort,
    timing: ehsim_mem::NvmTiming,
    energy: ehsim_mem::NvmEnergy,
    nvm: FunctionalMem,
    meter: EnergyMeter,
    stats: CacheStats,
    cap: Capacitor,
    cursor: TraceCursor,
    charging: ChargingModel,
    cpu: crate::CpuParams,
    failures_enabled: bool,
    fast_settle: bool,
    verify_oracle: Option<FunctionalMem>,
    max_outages: u64,

    booted: bool,
    now: Ps,
    boot_time: Ps,
    instructions: u64,
    outages: u64,
    off_time_ps: Ps,
    checkpoint_time_ps: Ps,
    restore_time_ps: Ps,
    error: Option<SimError>,

    // --- lazy energy model (semantic state; see module docs) ---
    /// Capacitor energy at the mark.
    e_mark: Pj,
    /// Mark time; invariant: `cursor` is positioned exactly here.
    t_mark: Ps,
    /// Charging efficiency frozen at the mark voltage.
    eta_mark: f64,
    /// `meter.total()` at the mark.
    spent_mark: Pj,
    /// Lower edge of the η-refreeze band (energy at `v_mark − 0.05`).
    band_lo_pj: Pj,
    /// Upper edge of the η-refreeze band (energy at `v_mark + 0.05`).
    band_hi_pj: Pj,
    /// Static leakage has been folded into the meter up to this time.
    static_anchor_ps: Ps,

    // --- cached constants ---
    /// Energy at `Vmax` (saturation clamp).
    e_max_pj: Pj,
    /// Energy at the *highest* `Vbackup` this design can adapt to —
    /// the drain-pool floor (WL-Cache can raise `Vbackup` mid-store).
    e_floor_pool_pj: Pj,
    /// Energy at `Vmin` (baseline for `MemCtx::cap_energy_pj`).
    e_vmin_pj: Pj,
    /// Static leakage in pJ/ps.
    static_rate: f64,
    /// Trace maximum power (µW), bounding the energy growth rate.
    max_power_uw: f64,

    // --- fast-path scheduler (non-semantic bookkeeping) ---
    /// `meter.total()` at the last (re)schedule.
    check_meter_base: Pj,
    /// Metered drain allowed before a forced full check.
    check_drain_limit: Pj,
    /// Earliest time the energy could exit the band upward.
    check_deadline_ps: Ps,
}

impl Machine {
    /// Builds a machine for `cfg` with an NVM of at least `mem_bytes`
    /// bytes (rounded up to a whole number of cache lines).
    pub fn new(cfg: &SimConfig, mem_bytes: u32) -> Self {
        let design = DesignBox::from_config(cfg);
        let line = cfg.geometry.line_bytes();
        let size = mem_bytes.max(line).div_ceil(line) * line;
        let failures = cfg.custom_trace.is_some() || cfg.trace != TraceKind::None;
        let mut cap = Capacitor::with_uf(cfg.capacitor_uf, 2.8, 3.5);
        // With failures enabled, the node starts unpowered and must
        // first harvest its way up to `Von` — the initial charge is what
        // makes oversized capacitors slow (Fig 10(b)). Without a trace,
        // the buffer is simply full.
        if failures {
            cap.set_voltage(0.0);
        } else {
            cap.set_voltage(design.thresholds().v_on.min(cap.v_max()));
        }
        let trace = cfg
            .custom_trace
            .clone()
            .unwrap_or_else(|| cfg.trace.build());
        // WL-Cache(dyn) may raise `maxline` — and with it `Vbackup` —
        // in the middle of a store, so the drain pool must be floored
        // at the thresholds of a completely full DirtyQueue. All other
        // designs have static thresholds.
        let v_backup_ceiling = match &cfg.design {
            DesignKind::Wl { thresholds, .. } => {
                let lines = thresholds.dq_capacity();
                VoltageThresholds::wl(lines, lines).v_backup
            }
            _ => design.thresholds().v_backup,
        };
        let cursor = trace.cursor();
        let fast_settle =
            cfg.fast_settle && std::env::var_os("EHSIM_NO_FAST_PATH").is_none_or(|v| v == "0");
        let mut m = Self {
            e_max_pj: cap.energy_at_pj(cap.v_max()),
            e_floor_pool_pj: cap.energy_at_pj(v_backup_ceiling),
            e_vmin_pj: cap.energy_at_pj(cap.v_min()),
            static_rate: cfg.cpu.static_power_uw * 1e-6,
            max_power_uw: cursor.max_power_uw(),
            design,
            port: NvmPort::new(),
            timing: cfg.nvm_timing.clone(),
            energy: cfg.nvm_energy.clone(),
            nvm: FunctionalMem::new(size),
            meter: EnergyMeter::new(),
            stats: CacheStats::new(),
            e_mark: cap.energy_pj(),
            cap,
            cursor,
            charging: cfg.charging.clone(),
            cpu: cfg.cpu.clone(),
            failures_enabled: failures,
            fast_settle,
            verify_oracle: cfg.verify.then(|| FunctionalMem::new(size)),
            max_outages: cfg.max_outages,
            booted: false,
            now: 0,
            boot_time: 0,
            instructions: 0,
            outages: 0,
            off_time_ps: 0,
            checkpoint_time_ps: 0,
            restore_time_ps: 0,
            error: None,
            t_mark: 0,
            eta_mark: 1.0,
            spent_mark: 0.0,
            band_lo_pj: 0.0,
            band_hi_pj: 0.0,
            static_anchor_ps: 0,
            check_meter_base: 0.0,
            check_drain_limit: 0.0,
            check_deadline_ps: 0,
        };
        m.refreeze_eta();
        m
    }

    /// Current simulation time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Power outages endured so far.
    pub fn outages(&self) -> u64 {
        self.outages
    }

    /// Accumulated off (recharge) time.
    pub fn off_time_ps(&self) -> Ps {
        self.off_time_ps
    }

    /// Accumulated JIT-checkpoint time (design flush + register save).
    pub fn checkpoint_time_ps(&self) -> Ps {
        self.checkpoint_time_ps
    }

    /// Accumulated restore time (design reboot + register restore).
    pub fn restore_time_ps(&self) -> Ps {
        self.restore_time_ps
    }

    /// Energy meter (consumption by category).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The cache design under simulation.
    pub fn design(&self) -> &DesignBox {
        &self.design
    }

    /// The error that aborted the run, if any.
    pub(crate) fn take_error(&mut self) -> Option<SimError> {
        self.error.take()
    }

    fn abort(&mut self, e: SimError) -> ! {
        self.error = Some(e);
        std::panic::panic_any(Abort)
    }

    fn check_error(&self) {
        if self.error.is_some() {
            std::panic::panic_any(Abort)
        }
    }

    /// Folds static leakage into the meter up to `now`. Static draw
    /// accrues with wall-clock on-time (stalls are not energy-free);
    /// off-time is excluded by re-anchoring after each recharge.
    fn fold_static(&mut self) {
        let dt = self.now - self.static_anchor_ps;
        if dt > 0 {
            self.meter
                .add(EnergyCategory::Compute, dt as f64 * self.static_rate);
            self.static_anchor_ps = self.now;
        }
    }

    /// Capacitor energy at `now`, unclamped. Requires static leakage
    /// folded up to `now` (see [`Machine::fold_static`]).
    fn x_now(&self) -> Pj {
        let harvested = self.cursor.peek(self.now - self.t_mark);
        self.e_mark + self.eta_mark * harvested - (self.meter.total() - self.spent_mark)
    }

    /// Capacitor energy at `now` for [`MemCtx`] consumers, including
    /// static leakage not yet folded, clamped to the physical range.
    fn energy_now(&self) -> Pj {
        let pending = (self.now - self.static_anchor_ps) as f64 * self.static_rate;
        let harvested = self.cursor.peek(self.now - self.t_mark);
        let x = self.e_mark + self.eta_mark * harvested
            - (self.meter.total() + pending - self.spent_mark);
        x.clamp(0.0, self.e_max_pj)
    }

    /// Refreezes the charging efficiency and the ±[`ETA_BAND_V`] band
    /// at the capacitor's current voltage.
    fn refreeze_eta(&mut self) {
        let v = self.cap.voltage();
        self.eta_mark = self.charging.efficiency(v);
        self.band_lo_pj = self.cap.energy_at_pj((v - ETA_BAND_V).max(0.0));
        self.band_hi_pj = self.cap.energy_at_pj(v + ETA_BAND_V).min(self.e_max_pj);
    }

    /// Re-anchors the lazy model at `now` with energy `e`: advances the
    /// harvesting cursor to `now`, snapshots the meter, and refreezes
    /// η. Callers must have folded static leakage and computed `e` at
    /// `now` (the internal fold is then a no-op, kept for safety).
    fn remark(&mut self, e: Pj) {
        self.fold_static();
        let dt = self.now - self.t_mark;
        if dt > 0 {
            self.cursor.advance(dt);
        }
        self.t_mark = self.now;
        self.e_mark = e.clamp(0.0, self.e_max_pj);
        self.spent_mark = self.meter.total();
        self.cap
            .set_voltage(self.cap.voltage_for_energy(self.e_mark));
        self.refreeze_eta();
    }

    /// Recomputes the fast-path budget: the drain pool (energy above
    /// both the band floor and the ceiling `Vbackup`) and the earliest
    /// time the energy could exit the band upward at the trace's
    /// maximum power. Non-semantic: only schedules the next forced
    /// full check.
    fn reschedule(&mut self) {
        let x = self.x_now();
        self.check_meter_base = self.meter.total();
        self.check_drain_limit = (x - self.e_floor_pool_pj.max(self.band_lo_pj)).max(0.0);
        let head_up = (self.band_hi_pj - x).max(0.0);
        let up_rate = self.eta_mark * self.max_power_uw * 1e-6; // pJ/ps
        self.check_deadline_ps = if up_rate > 0.0 {
            self.now
                .saturating_add((head_up / up_rate).min(9.0e18) as Ps)
        } else {
            Ps::MAX
        };
    }

    /// The full settlement check: saturation clamp, outage detection
    /// against the design's *fresh* thresholds, and η-band refreeze.
    /// When none of those fire, this is a pure no-op (plus a
    /// reschedule) — the property the fast path relies on.
    fn full_check(&mut self) {
        loop {
            let x = self.x_now();
            if x >= self.e_max_pj {
                // Saturated: the front end discards further harvest.
                self.remark(self.e_max_pj);
                break;
            }
            let v_backup = self.design.thresholds().v_backup;
            if x < self.cap.energy_at_pj(v_backup) {
                self.power_failure();
                continue;
            }
            if x > self.band_hi_pj || x < self.band_lo_pj {
                self.remark(x);
            }
            break;
        }
        self.reschedule();
    }

    /// Per-retire settlement: folds static leakage, then either skips
    /// (budget not exhausted, deadline not reached) or runs the full
    /// check.
    fn post_op(&mut self) {
        self.fold_static();
        if !self.failures_enabled {
            return;
        }
        if self.fast_settle
            && self.meter.total() - self.check_meter_base < self.check_drain_limit
            && self.now < self.check_deadline_ps
        {
            return;
        }
        self.full_check();
    }

    /// First power-up: harvest from an empty capacitor to `Von` before
    /// any work happens. This initial charge is part of execution time
    /// (the paper's Fig 10(b) sweeps hinge on it) but is not an outage.
    fn boot_if_needed(&mut self) {
        if self.booted || !self.failures_enabled {
            self.booted = true;
            return;
        }
        self.booted = true;
        self.recharge_to_von();
        self.boot_time = self.now;
        self.reschedule();
    }

    /// The full outage protocol (§3.2): checkpoint, verify, power off,
    /// recharge to `Von`, reboot, adapt. Accounts eagerly — the lazy
    /// model is materialized at entry and re-anchored after every
    /// protocol phase.
    fn power_failure(&mut self) {
        if self.outages >= self.max_outages {
            self.abort(SimError::TooManyOutages {
                limit: self.max_outages,
            });
        }
        let fail_at = self.now;
        let on_time = self.now - self.boot_time;
        self.fold_static();
        let x = self.x_now();
        self.remark(x);

        // JIT checkpoint: dirty lines (design-specific) + registers.
        let done = self.with_ctx(|design, ctx| design.checkpoint(ctx));
        self.now = done + self.cpu.reg_checkpoint_ps;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.reg_checkpoint_pj);
        self.fold_static();
        let x = self.x_now();
        self.remark(x);
        self.checkpoint_time_ps += self.now - fail_at;

        // The reserve below Vbackup must have covered the checkpoint.
        let v_min = self.design.thresholds().v_min;
        if self.cap.voltage() < v_min - 1e-9 {
            let voltage = self.cap.voltage();
            self.abort(SimError::ReserveViolated { voltage, v_min });
        }

        // Crash-consistency verification: persistent state must
        // reconstruct the oracle.
        if let Some(oracle) = &self.verify_oracle {
            let view = self.design.persistent_overlay(&self.nvm);
            if let Some(addr) = view
                .as_bytes()
                .iter()
                .zip(oracle.as_bytes())
                .position(|(a, b)| a != b)
            {
                let e = SimError::ConsistencyViolation {
                    addr: addr as u32,
                    expected: oracle.as_bytes()[addr],
                    actual: view.as_bytes()[addr],
                    outage: self.outages,
                };
                self.abort(e);
            }
        }

        // Power off: volatile state is lost.
        self.design.power_off();
        self.port.reset();

        // Recharge to the design's Von.
        self.recharge_to_von();

        // Reboot: restore registers, warm/cold cache, adapt thresholds.
        let boot_start = self.now;
        let done = self.with_ctx(|design, ctx| design.reboot(ctx, on_time));
        self.now = done + self.cpu.reg_restore_ps;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.reg_restore_pj);
        self.fold_static();
        let x = self.x_now();
        self.remark(x);
        self.restore_time_ps += self.now - boot_start;

        self.outages += 1;
        self.boot_time = self.now;
    }

    /// Charges the (powered-off) capacitor up to the design's `Von`,
    /// stepping the voltage so the front end's falling efficiency near
    /// `Vmax` is honoured; the elapsed time is counted as off-time.
    /// Static leakage does not accrue while off. On return the lazy
    /// model is re-anchored at `Von`.
    fn recharge_to_von(&mut self) {
        let v_on = self.design.thresholds().v_on.min(self.cap.v_max());
        let mut budget = MAX_RECHARGE_PS;
        // Callers re-marked before powering off, so the cursor sits at
        // `now` and `cap` holds the pre-recharge voltage.
        while self.cap.voltage() < v_on - 1e-12 {
            let v = self.cap.voltage();
            let v_next = (v + 0.05).min(v_on);
            let need = self.cap.energy_between_pj(v_next, v);
            let eta = self.charging.efficiency((v + v_next) / 2.0);
            let dead = eta <= 1e-6;
            let dt = (!dead)
                .then(|| self.cursor.time_to_harvest(need / eta, budget))
                .flatten();
            match dt {
                Some(dt) => {
                    self.now += dt;
                    self.off_time_ps += dt;
                    budget = budget.saturating_sub(dt);
                    self.cap.set_voltage(v_next);
                }
                None => {
                    let at_ps = self.now;
                    self.abort(SimError::SourceDead { at_ps });
                }
            }
        }
        // Re-anchor at Von. `time_to_harvest` advanced the cursor in
        // lock-step with `now`, and no static leakage accrued off-line.
        self.t_mark = self.now;
        self.e_mark = self.cap.energy_pj();
        self.spent_mark = self.meter.total();
        self.static_anchor_ps = self.now;
        self.refreeze_eta();
    }

    /// Runs `f` with a fresh [`MemCtx`] at the current time; returns
    /// `f`'s result (usually a completion time). The capacitor view is
    /// evaluated from the lazy model at `now`, so designs always see
    /// the up-to-date voltage regardless of when the last full
    /// settlement ran.
    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut DesignBox, &mut MemCtx<'_>) -> R) -> R {
        let (cap_voltage, cap_energy_pj) = if self.failures_enabled {
            let x = self.energy_now();
            (
                self.cap.voltage_for_energy(x),
                (x - self.e_vmin_pj).max(0.0),
            )
        } else {
            (
                self.cap.voltage(),
                self.cap.energy_above_pj(self.cap.v_min()),
            )
        };
        let mut ctx = MemCtx {
            now: self.now,
            port: &mut self.port,
            timing: &self.timing,
            energy: &self.energy,
            nvm: &mut self.nvm,
            meter: &mut self.meter,
            stats: &mut self.stats,
            cap_voltage,
            cap_energy_pj,
        };
        f(&mut self.design, &mut ctx)
    }

    fn retire_instruction(&mut self) {
        self.instructions += 1;
        self.meter
            .add(EnergyCategory::Compute, self.cpu.compute_pj_per_cycle);
        let n = self.instructions;
        let done = self.with_ctx(|design, ctx| design.on_instructions(ctx, n));
        self.now = self.now.max(done);
    }
}

impl Bus for Machine {
    fn load(&mut self, addr: u32, size: AccessSize) -> u64 {
        self.check_error();
        self.boot_if_needed();
        let start = self.now;
        let (done, value) = self.with_ctx(|design, ctx| design.load(ctx, addr, size));
        // In-order core: an instruction takes at least one cycle.
        self.now = done.max(start + self.cpu.ps_per_cycle);
        self.retire_instruction();
        self.post_op();
        value
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u64) {
        self.check_error();
        self.boot_if_needed();
        let start = self.now;
        let done = self.with_ctx(|design, ctx| design.store(ctx, addr, size, value));
        self.now = done.max(start + self.cpu.ps_per_cycle);
        if let Some(oracle) = &mut self.verify_oracle {
            oracle.write(addr, size, value);
        }
        self.retire_instruction();
        self.post_op();
    }

    fn compute(&mut self, cycles: u64) {
        self.check_error();
        self.boot_if_needed();
        let mut remaining = cycles;
        while remaining > 0 {
            let chunk = remaining.min(COMPUTE_CHUNK_CYCLES);
            remaining -= chunk;
            self.now += chunk * self.cpu.ps_per_cycle;
            self.meter.add(
                EnergyCategory::Compute,
                chunk as f64 * self.cpu.compute_pj_per_cycle,
            );
            self.instructions += chunk;
            let n = self.instructions;
            let done = self.with_ctx(|design, ctx| design.on_instructions(ctx, n));
            self.now = self.now.max(done);
            self.post_op();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use ehsim_energy::TraceKind;

    fn machine(cfg: SimConfig) -> Machine {
        Machine::new(&cfg, 4096)
    }

    #[test]
    fn no_failure_mode_never_fails() {
        let mut m = machine(SimConfig::wl_cache());
        for i in 0..10_000u32 {
            m.store_u32((i % 512) * 4, i);
        }
        m.compute(100_000);
        assert_eq!(m.outages(), 0);
        assert!(m.now() > 0);
    }

    #[test]
    fn instructions_count_all_ops() {
        let mut m = machine(SimConfig::wl_cache());
        m.store_u32(0, 1);
        let _ = m.load_u32(0);
        m.compute(10);
        assert_eq!(m.instructions(), 12);
    }

    #[test]
    fn read_your_writes_through_the_hierarchy() {
        for cfg in SimConfig::all_designs() {
            let mut m = machine(cfg);
            for i in 0..1024u32 {
                m.store_u32(i * 4, i ^ 0xabcd);
            }
            for i in 0..1024u32 {
                assert_eq!(m.load_u32(i * 4), i ^ 0xabcd, "{}", m.design().name());
            }
        }
    }

    #[test]
    fn rf_trace_causes_outages_and_recovery() {
        for cfg in SimConfig::all_designs() {
            let design = cfg.design.label();
            let mut m = machine(cfg.with_trace(TraceKind::Rf1).with_verify());
            for round in 0..200u32 {
                for i in 0..512u32 {
                    m.store_u32(i * 8 % 4096, i.wrapping_mul(round + 1));
                }
                m.compute(100_000);
            }
            assert!(m.outages() > 0, "{design}: expected at least one outage");
            assert!(m.off_time_ps() > 0);
            // Data survived every outage (verified against the oracle at
            // each checkpoint; spot-check final contents here).
            for i in 0..512u32 {
                assert_eq!(m.load_u32(i * 8 % 4096), i.wrapping_mul(200), "{design}");
            }
        }
    }

    #[test]
    fn on_plus_off_equals_total() {
        let mut m = machine(SimConfig::wl_cache().with_trace(TraceKind::Rf2));
        for i in 0..20_000u32 {
            m.store_u32((i % 1024) * 4, i);
            m.compute(500);
        }
        assert!(m.off_time_ps() < m.now());
        assert!(m.outages() > 0);
    }

    #[test]
    fn checkpoint_time_is_tracked() {
        let mut m = machine(SimConfig::wl_cache().with_trace(TraceKind::Rf1));
        for i in 0..50_000u32 {
            m.store_u32((i % 1024) * 4, i);
            m.compute(200);
        }
        assert!(m.outages() > 0);
        assert!(m.checkpoint_time_ps() > 0);
        assert!(m.restore_time_ps() > 0);
    }

    #[test]
    fn energy_meter_accumulates_all_categories() {
        let mut m = machine(SimConfig::wl_cache());
        for i in 0..2_000u32 {
            m.store_u32(i * 4 % 4096, i);
        }
        m.compute(1_000);
        let meter = m.meter();
        assert!(meter.compute > 0.0);
        assert!(meter.cache_write > 0.0);
        assert!(meter.mem_read > 0.0, "miss fills read NVM");
        assert!(meter.mem_write > 0.0, "cleanings write NVM");
    }

    /// The fast path must be bit-exact: with the budgeted scheduler
    /// disabled, the full check runs at every retire and must leave
    /// identical machine state.
    #[test]
    fn fast_path_matches_exhaustive_settlement() {
        for trace in [TraceKind::Rf1, TraceKind::Solar] {
            for base in SimConfig::all_designs() {
                let design = base.design.label();
                let run = |fast: bool| {
                    let mut m = machine(base.clone().with_trace(trace).with_fast_settle(fast));
                    for round in 0..60u32 {
                        for i in 0..256u32 {
                            m.store_u32(i * 8 % 4096, i.wrapping_mul(round + 1));
                        }
                        m.compute(50_000);
                        let _ = m.load_u32(round * 64 % 4096);
                    }
                    (
                        m.now(),
                        m.instructions(),
                        m.outages(),
                        m.off_time_ps(),
                        m.checkpoint_time_ps(),
                        m.restore_time_ps(),
                        m.meter().total(),
                    )
                };
                assert_eq!(run(true), run(false), "{design} on {trace:?}");
            }
        }
    }
}
