//! The top-level simulation driver.

use crate::machine::{Abort, Machine};
use crate::report::Report;
use crate::{SimConfig, SimError};
use ehsim_mem::{Bus, BusOp, BusTrace, Workload};
use ehsim_obs::{ObserverBox, RunTrace};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs workloads on a configured energy-harvesting machine.
///
/// See the crate-level example. `Simulator` is cheap to construct; each
/// [`Simulator::run`] builds a fresh machine, so runs are independent
/// and deterministic.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator for `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `workload` to completion on a fresh machine.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the energy source cannot sustain the
    /// workload ([`SimError::SourceDead`], [`SimError::TooManyOutages`]),
    /// if an invariant is violated ([`SimError::ReserveViolated`],
    /// [`SimError::ConsistencyViolation`] under
    /// [`SimConfig::verify`]), or if the workload itself panics.
    pub fn run(&self, workload: &dyn Workload) -> Result<Report, SimError> {
        self.run_with(workload, ObserverBox::Noop)
            .map(|(report, _)| report)
    }

    /// Runs `workload` with the recording observer attached and returns
    /// the [`Report`] together with the full event [`RunTrace`].
    ///
    /// The trace records lifecycle events (outages, JIT checkpoints,
    /// restores), DirtyQueue traffic, threshold reconfigurations and
    /// capacitor rail crossings; export it with
    /// [`RunTrace::chrome_trace`] or [`RunTrace::interval_metrics_tsv`].
    /// Observation never perturbs the simulation: the `Report` is
    /// identical to what [`Simulator::run`] returns.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run`]; the partial trace is
    /// discarded on error.
    pub fn run_traced(&self, workload: &dyn Workload) -> Result<(Report, RunTrace), SimError> {
        self.run_with(workload, ObserverBox::recording())
            .map(|(report, mut machine)| {
                let end = machine.now();
                (report, machine.take_observer().into_trace(end))
            })
    }

    /// Runs `workload` with a caller-supplied observer (e.g.
    /// [`ObserverBox::Custom`]); the machine is returned for
    /// observer retrieval via [`Machine::take_observer`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run`].
    pub fn run_with(
        &self,
        workload: &dyn Workload,
        obs: ObserverBox,
    ) -> Result<(Report, Machine), SimError> {
        let mut machine = Machine::with_observer(&self.cfg, workload.mem_bytes(), obs);
        let outcome = catch_unwind(AssertUnwindSafe(|| workload.run(&mut machine)));
        match outcome {
            Ok(checksum) => {
                let report = Report::from_machine(&machine, &self.cfg, workload.name(), checksum);
                machine.end_observation();
                Ok((report, machine))
            }
            Err(payload) => Err(abort_error(&mut machine, payload)),
        }
    }

    /// Replays a recorded [`BusTrace`] on a fresh machine.
    ///
    /// This is the trace-driven twin of [`Simulator::run`]: the machine
    /// is driven from the captured op stream instead of re-executing the
    /// kernel, issuing each load/store/compute in recorded program order
    /// so the capacitor settles after every operation exactly as it does
    /// under direct execution. The resulting [`Report`] is
    /// **bit-identical** to running the original workload (stores carry
    /// zero values, which timing/energy/stats never observe; the
    /// recorded kernel checksum is reported — see the
    /// `ehsim_mem::record` module docs for the full exactness argument,
    /// and the replay-equivalence suite for the pin).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run`].
    pub fn replay(&self, trace: &BusTrace) -> Result<Report, SimError> {
        self.replay_with(trace, ObserverBox::Noop)
            .map(|(report, _)| report)
    }

    /// Replays `trace` with a caller-supplied observer; the machine is
    /// returned for observer retrieval, as in [`Simulator::run_with`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::run`].
    pub fn replay_with(
        &self,
        trace: &BusTrace,
        obs: ObserverBox,
    ) -> Result<(Report, Machine), SimError> {
        let mut machine = Machine::with_observer(&self.cfg, trace.mem_bytes(), obs);
        // Statically dispatched drive loop: `Machine`'s own Bus methods,
        // no `dyn Bus` indirection on the hot path.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for op in trace.cursor() {
                match op {
                    BusOp::Load { addr, size } => {
                        machine.load(addr, size);
                    }
                    BusOp::Store { addr, size } => machine.store(addr, size, 0),
                    BusOp::Compute { cycles } => machine.compute(cycles),
                }
            }
        }));
        match outcome {
            Ok(()) => {
                let report =
                    Report::from_machine(&machine, &self.cfg, trace.name(), trace.checksum());
                machine.end_observation();
                Ok((report, machine))
            }
            Err(payload) => Err(abort_error(&mut machine, payload)),
        }
    }
}

/// Converts a caught panic into the [`SimError`] the machine recorded
/// before aborting, or a [`SimError::WorkloadPanic`] for genuine panics.
fn abort_error(machine: &mut Machine, payload: Box<dyn std::any::Any + Send>) -> SimError {
    if let Some(err) = machine.take_error() {
        return err;
    }
    let msg = if payload.is::<Abort>() {
        "machine aborted without a recorded error".to_string()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    SimError::WorkloadPanic(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_energy::TraceKind;
    use ehsim_mem::Bus;

    struct Stream {
        words: u32,
    }
    impl Workload for Stream {
        fn name(&self) -> &str {
            "stream"
        }
        fn mem_bytes(&self) -> u32 {
            self.words * 4
        }
        fn run(&self, bus: &mut dyn Bus) -> u64 {
            let mut acc = 0u64;
            for i in 0..self.words {
                bus.store_u32(i * 4, i.wrapping_mul(2654435761));
            }
            for i in 0..self.words {
                acc = acc.wrapping_add(u64::from(bus.load_u32(i * 4)));
                bus.compute(3);
            }
            acc
        }
    }

    #[test]
    fn checksums_match_across_all_designs_and_traces() {
        let w = Stream { words: 2048 };
        let mut functional = ehsim_mem::FunctionalMem::new(w.mem_bytes());
        let expected = w.run(&mut functional);
        for trace in [TraceKind::None, TraceKind::Rf1, TraceKind::Rf3] {
            for cfg in SimConfig::all_designs() {
                let label = cfg.design.label();
                let r = Simulator::new(cfg.with_trace(trace).with_verify())
                    .run(&w)
                    .unwrap_or_else(|e| panic!("{label} on {trace:?}: {e}"));
                assert_eq!(r.checksum, expected, "{label} on {trace:?}");
            }
        }
    }

    #[test]
    fn workload_panics_are_reported() {
        struct Boom;
        impl Workload for Boom {
            fn name(&self) -> &str {
                "boom"
            }
            fn mem_bytes(&self) -> u32 {
                64
            }
            fn run(&self, _bus: &mut dyn Bus) -> u64 {
                panic!("kaboom");
            }
        }
        let err = Simulator::new(SimConfig::wl_cache())
            .run(&Boom)
            .unwrap_err();
        assert!(matches!(err, SimError::WorkloadPanic(ref m) if m.contains("kaboom")));
    }

    #[test]
    fn traced_run_is_bit_identical_and_reconciles() {
        let w = Stream { words: 65536 };
        let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf1);
        let plain = Simulator::new(cfg.clone()).run(&w).unwrap();
        let (traced, trace) = Simulator::new(cfg).run_traced(&w).unwrap();
        // The recording observer must not perturb the simulation at all.
        assert_eq!(plain, traced);
        // Event counts reconcile with the report's own counters.
        assert!(traced.outages > 0, "rf1 must cause outages");
        assert_eq!(trace.counters.outages, traced.outages);
        assert_eq!(trace.counters.checkpoints, traced.outages);
        let wl = traced.wl.as_ref().unwrap();
        assert_eq!(
            trace.counters.reconfigurations + trace.counters.dyn_raises,
            wl.reconfigurations
        );
        assert_eq!(trace.counters.dyn_raises, wl.dyn_raises);
        // One PowerOn per power-on interval: boot + one per outage.
        assert_eq!(trace.counters.power_ons, traced.outages + 1);
        assert_eq!(trace.histograms.dirty_at_checkpoint.count(), traced.outages);
    }

    #[test]
    fn replay_is_bit_identical_to_direct_execution() {
        let w = Stream { words: 4096 };
        let trace = BusTrace::record(&w);
        for kind in [TraceKind::None, TraceKind::Rf1] {
            for cfg in SimConfig::all_designs() {
                let cfg = cfg.with_trace(kind).with_verify();
                let label = cfg.design.label();
                let sim = Simulator::new(cfg);
                let direct = sim
                    .run(&w)
                    .unwrap_or_else(|e| panic!("{label} direct on {kind:?}: {e}"));
                let replayed = sim
                    .replay(&trace)
                    .unwrap_or_else(|e| panic!("{label} replay on {kind:?}: {e}"));
                assert_eq!(direct, replayed, "{label} on {kind:?}");
                // The Workload impl on BusTrace goes through dyn
                // dispatch but must land in the same place.
                let via_workload = sim.run(&trace).unwrap();
                assert_eq!(direct, via_workload, "{label} on {kind:?} (dyn)");
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Stream { words: 1024 };
        let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf2);
        let a = Simulator::new(cfg.clone()).run(&w).unwrap();
        let b = Simulator::new(cfg).run(&w).unwrap();
        assert_eq!(a.total_time_ps, b.total_time_ps);
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.checksum, b.checksum);
    }
}
