//! Gates for the batched settlement engine.
//!
//! The batched engine (see `machine.rs` and DESIGN.md §2.10) is on by
//! default and bit-identical to the per-retire reference path. Two
//! switches exist for debugging and for the equivalence pins:
//!
//! * `EHSIM_NO_BATCH=1` — every machine in the process settles
//!   per-retire, exactly as the seed did (the reference path).
//! * [`with_settle_batching_disabled`] — the programmatic, per-thread
//!   form, used by `EHSIM_BATCH_CHECK=1` in the sweep engine (which
//!   runs every simulation through *both* paths and asserts the
//!   reports field-for-field equal) and by the equivalence tests.
//!
//! The decision is sampled once per [`crate::Machine`] at construction,
//! so a machine never switches engines mid-run.

use std::cell::Cell;
use std::sync::OnceLock;

fn env_no_batch() -> bool {
    static V: OnceLock<bool> = OnceLock::new();
    *V.get_or_init(|| std::env::var_os("EHSIM_NO_BATCH").is_some_and(|v| v != "0"))
}

thread_local! {
    static FORCE_OFF: Cell<bool> = const { Cell::new(false) };
}

/// Whether machines constructed right now (on this thread) use the
/// batched settlement engine.
pub(crate) fn batching_enabled() -> bool {
    !env_no_batch() && !FORCE_OFF.with(Cell::get)
}

/// Runs `f` with settlement batching disabled for every machine
/// constructed inside it on this thread — the programmatic form of
/// `EHSIM_NO_BATCH=1`. The flag is restored even if `f` panics (the
/// dual-path check asserts inside `f`).
pub fn with_settle_batching_disabled<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_OFF.with(|c| c.set(self.0));
        }
    }
    let prev = FORCE_OFF.with(|c| c.replace(true));
    let _reset = Reset(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_disable_restores_on_exit_and_panic() {
        assert!(batching_enabled());
        with_settle_batching_disabled(|| {
            assert!(!batching_enabled());
            with_settle_batching_disabled(|| assert!(!batching_enabled()));
            assert!(!batching_enabled());
        });
        assert!(batching_enabled());
        let r = std::panic::catch_unwind(|| {
            with_settle_batching_disabled(|| panic!("boom"));
        });
        assert!(r.is_err());
        assert!(batching_enabled(), "flag must be restored after a panic");
    }
}
