//! Core timing/energy parameters (Table 2 plus documented calibration).

use ehsim_mem::{Pj, Ps};

/// In-order core parameters.
///
/// The paper simulates a 1 GHz single-issue in-order ARM core on gem5.
/// Per-cycle compute energy is not published; 1 pJ/cycle (≈ 1 mW at
/// 1 GHz) is a plausible figure for a simple 90 nm in-order pipeline and
/// is part of the documented calibration (DESIGN.md §2.4) — together
/// with the cache/NVM energies it puts average draw in the few-mW range,
/// so the 1 µF capacitor yields power-on intervals of tens to hundreds
/// of microseconds, matching the outage cadence the paper reports.
///
/// Register checkpoint/restore model the NVFF path of an NVP \[69\]:
/// a fixed, port-independent cost per outage, identical for every cache
/// design.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuParams {
    /// Picoseconds per cycle (1000 = 1 GHz).
    pub ps_per_cycle: Ps,
    /// Core energy per executed cycle (pJ).
    pub compute_pj_per_cycle: Pj,
    /// Latency of JIT-checkpointing the register file into NVFFs.
    pub reg_checkpoint_ps: Ps,
    /// Energy of the register checkpoint (pJ).
    pub reg_checkpoint_pj: Pj,
    /// Latency of restoring registers from NVFFs at boot.
    pub reg_restore_ps: Ps,
    /// Energy of the register restore (pJ).
    pub reg_restore_pj: Pj,
    /// Static system power while powered on (µW): clock tree, leakage,
    /// regulator — drawn continuously, including during memory stalls.
    /// This is what makes a slow design (e.g. write-through waiting on
    /// NVM stores) consume *more* energy per unit of work, not less.
    pub static_power_uw: f64,
}

impl Default for CpuParams {
    fn default() -> Self {
        Self {
            ps_per_cycle: 1_000,
            compute_pj_per_cycle: 1.0,
            reg_checkpoint_ps: 200_000, // 200 ns
            reg_checkpoint_pj: 1_000.0, // 1 nJ
            reg_restore_ps: 500_000,    // 500 ns
            reg_restore_pj: 2_000.0,    // 2 nJ
            static_power_uw: 2_000.0,   // 2 mW
        }
    }
}

/// Cycles simulated per energy-settlement chunk inside
/// [`Bus::compute`](ehsim_mem::Bus::compute). Small enough that the
/// capacitor cannot sail far past `Vbackup` within one chunk (2 µs at
/// a few mW is ~10 nJ, well inside every design's reserve margin).
pub const COMPUTE_CHUNK_CYCLES: u64 = 2_000;

/// Upper bound on a single recharge wait before the machine declares the
/// energy source dead (10 simulated seconds).
pub const MAX_RECHARGE_PS: Ps = 10_000_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_1ghz() {
        let p = CpuParams::default();
        assert_eq!(p.ps_per_cycle, 1_000);
        assert!(p.compute_pj_per_cycle > 0.0);
    }

    #[test]
    fn restore_is_pricier_than_checkpoint() {
        // Waking the NVP costs more than the backup (ESSCIRC'12 [69]).
        let p = CpuParams::default();
        assert!(p.reg_restore_ps >= p.reg_checkpoint_ps);
        assert!(p.reg_restore_pj >= p.reg_checkpoint_pj);
    }
}
