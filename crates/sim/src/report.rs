//! Simulation results.

use crate::machine::Machine;
use crate::SimConfig;
use ehsim_cache::CacheStats;
use ehsim_energy::EnergyMeter;
use ehsim_mem::Ps;

/// WL-Cache-specific results: the §6.6 statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WlReport {
    /// Boot-time threshold reconfigurations (paper: ~11 on trace 1).
    pub reconfigurations: u64,
    /// Smallest maxline used (paper: 2).
    pub maxline_min: usize,
    /// Largest maxline used (paper: 6).
    pub maxline_max: usize,
    /// Energy-source direction-prediction accuracy (paper: > 98 %).
    pub prediction_accuracy: Option<f64>,
    /// Mean dirty lines JIT-checkpointed per power-on interval
    /// (paper: ~6).
    pub avg_dirty_at_checkpoint: f64,
    /// Mean asynchronous write-backs per power-on interval
    /// (paper: 2–3).
    pub avg_cleanings_per_interval: f64,
    /// Store stalls on a full DirtyQueue.
    pub stalls: u64,
    /// Total stall time.
    pub stall_ps: Ps,
    /// Stall time as a fraction of **total** execution time, including
    /// powered-off recharge time. This is the denominator behind the
    /// paper's §6.6 "less than 1 % of the total execution time" claim,
    /// so figures keep quoting it.
    pub stall_fraction: f64,
    /// Stall time as a fraction of **powered-on** time only (total −
    /// off). The stricter measure of how often stores actually stall
    /// while the core runs: off-time can dominate end-to-end time on
    /// weak traces, deflating [`WlReport::stall_fraction`]. Always ≥
    /// `stall_fraction`; equal when the run had no outages.
    pub stall_fraction_on: f64,
    /// Opportunistic dynamic maxline raises (WL-Cache (dyn) only).
    pub dyn_raises: u64,
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Workload name.
    pub workload: String,
    /// Design label (matches the paper's figure legends).
    pub design: String,
    /// Trace label.
    pub trace: &'static str,
    /// The workload's checksum (compare against a functional run to
    /// validate correctness).
    pub checksum: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// End-to-end execution time, including outages.
    pub total_time_ps: Ps,
    /// Time powered on (total − off).
    pub on_time_ps: Ps,
    /// Time powered off, waiting for recharge.
    pub off_time_ps: Ps,
    /// Time spent in JIT checkpoints (subset of on-time).
    pub checkpoint_time_ps: Ps,
    /// Time spent restoring at reboots (subset of on-time).
    pub restore_time_ps: Ps,
    /// Number of power outages.
    pub outages: u64,
    /// Energy consumption by category (Fig 13(b)).
    pub energy: EnergyMeter,
    /// Cache/NVM traffic statistics.
    pub cache: CacheStats,
    /// WL-Cache extras, when the design under test was WL-Cache.
    pub wl: Option<WlReport>,
}

impl Report {
    pub(crate) fn from_machine(
        machine: &Machine,
        cfg: &SimConfig,
        workload: &str,
        checksum: u64,
    ) -> Self {
        let total = machine.now();
        let on_time = total - machine.off_time_ps();
        let wl = machine.design().as_wl().map(|wl| {
            let s = wl.wl_stats();
            let ctl = wl.controller();
            let intervals = s.intervals.max(1) as f64;
            WlReport {
                reconfigurations: ctl.reconfigurations(),
                maxline_min: ctl.maxline_range().0,
                maxline_max: ctl.maxline_range().1,
                prediction_accuracy: ctl.prediction_accuracy(),
                avg_dirty_at_checkpoint: s.dirty_at_checkpoint_sum as f64 / intervals,
                avg_cleanings_per_interval: s.cleanings_per_interval_sum as f64 / intervals,
                stalls: s.stalls,
                stall_ps: s.stall_ps,
                stall_fraction: if total > 0 {
                    s.stall_ps as f64 / total as f64
                } else {
                    0.0
                },
                stall_fraction_on: if on_time > 0 {
                    s.stall_ps as f64 / on_time as f64
                } else {
                    0.0
                },
                dyn_raises: s.dyn_raises,
            }
        });
        Report {
            workload: workload.to_string(),
            design: cfg.design.label().to_string(),
            trace: cfg.trace_label(),
            checksum,
            instructions: machine.instructions(),
            total_time_ps: total,
            on_time_ps: on_time,
            off_time_ps: machine.off_time_ps(),
            checkpoint_time_ps: machine.checkpoint_time_ps(),
            restore_time_ps: machine.restore_time_ps(),
            outages: machine.outages(),
            energy: *machine.meter(),
            cache: *machine.stats(),
            wl,
        }
    }

    /// Speedup of `self` relative to `baseline` (> 1 means `self` is
    /// faster) — the metric of Figs 4–6, 8–13.
    pub fn speedup_vs(&self, baseline: &Report) -> f64 {
        baseline.total_time_ps as f64 / self.total_time_ps as f64
    }

    /// Execution time in seconds (Fig 10(b)'s y-axis).
    pub fn total_seconds(&self) -> f64 {
        self.total_time_ps as f64 / 1e12
    }

    /// NVM main-memory write traffic in bytes (Fig 7's metric).
    pub fn nvm_write_bytes(&self) -> u64 {
        self.cache.nvm_write_bytes
    }
}

/// Geometric mean of an iterator of positive values; `None` when empty.
///
/// The paper reports per-suite and total gmeans in every bar figure.
pub fn gmean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        debug_assert!(v > 0.0, "gmean needs positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / f64::from(n)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use ehsim_mem::{Bus, Workload};

    struct Mini;
    impl Workload for Mini {
        fn name(&self) -> &str {
            "mini"
        }
        fn mem_bytes(&self) -> u32 {
            256
        }
        fn run(&self, bus: &mut dyn Bus) -> u64 {
            bus.store_u32(0, 7);
            bus.compute(5);
            u64::from(bus.load_u32(0))
        }
    }

    #[test]
    fn report_captures_run() {
        let r = Simulator::new(SimConfig::wl_cache()).run(&Mini).unwrap();
        assert_eq!(r.checksum, 7);
        assert_eq!(r.instructions, 7);
        assert_eq!(r.design, "WL-Cache");
        assert_eq!(r.trace, "no-failure");
        assert!(r.wl.is_some());
        assert_eq!(r.outages, 0);
        assert_eq!(r.on_time_ps, r.total_time_ps);
    }

    #[test]
    fn non_wl_reports_have_no_wl_section() {
        let r = Simulator::new(SimConfig::nvsram()).run(&Mini).unwrap();
        assert!(r.wl.is_none());
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let a = Simulator::new(SimConfig::wl_cache()).run(&Mini).unwrap();
        let mut b = a.clone();
        b.total_time_ps = a.total_time_ps * 2;
        assert!((a.speedup_vs(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean([]), None);
        let g = gmean([2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    /// Stresses the DirtyQueue hard enough on a real trace that stalls
    /// and multiple outages both occur.
    struct Churn;
    impl Workload for Churn {
        fn name(&self) -> &str {
            "churn"
        }
        fn mem_bytes(&self) -> u32 {
            64 * 1024
        }
        fn run(&self, bus: &mut dyn Bus) -> u64 {
            // Cycle over 8 cache-resident lines: every store hits and
            // dirties a distinct line far faster than NVM ACKs retire
            // cleanings, so the DirtyQueue must fill and stall.
            for round in 0..200_000u32 {
                bus.store_u32((round % 8) * 64, round);
            }
            0
        }
    }

    #[test]
    fn stall_fraction_denominators() {
        let cfg = SimConfig::wl_cache().with_trace(ehsim_energy::TraceKind::Rf1);
        let r = Simulator::new(cfg).run(&Churn).unwrap();
        let wl = r.wl.as_ref().unwrap();
        assert!(r.outages > 0, "churn on rf1 must outage");
        assert!(wl.stall_ps > 0, "line-stride stores must stall");
        // Exact definitions of both denominators.
        let total = wl.stall_ps as f64 / r.total_time_ps as f64;
        let on = wl.stall_ps as f64 / r.on_time_ps as f64;
        assert!((wl.stall_fraction - total).abs() < 1e-15);
        assert!((wl.stall_fraction_on - on).abs() < 1e-15);
        // With off-time in the run, the on-time variant is strictly
        // larger — the total-based figure (the paper's §6.6 "< 1 % of
        // total execution time") understates stall intensity while on.
        assert!(r.off_time_ps > 0);
        assert!(wl.stall_fraction_on > wl.stall_fraction);
    }

    #[test]
    fn stall_fractions_equal_without_outages() {
        let r = Simulator::new(SimConfig::wl_cache()).run(&Mini).unwrap();
        let wl = r.wl.as_ref().unwrap();
        assert_eq!(r.off_time_ps, 0);
        assert_eq!(wl.stall_ps, 0);
        assert_eq!(wl.stall_fraction, 0.0);
        assert_eq!(wl.stall_fraction_on, 0.0);
    }

    #[test]
    fn wl_interval_averages_with_zero_intervals() {
        // A no-failure run never checkpoints: intervals == 0. The
        // max(1) guard must yield well-defined zeros, not NaN.
        let r = Simulator::new(SimConfig::wl_cache()).run(&Mini).unwrap();
        assert_eq!(r.outages, 0);
        let wl = r.wl.as_ref().unwrap();
        assert_eq!(wl.avg_dirty_at_checkpoint, 0.0);
        assert_eq!(wl.avg_cleanings_per_interval, 0.0);
        assert!(wl.avg_dirty_at_checkpoint.is_finite());
    }

    #[test]
    fn wl_interval_averages_with_multiple_intervals() {
        let cfg = SimConfig::wl_cache().with_trace(ehsim_energy::TraceKind::Rf1);
        let r = Simulator::new(cfg.clone()).run(&Churn).unwrap();
        let wl = r.wl.as_ref().unwrap();
        assert!(r.outages >= 2, "need several intervals, got {}", r.outages);
        // Each completed interval ends in a JIT checkpoint, so the
        // average is sum/intervals with intervals == outages; both
        // sums are recoverable from the report within rounding.
        let intervals = r.outages as f64;
        let dirty_sum = wl.avg_dirty_at_checkpoint * intervals;
        let cleaning_sum = wl.avg_cleanings_per_interval * intervals;
        assert!((dirty_sum - dirty_sum.round()).abs() < 1e-6);
        assert!((cleaning_sum - cleaning_sum.round()).abs() < 1e-6);
        assert!(wl.avg_dirty_at_checkpoint >= 0.0);
        // Checkpointed dirty lines are bounded by maxline (paper ~6).
        assert!(wl.avg_dirty_at_checkpoint <= wl.maxline_max as f64);
    }
}
