//! Simulation errors.

use ehsim_mem::Ps;
use std::error::Error;
use std::fmt;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The harvesting source could not recharge the capacitor to `Von`
    /// within the recharge budget — the system is effectively dead.
    SourceDead {
        /// Simulation time at which recharging was abandoned.
        at_ps: Ps,
    },
    /// The run exceeded [`SimConfig::max_outages`](crate::SimConfig).
    TooManyOutages {
        /// The configured limit.
        limit: u64,
    },
    /// A JIT checkpoint drained the capacitor below `Vmin`: the
    /// design's energy reserve was insufficient (this is an invariant
    /// violation — it must never happen for a correct configuration).
    ReserveViolated {
        /// Voltage after the checkpoint completed.
        voltage: f64,
        /// The design's `Vmin`.
        v_min: f64,
    },
    /// Crash-consistency verification failed: after a checkpoint, the
    /// persistent state did not reconstruct the oracle memory.
    ConsistencyViolation {
        /// First differing byte address.
        addr: u32,
        /// Expected (oracle) byte.
        expected: u8,
        /// Actual persistent byte.
        actual: u8,
        /// Outage index at which the divergence was detected.
        outage: u64,
    },
    /// The workload panicked.
    WorkloadPanic(
        /// Panic payload rendered to a string.
        String,
    ),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SourceDead { at_ps } => {
                write!(f, "energy source dead: could not recharge (t = {at_ps} ps)")
            }
            SimError::TooManyOutages { limit } => {
                write!(f, "exceeded the configured outage limit of {limit}")
            }
            SimError::ReserveViolated { voltage, v_min } => write!(
                f,
                "checkpoint reserve violated: {voltage:.3} V fell below Vmin {v_min:.3} V"
            ),
            SimError::ConsistencyViolation {
                addr,
                expected,
                actual,
                outage,
            } => write!(
                f,
                "crash-consistency violation at outage {outage}: byte 0x{addr:x} is {actual:#04x}, oracle has {expected:#04x}"
            ),
            SimError::WorkloadPanic(msg) => write!(f, "workload panicked: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::ReserveViolated {
            voltage: 2.75,
            v_min: 2.8,
        };
        assert!(e.to_string().contains("2.750"));
        let e = SimError::ConsistencyViolation {
            addr: 0x40,
            expected: 1,
            actual: 2,
            outage: 7,
        };
        assert!(e.to_string().contains("outage 7"));
    }
}
