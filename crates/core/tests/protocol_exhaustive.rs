//! Bounded exhaustive check of the WL-Cache write policy (§5), driven
//! through `ehsim-verify`'s explicit-state model-checking engine.
//!
//! The [`Model`] below wraps the *concrete* [`WlCache`] in a harness of
//! real NVM/port/energy components; the engine's BFS then explores every
//! event sequence up to the depth bound, over an alphabet designed to
//! hit the protocol's corner cases (redundant DirtyQueue entries, stale
//! entries from evictions, checkpoints racing in-flight write-backs).
//! `check()` runs at **every** explored state and plays the crash card
//! each time: a clone of the harness is JIT-checkpointed and its NVM
//! compared byte-for-byte with the oracle, so consistency is verified
//! after every prefix, not only at explicit `PowerCycle` events.
//!
//! The concrete harness deliberately returns `None` from
//! `fingerprint()`: hashing a full simulator state would risk unsound
//! dedup, so the engine enumerates all `6^depth` paths — the same
//! strength as the original hand-rolled odometer loop, minus the
//! boilerplate. The fully-fingerprintable *abstract* twin of this model
//! (millions of deduplicated states) lives in `ehsim_verify::model`.

use ehsim_cache::{CacheDesign, CacheGeometry, CacheStats, MemCtx};
use ehsim_energy::EnergyMeter;
use ehsim_mem::{AccessSize, FunctionalMem, NvmEnergy, NvmPort, NvmTiming, Ps};
use ehsim_verify::engine::{explore, run_path, Limits, Model};
use wl_cache::{AdaptationMode, Thresholds, WlCache, WlCacheBuilder};

/// The event alphabet. Addresses are chosen so that:
/// - `A` (0x000) and `C` (0x100) conflict in the direct-mapped cache
///   (stale-entry path, §5.4);
/// - `B` (0x040) lives in the other set;
/// - `StoreA` twice in a row exercises the §5.3 redundant-entry path
///   when the first store's cleaning is still in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    StoreA,
    StoreB,
    StoreC,
    LoadA,
    /// Let time pass so in-flight ACKs land.
    Wait,
    /// Power failure: checkpoint, verify, power off, reboot cold.
    PowerCycle,
}

const ALPHABET: [Event; 6] = [
    Event::StoreA,
    Event::StoreB,
    Event::StoreC,
    Event::LoadA,
    Event::Wait,
    Event::PowerCycle,
];

/// Concrete protocol state: the real cache plus its memory-system
/// harness. Cloned along the BFS frontier; the observer is not
/// cloneable (and must stay disabled anyway), so each clone gets a
/// fresh `Noop`.
struct ProtoState {
    cache: WlCache,
    port: NvmPort,
    nvm: FunctionalMem,
    oracle: FunctionalMem,
    meter: EnergyMeter,
    stats: CacheStats,
    now: Ps,
    stores: u32,
    obs: ehsim_obs::ObserverBox,
}

impl Clone for ProtoState {
    fn clone(&self) -> Self {
        Self {
            cache: self.cache.clone(),
            port: self.port.clone(),
            nvm: self.nvm.clone(),
            oracle: self.oracle.clone(),
            meter: self.meter,
            stats: self.stats,
            now: self.now,
            stores: self.stores,
            obs: ehsim_obs::ObserverBox::Noop,
        }
    }
}

impl ProtoState {
    /// Split-borrow helper: hands the closure the cache and a `MemCtx`
    /// over the *other* harness fields.
    fn with_ctx<R>(
        &mut self,
        timing: &NvmTiming,
        energy: &NvmEnergy,
        f: impl FnOnce(&mut WlCache, &mut MemCtx<'_>) -> R,
    ) -> R {
        let now = self.now;
        let Self {
            cache,
            port,
            nvm,
            meter,
            stats,
            obs,
            ..
        } = self;
        let mut ctx = MemCtx {
            now,
            port,
            timing,
            energy,
            nvm,
            meter,
            stats,
            cap_voltage: 3.3,
            obs,
        };
        f(cache, &mut ctx)
    }

    /// The JIT checkpoint + verify + cold reboot sequence.
    fn power_cycle(&mut self, timing: &NvmTiming, energy: &NvmEnergy) -> Result<(), String> {
        self.now = self.with_ctx(timing, energy, |cache, ctx| cache.checkpoint(ctx));
        self.cache.power_off();
        self.port.reset();
        if self.nvm.as_bytes() != self.oracle.as_bytes() {
            return Err("NVM diverged from the oracle after the JIT checkpoint".into());
        }
        self.now = self.with_ctx(timing, energy, |cache, ctx| cache.reboot(ctx, 1_000_000));
        Ok(())
    }
}

/// The concrete §5 protocol as an `ehsim-verify` model.
struct ProtocolModel {
    timing: NvmTiming,
    energy: NvmEnergy,
}

impl ProtocolModel {
    fn new() -> Self {
        Self {
            timing: NvmTiming::default(),
            energy: NvmEnergy::default(),
        }
    }
}

impl Model for ProtocolModel {
    type State = ProtoState;
    type Action = Event;

    fn initial(&self) -> ProtoState {
        // Direct-mapped, 2 lines of 64 B: maximal conflict pressure.
        let mut builder = WlCacheBuilder::new();
        builder
            .geometry(CacheGeometry::new(128, 1, 64))
            .thresholds(Thresholds::new(4, 2, 1).expect("valid"))
            .adaptation(AdaptationMode::Static);
        ProtoState {
            cache: builder.build(),
            port: NvmPort::new(),
            nvm: FunctionalMem::new(1024),
            oracle: FunctionalMem::new(1024),
            meter: EnergyMeter::new(),
            stats: CacheStats::new(),
            now: 0,
            stores: 0,
            obs: ehsim_obs::ObserverBox::Noop,
        }
    }

    fn actions(&self, _: &ProtoState, out: &mut Vec<Event>) {
        out.extend_from_slice(&ALPHABET);
    }

    fn step(&self, s: &ProtoState, ev: &Event) -> Result<Option<ProtoState>, String> {
        let mut s = s.clone();
        match ev {
            Event::StoreA | Event::StoreB | Event::StoreC => {
                let addr = match ev {
                    Event::StoreA => 0x000,
                    Event::StoreB => 0x040,
                    _ => 0x100,
                };
                // Distinct value per store along the path, as the old
                // odometer loop's counter provided.
                s.stores = s.stores.wrapping_mul(31).wrapping_add(1);
                let val = u64::from(s.stores);
                s.now = s.with_ctx(&self.timing, &self.energy, |cache, ctx| {
                    cache.store(ctx, addr, AccessSize::B4, val)
                });
                s.oracle.write(addr, AccessSize::B4, val);
            }
            Event::LoadA => {
                let (done, v) = s.with_ctx(&self.timing, &self.energy, |cache, ctx| {
                    cache.load(ctx, 0x000, AccessSize::B4)
                });
                s.now = done;
                // Read-your-writes against the oracle.
                let expected = s.oracle.read(0x000, AccessSize::B4);
                if v != expected {
                    return Err(format!("load returned {v:#x}, oracle has {expected:#x}"));
                }
            }
            Event::Wait => {
                s.now += 500_000; // 500 ns: every in-flight ACK lands
            }
            Event::PowerCycle => {
                s.power_cycle(&self.timing, &self.energy)?;
            }
        }
        Ok(Some(s))
    }

    /// Crash at every state: a throwaway clone is checkpointed and its
    /// NVM compared with the oracle, plus the cheap structural bounds.
    fn check(&self, s: &ProtoState) -> Result<(), String> {
        let maxline = s.cache.thresholds_config().maxline();
        if s.cache.dq_len() > maxline {
            return Err(format!(
                "DirtyQueue holds {} entries, maxline is {maxline}",
                s.cache.dq_len()
            ));
        }
        let mut crashed = s.clone();
        crashed
            .power_cycle(&self.timing, &self.energy)
            .map_err(|e| format!("crash at this state: {e}"))
    }

    /// No dedup: hashing the full concrete simulator state would risk
    /// unsound pruning, so every path is enumerated (bounded-exhaustive,
    /// exactly like the original test).
    fn fingerprint(&self, _: &ProtoState) -> Option<u64> {
        None
    }
}

#[test]
fn all_sequences_up_to_length_5_are_consistent() {
    // 6^0 + … + 6^5 = 9331 states, each crash-verified in `check`, so
    // every sequence of ≤ 5 events ends with a forced checkpoint+verify
    // — the original enumeration's guarantee, plus all prefixes.
    let out = explore(
        &ProtocolModel::new(),
        Limits {
            max_depth: 5,
            max_states: usize::MAX,
        },
    );
    if let Some(v) = &out.violation {
        panic!("protocol violation:\n{v}");
    }
    assert_eq!(out.states, 9331, "bounded-exhaustive coverage shrank");
    assert!(out.truncated, "depth bound is what stops this search");
}

#[test]
fn the_papers_racing_store_scenario_is_covered() {
    // §5.3's motivating interleaving, explicitly: store A, force a
    // cleaning via pressure, re-store A while the write-back is in
    // flight, then fail. The final NVM value must be the second store's.
    let end = run_path(
        &ProtocolModel::new(),
        &[
            Event::StoreA,
            Event::StoreB,
            Event::StoreC, // waterline exceeded: cleaning launches
            Event::StoreA, // re-dirty while (possibly) in flight
            Event::PowerCycle,
        ],
    )
    .unwrap_or_else(|v| panic!("racing-store scenario violated:\n{v}"));
    assert_eq!(end.nvm.as_bytes(), end.oracle.as_bytes());
}
