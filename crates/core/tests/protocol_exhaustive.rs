//! Exhaustive small-scope check of the WL-Cache write policy (§5):
//! every event sequence up to a fixed length, over an alphabet designed
//! to hit the protocol's corner cases (redundant DirtyQueue entries,
//! stale entries from evictions, checkpoints racing in-flight
//! write-backs), must leave NVM consistent with an oracle after the JIT
//! checkpoint.

use ehsim_cache::{CacheDesign, CacheGeometry, CacheStats, MemCtx};
use ehsim_energy::EnergyMeter;
use ehsim_mem::{AccessSize, FunctionalMem, NvmEnergy, NvmPort, NvmTiming, Ps};
use wl_cache::{AdaptationMode, Thresholds, WlCacheBuilder};

/// The event alphabet. Addresses are chosen so that:
/// - `A` (0x000) and `C` (0x100) conflict in the direct-mapped cache
///   (stale-entry path, §5.4);
/// - `B` (0x040) lives in the other set;
/// - `StoreA` twice in a row exercises the §5.3 redundant-entry path
///   when the first store's cleaning is still in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    StoreA,
    StoreB,
    StoreC,
    LoadA,
    /// Let time pass so in-flight ACKs land.
    Wait,
    /// Power failure: checkpoint, verify, power off, reboot cold.
    PowerCycle,
}

const ALPHABET: [Event; 6] = [
    Event::StoreA,
    Event::StoreB,
    Event::StoreC,
    Event::LoadA,
    Event::Wait,
    Event::PowerCycle,
];

struct Harness {
    port: NvmPort,
    timing: NvmTiming,
    energy: NvmEnergy,
    nvm: FunctionalMem,
    oracle: FunctionalMem,
    meter: EnergyMeter,
    stats: CacheStats,
    now: Ps,
    obs: ehsim_obs::ObserverBox,
}

impl Harness {
    fn new() -> Self {
        Self {
            port: NvmPort::new(),
            timing: NvmTiming::default(),
            energy: NvmEnergy::default(),
            nvm: FunctionalMem::new(1024),
            oracle: FunctionalMem::new(1024),
            meter: EnergyMeter::new(),
            stats: CacheStats::new(),
            now: 0,
            obs: ehsim_obs::ObserverBox::Noop,
        }
    }

    fn ctx(&mut self) -> MemCtx<'_> {
        MemCtx {
            now: self.now,
            port: &mut self.port,
            timing: &self.timing,
            energy: &self.energy,
            nvm: &mut self.nvm,
            meter: &mut self.meter,
            stats: &mut self.stats,
            cap_voltage: 3.3,
            cap_energy_pj: 1e9,
            obs: &mut self.obs,
        }
    }
}

fn run_sequence(seq: &[Event]) {
    // Direct-mapped, 2 lines of 64 B: maximal conflict pressure.
    let mut builder = WlCacheBuilder::new();
    builder
        .geometry(CacheGeometry::new(128, 1, 64))
        .thresholds(Thresholds::new(4, 2, 1).expect("valid"))
        .adaptation(AdaptationMode::Static);
    let mut cache = builder.build();
    let mut h = Harness::new();
    let mut counter: u32 = 1;

    for (step, ev) in seq.iter().enumerate() {
        counter = counter.wrapping_mul(31).wrapping_add(step as u32 + 1);
        match ev {
            Event::StoreA | Event::StoreB | Event::StoreC => {
                let addr = match ev {
                    Event::StoreA => 0x000,
                    Event::StoreB => 0x040,
                    _ => 0x100,
                };
                let mut ctx = h.ctx();
                let done = cache.store(&mut ctx, addr, AccessSize::B4, u64::from(counter));
                h.oracle.write(addr, AccessSize::B4, u64::from(counter));
                h.now = done;
            }
            Event::LoadA => {
                let mut ctx = h.ctx();
                let (done, v) = cache.load(&mut ctx, 0x000, AccessSize::B4);
                h.now = done;
                // Read-your-writes against the oracle.
                assert_eq!(
                    v,
                    h.oracle.read(0x000, AccessSize::B4),
                    "load mismatch in {seq:?} at step {step}"
                );
            }
            Event::Wait => {
                h.now += 500_000; // 500 ns: every in-flight ACK lands
            }
            Event::PowerCycle => {
                power_cycle(&mut cache, &mut h, seq, step);
            }
        }
    }
    // Terminal checkpoint: consistency must hold at the end of every
    // sequence regardless of in-flight state.
    let len = seq.len();
    power_cycle(&mut cache, &mut h, seq, len);
}

fn power_cycle(cache: &mut wl_cache::WlCache, h: &mut Harness, seq: &[Event], step: usize) {
    let mut ctx = h.ctx();
    let done = cache.checkpoint(&mut ctx);
    h.now = done;
    cache.power_off();
    h.port.reset();
    assert_eq!(
        h.nvm.as_bytes(),
        h.oracle.as_bytes(),
        "NVM diverged from oracle after checkpoint in {seq:?} at step {step}"
    );
    let mut ctx = h.ctx();
    let done = cache.reboot(&mut ctx, 1_000_000);
    h.now = done;
}

#[test]
fn all_sequences_up_to_length_5_are_consistent() {
    // 6^5 = 7776 sequences, each ending in a forced checkpoint+verify.
    let n = ALPHABET.len();
    for len in 1..=5usize {
        let mut idx = vec![0usize; len];
        loop {
            let seq: Vec<Event> = idx.iter().map(|&i| ALPHABET[i]).collect();
            run_sequence(&seq);
            // Odometer increment.
            let mut pos = 0;
            loop {
                if pos == len {
                    break;
                }
                idx[pos] += 1;
                if idx[pos] < n {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
            if pos == len {
                break;
            }
        }
    }
}

#[test]
fn the_papers_racing_store_scenario_is_covered() {
    // §5.3's motivating interleaving, explicitly: store A, force a
    // cleaning via pressure, re-store A while the write-back is in
    // flight, then fail. The final NVM value must be the second store's.
    run_sequence(&[
        Event::StoreA,
        Event::StoreB,
        Event::StoreC, // waterline exceeded: cleaning launches
        Event::StoreA, // re-dirty while (possibly) in flight
        Event::PowerCycle,
    ]);
}
