//! Property test promoting the `min_ack == scan_next_ack()`
//! `debug_assert` inside [`DirtyQueue::next_ack`] into an invariant
//! checked over random enqueue / mark-cleaning / ack / select / clear
//! interleavings — including in release builds, where `debug_assert!`
//! compiles away and the cached minimum is all the fast path has.
//!
//! The oracle recomputes the minimum outstanding ACK independently from
//! the public iterator after every operation, so any drift between the
//! incremental cache (updated by `mark_cleaning` / `drain_acked` /
//! `clear`) and the queue's true contents fails the property.

use proptest::prelude::*;
use wl_cache::{DirtyQueue, DqPolicy, DqState};

const CAPACITY: usize = 8;

/// One randomly-drawn operation against the queue. Fields that an
/// operation does not use are simply ignored by `apply`, which keeps
/// the strategy a flat tuple the vendored proptest can generate.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push line `base` (skipped when physically full).
    Push(u32),
    /// Mark the `nth` dirty entry cleaning, ACK arriving `delta` later.
    MarkCleaning { nth: usize, delta: u64 },
    /// Advance time by `delta` and pop every arrived ACK.
    PopAcked { delta: u64 },
    /// Run §5.4 selection; entries whose base matches `stale_mask` bits
    /// are reported stale and lazily dropped.
    Select { policy_lru: bool, stale_mask: u32 },
    /// Power-off: the volatile queue empties wholesale.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..6).prop_map(Op::Push),
        (0usize..CAPACITY, 1u64..5_000).prop_map(|(nth, delta)| Op::MarkCleaning { nth, delta }),
        (0u64..6_000).prop_map(|delta| Op::PopAcked { delta }),
        (0u32..64).prop_map(|bits| Op::Select {
            policy_lru: bits & 1 == 1,
            stale_mask: bits >> 1,
        }),
        (0u32..1).prop_map(|_| Op::Clear),
    ]
}

/// Recomputes the earliest outstanding ACK from the public iterator —
/// the independent oracle for the cached `min_ack`.
fn oracle_next_ack(q: &DirtyQueue) -> Option<u64> {
    q.iter()
        .filter_map(|e| match e.state {
            DqState::Cleaning { ack_at } => Some(ack_at),
            DqState::Dirty => None,
        })
        .min()
}

fn apply(q: &mut DirtyQueue, now: &mut u64, op: Op) {
    match op {
        Op::Push(base) => {
            if q.len() < q.capacity() {
                q.push(base);
            }
        }
        Op::MarkCleaning { nth, delta } => {
            let dirty: Vec<u32> = q
                .iter()
                .filter(|e| e.state == DqState::Dirty)
                .map(|e| e.base)
                .collect();
            if !dirty.is_empty() {
                q.mark_cleaning(dirty[nth % dirty.len()], *now + delta);
            }
        }
        Op::PopAcked { delta } => {
            *now += delta;
            q.pop_acked(*now);
        }
        Op::Select {
            policy_lru,
            stale_mask,
        } => {
            let policy = if policy_lru {
                DqPolicy::Lru
            } else {
                DqPolicy::Fifo
            };
            q.select_for_cleaning(policy, |base| {
                (stale_mask & (1 << (base % 32)) == 0).then_some(u64::from(base))
            });
        }
        Op::Clear => q.clear(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// After every operation of a random interleaving, the cached
    /// minimum ACK (`next_ack`) equals a from-scratch scan of the
    /// queue, and occupancy accounting stays coherent.
    #[test]
    fn cached_min_ack_matches_scan_under_random_interleavings(
        ops in prop::collection::vec(op_strategy(), 1..64),
    ) {
        let mut q = DirtyQueue::new(CAPACITY);
        let mut now: u64 = 0;
        for op in ops {
            apply(&mut q, &mut now, op);
            prop_assert_eq!(q.next_ack(), oracle_next_ack(&q), "after {:?}", op);
            prop_assert!(q.len() <= q.capacity());
            let dirty = q.iter().filter(|e| e.state == DqState::Dirty).count();
            prop_assert_eq!(q.dirty_count(), dirty);
            // Every arrived ACK has been popped, so whatever remains
            // outstanding is strictly in the future.
            if let Some(ack) = q.next_ack() {
                prop_assert!(ack > now, "stale Cleaning entry survived pop_acked");
            }
        }
    }
}
