//! # Write-Light Cache
//!
//! The primary contribution of *"Write-Light Cache for Energy Harvesting
//! Systems"* (ISCA 2023): a volatile SRAM cache with a write policy that
//! sits between write-through and write-back.
//!
//! WL-Cache holds dirty lines to exploit locality (like write-back) but
//! **bounds** how many may exist at once (like write-through bounds them
//! to zero), so that a small, fixed energy reserve suffices to
//! failure-atomically flush them when power is about to fail:
//!
//! - [`DirtyQueue`] — the small hardware queue tracking dirty-line
//!   addresses, decoupled from the data path (§3.3);
//! - [`Thresholds`] — the `maxline` / `waterline` pair (§3.1): at
//!   `waterline` the cache starts asynchronously *cleaning* (write-back
//!   without eviction), at `maxline` stores stall;
//! - [`AdaptiveController`] — boot-time threshold reconfiguration driven
//!   by power-on-time history (§4), plus the opportunistic dynamic
//!   adaptation of `WL-Cache (dyn)`;
//! - [`WlCache`] — the full design, pluggable into the `ehsim` machine
//!   via the [`ehsim_cache::CacheDesign`] trait.
//!
//! # Examples
//!
//! ```
//! use wl_cache::{Thresholds, WlCacheBuilder};
//! use ehsim_cache::CacheGeometry;
//!
//! let cache = WlCacheBuilder::new()
//!     .geometry(CacheGeometry::new(1024, 2, 64))
//!     .thresholds(Thresholds::new(8, 6, 5)?)
//!     .build();
//! assert_eq!(cache.thresholds_config().maxline(), 6);
//! # Ok::<(), wl_cache::ThresholdsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod cache;
mod dirty_queue;
mod thresholds;

pub use adaptive::{AdaptationMode, AdaptiveController};
pub use cache::{WlCache, WlCacheBuilder, WlStats};
pub use dirty_queue::{DirtyQueue, DqEntry, DqPolicy, DqState};
pub use thresholds::{Thresholds, ThresholdsError};
