//! The complete WL-Cache design (§3, §5).

use crate::{AdaptationMode, AdaptiveController, DirtyQueue, DqPolicy, Thresholds};
use ehsim_cache::designs::WbCore;
use ehsim_cache::{CacheDesign, CacheGeometry, CacheTech, MemCtx, ReplacementPolicy};
use ehsim_energy::{EnergyCategory, VoltageThresholds};
use ehsim_mem::{AccessSize, NvmEnergy, Pj, Ps};
use ehsim_obs::Event;

/// Dynamic access energy of a DirtyQueue operation (push / pop / state
/// change), from the CACTI-lite estimate of §6.2 (≤ 0.8 pJ).
const DQ_ACCESS_PJ: Pj = 0.8;
/// Extra energy of an LRU DirtyQueue *search* (§5.3: "The LRU-based
/// scheme requires search"), charged per cleaning selection.
const DQ_LRU_SEARCH_PJ: Pj = 2.4;
/// NVFF save/restore of the threshold registers and power-on timers
/// (§5.5: two 1-byte thresholds + two 2-byte timers).
const NVFF_STATE_PJ: Pj = 5.0;
const NVFF_STATE_PS: Ps = 1_000;
/// Voltage headroom (V) above the raised `Vbackup` required before a
/// dynamic maxline raise is considered safe.
const DYN_RAISE_HEADROOM_V: f64 = 0.02;

/// WL-Cache runtime statistics beyond the generic
/// [`ehsim_cache::CacheStats`] — the quantities §6.6 reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WlStats {
    /// Asynchronous cleanings issued by the waterline policy.
    pub cleanings: u64,
    /// Store stalls caused by a full DirtyQueue (maxline).
    pub stalls: u64,
    /// Total time stores spent stalled.
    pub stall_ps: Ps,
    /// Stale DirtyQueue entries lazily dropped (§5.4).
    pub stale_dropped: u64,
    /// Opportunistic dynamic maxline raises (§4, WL-Cache (dyn)).
    pub dyn_raises: u64,
    /// Completed power-on intervals.
    pub intervals: u64,
    /// Dirty lines flushed by JIT checkpoints, summed over intervals.
    pub dirty_at_checkpoint_sum: u64,
    /// Cleanings summed over completed intervals (write-backs per
    /// on-period in §6.6).
    pub cleanings_per_interval_sum: u64,
}

/// Builder for [`WlCache`] (non-consuming).
///
/// # Examples
///
/// ```
/// use wl_cache::{DqPolicy, Thresholds, WlCacheBuilder, AdaptationMode};
/// use ehsim_cache::{CacheGeometry, ReplacementPolicy};
///
/// let mut b = WlCacheBuilder::new();
/// b.geometry(CacheGeometry::new(1024, 2, 64))
///     .cache_policy(ReplacementPolicy::Lru)
///     .dq_policy(DqPolicy::Fifo)
///     .adaptation(AdaptationMode::Adaptive);
/// let cache = b.build();
/// assert_eq!(cache.thresholds_config(), Thresholds::paper_default());
/// ```
#[derive(Debug, Clone)]
pub struct WlCacheBuilder {
    geometry: CacheGeometry,
    cache_policy: ReplacementPolicy,
    thresholds: Thresholds,
    dq_policy: DqPolicy,
    adaptation: AdaptationMode,
}

impl WlCacheBuilder {
    /// Starts from the paper's defaults: 8 kB 2-way LRU cache, DirtyQueue
    /// size 8, maxline 6, waterline 5, FIFO DirtyQueue replacement,
    /// adaptive threshold management (§6.1).
    pub fn new() -> Self {
        Self {
            geometry: CacheGeometry::paper_default(),
            cache_policy: ReplacementPolicy::Lru,
            thresholds: Thresholds::paper_default(),
            dq_policy: DqPolicy::Fifo,
            adaptation: AdaptationMode::Adaptive,
        }
    }

    /// Sets the cache geometry.
    pub fn geometry(&mut self, geometry: CacheGeometry) -> &mut Self {
        self.geometry = geometry;
        self
    }

    /// Sets the cache replacement policy (§5.4).
    pub fn cache_policy(&mut self, policy: ReplacementPolicy) -> &mut Self {
        self.cache_policy = policy;
        self
    }

    /// Sets the DirtyQueue thresholds.
    pub fn thresholds(&mut self, thresholds: Thresholds) -> &mut Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the DirtyQueue replacement policy (§5.2).
    pub fn dq_policy(&mut self, policy: DqPolicy) -> &mut Self {
        self.dq_policy = policy;
        self
    }

    /// Sets the adaptation mode (§4).
    pub fn adaptation(&mut self, mode: AdaptationMode) -> &mut Self {
        self.adaptation = mode;
        self
    }

    /// Builds a cold WL-Cache.
    pub fn build(&self) -> WlCache {
        WlCache {
            core: WbCore::new(self.geometry, self.cache_policy, CacheTech::sram()),
            dq: DirtyQueue::new(self.thresholds.dq_capacity()),
            controller: AdaptiveController::new(self.adaptation, self.thresholds),
            dq_policy: self.dq_policy,
            wl_stats: WlStats::default(),
            cleanings_this_interval: 0,
            vth: VoltageThresholds::wl(self.thresholds.maxline(), self.thresholds.dq_capacity()),
        }
    }
}

impl Default for WlCacheBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The Write-Light Cache: a volatile write-back SRAM cache whose dirty
/// lines are tracked in a [`DirtyQueue`] and bounded by
/// [`Thresholds::maxline`], JIT-checkpointed on power failure, and
/// asynchronously cleaned past [`Thresholds::waterline`].
#[derive(Debug, Clone)]
pub struct WlCache {
    core: WbCore,
    dq: DirtyQueue,
    controller: AdaptiveController,
    dq_policy: DqPolicy,
    wl_stats: WlStats,
    cleanings_this_interval: u64,
    /// Mirror of `VoltageThresholds::wl(maxline, dq_capacity)` for the
    /// controller's current thresholds. The machine polls
    /// [`CacheDesign::thresholds`] after every settled operation, while
    /// `maxline` changes only at reboot reconfiguration or a dynamic
    /// raise — so the interpolation is evaluated at those (rare) change
    /// points and the per-settle poll is a plain copy of the identical
    /// value.
    vth: VoltageThresholds,
}

impl WlCache {
    /// Creates a WL-Cache with the paper's default configuration.
    pub fn new() -> Self {
        WlCacheBuilder::new().build()
    }

    /// Current threshold configuration (may differ from the initial one
    /// under adaptive/dynamic management).
    pub fn thresholds_config(&self) -> Thresholds {
        self.controller.thresholds()
    }

    /// The DirtyQueue replacement policy.
    pub fn dq_policy(&self) -> DqPolicy {
        self.dq_policy
    }

    /// WL-specific statistics (§6.6).
    pub fn wl_stats(&self) -> WlStats {
        self.wl_stats
    }

    /// The adaptive controller (reconfiguration counts, maxline range,
    /// prediction accuracy).
    pub fn controller(&self) -> &AdaptiveController {
        &self.controller
    }

    /// Current DirtyQueue occupancy.
    pub fn dq_len(&self) -> usize {
        self.dq.len()
    }

    /// Re-derives the cached [`VoltageThresholds`] mirror after the
    /// controller's thresholds changed.
    fn resync_vth(&mut self) {
        let t = self.controller.thresholds();
        self.vth = VoltageThresholds::wl(t.maxline(), t.dq_capacity());
    }

    /// Recency stamp of the (still-dirty) line at `base`, or `None` if
    /// the line is stale — the DirtyQueue selection oracle.
    fn stamp_of(core: &WbCore, base: u32) -> Option<u64> {
        let array = core.array();
        let sw = array.lookup(base)?;
        (array.is_dirty(sw) && array.base_addr(sw) == base).then(|| array.last_use(sw))
    }

    /// Polls completed write-back ACKs out of the DirtyQueue. With an
    /// observer attached each removal is reported at its actual ACK
    /// time; the disabled path is the original `pop_acked` early-out.
    fn poll_acks(&mut self, ctx: &mut MemCtx<'_>) {
        if ctx.obs.enabled() {
            let now = ctx.now;
            let obs = &mut *ctx.obs;
            self.dq
                .drain_acked(now, |base, ack_at| obs.emit(ack_at, Event::DqAck { base }));
        } else {
            self.dq.pop_acked(ctx.now);
        }
    }

    /// Steps 1–2 of the DirtyQueue replacement protocol (§5.3): select a
    /// dirty line, mark it clean *first*, then launch the asynchronous
    /// write-back; the entry is popped later, at ACK (steps 3–4).
    /// Returns `false` if nothing was cleanable.
    fn issue_cleaning(&mut self, ctx: &mut MemCtx<'_>) -> bool {
        if self.dq_policy == DqPolicy::Lru {
            ctx.meter.add(EnergyCategory::CacheRead, DQ_LRU_SEARCH_PJ);
        }
        let core = &self.core;
        let (selected, dropped) = self
            .dq
            .select_for_cleaning(self.dq_policy, |base| Self::stamp_of(core, base));
        self.wl_stats.stale_dropped += dropped as u64;
        if dropped > 0 && ctx.obs.enabled() {
            ctx.obs.emit(ctx.now, Event::DqStaleDrop { dropped });
        }
        let Some(base) = selected else {
            return false;
        };
        let sw = self
            .core
            .array()
            .lookup(base)
            .expect("selected line is resident");
        // Step 1: mark clean before issuing, so a racing store to the
        // same line re-inserts it into the DirtyQueue (§5.3).
        self.core.array_mut().set_dirty(sw, false);
        // Step 2: snapshot and issue; the line stays in the cache.
        ctx.meter
            .add(EnergyCategory::CacheRead, self.core.tech().read_pj);
        let ack_at = ctx.async_line_write(base, self.core.array().line_data(sw));
        ctx.meter.add(EnergyCategory::CacheWrite, DQ_ACCESS_PJ);
        self.dq.mark_cleaning(base, ack_at);
        self.wl_stats.cleanings += 1;
        self.cleanings_this_interval += 1;
        if ctx.obs.enabled() {
            ctx.obs
                .emit(ctx.now, Event::WritebackIssued { base, ack_at });
        }
        true
    }

    /// Makes room in the DirtyQueue for one more entry, stalling the
    /// store (or dynamically raising maxline) as needed.
    fn reserve_dq_slot(&mut self, ctx: &mut MemCtx<'_>) {
        loop {
            self.poll_acks(ctx);
            let maxline = self.controller.thresholds().maxline();
            // DirtyQueue occupancy (including entries whose write-back
            // is still in flight — their slot frees only at the ACK,
            // §5.3 step 4) is what `maxline` bounds. The paper sizes the
            // physical queue (8) above the default maxline (6) to leave
            // headroom for dynamic maxline raises (§4).
            if self.dq.len() < maxline {
                return;
            }
            // WL-Cache (dyn): raise maxline instead of stalling when the
            // capacitor can fund checkpointing one more line.
            let next = VoltageThresholds::wl(
                (maxline + 1).min(self.controller.thresholds().dq_capacity()),
                self.controller.thresholds().dq_capacity(),
            );
            let headroom_ok = ctx.cap_voltage > next.v_backup + DYN_RAISE_HEADROOM_V;
            if self.controller.try_dynamic_raise(headroom_ok).is_some() {
                self.resync_vth();
                self.wl_stats.dyn_raises += 1;
                if ctx.obs.enabled() {
                    let maxline = self.controller.thresholds().maxline();
                    ctx.obs.emit(ctx.now, Event::DynRaise { maxline });
                }
                continue;
            }
            match self.dq.next_ack() {
                Some(ack) if ack > ctx.now => {
                    // Stall until the in-flight cleaning ACKs.
                    if ctx.obs.enabled() {
                        ctx.obs.emit(ctx.now, Event::DqStall { until: ack });
                    }
                    self.wl_stats.stalls += 1;
                    self.wl_stats.stall_ps += ack - ctx.now;
                    ctx.stats.stall_ps += ack - ctx.now;
                    ctx.now = ack;
                }
                Some(_) => { /* already acked; next pop_acked clears it */ }
                None => {
                    // Queue full of Dirty entries with nothing in
                    // flight: force a cleaning and wait for it.
                    if !self.issue_cleaning(ctx) {
                        // Everything was stale and got dropped; loop.
                        continue;
                    }
                }
            }
        }
    }
}

impl Default for WlCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheDesign for WlCache {
    fn name(&self) -> &'static str {
        "WL-Cache"
    }

    fn thresholds(&self) -> VoltageThresholds {
        self.vth
    }

    fn load(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize) -> (Ps, u64) {
        self.poll_acks(ctx);
        let (_, value, _) = self.core.load(ctx, addr, size);
        (ctx.now, value)
    }

    fn store(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize, value: u64) -> Ps {
        self.poll_acks(ctx);
        let (sw, was_dirty, _) = self.core.store_resident(ctx, addr, size, value);
        if !was_dirty {
            // Clean → dirty transition: the only event that touches the
            // DirtyQueue (§5.1). Stores to already-dirty lines coalesce.
            self.reserve_dq_slot(ctx);
            let base = self.core.array().base_addr(sw);
            self.dq.push(base);
            ctx.meter.add(EnergyCategory::CacheWrite, DQ_ACCESS_PJ);
            self.core.array_mut().set_dirty(sw, true);
            if ctx.obs.enabled() {
                ctx.obs.emit(ctx.now, Event::DqEnqueue { base });
            }

            // Waterline policy (§5.2): start cleaning asynchronously.
            let waterline = self.controller.thresholds().waterline();
            while self.dq.dirty_count() > waterline {
                if !self.issue_cleaning(ctx) {
                    break;
                }
            }
        }
        ctx.now
    }

    fn checkpoint(&mut self, ctx: &mut MemCtx<'_>) -> Ps {
        // JIT checkpoint (§3.2): walk the DirtyQueue, flush every
        // tracked line that is still dirty, using the existing cache →
        // NVM data path. Entries whose write-back completed (or whose
        // line went stale) are skipped; an in-flight write-back may be
        // duplicated, which is harmless.
        self.poll_acks(ctx);
        let bases: Vec<u32> = self.dq.iter().map(|e| e.base).collect();
        let mut flushed = 0u64;
        for base in bases {
            let Some(sw) = self.core.array().lookup(base) else {
                continue;
            };
            if !self.core.array().is_dirty(sw) || self.core.array().base_addr(sw) != base {
                continue;
            }
            ctx.meter
                .add(EnergyCategory::CacheRead, self.core.tech().read_pj);
            let done = ctx.sync_line_write(base, self.core.array().line_data(sw));
            ctx.now = done;
            self.core.array_mut().set_dirty(sw, false);
            ctx.stats.checkpoint_lines += 1;
            flushed += 1;
        }
        // NVFF save of thresholds + power-on timers (§5.5).
        ctx.meter.add(EnergyCategory::CacheWrite, NVFF_STATE_PJ);
        ctx.now += NVFF_STATE_PS;

        self.wl_stats.intervals += 1;
        self.wl_stats.dirty_at_checkpoint_sum += flushed;
        self.wl_stats.cleanings_per_interval_sum += self.cleanings_this_interval;
        self.cleanings_this_interval = 0;
        self.dq.clear();
        ctx.now
    }

    fn power_off(&mut self) {
        self.core.array_mut().invalidate_all();
        self.dq.clear();
    }

    fn reboot(&mut self, ctx: &mut MemCtx<'_>, on_time_ps: Ps) -> Ps {
        // Boot-time adaptive reconfiguration (§4) from the measured
        // power-on time; Vbackup/Von follow via `thresholds()`.
        let before = self.controller.thresholds();
        self.controller.on_interval_end(on_time_ps);
        self.resync_vth();
        let after = self.controller.thresholds();
        if ctx.obs.enabled() && after != before {
            ctx.obs.emit(
                ctx.now,
                Event::Reconfigure {
                    maxline: after.maxline(),
                    waterline: after.waterline(),
                },
            );
        }
        // NVFF restore of thresholds + timers.
        ctx.meter.add(EnergyCategory::CacheRead, NVFF_STATE_PJ);
        ctx.now + NVFF_STATE_PS
    }

    fn dirty_lines(&self) -> usize {
        self.dq.len()
    }

    fn worst_checkpoint_pj(&self, energy: &NvmEnergy) -> Pj {
        let line_bytes = self.core.array().geometry().line_bytes();
        self.controller.thresholds().maxline() as f64 * energy.write_pj(line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_cache::CacheStats;
    use ehsim_energy::EnergyMeter;
    use ehsim_mem::{FunctionalMem, NvmPort, NvmTiming};

    struct H {
        port: NvmPort,
        timing: NvmTiming,
        energy: NvmEnergy,
        nvm: FunctionalMem,
        meter: EnergyMeter,
        stats: CacheStats,
        now: Ps,
        voltage: f64,
        obs: ehsim_obs::ObserverBox,
    }

    impl H {
        fn new() -> Self {
            Self {
                port: NvmPort::new(),
                timing: NvmTiming::default(),
                energy: NvmEnergy::default(),
                nvm: FunctionalMem::new(64 * 1024),
                meter: EnergyMeter::new(),
                stats: CacheStats::new(),
                now: 0,
                voltage: 3.3,
                obs: ehsim_obs::ObserverBox::Noop,
            }
        }
        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                now: self.now,
                port: &mut self.port,
                timing: &self.timing,
                energy: &self.energy,
                nvm: &mut self.nvm,
                meter: &mut self.meter,
                stats: &mut self.stats,
                cap_voltage: self.voltage,
                obs: &mut self.obs,
            }
        }
    }

    fn wl(maxline: usize) -> WlCache {
        let mut b = WlCacheBuilder::new();
        b.geometry(CacheGeometry::new(2048, 2, 64))
            .thresholds(Thresholds::with_maxline(8, maxline).unwrap())
            .adaptation(AdaptationMode::Static);
        b.build()
    }

    /// Stores to `n` distinct lines (addresses 0, 64, 128, …).
    fn dirty_n(c: &mut WlCache, h: &mut H, n: u32) {
        for i in 0..n {
            let mut ctx = h.ctx();
            let done = c.store(&mut ctx, i * 64, AccessSize::B4, u64::from(i) + 1);
            h.now = done;
        }
    }

    /// Loads `n` distinct lines so that subsequent stores hit (back-to-
    /// back store hits are what exercise the maxline stall path).
    fn preload_n(c: &mut WlCache, h: &mut H, n: u32) {
        for i in 0..n {
            let mut ctx = h.ctx();
            let (done, _) = c.load(&mut ctx, i * 64, AccessSize::B4);
            h.now = done;
        }
    }

    #[test]
    fn store_hits_on_dirty_line_do_not_touch_dq() {
        let mut h = H::new();
        let mut c = wl(6);
        dirty_n(&mut c, &mut h, 1);
        assert_eq!(c.dq_len(), 1);
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 4, AccessSize::B4, 42);
        assert_eq!(c.dq_len(), 1, "subsequent store to dirty line coalesces");
    }

    #[test]
    fn waterline_triggers_async_cleaning() {
        let mut h = H::new();
        let mut c = wl(6); // waterline 5
        dirty_n(&mut c, &mut h, 5);
        assert_eq!(c.wl_stats().cleanings, 0, "at waterline: no cleaning yet");
        dirty_n(&mut c, &mut h, 6); // 6th distinct line exceeds waterline
        assert_eq!(c.wl_stats().cleanings, 1);
        // Cleaned line is persisted but still cached (clean, no evict).
        assert_eq!(h.nvm.read(0, AccessSize::B4), 1);
        let sw = c.core.array().lookup(0).expect("line 0 still resident");
        assert!(!c.core.array().is_dirty(sw));
    }

    #[test]
    fn cleaning_is_asynchronous_for_the_core() {
        let mut h = H::new();
        let mut c = wl(6);
        dirty_n(&mut c, &mut h, 5);
        let before = h.now;
        // The 6th store triggers cleaning; the store itself should not
        // wait the ~40 ns NVM line-write latency. It does pay its own
        // miss fill (~40 ns read), so compare against a hit-store.
        let mut ctx = h.ctx();
        let done = c.store(&mut ctx, 5 * 64, AccessSize::B4, 6);
        let elapsed = done - before;
        let fill_only = h.timing.line_read_ps() + 2_000;
        assert!(
            elapsed < fill_only,
            "store took {elapsed} ps; cleaning must overlap (ILP)"
        );
    }

    #[test]
    fn maxline_stalls_bound_occupancy() {
        let mut h = H::new();
        let mut c = wl(4); // waterline 3
        preload_n(&mut c, &mut h, 12);
        dirty_n(&mut c, &mut h, 12);
        assert!(c.dq_len() <= 4, "occupancy {} > maxline", c.dq_len());
        assert!(c.wl_stats().stalls > 0, "dense stores must stall");
        assert!(h.stats.stall_ps > 0);
    }

    #[test]
    fn redundant_entry_protocol_keeps_nvm_consistent() {
        // The §5.3 scenario: store X=1; cleaning starts (X marked clean,
        // write-back in flight); store X=2 must re-insert X into the DQ;
        // checkpoint must persist X=2.
        let mut h = H::new();
        let mut c = wl(2); // waterline 1: cleaning starts at 2 dirty lines
        dirty_n(&mut c, &mut h, 1); // X = line 0, value 1
        let mut ctx = h.ctx();
        let done = c.store(&mut ctx, 64, AccessSize::B4, 0xbb); // triggers cleaning of X
        h.now = done;
        // X's write-back is in flight (not yet ACKed). Store X=2 now.
        let mut ctx = h.ctx();
        let done = c.store(&mut ctx, 0, AccessSize::B4, 2);
        h.now = done;
        assert!(
            c.dq.iter().filter(|e| e.base == 0).count() >= 1,
            "re-dirtied line must be re-tracked"
        );
        // Power failure: JIT checkpoint, then verify NVM.
        let mut ctx = h.ctx();
        let _ = c.checkpoint(&mut ctx);
        assert_eq!(h.nvm.read(0, AccessSize::B4), 2, "latest value persisted");
        assert_eq!(h.nvm.read(64, AccessSize::B4), 0xbb);
    }

    #[test]
    fn checkpoint_flushes_exactly_tracked_dirty_lines() {
        let mut h = H::new();
        let mut c = wl(6);
        dirty_n(&mut c, &mut h, 3);
        let mut ctx = h.ctx();
        let _ = c.checkpoint(&mut ctx);
        for i in 0..3u32 {
            assert_eq!(h.nvm.read(i * 64, AccessSize::B4), u64::from(i) + 1);
        }
        assert_eq!(h.stats.checkpoint_lines, 3);
        assert_eq!(c.dq_len(), 0);
    }

    #[test]
    fn power_cycle_preserves_data_through_nvm() {
        let mut h = H::new();
        let mut c = wl(6);
        dirty_n(&mut c, &mut h, 4);
        let mut ctx = h.ctx();
        let t = c.checkpoint(&mut ctx);
        h.now = t;
        c.power_off();
        let mut ctx = h.ctx();
        let t = c.reboot(&mut ctx, 1_000_000);
        h.now = t;
        // Cold cache, but all data readable from NVM.
        for i in 0..4u32 {
            let mut ctx = h.ctx();
            let (done, v) = c.load(&mut ctx, i * 64, AccessSize::B4);
            h.now = done;
            assert_eq!(v, u64::from(i) + 1);
        }
        assert_eq!(h.stats.load_hits, 0, "cache must reboot cold");
    }

    #[test]
    fn eviction_leaves_stale_entry_that_is_skipped() {
        let mut h = H::new();
        // Tiny direct-mapped cache: 2 sets — 0x000 and 0x080 conflict.
        let mut b = WlCacheBuilder::new();
        b.geometry(CacheGeometry::new(128, 1, 64))
            .thresholds(Thresholds::with_maxline(8, 6).unwrap())
            .adaptation(AdaptationMode::Static);
        let mut c = b.build();
        let mut ctx = h.ctx();
        let done = c.store(&mut ctx, 0x00, AccessSize::B4, 0x11);
        h.now = done;
        // Conflicting store evicts line 0 (dirty → synchronous WB).
        let mut ctx = h.ctx();
        let done = c.store(&mut ctx, 0x80, AccessSize::B4, 0x22);
        h.now = done;
        assert_eq!(h.stats.evict_writebacks, 1);
        assert_eq!(h.nvm.read(0x00, AccessSize::B4), 0x11);
        assert_eq!(c.dq_len(), 2, "stale entry lingers (lazy cleanup)");
        // Checkpoint skips the stale entry without flushing garbage.
        let mut ctx = h.ctx();
        let _ = c.checkpoint(&mut ctx);
        assert_eq!(h.stats.checkpoint_lines, 1);
        assert_eq!(h.nvm.read(0x80, AccessSize::B4), 0x22);
    }

    #[test]
    fn adaptive_reboot_reconfigures_thresholds() {
        let mut h = H::new();
        let mut b = WlCacheBuilder::new();
        b.adaptation(AdaptationMode::Adaptive);
        let mut c = b.build();
        assert_eq!(c.thresholds_config().maxline(), 6);
        let mut ctx = h.ctx();
        let _ = c.reboot(&mut ctx, 10_000_000);
        let _ = c.reboot(&mut ctx, 1_000_000); // 10× shorter: lower
        assert_eq!(c.thresholds_config().maxline(), 5);
        assert_eq!(c.controller().reconfigurations(), 1);
        // Vbackup margin follows maxline down.
        let v = CacheDesign::thresholds(&c);
        assert!(v.v_backup < VoltageThresholds::wl(6, 8).v_backup);
    }

    #[test]
    fn dynamic_mode_raises_instead_of_stalling_when_energy_allows() {
        let mut h = H::new();
        h.voltage = 3.4; // plenty of headroom
        let mut b = WlCacheBuilder::new();
        b.geometry(CacheGeometry::new(2048, 2, 64))
            .thresholds(Thresholds::with_maxline(8, 2).unwrap())
            .adaptation(AdaptationMode::Dynamic);
        let mut c = b.build();
        preload_n(&mut c, &mut h, 8);
        dirty_n(&mut c, &mut h, 8);
        assert!(c.wl_stats().dyn_raises > 0);
        assert!(c.thresholds_config().maxline() > 2);
    }

    #[test]
    fn dynamic_mode_stalls_when_voltage_is_low() {
        let mut h = H::new();
        h.voltage = 2.96; // below any raised Vbackup
        let mut b = WlCacheBuilder::new();
        b.geometry(CacheGeometry::new(2048, 2, 64))
            .thresholds(Thresholds::with_maxline(8, 2).unwrap())
            .adaptation(AdaptationMode::Dynamic);
        let mut c = b.build();
        preload_n(&mut c, &mut h, 8);
        dirty_n(&mut c, &mut h, 8);
        assert_eq!(c.wl_stats().dyn_raises, 0);
        assert_eq!(c.thresholds_config().maxline(), 2);
        assert!(c.wl_stats().stalls > 0);
    }

    #[test]
    fn worst_checkpoint_scales_with_maxline() {
        let e = NvmEnergy::default();
        assert!(wl(6).worst_checkpoint_pj(&e) > wl(2).worst_checkpoint_pj(&e));
    }

    #[test]
    fn voltage_thresholds_track_maxline() {
        let c = wl(2);
        let v2 = CacheDesign::thresholds(&c);
        let c = wl(8);
        let v8 = CacheDesign::thresholds(&c);
        assert!(v8.v_backup > v2.v_backup);
        assert!(v8.v_on > v2.v_on);
    }
}
