//! Adaptive maxline management (§4).
//!
//! The runtime system cannot observe the harvesting environment
//! directly; it estimates source quality from **power-on times** (how
//! long each interval between `Von` and `Vbackup` lasted — a good source
//! tops the capacitor up while running, stretching the interval). At
//! each boot it compares the last two on-times and moves `maxline`
//! (and with it `waterline` and the `Vbackup` margin) up when the
//! source looks good, down when it looks poor.

use crate::Thresholds;
use ehsim_mem::Ps;

/// How WL-Cache adapts its thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdaptationMode {
    /// Fixed thresholds for the whole run (the "static" configurations
    /// of Figs 9, 11, 12).
    Static,
    /// Boot-time reconfiguration from power-on-time history (§4) — the
    /// paper's default.
    #[default]
    Adaptive,
    /// Boot-time reconfiguration *plus* opportunistic mid-interval
    /// maxline raises when the capacitor has energy to spare —
    /// `WL-Cache (dyn)` in Fig 13(a).
    Dynamic,
}

impl AdaptationMode {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            AdaptationMode::Static => "static",
            AdaptationMode::Adaptive => "adaptive",
            AdaptationMode::Dynamic => "dynamic",
        }
    }
}

/// Relative change in on-time treated as significant (±15 %).
const SIGNIFICANT_CHANGE: f64 = 0.15;

/// Boot-time threshold controller.
///
/// Keeps the last two power-on times in (modelled) NVFF (§5.5), decides
/// the next interval's `maxline` at each boot, and tracks the §6.6
/// statistics: reconfiguration count, observed maxline range and
/// direction-prediction accuracy.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    mode: AdaptationMode,
    thresholds: Thresholds,
    /// Adaptive raises never exceed the configured (boot) maxline: the
    /// energy reserve provisioned at configuration time is the hard
    /// ceiling. Lowers bottom out at 2 lines, below which the cache
    /// degenerates to near write-through for no reserve benefit.
    max_maxline: usize,
    min_maxline: usize,
    t_prev: Option<Ps>,
    t_prev2: Option<Ps>,
    /// +1 / 0 / −1 direction chosen at the previous boot, for accuracy
    /// tracking.
    last_direction: i8,
    reconfigurations: u64,
    predictions: u64,
    correct_predictions: u64,
    maxline_min_seen: usize,
    maxline_max_seen: usize,
}

impl AdaptiveController {
    /// Creates a controller starting from `initial` thresholds.
    pub fn new(mode: AdaptationMode, initial: Thresholds) -> Self {
        let m = initial.maxline();
        Self {
            mode,
            thresholds: initial,
            max_maxline: m,
            min_maxline: 2.min(m),
            t_prev: None,
            t_prev2: None,
            last_direction: 0,
            reconfigurations: 0,
            predictions: 0,
            correct_predictions: 0,
            maxline_min_seen: m,
            maxline_max_seen: m,
        }
    }

    /// Adaptation mode.
    pub fn mode(&self) -> AdaptationMode {
        self.mode
    }

    /// Thresholds in force for the current interval.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Records the power-on time of the interval that just ended
    /// (called when the JIT checkpoint fires) and — at the next boot —
    /// reconfigures the thresholds. Returns the thresholds for the next
    /// interval.
    ///
    /// If the measured on-time grew by more than 15 % over the previous
    /// interval, `maxline` is raised by one (the source looks good); if
    /// it shrank by more than 15 %, lowered by one; otherwise the
    /// thresholds stay put — exactly the §4 policy.
    pub fn on_interval_end(&mut self, on_time: Ps) -> Thresholds {
        // Score the previous boot's direction choice before updating
        // history: a raise predicted a longer (or equal) interval, a
        // lower predicted a shorter one.
        if let (Some(prev), d) = (self.t_prev, self.last_direction) {
            if d != 0 {
                self.predictions += 1;
                let grew = on_time as f64 >= prev as f64 * (1.0 - SIGNIFICANT_CHANGE);
                let shrank = (on_time as f64) <= prev as f64 * (1.0 + SIGNIFICANT_CHANGE);
                let correct = (d > 0 && grew) || (d < 0 && shrank);
                if correct {
                    self.correct_predictions += 1;
                }
            }
        }

        self.t_prev2 = self.t_prev;
        self.t_prev = Some(on_time);

        if self.mode == AdaptationMode::Static {
            self.last_direction = 0;
            return self.thresholds;
        }

        let direction = match (self.t_prev2, self.t_prev) {
            (Some(older), Some(newer)) => {
                let ratio = newer as f64 / older.max(1) as f64;
                if ratio > 1.0 + SIGNIFICANT_CHANGE {
                    1
                } else if ratio < 1.0 - SIGNIFICANT_CHANGE {
                    -1
                } else {
                    0
                }
            }
            _ => 0,
        };

        let current = self.thresholds.maxline();
        let target = match direction {
            1 => (current + 1).min(self.max_maxline),
            -1 => current.saturating_sub(1).max(self.min_maxline),
            _ => current,
        };
        self.last_direction = match target.cmp(&current) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        };
        if target != current {
            self.thresholds = self.thresholds.reconfigured(target);
            self.reconfigurations += 1;
            self.maxline_min_seen = self.maxline_min_seen.min(target);
            self.maxline_max_seen = self.maxline_max_seen.max(target);
        }
        self.thresholds
    }

    /// Opportunistic dynamic raise (§4, "Dynamic adaptation"): when the
    /// DirtyQueue is full but the capacitor is still comfortably above
    /// the *raised* `Vbackup`, grow `maxline` by one instead of
    /// stalling. `headroom_ok` is the machine's judgement that the
    /// residual energy can JIT-checkpoint one more line.
    ///
    /// Returns the new thresholds if a raise happened.
    pub fn try_dynamic_raise(&mut self, headroom_ok: bool) -> Option<Thresholds> {
        if self.mode != AdaptationMode::Dynamic || !headroom_ok {
            return None;
        }
        let current = self.thresholds.maxline();
        if current >= self.thresholds.dq_capacity() {
            return None;
        }
        self.thresholds = self.thresholds.reconfigured(current + 1);
        self.reconfigurations += 1;
        self.maxline_max_seen = self.maxline_max_seen.max(current + 1);
        Some(self.thresholds)
    }

    /// Number of threshold reconfigurations performed (§6.6 reports ~11
    /// on trace 1 and ~12 on trace 2).
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Smallest and largest maxline used so far (§6.6 reports 2 and 6).
    pub fn maxline_range(&self) -> (usize, usize) {
        (self.maxline_min_seen, self.maxline_max_seen)
    }

    /// Fraction of direction choices that matched the next interval's
    /// behaviour (§6.6 reports > 98 %); `None` before any prediction.
    pub fn prediction_accuracy(&self) -> Option<f64> {
        (self.predictions > 0).then(|| self.correct_predictions as f64 / self.predictions as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(mode: AdaptationMode) -> AdaptiveController {
        AdaptiveController::new(mode, Thresholds::paper_default())
    }

    #[test]
    fn static_mode_never_moves() {
        let mut c = ctl(AdaptationMode::Static);
        for t in [100u64, 10_000, 100, 1_000_000] {
            let th = c.on_interval_end(t);
            assert_eq!(th.maxline(), 6);
        }
        assert_eq!(c.reconfigurations(), 0);
    }

    #[test]
    fn growing_on_times_raise_maxline_up_to_configured_cap() {
        let mut c = ctl(AdaptationMode::Adaptive);
        c.on_interval_end(1_000);
        let th = c.on_interval_end(2_000); // 2× growth: raise
        assert_eq!(th.maxline(), 6); // already at cap (6)
        assert_eq!(c.reconfigurations(), 0, "cap prevents raising past 6");
    }

    #[test]
    fn shrinking_on_times_lower_maxline() {
        let mut c = ctl(AdaptationMode::Adaptive);
        c.on_interval_end(10_000);
        let th = c.on_interval_end(5_000);
        assert_eq!(th.maxline(), 5);
        assert_eq!(th.waterline(), 4);
        let th = c.on_interval_end(2_000);
        assert_eq!(th.maxline(), 4);
        assert_eq!(c.reconfigurations(), 2);
    }

    #[test]
    fn lower_bound_is_two() {
        let mut c = ctl(AdaptationMode::Adaptive);
        let mut t = 1 << 30;
        c.on_interval_end(t);
        for _ in 0..10 {
            t /= 2;
            c.on_interval_end(t);
        }
        assert_eq!(c.thresholds().maxline(), 2);
        assert_eq!(c.maxline_range(), (2, 6));
    }

    #[test]
    fn recovery_after_dip_raises_again() {
        let mut c = ctl(AdaptationMode::Adaptive);
        c.on_interval_end(10_000);
        c.on_interval_end(3_000); // lower → 5
        c.on_interval_end(3_000); // stable → 5
        let th = c.on_interval_end(9_000); // raise → 6
        assert_eq!(th.maxline(), 6);
    }

    #[test]
    fn small_fluctuations_do_not_reconfigure() {
        let mut c = ctl(AdaptationMode::Adaptive);
        c.on_interval_end(1_000);
        c.on_interval_end(1_100);
        c.on_interval_end(950);
        assert_eq!(c.reconfigurations(), 0);
    }

    #[test]
    fn prediction_accuracy_tracks_choices() {
        let mut c = ctl(AdaptationMode::Adaptive);
        c.on_interval_end(10_000);
        c.on_interval_end(5_000); // lower; predicts shrink
        c.on_interval_end(2_000); // shrank → correct; lower again
        c.on_interval_end(1_000); // shrank → correct
        let acc = c.prediction_accuracy().unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn dynamic_raise_requires_mode_and_headroom() {
        let mut c = ctl(AdaptationMode::Adaptive);
        assert_eq!(c.try_dynamic_raise(true), None);
        let mut d = ctl(AdaptationMode::Dynamic);
        assert_eq!(d.try_dynamic_raise(false), None);
        let th = d.try_dynamic_raise(true).unwrap();
        assert_eq!(th.maxline(), 7);
        // Capacity-bounded.
        d.try_dynamic_raise(true);
        assert_eq!(d.thresholds().maxline(), 8);
        assert_eq!(d.try_dynamic_raise(true), None);
        assert_eq!(d.maxline_range().1, 8);
    }
}
