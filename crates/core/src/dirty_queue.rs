//! The DirtyQueue: a small hardware queue of dirty-line addresses.

use ehsim_mem::Ps;
use std::collections::VecDeque;

/// DirtyQueue replacement policy (§5.2): which dirty line to clean when
/// the waterline is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DqPolicy {
    /// Clean the oldest entry (paper default; no search hardware).
    #[default]
    Fifo,
    /// Clean the least-recently-used dirty line (requires searching the
    /// queue against the cache's LRU stamps — costs extra energy).
    Lru,
}

impl DqPolicy {
    /// Label used in figures ("DQ-FIFO" / "DQ-LRU").
    pub fn label(self) -> &'static str {
        match self {
            DqPolicy::Fifo => "DQ-FIFO",
            DqPolicy::Lru => "DQ-LRU",
        }
    }
}

/// Lifecycle state of a DirtyQueue entry (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DqState {
    /// The tracked line is dirty in the cache.
    Dirty,
    /// An asynchronous write-back is in flight; the entry is removed
    /// when the ACK arrives (step 4 of the replacement protocol).
    Cleaning {
        /// Absolute time at which the ACK arrives.
        ack_at: Ps,
    },
}

/// One DirtyQueue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DqEntry {
    /// Line base address of the tracked dirty line.
    pub base: u32,
    /// Protocol state.
    pub state: DqState,
}

/// The DirtyQueue: a circular queue of dirty-line addresses, decoupled
/// from the cache's data path (§3.3).
///
/// The queue is deliberately *not* searchable: redundant entries for the
/// same line (possible when a store lands while that line is being
/// cleaned, §5.3) and stale entries for lines that were evicted (§5.4)
/// are allowed to sit in the queue and are lazily discarded when
/// selected. Entries are removed only by the ACK of their write-back
/// (see [`DirtyQueue::pop_acked`]) or by a JIT checkpoint.
#[derive(Debug, Clone)]
pub struct DirtyQueue {
    entries: VecDeque<DqEntry>,
    capacity: usize,
    /// Earliest ACK time among `Cleaning` entries (`None` when no
    /// write-back is in flight). Lets [`DirtyQueue::pop_acked`] — which
    /// the cache calls on every access — return without scanning the
    /// queue when no ACK can have arrived yet.
    min_ack: Option<Ps>,
}

impl DirtyQueue {
    /// Creates an empty queue with `capacity` physical slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "DirtyQueue capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            min_ack: None,
        }
    }

    /// Physical capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy (both `Dirty` and `Cleaning` entries): the
    /// quantity compared against `maxline` for stall decisions, and the
    /// number of lines a JIT checkpoint may need to flush.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries still in the `Dirty` state: the quantity
    /// compared against `waterline` for cleaning decisions.
    pub fn dirty_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state == DqState::Dirty)
            .count()
    }

    /// Appends a new dirty-line entry at the tail (§5.1 insertion
    /// protocol). The caller enforces the `maxline` bound.
    ///
    /// # Panics
    ///
    /// Panics if the queue is physically full — the insertion protocol
    /// must never let that happen.
    pub fn push(&mut self, base: u32) {
        assert!(
            self.entries.len() < self.capacity,
            "DirtyQueue overflow: maxline enforcement failed"
        );
        self.entries.push_back(DqEntry {
            base,
            state: DqState::Dirty,
        });
    }

    /// Removes every `Cleaning` entry whose ACK time has passed,
    /// returning how many slots were freed (step 4 of §5.3).
    pub fn pop_acked(&mut self, now: Ps) -> usize {
        self.drain_acked(now, |_, _| {})
    }

    /// [`DirtyQueue::pop_acked`] with a visitor: `f(base, ack_at)` is
    /// called for each removed entry, letting the observability layer
    /// report ACKs at their actual completion time without a second
    /// scan. Removal behaviour is identical to `pop_acked`.
    pub fn drain_acked(&mut self, now: Ps, mut f: impl FnMut(u32, Ps)) -> usize {
        // No outstanding ACK can have arrived yet: the scan below would
        // remove nothing, so skip it (this is the common case — the
        // cache polls on every access).
        if self.min_ack.is_none_or(|m| m > now) {
            return 0;
        }
        let before = self.entries.len();
        self.entries.retain(|e| {
            if let DqState::Cleaning { ack_at } = e.state {
                if ack_at <= now {
                    f(e.base, ack_at);
                    return false;
                }
            }
            true
        });
        self.min_ack = self.scan_next_ack();
        before - self.entries.len()
    }

    /// Earliest outstanding ACK time among `Cleaning` entries, if any —
    /// what a stalled store waits for.
    pub fn next_ack(&self) -> Option<Ps> {
        debug_assert_eq!(self.min_ack, self.scan_next_ack());
        self.min_ack
    }

    /// Recomputes the earliest outstanding ACK by scanning the queue.
    fn scan_next_ack(&self) -> Option<Ps> {
        self.entries
            .iter()
            .filter_map(|e| match e.state {
                DqState::Cleaning { ack_at } => Some(ack_at),
                DqState::Dirty => None,
            })
            .min()
    }

    /// Selects a `Dirty` entry to clean according to `policy`.
    ///
    /// `stamp_of` maps a line base address to the cache's recency stamp
    /// for that line, or `None` if the line is no longer dirty in the
    /// cache (stale entry: evicted, already cleaned via a redundant
    /// entry, or re-tagged). **Stale entries encountered during
    /// selection are dropped** — the lazy cleanup of §5.4 — and the
    /// number dropped is returned alongside the selection.
    ///
    /// FIFO picks the oldest dirty entry; LRU searches for the entry
    /// whose line has the smallest stamp.
    pub fn select_for_cleaning(
        &mut self,
        policy: DqPolicy,
        mut stamp_of: impl FnMut(u32) -> Option<u64>,
    ) -> (Option<u32>, usize) {
        let mut dropped = 0;
        loop {
            let candidate = match policy {
                DqPolicy::Fifo => self.entries.iter().position(|e| e.state == DqState::Dirty),
                DqPolicy::Lru => {
                    let mut best: Option<(u64, usize)> = None;
                    let mut pending_drop: Option<usize> = None;
                    for (i, e) in self.entries.iter().enumerate() {
                        if e.state != DqState::Dirty {
                            continue;
                        }
                        match stamp_of(e.base) {
                            Some(stamp) => {
                                if best.is_none_or(|(s, _)| stamp < s) {
                                    best = Some((stamp, i));
                                }
                            }
                            None => {
                                pending_drop = Some(i);
                                break;
                            }
                        }
                    }
                    if let Some(i) = pending_drop {
                        self.entries.remove(i);
                        dropped += 1;
                        continue;
                    }
                    best.map(|(_, i)| i)
                }
            };
            let Some(ix) = candidate else {
                return (None, dropped);
            };
            let base = self.entries[ix].base;
            if stamp_of(base).is_none() {
                // Stale: line no longer dirty in the cache. Drop lazily.
                self.entries.remove(ix);
                dropped += 1;
                continue;
            }
            return (Some(base), dropped);
        }
    }

    /// Transitions the oldest `Dirty` entry for `base` into the
    /// `Cleaning` state with the given ACK time (steps 1–2 of §5.3).
    ///
    /// # Panics
    ///
    /// Panics if no `Dirty` entry for `base` exists.
    pub fn mark_cleaning(&mut self, base: u32, ack_at: Ps) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.base == base && e.state == DqState::Dirty)
            .expect("mark_cleaning: no dirty entry for base");
        e.state = DqState::Cleaning { ack_at };
        if self.min_ack.is_none_or(|m| ack_at < m) {
            self.min_ack = Some(ack_at);
        }
    }

    /// Iterates over all entries (used by the JIT checkpoint, which
    /// flushes every tracked line that is still dirty in the cache).
    pub fn iter(&self) -> impl Iterator<Item = &DqEntry> {
        self.entries.iter()
    }

    /// Empties the queue (power-off: the DirtyQueue is volatile — crash
    /// consistency is guaranteed because the checkpoint flushed the
    /// tracked lines first, §3.3).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.min_ack = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_counts() {
        let mut q = DirtyQueue::new(8);
        assert!(q.is_empty());
        q.push(0x100);
        q.push(0x200);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dirty_count(), 2);
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn physical_overflow_panics() {
        let mut q = DirtyQueue::new(1);
        q.push(0x100);
        q.push(0x200);
    }

    #[test]
    fn fifo_selects_oldest_dirty() {
        let mut q = DirtyQueue::new(8);
        q.push(0x100);
        q.push(0x200);
        q.push(0x300);
        let (sel, dropped) = q.select_for_cleaning(DqPolicy::Fifo, |_| Some(0));
        assert_eq!(sel, Some(0x100));
        assert_eq!(dropped, 0);
    }

    #[test]
    fn cleaning_entries_not_reselected_but_occupy_slots() {
        let mut q = DirtyQueue::new(8);
        q.push(0x100);
        q.push(0x200);
        q.mark_cleaning(0x100, 5_000);
        assert_eq!(q.len(), 2, "cleaning entry still occupies its slot");
        assert_eq!(q.dirty_count(), 1);
        let (sel, _) = q.select_for_cleaning(DqPolicy::Fifo, |_| Some(0));
        assert_eq!(sel, Some(0x200));
    }

    #[test]
    fn pop_acked_respects_time() {
        let mut q = DirtyQueue::new(8);
        q.push(0x100);
        q.push(0x200);
        q.mark_cleaning(0x100, 5_000);
        assert_eq!(q.pop_acked(4_999), 0);
        assert_eq!(q.pop_acked(5_000), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_ack(), None);
    }

    #[test]
    fn drain_acked_visits_removed_entries() {
        let mut q = DirtyQueue::new(8);
        q.push(0x100);
        q.push(0x200);
        q.push(0x300);
        q.mark_cleaning(0x100, 5_000);
        q.mark_cleaning(0x300, 2_000);
        let mut seen = Vec::new();
        let freed = q.drain_acked(6_000, |base, ack_at| seen.push((base, ack_at)));
        assert_eq!(freed, 2);
        assert_eq!(seen, vec![(0x100, 5_000), (0x300, 2_000)]);
        assert_eq!(q.len(), 1);
        // The early-out path must not call the visitor.
        let mut called = false;
        assert_eq!(q.drain_acked(10_000, |_, _| called = true), 0);
        assert!(!called);
    }

    #[test]
    fn next_ack_is_minimum() {
        let mut q = DirtyQueue::new(8);
        q.push(0x100);
        q.push(0x200);
        q.mark_cleaning(0x200, 9_000);
        q.mark_cleaning(0x100, 5_000);
        assert_eq!(q.next_ack(), Some(5_000));
    }

    #[test]
    fn stale_entries_dropped_lazily_on_selection() {
        let mut q = DirtyQueue::new(8);
        q.push(0x100); // will become stale (e.g. evicted)
        q.push(0x200);
        let (sel, dropped) = q.select_for_cleaning(DqPolicy::Fifo, |b| (b == 0x200).then_some(1));
        assert_eq!(sel, Some(0x200));
        assert_eq!(dropped, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn lru_selects_smallest_stamp() {
        let mut q = DirtyQueue::new(8);
        q.push(0x100);
        q.push(0x200);
        q.push(0x300);
        let (sel, _) = q.select_for_cleaning(DqPolicy::Lru, |b| match b {
            0x100 => Some(30),
            0x200 => Some(10),
            0x300 => Some(20),
            _ => None,
        });
        assert_eq!(sel, Some(0x200));
    }

    #[test]
    fn redundant_entries_for_same_line_coexist() {
        // §5.3: a store during cleaning re-inserts the same address.
        let mut q = DirtyQueue::new(8);
        q.push(0x100);
        q.mark_cleaning(0x100, 1_000);
        q.push(0x100); // redundant but legal
        assert_eq!(q.len(), 2);
        assert_eq!(q.dirty_count(), 1);
        // ACK removes only the cleaning entry.
        assert_eq!(q.pop_acked(1_000), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dirty_count(), 1);
    }

    #[test]
    fn selection_with_all_stale_returns_none() {
        let mut q = DirtyQueue::new(4);
        q.push(0x100);
        q.push(0x200);
        let (sel, dropped) = q.select_for_cleaning(DqPolicy::Fifo, |_| None);
        assert_eq!(sel, None);
        assert_eq!(dropped, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = DirtyQueue::new(4);
        q.push(1);
        q.push(2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn policy_labels() {
        assert_eq!(DqPolicy::Fifo.label(), "DQ-FIFO");
        assert_eq!(DqPolicy::Lru.label(), "DQ-LRU");
    }
}
