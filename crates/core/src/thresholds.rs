//! The `maxline` / `waterline` threshold pair (§3.1).

use std::error::Error;
use std::fmt;

/// DirtyQueue thresholds governing WL-Cache's write policy.
///
/// Invariants (enforced at construction): `waterline < maxline <=
/// dq_capacity`, and `maxline >= 1`.
///
/// - When the number of dirty lines exceeds `waterline`, WL-Cache picks
///   a dirty line and asynchronously writes it back (clean, no evict).
/// - When DirtyQueue occupancy reaches `maxline`, a store that would add
///   a new dirty line stalls until a slot frees up.
/// - The gap `maxline − waterline` is the ILP window: cleaning is in
///   flight while the core keeps executing.
///
/// Conceptually, `maxline = cache size` is a write-back cache and
/// `maxline = 0` is a write-through cache; WL-Cache lives in between and
/// can be moved along that spectrum at every reboot (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Thresholds {
    dq_capacity: usize,
    maxline: usize,
    waterline: usize,
}

/// Error constructing [`Thresholds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdsError {
    /// `maxline` exceeded the DirtyQueue capacity.
    MaxlineAboveCapacity {
        /// Requested maxline.
        maxline: usize,
        /// Physical queue capacity.
        capacity: usize,
    },
    /// `waterline` was not strictly below `maxline`.
    WaterlineNotBelowMaxline {
        /// Requested waterline.
        waterline: usize,
        /// Requested maxline.
        maxline: usize,
    },
    /// `maxline` must be at least 1.
    MaxlineZero,
}

impl fmt::Display for ThresholdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdsError::MaxlineAboveCapacity { maxline, capacity } => write!(
                f,
                "maxline ({maxline}) exceeds DirtyQueue capacity ({capacity})"
            ),
            ThresholdsError::WaterlineNotBelowMaxline { waterline, maxline } => write!(
                f,
                "waterline ({waterline}) must be strictly below maxline ({maxline})"
            ),
            ThresholdsError::MaxlineZero => write!(f, "maxline must be at least 1"),
        }
    }
}

impl Error for ThresholdsError {}

impl Thresholds {
    /// Creates a threshold configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ThresholdsError`] if the invariants described on the
    /// type do not hold.
    pub fn new(
        dq_capacity: usize,
        maxline: usize,
        waterline: usize,
    ) -> Result<Self, ThresholdsError> {
        if maxline == 0 {
            return Err(ThresholdsError::MaxlineZero);
        }
        if maxline > dq_capacity {
            return Err(ThresholdsError::MaxlineAboveCapacity {
                maxline,
                capacity: dq_capacity,
            });
        }
        if waterline >= maxline {
            return Err(ThresholdsError::WaterlineNotBelowMaxline { waterline, maxline });
        }
        Ok(Self {
            dq_capacity,
            maxline,
            waterline,
        })
    }

    /// The paper's default: DirtyQueue size 8, maxline 6, waterline 5
    /// (§6.1).
    pub fn paper_default() -> Self {
        Self::new(8, 6, 5).expect("paper defaults are valid")
    }

    /// A configuration with the default `waterline = maxline − 1`.
    ///
    /// # Errors
    ///
    /// Same as [`Thresholds::new`].
    pub fn with_maxline(dq_capacity: usize, maxline: usize) -> Result<Self, ThresholdsError> {
        Self::new(dq_capacity, maxline, maxline.saturating_sub(1))
    }

    /// Physical DirtyQueue capacity.
    pub fn dq_capacity(&self) -> usize {
        self.dq_capacity
    }

    /// Maximum number of DirtyQueue entries before stores stall.
    pub fn maxline(&self) -> usize {
        self.maxline
    }

    /// Dirty-line count above which asynchronous cleaning starts.
    pub fn waterline(&self) -> usize {
        self.waterline
    }

    /// Returns a copy with a different maxline (waterline re-derived as
    /// `maxline − 1`), clamped to `[1, dq_capacity]` — used by the
    /// adaptive controller.
    pub fn reconfigured(&self, maxline: usize) -> Self {
        let m = maxline.clamp(1, self.dq_capacity);
        Self {
            dq_capacity: self.dq_capacity,
            maxline: m,
            waterline: m - 1,
        }
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_8_6_5() {
        let t = Thresholds::paper_default();
        assert_eq!(t.dq_capacity(), 8);
        assert_eq!(t.maxline(), 6);
        assert_eq!(t.waterline(), 5);
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert_eq!(
            Thresholds::new(8, 9, 5),
            Err(ThresholdsError::MaxlineAboveCapacity {
                maxline: 9,
                capacity: 8
            })
        );
        assert_eq!(
            Thresholds::new(8, 4, 4),
            Err(ThresholdsError::WaterlineNotBelowMaxline {
                waterline: 4,
                maxline: 4
            })
        );
        assert_eq!(Thresholds::new(8, 0, 0), Err(ThresholdsError::MaxlineZero));
    }

    #[test]
    fn with_maxline_derives_waterline() {
        let t = Thresholds::with_maxline(8, 4).unwrap();
        assert_eq!(t.waterline(), 3);
        let t1 = Thresholds::with_maxline(8, 1).unwrap();
        assert_eq!(t1.waterline(), 0);
    }

    #[test]
    fn reconfigured_clamps_to_capacity() {
        let t = Thresholds::paper_default();
        assert_eq!(t.reconfigured(12).maxline(), 8);
        assert_eq!(t.reconfigured(0).maxline(), 1);
        assert_eq!(t.reconfigured(4).waterline(), 3);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = Thresholds::new(8, 9, 5).unwrap_err();
        assert!(e.to_string().contains("capacity"));
    }
}
