//! Deep model-checking runs over the abstract §5 write-back protocol:
//! the faithful model must sustain all five invariants across a large
//! deduplicated state space, and every injected protocol bug must be
//! refuted with a concrete counterexample trace.

use ehsim_verify::engine::{explore, run_path, Limits};
use ehsim_verify::model::{Act, Mutation, WriteBackModel};

/// The ISSUE's headline number: ≥ 100,000 deduplicated states with all
/// five invariants holding. (The full reachable space is ~9.86 M
/// states; the CLI's default budget covers it in release.)
#[test]
fn faithful_protocol_holds_over_100k_deduplicated_states() {
    let out = explore(
        &WriteBackModel::faithful(),
        Limits {
            max_depth: 64,
            max_states: 120_000,
        },
    );
    assert!(out.holds(), "invariant violated:\n{:?}", out.violation);
    assert!(
        out.states >= 100_000,
        "only {} states explored (budget allowed 120k)",
        out.states
    );
    assert!(out.dedup_hits > 0, "dedup must prune re-reached states");
}

/// The skip-stale-drop mutant from the issue text: cleaning selection
/// issues stale entries instead of lazily dropping them, so another
/// line's bytes land at the stale address — caught by the NVM
/// consistency invariant, with a minimal counterexample trace.
#[test]
fn skip_stale_drop_mutant_yields_counterexample_trace() {
    let out = explore(
        &WriteBackModel::mutated(Mutation::SkipStaleDrop),
        Limits {
            max_depth: 10,
            max_states: 500_000,
        },
    );
    let v = out.violation.expect("mutant must be refuted");
    assert!(
        v.message.starts_with("I1"),
        "wrong invariant: {}",
        v.message
    );
    assert!(
        !v.trace.is_empty() && v.trace.len() <= 6,
        "BFS finds a short counterexample, got {} steps",
        v.trace.len()
    );
    // The rendered trace is a replayable action list.
    let rendered = format!("{v}");
    assert!(rendered.contains("counterexample"));
    assert!(
        rendered.contains("Store"),
        "trace must show the stores: {rendered}"
    );

    // Replaying the counterexample through run_path on the same mutant
    // reproduces the violation — the trace is not just decorative.
    let acts: Vec<Act> = v
        .trace
        .iter()
        .map(|t| parse_act(t).unwrap_or_else(|| panic!("unparseable action `{t}`")))
        .collect();
    let replay = run_path(&WriteBackModel::mutated(Mutation::SkipStaleDrop), &acts);
    assert!(replay.is_err(), "replay must hit the same violation");
    // The faithful protocol survives the same schedule.
    let faithful = run_path(&WriteBackModel::faithful(), &acts);
    assert!(
        faithful.is_ok(),
        "faithful protocol must survive: {faithful:?}"
    );
}

/// Each of the six mutants is refuted, and by the invariant it was
/// designed to break (every invariant has teeth).
#[test]
fn all_mutants_are_refuted_by_their_invariant() {
    let cases = [
        (Mutation::SkipJitFlush, "I1"),
        (Mutation::SkipStaleDrop, "I1"),
        (Mutation::OverfillQueue, "I2"),
        (Mutation::SkipMinRecompute, "I3"),
        (Mutation::LowerThresholdMidInterval, "I4"),
        (Mutation::FreeSlotAtIssue, "I5"),
    ];
    for (m, inv) in cases {
        let out = explore(
            &WriteBackModel::mutated(m),
            Limits {
                max_depth: 12,
                max_states: 500_000,
            },
        );
        let v = out
            .violation
            .unwrap_or_else(|| panic!("{m:?} survived the bounded search"));
        assert!(
            v.message.starts_with(inv),
            "{m:?} hit {} instead",
            v.message
        );
    }
}

/// Parse a `Debug`-rendered [`Act`] back into an action (supports the
/// replay assertion above).
fn parse_act(s: &str) -> Option<Act> {
    if s == "IssueCleaning" {
        return Some(Act::IssueCleaning);
    }
    if s == "Crash" {
        return Some(Act::Crash);
    }
    let (name, arg) = s.split_once('(')?;
    let n: u8 = arg.strip_suffix(')')?.parse().ok()?;
    match name {
        "Store" => Some(Act::Store(n)),
        "Load" => Some(Act::Load(n)),
        "DeliverAck" => Some(Act::DeliverAck(n)),
        _ => None,
    }
}
