//! The real workspace must lint deny-clean: zero unallowlisted
//! findings, and every `verify-allow.toml` entry still earning its
//! keep. Running this inside `cargo test` makes the lint part of
//! tier-1, not just of the CI `verify` job.

use ehsim_verify::allow::Allowlist;
use ehsim_verify::lint::lint_workspace;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/verify -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_deny_clean() {
    let root = workspace_root();
    assert!(
        root.join("verify-allow.toml").is_file(),
        "allowlist missing at {}",
        root.display()
    );
    let mut allow = Allowlist::load(&root).expect("allowlist parses");
    let report = lint_workspace(&root, &mut allow).expect("workspace lints");
    assert!(
        report.files > 80,
        "walker lost files: saw only {}",
        report.files
    );

    let denied: Vec<String> = report.denied().map(|f| f.to_string()).collect();
    assert!(
        denied.is_empty(),
        "lint findings not covered by verify-allow.toml:\n{}",
        denied.join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries (fix the entry or delete it):\n{}",
        report.stale_allows.join("\n")
    );
    // The allowlist documents real, deliberate exceptions — it should
    // shrink over time, never silently balloon.
    let allowed = report.findings.iter().filter(|f| f.allowed).count();
    assert!(
        allowed <= 16,
        "{allowed} allowlisted findings — time to fix some instead of excusing them"
    );
}
