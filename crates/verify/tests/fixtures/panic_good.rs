//! unwrap() is fine inside `#[cfg(test)]`, as are the non-panicking
//! `unwrap_or` family and the word in comments/strings (no L004).

pub fn first(xs: &[u32]) -> u32 {
    // calling .unwrap() here would panic — so we don't
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v = super::first(&[1]);
        assert_eq!(Some(v), [1u32].first().copied().map(|x| x));
        let s: Option<u32> = Some(3);
        s.unwrap();
    }
}
