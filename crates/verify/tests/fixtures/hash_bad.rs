// Hash collections outside crates/bench (triggers L003 twice).
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> usize {
    let set: std::collections::HashSet<u32> = xs.iter().copied().collect();
    let _m: HashMap<u32, u32> = HashMap::new();
    set.len()
}
