//! Emission sites guarded by `enabled()` within the window (no L005).
pub fn record(obs: &mut Sink, at: u64) {
    if obs.enabled() {
        obs.emit(at);
    }
}

pub struct Sink;
impl Sink {
    pub fn enabled(&self) -> bool {
        false
    }
    pub fn emit(&mut self, _at: u64) {}
}
