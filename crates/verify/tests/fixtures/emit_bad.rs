// An observer emission with no enabled() guard in sight (triggers L005).
pub fn record(obs: &mut Sink, at: u64) {
    obs.emit(at);
}

pub struct Sink;
impl Sink {
    pub fn emit(&mut self, _at: u64) {}
}
