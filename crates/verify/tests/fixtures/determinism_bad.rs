// Wall-clock and OS randomness in a deterministic crate (triggers L002).
use std::time::Instant;
use std::time::SystemTime;

pub fn stamp() -> u64 {
    let _t0 = Instant::now();
    let _wall = SystemTime::now();
    let _r = rand::thread_rng();
    0
}
