//! A crate root missing both required attributes (triggers L001, L007).

pub fn noop() {}
