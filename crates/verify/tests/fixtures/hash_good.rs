//! Ordered collections keep iteration deterministic (no L003).
use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn tally(xs: &[u32]) -> usize {
    let set: BTreeSet<u32> = xs.iter().copied().collect();
    let _m: BTreeMap<u32, u32> = BTreeMap::new();
    set.len()
}
