// unwrap()/expect() in library code (triggers L004 twice).
pub fn first(xs: &[u32]) -> u32 {
    let a = xs.first().unwrap();
    let b = xs.last().expect("non-empty");
    a + b
}
