//! f64 arithmetic with explicit rounding before narrowing, and integer
//! helpers that merely *look* floaty (no L006).
pub type Ps = u64;

pub fn seg(dur_us: f64) -> Ps {
    (dur_us * 1e6).round() as Ps
}

pub fn lines(bytes: u64) -> u64 {
    bytes.div_ceil(64)
}
