//! Mentions of Instant and SystemTime in comments and strings only, and
//! an identifier that merely *contains* the banned word — none of which
//! may trigger L002.

/// Instantaneous power draw (the word "Instant" hides in here twice).
pub fn instantaneous_power() -> &'static str {
    "SystemTime is only named inside this string literal"
}

pub struct InstantaneousReading(pub u64);
