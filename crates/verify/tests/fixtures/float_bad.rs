// f32 arithmetic and an unrounded float->int cast in a timing crate
// (triggers L006 twice).
pub type Ps = u64;

pub fn seg(dur_us: f64) -> Ps {
    let _narrow: f32 = 1.5;
    (dur_us * 1e6) as Ps
}
