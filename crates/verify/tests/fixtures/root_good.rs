//! A well-formed crate root (no L001/L007 findings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn noop() {}
