//! Fixture-driven coverage of every lint rule: each rule has a fixture
//! that must trigger it and a twin that must stay clean. The fixtures
//! live under `tests/fixtures/` (outside the `crates/*/src` walk, so
//! they never pollute a real lint run) and are linted in-memory via
//! `lint_file`.

use ehsim_verify::allow::Allowlist;
use ehsim_verify::lint::{lint_file, Finding};

/// Lint a fixture as if it lived at `crates/<crate>/src/<name>`.
fn lint(crate_name: &str, virtual_path: &str, text: &str) -> Vec<Finding> {
    let mut allow = Allowlist::default();
    let mut out = Vec::new();
    let rel = format!("crates/{crate_name}/src/{virtual_path}");
    lint_file(crate_name, &rel, text, &mut allow, &mut out);
    out
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn l001_l007_crate_root_attributes() {
    let bad = lint("core", "lib.rs", include_str!("fixtures/root_bad.rs"));
    assert_eq!(rules_of(&bad), ["L001", "L007"]);
    let good = lint("core", "lib.rs", include_str!("fixtures/root_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // Non-root files are not required to carry the attributes.
    let non_root = lint("core", "util.rs", include_str!("fixtures/root_bad.rs"));
    assert!(non_root.is_empty(), "{non_root:?}");
}

#[test]
fn l002_wall_clock_and_randomness() {
    let bad = lint(
        "core",
        "time.rs",
        include_str!("fixtures/determinism_bad.rs"),
    );
    assert_eq!(rules_of(&bad), ["L002"; 5], "{bad:?}");
    let good = lint(
        "core",
        "time.rs",
        include_str!("fixtures/determinism_good.rs"),
    );
    assert!(
        good.is_empty(),
        "comments/strings/superstrings must not trip: {good:?}"
    );
    // The same source in a non-deterministic crate is out of scope.
    let bench = lint(
        "hwcost",
        "time.rs",
        include_str!("fixtures/determinism_bad.rs"),
    );
    assert!(bench.is_empty(), "{bench:?}");
}

#[test]
fn l003_hash_collections() {
    let bad = lint("obs", "tally.rs", include_str!("fixtures/hash_bad.rs"));
    assert_eq!(rules_of(&bad), ["L003"; 3], "{bad:?}");
    let good = lint("obs", "tally.rs", include_str!("fixtures/hash_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // bench is the one crate allowed to use hash collections.
    let bench = lint("bench", "tally.rs", include_str!("fixtures/hash_bad.rs"));
    assert!(bench.is_empty(), "{bench:?}");
}

#[test]
fn l004_library_panics() {
    let bad = lint("cache", "first.rs", include_str!("fixtures/panic_bad.rs"));
    assert_eq!(rules_of(&bad), ["L004"; 2], "{bad:?}");
    let good = lint("cache", "first.rs", include_str!("fixtures/panic_good.rs"));
    assert!(
        good.is_empty(),
        "cfg(test) + unwrap_or must not trip: {good:?}"
    );
}

#[test]
fn l005_unguarded_emission() {
    let bad = lint("sim", "rec.rs", include_str!("fixtures/emit_bad.rs"));
    assert_eq!(rules_of(&bad), ["L005"], "{bad:?}");
    let good = lint("sim", "rec.rs", include_str!("fixtures/emit_good.rs"));
    assert!(good.is_empty(), "{good:?}");
    // Outside the simulation crates the rule does not apply.
    let other = lint("workloads", "rec.rs", include_str!("fixtures/emit_bad.rs"));
    assert!(other.is_empty(), "{other:?}");
}

#[test]
fn l006_float_precision() {
    let bad = lint("energy", "seg.rs", include_str!("fixtures/float_bad.rs"));
    assert_eq!(rules_of(&bad), ["L006"; 2], "{bad:?}");
    let good = lint("energy", "seg.rs", include_str!("fixtures/float_good.rs"));
    assert!(
        good.is_empty(),
        "rounded casts and div_ceil must not trip: {good:?}"
    );
    // Non-timing crates may cast freely.
    let isa_like = lint("workloads", "seg.rs", include_str!("fixtures/float_bad.rs"));
    assert!(isa_like.is_empty(), "{isa_like:?}");
}

#[test]
fn allowlisted_findings_are_reported_but_not_denied() {
    let toml = r#"
[[allow]]
rule = "L004"
path = "crates/cache/src/first.rs"
contains = "expect(\"non-empty\")"
why = "fixture: expect on a slice the caller guarantees non-empty"
"#;
    let mut allow = Allowlist::parse(toml).expect("valid allowlist");
    let mut out = Vec::new();
    lint_file(
        "cache",
        "crates/cache/src/first.rs",
        include_str!("fixtures/panic_bad.rs"),
        &mut allow,
        &mut out,
    );
    let denied: Vec<_> = out.iter().filter(|f| !f.allowed).collect();
    let allowed: Vec<_> = out.iter().filter(|f| f.allowed).collect();
    assert_eq!(denied.len(), 1, "the unwrap stays denied: {out:?}");
    assert_eq!(allowed.len(), 1, "the expect is covered: {out:?}");
    assert!(allow.unused().is_empty());
}
