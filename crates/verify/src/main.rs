//! `ehsim-verify` CLI: `lint` and `model-check` subcommands.
//!
//! Exit codes: 0 = clean / invariants hold, 1 = findings or a
//! counterexample, 2 = usage or I/O error.

use ehsim_verify::allow::Allowlist;
use ehsim_verify::engine::{explore, Limits};
use ehsim_verify::lint::{lint_workspace, RULES};
use ehsim_verify::model::{Mutation, WriteBackModel};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ehsim-verify: workspace invariant linter + bounded model checker

USAGE:
  ehsim-verify lint [--root DIR] [--json] [--warn]
  ehsim-verify model-check [--depth N] [--max-states N] [--smoke]
                           [--mutant NAME]
  ehsim-verify rules

lint options:
  --root DIR    workspace root (default: nearest dir with verify-allow.toml
                or a crates/ folder, searching upward from .)
  --json        machine-readable findings on stdout
  --warn        report findings but always exit 0 (deny is the default)

model-check options:
  --depth N       BFS depth bound (default 12)
  --max-states N  distinct-state budget (default 1000000)
  --smoke         CI preset: --depth 8 --max-states 150000
  --mutant NAME   inject a protocol bug and expect a counterexample:
                  skip-jit-flush | skip-stale-drop | overfill-queue |
                  skip-min-recompute | lower-threshold | free-slot-at-issue
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "lint" => cmd_lint(&args[1..]),
        "model-check" => cmd_model_check(&args[1..]),
        "rules" => {
            for r in RULES {
                println!("{}  {} — {}", r.id, r.summary, r.rationale);
            }
            ExitCode::SUCCESS
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("ehsim-verify: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut warn = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_err("--root needs a value"),
            },
            "--json" => json = true,
            "--warn" => warn = true,
            other => return usage_err(&format!("unknown lint flag `{other}`")),
        }
    }
    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => return io_err(&e),
    };
    let mut allow = match Allowlist::load(&root) {
        Ok(a) => a,
        Err(e) => return io_err(&e),
    };
    let report = match lint_workspace(&root, &mut allow) {
        Ok(r) => r,
        Err(e) => return io_err(&e),
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for f in report.denied() {
            println!("{f}");
        }
        let denied = report.denied().count();
        let allowed = report.findings.len() - denied;
        println!(
            "ehsim-verify lint: {} files, {denied} finding(s), {allowed} allowlisted",
            report.files
        );
        for stale in &report.stale_allows {
            println!("stale allowlist entry (matches nothing): {stale}");
        }
    }
    if warn || !report.is_dirty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_model_check(args: &[String]) -> ExitCode {
    let mut limits = Limits {
        max_depth: 12,
        max_states: 1_000_000,
    };
    let mut mutation: Option<Mutation> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--depth" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => limits.max_depth = n,
                None => return usage_err("--depth needs an integer"),
            },
            "--max-states" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => limits.max_states = n,
                None => return usage_err("--max-states needs an integer"),
            },
            "--smoke" => {
                limits = Limits {
                    max_depth: 8,
                    max_states: 150_000,
                }
            }
            "--mutant" => {
                let Some(name) = it.next() else {
                    return usage_err("--mutant needs a name");
                };
                mutation = match name.as_str() {
                    "skip-jit-flush" => Some(Mutation::SkipJitFlush),
                    "skip-stale-drop" => Some(Mutation::SkipStaleDrop),
                    "overfill-queue" => Some(Mutation::OverfillQueue),
                    "skip-min-recompute" => Some(Mutation::SkipMinRecompute),
                    "lower-threshold" => Some(Mutation::LowerThresholdMidInterval),
                    "free-slot-at-issue" => Some(Mutation::FreeSlotAtIssue),
                    other => return usage_err(&format!("unknown mutant `{other}`")),
                };
            }
            other => return usage_err(&format!("unknown model-check flag `{other}`")),
        }
    }
    let model = WriteBackModel { mutation };
    let out = explore(&model, limits);
    println!(
        "ehsim-verify model-check: {} states, {} transitions, depth {}, {} dedup hits{}{}",
        out.states,
        out.transitions,
        out.max_depth,
        out.dedup_hits,
        if out.truncated { " (budget hit)" } else { "" },
        match mutation {
            Some(m) => format!(" [mutant {m:?}]"),
            None => String::new(),
        },
    );
    match (&out.violation, mutation) {
        (None, None) => {
            println!("all five protocol invariants hold on every explored state");
            ExitCode::SUCCESS
        }
        (Some(v), None) => {
            print!("{v}");
            ExitCode::FAILURE
        }
        (Some(v), Some(m)) => {
            println!("mutant {m:?} refuted, as expected:");
            print!("{v}");
            ExitCode::SUCCESS
        }
        (None, Some(m)) => {
            println!("mutant {m:?} survived the bounded search — invariant lacks teeth here");
            ExitCode::FAILURE
        }
    }
}

/// Search upward from the current directory for the workspace root:
/// the nearest ancestor holding `verify-allow.toml` or a `crates/` dir.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
    loop {
        if dir.join("verify-allow.toml").is_file() || dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(
                "no workspace root found (run from inside the repo or pass --root)".to_string(),
            );
        }
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("ehsim-verify: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn io_err(msg: &str) -> ExitCode {
    eprintln!("ehsim-verify: {msg}");
    ExitCode::from(2)
}
