//! Light lexical analysis of Rust source: comment/string blanking and
//! `#[cfg(test)]` region tracking.
//!
//! The linter works on *blanked* source — a copy of the file in which
//! the bodies of comments, string literals and char literals have been
//! replaced by spaces, preserving line structure and byte offsets. Rules
//! can then match tokens with plain substring/identifier scans without a
//! doc comment saying "never use `Instant`" tripping the `Instant` ban.

/// Returns `src` with comment and literal bodies replaced by spaces.
///
/// Handled: `//` line comments, nested `/* */` block comments, `"…"`
/// strings with escapes, raw strings `r"…"` / `r#"…"#` (any number of
/// hashes, with optional `b` prefix), and char literals (as opposed to
/// lifetimes). Newlines are preserved so line numbers are unchanged.
pub fn blank_non_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    // Pushes a blanked byte: newlines survive, everything else spaces.
    fn push_blank(out: &mut Vec<u8>, c: u8) {
        out.push(if c == b'\n' { b'\n' } else { b' ' });
    }
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                push_blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    push_blank(&mut out, b[i]);
                    push_blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    push_blank(&mut out, b[i]);
                    push_blank(&mut out, b[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"…", r#"…"#, br"…", …
        if (c == b'r' || c == b'b') && !prev_is_ident(&out) {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    // Copy the prefix verbatim, blank the body.
                    for &p in &b[i..=k] {
                        out.push(p);
                    }
                    i = k + 1;
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < b.len() && b[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                for &p in &b[i..i + 1 + hashes] {
                                    out.push(p);
                                }
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        push_blank(&mut out, b[i]);
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain string (with an optional byte prefix already consumed
        // above only for raw strings; `b"…"` lands here via the `"`).
        if c == b'"' {
            out.push(c);
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    push_blank(&mut out, b[i]);
                    push_blank(&mut out, b[i + 1]);
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    out.push(b[i]);
                    i += 1;
                    break;
                }
                push_blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote nearby) is a lifetime and is left untouched.
        if c == b'\'' && !prev_is_ident(&out) {
            let lit_len = if i + 2 < b.len() && b[i + 1] == b'\\' {
                // '\n', '\u{…}' — find the closing quote within reason.
                b[i + 2..b.len().min(i + 12)]
                    .iter()
                    .position(|&x| x == b'\'')
                    .map(|p| p + 3)
            } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                Some(3)
            } else {
                None
            };
            if let Some(n) = lit_len {
                out.push(b'\'');
                for &p in &b[i + 1..i + n - 1] {
                    push_blank(&mut out, p);
                }
                out.push(b'\'');
                i += n;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    // Blanking only substitutes ASCII bytes for ASCII bytes inside
    // literal bodies it fully consumed; multi-byte UTF-8 survives only
    // outside literals, where it is copied verbatim.
    String::from_utf8_lossy(&out).into_owned()
}

/// Whether the last emitted byte continues an identifier (used to tell
/// `r"…"` from an identifier ending in `r`, and `'a` from `b'c'`).
fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Per-line flags: `true` for lines inside a `#[cfg(test)]`-gated item
/// (typically `mod tests { … }`). Operates on *blanked* source.
pub fn test_region_lines(blanked: &str) -> Vec<bool> {
    let n_lines = blanked.lines().count();
    let mut mask = vec![false; n_lines];
    let bytes = blanked.as_bytes();
    // Byte offset -> line index.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut ln = 0usize;
    for &c in bytes {
        line_of.push(ln);
        if c == b'\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let needle = b"#[cfg(test)]";
    let mut from = 0usize;
    while let Some(pos) = find_from(bytes, needle, from) {
        from = pos + needle.len();
        // Scan forward to the gated item's opening brace; a `;` first
        // means the attribute gates a braceless item (empty region).
        let mut j = from;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(start) = open else { continue };
        // Match braces to the region's end.
        let mut depth = 0usize;
        let mut end = bytes.len();
        let mut k = start;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let (l0, l1) = (line_of[pos], line_of[end.min(bytes.len())]);
        for m in mask.iter_mut().take(n_lines.min(l1 + 1)).skip(l0) {
            *m = true;
        }
    }
    mask
}

fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() || needle.is_empty() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Whether `line` contains `word` as a standalone identifier (not as a
/// substring of a longer identifier). Intended for blanked lines.
pub fn has_ident(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let w = word.as_bytes();
    let mut from = 0usize;
    while let Some(p) = find_from(b, w, from) {
        let before_ok = p == 0 || !(b[p - 1].is_ascii_alphanumeric() || b[p - 1] == b'_');
        let after = p + w.len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = p + 1;
    }
    false
}

/// Whether the blanked line contains a floating-point literal token
/// (`3.3`, `1e-6`, `2.5e9`, `1f64`, `0.0f32`). Integer literals,
/// `div_ceil`-style identifiers and range `..` punctuation do not count.
pub fn has_float_literal(line: &str) -> bool {
    let b = line.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i].is_ascii_digit() {
            // Skip if this digit continues an identifier (e.g. `rf3`).
            if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                continue;
            }
            let start = i;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
            // `1.5` but not `1..4` (range) and not `1.method()`.
            if i < b.len()
                && b[i] == b'.'
                && i + 1 < b.len()
                && b[i + 1].is_ascii_digit()
                && !(i + 1 < b.len() && b[i + 1] == b'.')
            {
                return true;
            }
            // Exponent form: `1e6`, `1E-6`.
            if i < b.len()
                && (b[i] == b'e' || b[i] == b'E')
                && i + 1 < b.len()
                && (b[i + 1].is_ascii_digit()
                    || ((b[i + 1] == b'+' || b[i + 1] == b'-')
                        && i + 2 < b.len()
                        && b[i + 2].is_ascii_digit()))
            {
                return true;
            }
            // Float-suffixed: `1f64`.
            if line[i..].starts_with("f64") || line[i..].starts_with("f32") {
                return true;
            }
            let _ = start;
            continue;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let src = "let x = 1; // Instant here\n/* SystemTime\n spans lines */ let y = 2;\n";
        let out = blank_non_code(src);
        assert!(!out.contains("Instant"));
        assert!(!out.contains("SystemTime"));
        assert!(out.contains("let x = 1;"));
        assert!(out.contains("let y = 2;"));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn blanks_nested_block_comments() {
        let out = blank_non_code("/* outer /* inner */ HashMap */ keep");
        assert!(!out.contains("HashMap"));
        assert!(out.contains("keep"));
    }

    #[test]
    fn blanks_strings_but_keeps_quotes() {
        let out = blank_non_code("call(\"unwrap() inside\"); x.unwrap();");
        assert!(out.contains("x.unwrap();"));
        assert!(out.contains("call(\""));
        assert_eq!(out.matches("unwrap").count(), 1);
    }

    #[test]
    fn blanks_escaped_quotes_and_raw_strings() {
        let out = blank_non_code(r#"a("quote \" HashSet"); b(r#x#); "#);
        assert!(!out.contains("HashSet"));
        let out = blank_non_code("let s = r#\"raw f32 body\"#; f32_tok");
        assert!(!out.contains("raw f32 body"));
        assert!(out.contains("f32_tok"));
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let out = blank_non_code("let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!out.contains('x'));
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        let out = blank_non_code("let nl = '\\n'; let q = '\\'';");
        assert!(!out.contains("\\n"));
    }

    #[test]
    fn test_region_covers_cfg_test_mod() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\nfn tail() {}\n";
        let blanked = blank_non_code(src);
        let mask = test_region_lines(&blanked);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_braceless_item_is_empty_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { x.unwrap() }\n";
        let mask = test_region_lines(&blank_non_code(src));
        assert!(!mask[2], "the fn after a gated use must stay lintable");
    }

    #[test]
    fn ident_matching_is_boundary_aware() {
        assert!(has_ident("use std::time::Instant;", "Instant"));
        assert!(!has_ident("/// Instantaneous power", "Instant"));
        assert!(!has_ident("let rng = thread_rng_like();", "thread_rng"));
        assert!(has_ident("rand::thread_rng()", "thread_rng"));
    }

    #[test]
    fn float_literal_detection() {
        assert!(has_float_literal("let x = (dur_us * 1e6) as Ps;"));
        assert!(has_float_literal("let v = 3.3;"));
        assert!(has_float_literal("let v = 2.5e9;"));
        assert!(!has_float_literal("let lines = n.div_ceil(64) as usize;"));
        assert!(!has_float_literal("for i in 1..4 {}"));
        assert!(!has_float_literal("let t = rf3_trace();"));
    }
}
