//! The workspace invariant linter: deny-by-default, token/line level.
//!
//! Rules operate on *blanked* source (see [`crate::source`]) so that doc
//! comments and string literals can mention `Instant` or `unwrap()`
//! freely. Every rule has a stable ID and a one-line rationale that is
//! printed with each finding; known-good exceptions live in
//! `verify-allow.toml` with a written justification each.

use crate::allow::Allowlist;
use crate::source::{blank_non_code, has_float_literal, has_ident, test_region_lines};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The crates whose outputs must be bit-identical across runs: anything
/// that feeds simulated state, timing, or energy numbers.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "sim",
    "cache",
    "mem",
    "energy",
    "isa",
    "workloads",
    "obs",
    "analyze",
];

/// Crates whose arithmetic lands in picosecond/picojoule accounting and
/// therefore must stay in f64 with explicit rounding.
pub const TIMING_CRATES: &[&str] = &["core", "sim", "cache", "mem", "energy"];

/// A single lint rule: stable ID, summary, and the rationale printed
/// alongside every finding.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable identifier (`L001`…), referenced by `verify-allow.toml`.
    pub id: &'static str,
    /// One-line description of what the rule demands.
    pub summary: &'static str,
    /// Why the invariant matters for this workspace.
    pub rationale: &'static str,
}

/// The full rule catalogue, in ID order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "L001",
        summary: "every crate root carries #![forbid(unsafe_code)]",
        rationale: "unsafe anywhere would undermine the bit-exactness audit surface",
    },
    Rule {
        id: "L002",
        summary: "no Instant/SystemTime/thread_rng in deterministic crates",
        rationale: "wall-clock or OS randomness breaks run-to-run bit-identity",
    },
    Rule {
        id: "L003",
        summary: "no HashMap/HashSet outside crates/bench",
        rationale: "hash iteration order is nondeterministic; use BTreeMap or sorted drains",
    },
    Rule {
        id: "L004",
        summary: "no unwrap()/expect() in library code outside #[cfg(test)]",
        rationale: "library panics abort whole sweeps; bubble errors or prove the invariant",
    },
    Rule {
        id: "L005",
        summary: "observer emission sites are guarded by enabled()",
        rationale: "unguarded emits pay observer cost on the untraced hot path",
    },
    Rule {
        id: "L006",
        summary: "no f32 or unrounded float->int casts in energy/timing arithmetic",
        rationale: "f32 precision and `as` truncation silently perturb picosecond accounting",
    },
    Rule {
        id: "L007",
        summary: "every crate root carries #![warn(missing_docs)]",
        rationale: "public API drift is caught at the source, not in review",
    },
];

/// Look up a rule by ID.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One lint finding, pointing at a workspace-relative path and 1-based
/// line number.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule ID (`L001`…).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The offending source line, trimmed (empty for whole-file findings).
    pub excerpt: String,
    /// Whether an allowlist entry covers this finding.
    pub allowed: bool,
}

const UNKNOWN_RULE: Rule = Rule {
    id: "L???",
    summary: "unknown rule",
    rationale: "finding references a rule missing from the catalogue",
};

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = rule(self.rule).unwrap_or(&UNKNOWN_RULE);
        if self.line == 0 {
            write!(
                f,
                "{}: {}: {} — {}",
                self.rule, self.path, r.summary, r.rationale
            )
        } else {
            write!(
                f,
                "{}: {}:{}: `{}` — {}",
                self.rule, self.path, self.line, self.excerpt, r.rationale
            )
        }
    }
}

/// Outcome of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, allowlisted or not, in (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files: usize,
    /// Allowlist entries that matched nothing (fatal in deny mode).
    pub stale_allows: Vec<String>,
}

impl LintReport {
    /// Findings not covered by the allowlist.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// Whether deny mode should exit non-zero.
    pub fn is_dirty(&self) -> bool {
        self.denied().next().is_some() || !self.stale_allows.is_empty()
    }

    /// Render findings as a JSON array (machine-readable output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let r = rule(f.rule).unwrap_or(&UNKNOWN_RULE);
            out.push_str(&format!(
                "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"excerpt\":\"{}\",\"allowed\":{},\"rationale\":\"{}\"}}",
                f.rule,
                json_escape(&f.path),
                f.line,
                json_escape(&f.excerpt),
                f.allowed,
                json_escape(r.rationale),
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lint every `crates/*/src/**/*.rs` file under `root` against the full
/// rule catalogue, marking findings covered by `allow`.
pub fn lint_workspace(root: &Path, allow: &mut Allowlist) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in &crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-utf8 crate dir under {}", crates_dir.display()))?
            .to_string();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for file in files {
            report.files += 1;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            lint_file(&crate_name, &rel, &text, allow, &mut report.findings);
        }
    }
    report.stale_allows = allow.unused();
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint one file's text. `crate_name` is the `crates/<name>` component;
/// `rel` is the workspace-relative path used in findings.
pub fn lint_file(
    crate_name: &str,
    rel: &str,
    text: &str,
    allow: &mut Allowlist,
    out: &mut Vec<Finding>,
) {
    let blanked = blank_non_code(text);
    let in_test = test_region_lines(&blanked);
    let raw_lines: Vec<&str> = text.lines().collect();
    let lines: Vec<&str> = blanked.lines().collect();
    let is_bench = crate_name == "bench";
    let deterministic = DETERMINISTIC_CRATES.contains(&crate_name);
    let timing = TIMING_CRATES.contains(&crate_name);

    let mut push = |rule_id: &'static str, line: usize, out: &mut Vec<Finding>| {
        let excerpt = if line == 0 {
            String::new()
        } else {
            raw_lines.get(line - 1).map_or("", |l| l.trim()).to_string()
        };
        let allowed = allow.covers(rule_id, rel, &excerpt);
        out.push(Finding {
            rule: rule_id,
            path: rel.to_string(),
            line,
            excerpt,
            allowed,
        });
    };

    // L001 / L007: crate-root attributes. main.rs of a binary crate is a
    // crate root too, but only when it has no sibling lib.rs feeding it —
    // we keep it simple and require the attributes in lib.rs only, plus
    // main.rs when the crate has no lib.rs (not the case anywhere here).
    if rel.ends_with("/src/lib.rs") {
        if !lines.iter().any(|l| l.contains("#![forbid(unsafe_code)]")) {
            push("L001", 0, out);
        }
        if !lines.iter().any(|l| l.contains("#![warn(missing_docs)]")) {
            push("L007", 0, out);
        }
    }

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let test_line = in_test.get(idx).copied().unwrap_or(false);

        // L002: wall clock / OS randomness in deterministic crates.
        if deterministic
            && (has_ident(line, "Instant")
                || has_ident(line, "SystemTime")
                || has_ident(line, "thread_rng"))
        {
            push("L002", lineno, out);
        }

        // L003: hash collections anywhere but bench (tests included —
        // even a test iterating a HashMap can flake a golden).
        if !is_bench && (has_ident(line, "HashMap") || has_ident(line, "HashSet")) {
            push("L003", lineno, out);
        }

        // L004: panicking accessors in library code. The required open
        // paren keeps `unwrap_or`/`unwrap_or_else` out of scope.
        if !is_bench && !test_line && (line.contains(".unwrap(") || line.contains(".expect(")) {
            push("L004", lineno, out);
        }

        // L005: every observer emission in the simulation crates must sit
        // inside an `enabled()` guard; we accept the guard anywhere in
        // the preceding window (same fn in practice).
        if matches!(crate_name, "core" | "sim" | "cache" | "mem")
            && line.contains(".emit(")
            && !test_line
        {
            let lo = idx.saturating_sub(12);
            let guarded = lines[lo..=idx].iter().any(|l| l.contains("enabled()"));
            if !guarded {
                push("L005", lineno, out);
            }
        }

        // L006: f32 anywhere in timing crates; float->int `as` casts
        // without an explicit rounding call on the same line.
        if timing && !test_line {
            if has_ident(line, "f32") {
                push("L006", lineno, out);
            } else if has_float_literal(line) || has_ident(line, "f64") {
                let lossy_cast = [
                    " as Ps",
                    " as Pj",
                    " as u64",
                    " as u32",
                    " as i64",
                    " as usize",
                ]
                .iter()
                .any(|c| line.contains(c));
                let rounded = [".round()", ".ceil()", ".floor()", ".trunc()"]
                    .iter()
                    .any(|r| line.contains(r));
                if lossy_cast && !rounded {
                    push("L006", lineno, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::Allowlist;

    fn run(crate_name: &str, rel: &str, text: &str) -> Vec<Finding> {
        let mut allow = Allowlist::default();
        let mut out = Vec::new();
        lint_file(crate_name, rel, text, &mut allow, &mut out);
        out
    }

    #[test]
    fn catalogue_ids_are_unique_and_ordered() {
        for w in RULES.windows(2) {
            assert!(w[0].id < w[1].id);
        }
        assert!(RULES.len() >= 6, "issue demands at least 6 rules");
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let rep = LintReport {
            findings: run("core", "crates/core/src/x.rs", "use std::time::Instant;\n"),
            ..LintReport::default()
        };
        let json = rep.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"rule\":\"L002\""));
        assert!(json.contains("\"allowed\":false"));
    }
}
