//! A small bounded explicit-state model checker.
//!
//! [`explore`] runs a breadth-first search over a [`Model`]'s state
//! graph: every reachable state is checked against the model's
//! invariants, duplicate states are pruned by fingerprint, and an
//! invariant violation yields a [`Violation`] carrying the full action
//! trace from the initial state (a counterexample, minimal in length by
//! BFS construction). Models that cannot soundly fingerprint their
//! state (e.g. the concrete `WlCache` harness) return `None` from
//! [`Model::fingerprint`] and get exhaustive bounded enumeration
//! instead of dedup.

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt;

/// A transition system with checkable invariants.
pub trait Model {
    /// Full system state; cloned along the BFS frontier.
    type State: Clone;
    /// One enabled transition out of a state.
    type Action: Clone + fmt::Debug;

    /// The single initial state.
    fn initial(&self) -> Self::State;

    /// Enumerate the actions enabled in `state` into `out` (cleared by
    /// the caller). Determinism matters: the same state must always
    /// yield the same action list, in the same order.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Apply `action` to a copy of `state`. `Ok(None)` means the action
    /// turned out to be a no-op/disabled (the successor is discarded);
    /// `Err` is an invariant violation raised mid-transition.
    fn step(
        &self,
        state: &Self::State,
        action: &Self::Action,
    ) -> Result<Option<Self::State>, String>;

    /// Check every invariant of `state`; `Err` carries the violated
    /// invariant's description.
    fn check(&self, state: &Self::State) -> Result<(), String>;

    /// A collision-resistant-enough fingerprint for dedup, or `None` to
    /// disable dedup (every path is then explored to the depth bound).
    fn fingerprint(&self, state: &Self::State) -> Option<u64>;
}

/// Exploration budget.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum BFS depth (actions from the initial state).
    pub max_depth: usize,
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_depth: 64,
            max_states: 1_000_000,
        }
    }
}

/// A counterexample: the violated invariant plus the action trace that
/// reaches the bad state from the initial state.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Description of the violated invariant (from [`Model::check`] or
    /// a failing [`Model::step`]).
    pub message: String,
    /// Debug-rendered actions, in order, from the initial state.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.message)?;
        writeln!(f, "counterexample ({} steps):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {a}", i + 1)?;
        }
        Ok(())
    }
}

/// What an exploration did.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Distinct states visited (post-dedup).
    pub states: usize,
    /// Transitions taken (successor states generated, including dups).
    pub transitions: usize,
    /// Deepest level reached.
    pub max_depth: usize,
    /// Successors discarded because their fingerprint was already seen.
    pub dedup_hits: usize,
    /// Whether a budget limit cut the search short.
    pub truncated: bool,
    /// First invariant violation found, if any (search stops there).
    pub violation: Option<Violation>,
}

impl Outcome {
    /// Whether every explored state satisfied every invariant.
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Arena node for counterexample reconstruction.
struct Lineage<A> {
    parent: usize,
    action: Option<A>,
}

/// Breadth-first exploration of `model` within `limits`.
pub fn explore<M: Model>(model: &M, limits: Limits) -> Outcome {
    let mut out = Outcome::default();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut lineage: Vec<Lineage<M::Action>> = Vec::new();
    let mut frontier: VecDeque<(M::State, usize, usize)> = VecDeque::new();

    let init = model.initial();
    if let Err(msg) = model.check(&init) {
        out.states = 1;
        out.violation = Some(Violation {
            message: msg,
            trace: Vec::new(),
        });
        return out;
    }
    if let Some(fp) = model.fingerprint(&init) {
        seen.insert(fp);
    }
    lineage.push(Lineage {
        parent: usize::MAX,
        action: None,
    });
    frontier.push_back((init, 0, 0));
    out.states = 1;

    let mut actions: Vec<M::Action> = Vec::new();
    while let Some((state, node, depth)) = frontier.pop_front() {
        if depth >= limits.max_depth {
            out.truncated = true;
            continue;
        }
        actions.clear();
        model.actions(&state, &mut actions);
        for action in actions.iter() {
            let succ = match model.step(&state, action) {
                Ok(Some(s)) => s,
                Ok(None) => continue,
                Err(msg) => {
                    out.violation = Some(Violation {
                        message: msg,
                        trace: trace_of(&lineage, node, Some(action)),
                    });
                    return out;
                }
            };
            out.transitions += 1;
            if let Some(fp) = model.fingerprint(&succ) {
                if !seen.insert(fp) {
                    out.dedup_hits += 1;
                    continue;
                }
            }
            if let Err(msg) = model.check(&succ) {
                out.violation = Some(Violation {
                    message: msg,
                    trace: trace_of(&lineage, node, Some(action)),
                });
                return out;
            }
            out.states += 1;
            out.max_depth = out.max_depth.max(depth + 1);
            if out.states >= limits.max_states {
                out.truncated = true;
                return out;
            }
            lineage.push(Lineage {
                parent: node,
                action: Some(action.clone()),
            });
            frontier.push_back((succ, lineage.len() - 1, depth + 1));
        }
    }
    out
}

/// Reconstruct the action trace from the arena root to `node`, plus the
/// optional final action that produced the violating successor.
fn trace_of<A: Clone + fmt::Debug>(
    lineage: &[Lineage<A>],
    node: usize,
    last: Option<&A>,
) -> Vec<String> {
    let mut rev: Vec<String> = Vec::new();
    if let Some(a) = last {
        rev.push(format!("{a:?}"));
    }
    let mut cur = node;
    while cur != usize::MAX {
        let n = &lineage[cur];
        if let Some(a) = &n.action {
            rev.push(format!("{a:?}"));
        }
        cur = n.parent;
    }
    rev.reverse();
    rev
}

/// Drive `model` along a fixed action sequence, checking invariants
/// after every step. Useful for replaying counterexamples and for
/// directed scenario tests. Actions that report `Ok(None)` are skipped.
pub fn run_path<M: Model>(model: &M, path: &[M::Action]) -> Result<M::State, Violation> {
    let mut state = model.initial();
    let mut taken: Vec<String> = Vec::new();
    let fail = |msg: String, taken: &[String], a: &M::Action| Violation {
        message: msg,
        trace: taken.iter().cloned().chain([format!("{a:?}")]).collect(),
    };
    if let Err(msg) = model.check(&state) {
        return Err(Violation {
            message: msg,
            trace: Vec::new(),
        });
    }
    for a in path {
        match model.step(&state, a) {
            Ok(Some(s)) => state = s,
            Ok(None) => continue,
            Err(msg) => return Err(fail(msg, &taken, a)),
        }
        taken.push(format!("{a:?}"));
        if let Err(msg) = model.check(&state) {
            return Err(Violation {
                message: msg,
                trace: taken.clone(),
            });
        }
    }
    Ok(state)
}

/// FNV-1a 64-bit, the workspace's standard checksum primitive — small,
/// deterministic, dependency-free. Feed it bytes via [`Fnv::write`].
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb a u64 (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter mod N with increment/decrement; invariant: value != bad.
    struct Counter {
        n: u8,
        bad: Option<u8>,
    }

    #[derive(Clone, Debug)]
    enum Op {
        Inc,
        Dec,
    }

    impl Model for Counter {
        type State = u8;
        type Action = Op;
        fn initial(&self) -> u8 {
            0
        }
        fn actions(&self, _: &u8, out: &mut Vec<Op>) {
            out.push(Op::Inc);
            out.push(Op::Dec);
        }
        fn step(&self, s: &u8, a: &Op) -> Result<Option<u8>, String> {
            Ok(Some(match a {
                Op::Inc => (s + 1) % self.n,
                Op::Dec => (s + self.n - 1) % self.n,
            }))
        }
        fn check(&self, s: &u8) -> Result<(), String> {
            match self.bad {
                Some(b) if *s == b => Err(format!("reached forbidden value {b}")),
                _ => Ok(()),
            }
        }
        fn fingerprint(&self, s: &u8) -> Option<u64> {
            Some(u64::from(*s))
        }
    }

    #[test]
    fn dedup_visits_each_state_once() {
        let m = Counter { n: 10, bad: None };
        let out = explore(
            &m,
            Limits {
                max_depth: 100,
                max_states: 1000,
            },
        );
        assert!(out.holds());
        assert_eq!(out.states, 10);
        assert!(out.dedup_hits > 0);
        assert!(!out.truncated);
    }

    #[test]
    fn violation_trace_is_shortest_path() {
        let m = Counter {
            n: 10,
            bad: Some(7),
        };
        let out = explore(
            &m,
            Limits {
                max_depth: 100,
                max_states: 1000,
            },
        );
        let v = out.violation.expect("7 is reachable");
        // BFS reaches 7 fastest by three Dec steps (0 -> 9 -> 8 -> 7).
        assert_eq!(v.trace.len(), 3);
        assert!(v.to_string().contains("forbidden value 7"));
    }

    #[test]
    fn depth_limit_truncates_without_dedup() {
        struct NoFp;
        impl Model for NoFp {
            type State = u8;
            type Action = ();
            fn initial(&self) -> u8 {
                0
            }
            fn actions(&self, _: &u8, out: &mut Vec<()>) {
                out.push(());
            }
            fn step(&self, s: &u8, _: &()) -> Result<Option<u8>, String> {
                Ok(Some(s.wrapping_add(1)))
            }
            fn check(&self, _: &u8) -> Result<(), String> {
                Ok(())
            }
            fn fingerprint(&self, _: &u8) -> Option<u64> {
                None
            }
        }
        let out = explore(
            &NoFp,
            Limits {
                max_depth: 5,
                max_states: 1000,
            },
        );
        assert!(out.truncated);
        assert_eq!(out.max_depth, 5);
        assert_eq!(out.states, 6);
    }

    #[test]
    fn run_path_checks_every_step() {
        let m = Counter {
            n: 10,
            bad: Some(2),
        };
        assert!(run_path(&m, &[Op::Inc]).is_ok());
        let v = run_path(&m, &[Op::Inc, Op::Inc]).unwrap_err();
        assert_eq!(v.trace.len(), 2);
    }

    #[test]
    fn fnv_is_stable() {
        let mut h = Fnv::default();
        h.write(b"ehsim");
        let a = h.finish();
        let mut h2 = Fnv::default();
        h2.write(b"ehsim");
        assert_eq!(a, h2.finish());
        let mut h3 = Fnv::default();
        h3.write(b"ehsi m");
        assert_ne!(a, h3.finish());
    }
}
