//! `ehsim-verify`: the workspace's checked-in verification layer.
//!
//! Two independent tools live here, both wired into CI (see DESIGN.md
//! §2.7 for the full catalogue):
//!
//! * **The invariant linter** ([`lint`]): a token/line-level analyzer
//!   over `crates/*/src/**/*.rs` that enforces deny-by-default repo
//!   invariants — `#![forbid(unsafe_code)]` in every crate root, no
//!   wall-clock or OS randomness in the deterministic crates, no
//!   iteration-order-nondeterministic hash collections outside
//!   `crates/bench`, no `unwrap()`/`expect()` in library code, observer
//!   emission sites guarded by `enabled()`, and no `f32` or lossy
//!   float→int casts in energy/timing arithmetic. Known-good exceptions
//!   are carried by `verify-allow.toml` ([`allow`]), each with a written
//!   justification; stale entries fail the run.
//!
//! * **The bounded model checker** ([`engine`], [`model`]): a reusable
//!   explicit-state BFS over a [`engine::Model`] — state dedup by
//!   fingerprint, a configurable depth/state budget, and counterexample
//!   traces on invariant violations. [`model::WriteBackModel`] is an
//!   abstract, fully-fingerprintable model of the §5 asynchronous
//!   write-back protocol (a small direct-mapped cache with DirtyQueue,
//!   NVM, and in-flight ACKs) checked against five invariants; injectable
//!   protocol [`model::Mutation`]s demonstrate that each invariant has
//!   teeth. The concrete `WlCache` implementation is driven through the
//!   same engine by `crates/core/tests/protocol_exhaustive.rs`.
//!
//! Like `crates/bench`, this crate follows the workspace's offline
//! philosophy — it has *no* dependencies at all, which also lets
//! `wl-cache` use it as a dev-dependency without a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod engine;
pub mod lint;
pub mod model;
pub mod source;
