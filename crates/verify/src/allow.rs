//! The lint allowlist: `verify-allow.toml` at the workspace root.
//!
//! The file is a sequence of `[[allow]]` tables, each carrying the rule
//! ID, the workspace-relative path, an optional `contains` substring
//! matched against the offending line, and a mandatory written `why`.
//! The parser is a deliberately small TOML subset (tables of string
//! key/value pairs) so the crate stays dependency-free; entries that
//! match no finding fail deny mode, keeping the file honest.

use std::fmt;
use std::path::Path;

/// One `[[allow]]` entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule ID the exception applies to (`L004`…).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Substring the offending line must contain (empty = any line in
    /// the file, used for whole-file findings).
    pub contains: String,
    /// The written justification; mandatory and non-empty.
    pub why: String,
    used: bool,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} `{}`", self.rule, self.path, self.contains)
    }
}

/// The parsed allowlist with per-entry usage tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Load `verify-allow.toml` from `root`; a missing file is an empty
    /// allowlist (fresh trees start deny-clean).
    pub fn load(root: &Path) -> Result<Self, String> {
        let path = root.join("verify-allow.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Parse allowlist text. Strict: unknown keys, unknown rule IDs,
    /// missing `why`, or malformed lines are errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    entries.push(validated(e, lineno)?);
                }
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    contains: String::new(),
                    why: String::new(),
                    used: false,
                });
                continue;
            }
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "verify-allow.toml:{lineno}: key outside [[allow]] table"
                ));
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "verify-allow.toml:{lineno}: expected `key = \"value\"`"
                ));
            };
            let value = parse_string(value.trim()).ok_or_else(|| {
                format!("verify-allow.toml:{lineno}: value must be a quoted string")
            })?;
            match key.trim() {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = value,
                "why" => entry.why = value,
                other => {
                    return Err(format!("verify-allow.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(e) = current.take() {
            entries.push(validated(e, text.lines().count())?);
        }
        Ok(Self { entries })
    }

    /// Whether an entry covers this finding; marks the entry used.
    pub fn covers(&mut self, rule: &str, path: &str, excerpt: &str) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == rule
                && e.path == path
                && (e.contains.is_empty() || excerpt.contains(&e.contains))
            {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a finding, rendered for diagnostics.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| e.to_string())
            .collect()
    }

    /// Number of entries loaded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn validated(e: AllowEntry, lineno: usize) -> Result<AllowEntry, String> {
    if crate::lint::rule(&e.rule).is_none() {
        return Err(format!(
            "verify-allow.toml (entry before line {lineno}): unknown rule `{}`",
            e.rule
        ));
    }
    if e.path.is_empty() {
        return Err(format!(
            "verify-allow.toml (entry before line {lineno}): missing path"
        ));
    }
    if e.why.trim().is_empty() {
        return Err(format!(
            "verify-allow.toml (entry before line {lineno}): every exception needs a written why"
        ));
    }
    Ok(e)
}

/// Parse a basic TOML string literal: `"…"` with `\"` and `\\` escapes.
fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string: trailing junk
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# exceptions, one table per finding
[[allow]]
rule = "L004"
path = "crates/core/src/dirty_queue.rs"
contains = "expect(\"mark_cleaning"
why = "slot index comes from select_for_cleaning on the same queue"

[[allow]]
rule = "L006"
path = "crates/energy/src/trace.rs"
contains = "as Ps"
why = "truncation is load-bearing for byte-identity of results/"
"#;

    #[test]
    fn parses_and_tracks_usage() {
        let mut a = Allowlist::parse(GOOD).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.covers(
            "L004",
            "crates/core/src/dirty_queue.rs",
            r#"let e = self.entries.get_mut(i).expect("mark_cleaning idx");"#
        ));
        assert!(!a.covers("L004", "crates/core/src/cache.rs", "x.expect(\"y\")"));
        let unused = a.unused();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].contains("trace.rs"));
    }

    #[test]
    fn rejects_missing_why_and_unknown_rules() {
        let no_why = "[[allow]]\nrule = \"L004\"\npath = \"x.rs\"\n";
        assert!(Allowlist::parse(no_why).unwrap_err().contains("why"));
        let bad_rule = "[[allow]]\nrule = \"L999\"\npath = \"x.rs\"\nwhy = \"w\"\n";
        assert!(Allowlist::parse(bad_rule)
            .unwrap_err()
            .contains("unknown rule"));
        let bare_key = "rule = \"L004\"\n";
        assert!(Allowlist::parse(bare_key).unwrap_err().contains("outside"));
    }

    #[test]
    fn string_escapes_round_trip() {
        assert_eq!(parse_string(r#""a\"b\\c""#).unwrap(), "a\"b\\c");
        assert!(parse_string("\"unterminated").is_none());
        assert!(parse_string("bare").is_none());
    }
}
