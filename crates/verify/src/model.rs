//! An abstract, fully-fingerprintable model of the WL-Cache §5
//! asynchronous write-back protocol.
//!
//! The state is deliberately tiny — [`NUM_ADDRS`] cache-line addresses
//! over [`NUM_SETS`] direct-mapped sets, store values folded modulo
//! [`VAL_MOD`], a [`DQ_CAP`]-slot DirtyQueue and NVM/oracle images —
//! so breadth-first exploration with dedup covers the protocol's
//! interleavings (stores, loads with dirty evictions, cleaning issue,
//! out-of-order ACK delivery, and a crash at every step) far beyond
//! what fixed-length sequence enumeration reaches.
//!
//! Semantics mirror the concrete implementation in `crates/core` and
//! `crates/cache`:
//!
//! * an asynchronous line write lands in NVM **at issue** (only the ACK
//!   that frees the DirtyQueue slot is delayed), matching
//!   `MemCtx::async_line_write`;
//! * cleaning marks the line clean **before** issuing, so a racing
//!   store re-dirties the line and enqueues a redundant entry;
//! * stale entries (line no longer dirty, or set re-used by another
//!   address) are lazily dropped at selection time;
//! * a full queue first raises `maxline` dynamically (up to
//!   [`DQ_CAP`]), then stalls the store;
//! * power failure runs the JIT checkpoint — every still-dirty line is
//!   flushed — and reboots with a cold cache and base thresholds.
//!
//! Five invariants are checked at every state; see [`WriteBackModel`].
//! [`Mutation`]s inject one protocol bug each and are used by tests to
//! demonstrate that every invariant has teeth.

use crate::engine::{Fnv, Model};

/// Distinct line addresses in the model.
pub const NUM_ADDRS: u8 = 4;
/// Direct-mapped sets; address `a` maps to set `a % NUM_SETS`.
pub const NUM_SETS: u8 = 2;
/// Store values are per-address write counters folded mod this.
pub const VAL_MOD: u8 = 4;
/// DirtyQueue slots.
pub const DQ_CAP: u8 = 4;
/// `maxline` at the start of every power interval.
pub const BASE_MAXLINE: u8 = 3;
/// `waterline` at the start of every power interval.
pub const BASE_WATERLINE: u8 = 1;

/// Sentinel for a cached min-ACK that references a no-longer-
/// outstanding ticket (only reachable through a [`Mutation`]).
const STALE_TICKET: u8 = u8::MAX;

/// One DirtyQueue slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DqEntry {
    /// Enqueued, write-back not yet issued.
    Pending {
        /// Line address.
        addr: u8,
    },
    /// Write-back issued; the slot is held until the ACK arrives.
    Cleaning {
        /// Line address.
        addr: u8,
        /// Issue-order ticket; lower tickets were issued earlier.
        ticket: u8,
    },
}

/// One direct-mapped cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Line {
    /// Cached address.
    pub addr: u8,
    /// Cached value (write counter mod [`VAL_MOD`]).
    pub val: u8,
    /// Dirty bit.
    pub dirty: bool,
}

/// Full abstract system state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsState {
    /// Per-set cache contents.
    pub cache: [Option<Line>; NUM_SETS as usize],
    /// DirtyQueue slots, FIFO order.
    pub dq: Vec<DqEntry>,
    /// Cached minimum outstanding ACK ticket (mirrors the concrete
    /// DirtyQueue's `min_ack` incremental cache).
    pub dq_min_ack: Option<u8>,
    /// NVM image, one value per address.
    pub nvm: [u8; NUM_ADDRS as usize],
    /// Oracle: the value every committed store produced, per address.
    pub oracle: [u8; NUM_ADDRS as usize],
    /// Current `maxline` (dyn raises move it up within an interval).
    pub maxline: u8,
    /// Current `waterline`.
    pub waterline: u8,
    /// `maxline` at the start of the current power interval.
    pub interval_maxline: u8,
    /// `waterline` at the start of the current power interval.
    pub interval_waterline: u8,
    /// Next issue ticket (renormalized after every step).
    pub next_ticket: u8,
    /// Write-backs issued minus ACKs delivered this interval
    /// (renormalized so ACKed history does not grow the state).
    pub outstanding_wb: u8,
}

/// One enabled transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Act {
    /// CPU store to an address (allocates, may evict, dirties, enqueues).
    Store(u8),
    /// CPU load from an address (allocates clean on miss, may evict).
    Load(u8),
    /// Background cleaner issues one write-back from the DirtyQueue.
    IssueCleaning,
    /// The `k`-th smallest outstanding ACK ticket arrives (out-of-order
    /// delivery models multi-bank NVM completion).
    DeliverAck(u8),
    /// Sudden power failure: JIT checkpoint, then cold reboot.
    Crash,
}

/// A deliberately-injected protocol bug. Each mutation breaks exactly
/// one of the five invariants, proving the invariant has teeth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Crash skips the JIT checkpoint flush of dirty lines → I1.
    SkipJitFlush,
    /// Cleaning selection issues stale entries instead of dropping
    /// them, writing another line's data to the stale address → I1.
    SkipStaleDrop,
    /// Slot reservation neither respects `maxline` nor dyn-raises,
    /// overfilling the queue → I2.
    OverfillQueue,
    /// Delivering the minimum ACK skips the min-cache rescan → I3.
    SkipMinRecompute,
    /// Every ACK lowers `maxline`, moving thresholds down mid-interval
    /// → I4.
    LowerThresholdMidInterval,
    /// The DirtyQueue slot is freed at issue instead of at ACK, losing
    /// the in-flight write-back's accounting → I5.
    FreeSlotAtIssue,
}

/// The §5 write-back protocol as a checkable [`Model`].
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteBackModel {
    /// Injected bug, or `None` for the faithful protocol.
    pub mutation: Option<Mutation>,
}

impl WriteBackModel {
    /// The faithful protocol.
    pub fn faithful() -> Self {
        Self { mutation: None }
    }

    /// The protocol with one injected bug.
    pub fn mutated(m: Mutation) -> Self {
        Self { mutation: Some(m) }
    }

    fn is(&self, m: Mutation) -> bool {
        self.mutation == Some(m)
    }
}

fn set_of(addr: u8) -> usize {
    (addr % NUM_SETS) as usize
}

impl AbsState {
    fn cold() -> Self {
        Self {
            cache: [None; NUM_SETS as usize],
            dq: Vec::new(),
            dq_min_ack: None,
            nvm: [0; NUM_ADDRS as usize],
            oracle: [0; NUM_ADDRS as usize],
            maxline: BASE_MAXLINE,
            waterline: BASE_WATERLINE,
            interval_maxline: BASE_MAXLINE,
            interval_waterline: BASE_WATERLINE,
            next_ticket: 0,
            outstanding_wb: 0,
        }
    }

    /// Outstanding ACK tickets, ascending.
    fn outstanding(&self) -> Vec<u8> {
        let mut t: Vec<u8> = self
            .dq
            .iter()
            .filter_map(|e| match e {
                DqEntry::Cleaning { ticket, .. } => Some(*ticket),
                DqEntry::Pending { .. } => None,
            })
            .collect();
        t.sort_unstable();
        t
    }

    /// Renumber outstanding tickets to `0..n` (issue order preserved)
    /// so ACK history does not inflate the state space. A cached
    /// min-ACK pointing at a delivered ticket (mutant behaviour) maps
    /// to [`STALE_TICKET`] so the staleness stays visible to I3.
    fn normalize(&mut self) {
        let old = self.outstanding();
        let rank = |t: u8| old.iter().position(|&o| o == t).map(|p| p as u8);
        for e in &mut self.dq {
            if let DqEntry::Cleaning { ticket, .. } = e {
                if let Some(r) = rank(*ticket) {
                    *ticket = r;
                }
            }
        }
        self.dq_min_ack = self.dq_min_ack.map(|m| rank(m).unwrap_or(STALE_TICKET));
        self.next_ticket = old.len() as u8;
    }

    /// Reserve a DirtyQueue slot ahead of a push: dyn-raise `maxline`
    /// when full but below capacity, stall (return `false`) otherwise.
    fn reserve_slot(&mut self, model: &WriteBackModel) -> bool {
        if model.is(Mutation::OverfillQueue) {
            return (self.dq.len() as u8) < DQ_CAP;
        }
        if (self.dq.len() as u8) < self.maxline {
            return true;
        }
        if self.maxline < DQ_CAP {
            self.maxline += 1; // dynamic raise instead of stalling
            return true;
        }
        false
    }

    /// Evict the line in `set` if it holds a different address; dirty
    /// victims are written back synchronously (their queue entries go
    /// stale and are dropped lazily at selection).
    fn evict_for(&mut self, set: usize, addr: u8) {
        if let Some(line) = self.cache[set] {
            if line.addr != addr && line.dirty {
                self.nvm[line.addr as usize] = line.val;
            }
        }
    }
}

impl Model for WriteBackModel {
    type State = AbsState;
    type Action = Act;

    fn initial(&self) -> AbsState {
        AbsState::cold()
    }

    fn actions(&self, s: &AbsState, out: &mut Vec<Act>) {
        for a in 0..NUM_ADDRS {
            out.push(Act::Store(a));
            out.push(Act::Load(a));
        }
        if s.dq.iter().any(|e| matches!(e, DqEntry::Pending { .. })) {
            out.push(Act::IssueCleaning);
        }
        for k in 0..s.outstanding().len() as u8 {
            out.push(Act::DeliverAck(k));
        }
        out.push(Act::Crash);
    }

    fn step(&self, s: &AbsState, a: &Act) -> Result<Option<AbsState>, String> {
        let mut s = s.clone();
        match *a {
            Act::Store(addr) => {
                let set = set_of(addr);
                let hit_dirty = s.cache[set].is_some_and(|l| l.addr == addr && l.dirty);
                // A clean hit, a miss, and a conflict miss all need a
                // DirtyQueue slot before the line may turn dirty.
                if !hit_dirty && !s.reserve_slot(self) {
                    return Ok(None); // stall: progress needs an ACK
                }
                s.evict_for(set, addr);
                let val = (s.oracle[addr as usize] + 1) % VAL_MOD;
                s.oracle[addr as usize] = val;
                s.cache[set] = Some(Line {
                    addr,
                    val,
                    dirty: true,
                });
                if !hit_dirty {
                    s.dq.push(DqEntry::Pending { addr });
                }
            }
            Act::Load(addr) => {
                let set = set_of(addr);
                if s.cache[set].is_some_and(|l| l.addr == addr) {
                    return Ok(None); // hit: no state change
                }
                s.evict_for(set, addr);
                let val = s.nvm[addr as usize];
                s.cache[set] = Some(Line {
                    addr,
                    val,
                    dirty: false,
                });
            }
            Act::IssueCleaning => {
                // select_for_cleaning: walk from the head, dropping
                // stale pending entries, and issue the first live one.
                let mut issued = false;
                let mut dropped = false;
                let mut i = 0;
                while i < s.dq.len() {
                    let DqEntry::Pending { addr } = s.dq[i] else {
                        i += 1;
                        continue;
                    };
                    let set = set_of(addr);
                    let live = s.cache[set].is_some_and(|l| l.addr == addr && l.dirty);
                    if !live && !self.is(Mutation::SkipStaleDrop) {
                        s.dq.remove(i); // lazy stale drop
                        dropped = true;
                        continue;
                    }
                    // Mark clean *before* issue so a racing store
                    // re-dirties and re-enqueues (redundant entry).
                    if let Some(line) = s.cache[set].as_mut() {
                        if line.addr == addr {
                            line.dirty = false;
                        }
                    }
                    // The async line write lands in NVM at issue; only
                    // the slot-freeing ACK is delayed. A stale issue
                    // (mutant) writes whatever the set now holds.
                    let wb_val = match s.cache[set] {
                        Some(l) => l.val,
                        None => s.nvm[addr as usize],
                    };
                    s.nvm[addr as usize] = wb_val;
                    let ticket = s.next_ticket;
                    s.next_ticket += 1;
                    s.outstanding_wb += 1;
                    if self.is(Mutation::FreeSlotAtIssue) {
                        s.dq.remove(i);
                    } else {
                        s.dq[i] = DqEntry::Cleaning { addr, ticket };
                        s.dq_min_ack = Some(s.dq_min_ack.map_or(ticket, |m| m.min(ticket)));
                    }
                    issued = true;
                    break;
                }
                if !issued && !dropped {
                    return Ok(None);
                }
            }
            Act::DeliverAck(k) => {
                let outstanding = s.outstanding();
                let Some(&ticket) = outstanding.get(k as usize) else {
                    return Ok(None);
                };
                let Some(pos) = s
                    .dq
                    .iter()
                    .position(|e| matches!(e, DqEntry::Cleaning { ticket: t, .. } if *t == ticket))
                else {
                    return Ok(None);
                };
                s.dq.remove(pos); // the ACK frees the slot
                s.outstanding_wb = s.outstanding_wb.saturating_sub(1);
                if s.dq_min_ack == Some(ticket) && !self.is(Mutation::SkipMinRecompute) {
                    s.dq_min_ack = s.outstanding().first().copied();
                }
                if self.is(Mutation::LowerThresholdMidInterval) && s.maxline > 1 {
                    s.maxline -= 1;
                }
            }
            Act::Crash => {
                // JIT checkpoint: flush every still-dirty line, then
                // lose all volatile state and reboot on base thresholds.
                if !self.is(Mutation::SkipJitFlush) {
                    for line in s.cache.into_iter().flatten() {
                        if line.dirty {
                            s.nvm[line.addr as usize] = line.val;
                        }
                    }
                }
                let nvm = s.nvm;
                let oracle = s.oracle;
                s = AbsState::cold();
                s.nvm = nvm;
                s.oracle = oracle;
            }
        }
        s.normalize();
        Ok(Some(s))
    }

    fn check(&self, s: &AbsState) -> Result<(), String> {
        // I1: every address that is not dirty in the cache must be
        // consistent in NVM (async writes land at issue; dirty evictions
        // and the JIT checkpoint flush synchronously). Post-recovery
        // consistency is this invariant at the cold post-crash state.
        for a in 0..NUM_ADDRS {
            let dirty_in_cache = s.cache[set_of(a)].is_some_and(|l| l.addr == a && l.dirty);
            if !dirty_in_cache && s.nvm[a as usize] != s.oracle[a as usize] {
                return Err(format!(
                    "I1 nvm-consistency: addr {a} is clean but NVM has {} where the oracle has {}",
                    s.nvm[a as usize], s.oracle[a as usize]
                ));
            }
        }
        // I2: occupancy bounded by maxline, maxline by capacity.
        if s.dq.len() as u8 > s.maxline || s.maxline > DQ_CAP {
            return Err(format!(
                "I2 occupancy: {} entries with maxline {} (cap {DQ_CAP})",
                s.dq.len(),
                s.maxline
            ));
        }
        // I3: the incremental min-ACK cache agrees with a full scan.
        let scanned = s.outstanding().first().copied();
        if s.dq_min_ack != scanned {
            return Err(format!(
                "I3 min-ack: cached {:?} but scan finds {scanned:?}",
                s.dq_min_ack
            ));
        }
        // I4: thresholds only move up within a power interval.
        if s.maxline < s.interval_maxline || s.waterline < s.interval_waterline {
            return Err(format!(
                "I4 threshold-monotonic: maxline {} / waterline {} fell below interval start {} / {}",
                s.maxline, s.waterline, s.interval_maxline, s.interval_waterline
            ));
        }
        // I5: write-back accounting — every issued write-back holds
        // exactly one Cleaning slot until its ACK, none lost, none
        // double-freed.
        let cleaning =
            s.dq.iter()
                .filter(|e| matches!(e, DqEntry::Cleaning { .. }))
                .count() as u8;
        if s.outstanding_wb != cleaning {
            return Err(format!(
                "I5 wb-accounting: {} write-backs in flight but {cleaning} Cleaning slots",
                s.outstanding_wb
            ));
        }
        let tickets = s.outstanding();
        if tickets.windows(2).any(|w| w[0] == w[1]) {
            return Err("I5 wb-accounting: duplicate ACK tickets".to_string());
        }
        Ok(())
    }

    fn fingerprint(&self, s: &AbsState) -> Option<u64> {
        let mut h = Fnv::default();
        for line in &s.cache {
            match line {
                None => h.write(&[0xff]),
                Some(l) => h.write(&[l.addr, l.val, u8::from(l.dirty)]),
            }
        }
        h.write(&[0xfe]);
        for e in &s.dq {
            match e {
                DqEntry::Pending { addr } => h.write(&[1, *addr]),
                DqEntry::Cleaning { addr, ticket } => h.write(&[2, *addr, *ticket]),
            }
        }
        h.write(&[0xfd, s.dq_min_ack.unwrap_or(0xfc)]);
        h.write(&s.nvm);
        h.write(&s.oracle);
        h.write(&[
            s.maxline,
            s.waterline,
            s.interval_maxline,
            s.interval_waterline,
            s.next_ticket,
            s.outstanding_wb,
        ]);
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{explore, run_path, Limits};

    #[test]
    fn faithful_model_smoke_holds() {
        let out = explore(
            &WriteBackModel::faithful(),
            Limits {
                max_depth: 6,
                max_states: 50_000,
            },
        );
        assert!(out.holds(), "{:?}", out.violation);
        assert!(out.states > 1_000);
        assert!(out.dedup_hits > 0, "crash transitions must dedup");
    }

    #[test]
    fn racing_store_creates_redundant_entry_and_survives() {
        // Store A, issue its cleaning (line marked clean before issue),
        // store A again while the write-back is in flight: the line
        // re-dirties and a second entry rides the queue. Crash at the
        // worst moment and the oracle must still match.
        let path = [Act::Store(0), Act::IssueCleaning, Act::Store(0), Act::Crash];
        let end = run_path(&WriteBackModel::faithful(), &path).expect("no violation");
        assert_eq!(end.nvm, end.oracle);
        assert!(end.dq.is_empty());
    }

    #[test]
    fn stale_entry_is_dropped_at_selection() {
        // Store A (set 0), then store C (same set) to evict A: A's
        // pending entry goes stale; selection must drop it and issue C.
        let path = [Act::Store(0), Act::Store(2), Act::IssueCleaning];
        let end = run_path(&WriteBackModel::faithful(), &path).expect("no violation");
        // A was synchronously written back at eviction; C's async write
        // landed at issue.
        assert_eq!(end.nvm[0], end.oracle[0]);
        assert_eq!(end.nvm[2], end.oracle[2]);
        let cleanings = end
            .dq
            .iter()
            .filter(|e| matches!(e, DqEntry::Cleaning { addr: 2, .. }))
            .count();
        assert_eq!(
            cleanings, 1,
            "C issued, A's stale entry dropped: {:?}",
            end.dq
        );
    }

    #[test]
    fn every_mutation_is_caught_by_its_invariant() {
        let cases = [
            (Mutation::SkipJitFlush, "I1"),
            (Mutation::SkipStaleDrop, "I1"),
            (Mutation::OverfillQueue, "I2"),
            (Mutation::SkipMinRecompute, "I3"),
            (Mutation::LowerThresholdMidInterval, "I4"),
            (Mutation::FreeSlotAtIssue, "I5"),
        ];
        for (m, inv) in cases {
            let out = explore(
                &WriteBackModel::mutated(m),
                Limits {
                    max_depth: 10,
                    max_states: 200_000,
                },
            );
            let v = out
                .violation
                .unwrap_or_else(|| panic!("{m:?} must produce a counterexample"));
            assert!(
                v.message.starts_with(inv),
                "{m:?}: expected {inv} violation, got: {}",
                v.message
            );
            assert!(!v.trace.is_empty(), "{m:?}: counterexample must have steps");
        }
    }
}
