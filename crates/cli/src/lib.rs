//! Command-line driver for the WL-Cache energy-harvesting simulator.
//!
//! ```text
//! ehsim-cli run --workload sha --design wl --trace rf1 --verify
//! ehsim-cli compare --workload qsort --trace rf2
//! ehsim-cli list
//! ```
//!
//! The argument parser is hand-rolled (the workspace keeps its
//! dependency set to the offline-approved crates) and exposed from this
//! library so it can be unit-tested; `src/main.rs` is a thin shell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ehsim::{BusTrace, DesignKind, Report, SimConfig, Simulator};
use ehsim_cache::{CacheGeometry, ReplacementPolicy};
use ehsim_energy::TraceKind;
use ehsim_mem::{import_column_trace, BusOp, Workload};
use ehsim_workloads::{all23, Scale};
use std::fmt::Write as _;
use std::path::Path;
use wl_cache::{AdaptationMode, DqPolicy, Thresholds};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one workload under one configuration.
    Run(RunOptions),
    /// Run one workload under every design and print a comparison.
    Compare(RunOptions),
    /// List available workloads, designs and traces.
    List,
    /// Structurally validate a Chrome trace JSON written by
    /// `--trace-out`.
    ValidateTrace(String),
    /// Diff two recorded traces (any format `ehsim-analyze` loads),
    /// reporting the first diverging power-on interval.
    DiffTraces(String, String),
    /// Run one workload with voltage sampling and export the capacitor
    /// trajectory as TSV and/or SVG.
    VoltagePlot(PlotOptions),
    /// Convert a recorded trace (typically a streamed JSONL capture)
    /// into Chrome trace JSON.
    ConvertTrace(ConvertOptions),
    /// Record a workload's Bus access stream to a `.bustrace` file.
    RecordBus(RecordOptions),
    /// Replay a recorded Bus trace under one configuration.
    ReplayTrace(ReplayOptions),
    /// Import an external column trace (`addr,op` lines) into the
    /// native Bus-trace format.
    ImportTrace(ImportOptions),
    /// Print usage.
    Help,
}

/// Options for `record-bus`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordOptions {
    /// Workload label to record.
    pub workload: String,
    /// Workload scale.
    pub scale: Scale,
    /// Output trace path.
    pub output: String,
}

/// Options for `replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOptions {
    /// Machine configuration (design/trace/cache flags as for `run`;
    /// the workload/scale fields are ignored — the trace supplies the
    /// access stream).
    pub run: RunOptions,
    /// Input trace path (`record-bus` or `import-trace` output).
    pub input: String,
    /// Cross-check the replay against a direct execution of the
    /// recorded workload (native workloads only).
    pub check: bool,
}

/// Options for `import-trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportOptions {
    /// Input column-trace path (`addr,op` lines; see EXPERIMENTS.md).
    pub input: String,
    /// Output `.bustrace` path.
    pub output: String,
    /// Trace name embedded in the file (defaults to the input's file
    /// stem).
    pub name: Option<String>,
}

/// Options for `voltage-plot`: a normal run plus export destinations.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotOptions {
    /// The run to sample (workload/design/trace flags as for `run`).
    pub run: RunOptions,
    /// Write the trajectory as two-column TSV here.
    pub tsv_out: Option<String>,
    /// Write the trajectory as a self-contained SVG chart here.
    pub svg_out: Option<String>,
}

/// Options for `convert-trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertOptions {
    /// Input trace path (JSONL stream or Chrome JSON).
    pub input: String,
    /// Output Chrome trace JSON path.
    pub output: String,
    /// Process name for the converted trace (defaults to the source's
    /// name, or the input path).
    pub name: Option<String>,
}

/// Options shared by `run` and `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Workload label (paper figure name, e.g. `sha`).
    pub workload: String,
    /// Design selector (ignored by `compare`).
    pub design: String,
    /// Trace selector.
    pub trace: String,
    /// Path to a recorded trace file (overrides `trace`).
    pub trace_file: Option<String>,
    /// Workload scale.
    pub scale: Scale,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Set associativity.
    pub ways: u32,
    /// WL-Cache maxline (static configurations).
    pub maxline: Option<usize>,
    /// DirtyQueue replacement policy.
    pub dq_policy: DqPolicy,
    /// Adaptation mode for WL-Cache.
    pub adaptation: AdaptationMode,
    /// Cache replacement policy.
    pub cache_policy: ReplacementPolicy,
    /// Capacitor size in µF.
    pub capacitor_uf: f64,
    /// Verify crash consistency at every checkpoint.
    pub verify: bool,
    /// Write a Chrome `trace_event` JSON timeline here (`run` only).
    pub trace_out: Option<String>,
    /// Write per-power-interval metrics TSV here (`run` only).
    pub metrics_out: Option<String>,
    /// Stream events incrementally as JSON-lines to this path
    /// (`run` only; constant memory, unlike `--trace-out`).
    pub stream_out: Option<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            workload: "sha".into(),
            design: "wl".into(),
            trace: "none".into(),
            trace_file: None,
            scale: Scale::Default,
            cache_bytes: 1024,
            ways: 2,
            maxline: None,
            dq_policy: DqPolicy::Fifo,
            adaptation: AdaptationMode::Adaptive,
            cache_policy: ReplacementPolicy::Lru,
            capacitor_uf: 1.0,
            verify: false,
            trace_out: None,
            metrics_out: None,
            stream_out: None,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
ehsim-cli — WL-Cache energy-harvesting simulator

USAGE:
  ehsim-cli run     --workload <name> [--design <d>] [--trace <t>] [options]
  ehsim-cli compare --workload <name> [--trace <t>] [options]
  ehsim-cli voltage-plot --workload <name> [--tsv-out <p>] [--svg-out <p>] [options]
  ehsim-cli record-bus --workload <name> --out <p.bustrace> [--scale <s>]
  ehsim-cli replay --in <p.bustrace> [--design <d>] [--trace <t>] [--check] [options]
  ehsim-cli import-trace <in.txt> <out.bustrace> [--name <s>]
  ehsim-cli diff-traces <a> <b>
  ehsim-cli convert-trace <in.jsonl> <out.json> [--name <s>]
  ehsim-cli validate-trace <path>
  ehsim-cli list
  ehsim-cli help

OPTIONS:
  --workload <name>     one of the 23 paper kernels (see `list`)
  --design <d>          wl | wl-dyn | nvsram | wt | nvcache | replay | wbuf
  --trace <t>           none | rf1 | rf2 | rf3 | solar | thermal
  --trace-file <path>   recorded trace file (duration_us power_uw lines)
  --scale <s>           small | default          (default: default)
  --cache <bytes>       cache size               (default: 1024)
  --ways <n>            associativity            (default: 2)
  --maxline <n>         static WL maxline 1..8   (default: adaptive)
  --dq-policy <p>       fifo | lru               (default: fifo)
  --adaptation <a>      static | adaptive | dynamic
  --cache-policy <p>    lru | fifo               (default: lru)
  --capacitor-uf <f>    capacitor size in uF     (default: 1.0)
  --verify              oracle-check every checkpoint
  --trace-out <path>    write a Chrome trace_event JSON timeline
                        (open in chrome://tracing or ui.perfetto.dev)
  --metrics-out <path>  write per-power-interval metrics as TSV
  --stream-out <path>   stream events as JSON-lines while running
                        (constant memory; reload with diff-traces or
                        convert-trace)
  --tsv-out <path>      voltage-plot: write the trajectory as TSV
  --svg-out <path>      voltage-plot: write the trajectory as SVG
  --out <path>          record-bus: output trace path
  --in <path>           replay: input trace path
  --check               replay: also run the recorded workload directly
                        and fail unless both reports are identical

`record-bus` captures a workload's Bus access stream once (one kernel
execution over flat memory); `replay` drives the full machine from the
recorded stream, reproducing a direct run's report bit-for-bit.
`diff-traces` accepts two `.bustrace` files and reports the first
diverging Bus operation.
";

/// Parses a command line (without the binary name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, flags or
/// values.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "validate-trace" => match args.get(1) {
            Some(path) => Ok(Command::ValidateTrace(path.clone())),
            None => Err("validate-trace needs a file path".into()),
        },
        "diff-traces" => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => Ok(Command::DiffTraces(a.clone(), b.clone())),
            _ => Err("diff-traces needs two trace paths".into()),
        },
        "convert-trace" => {
            let (Some(input), Some(output)) = (args.get(1), args.get(2)) else {
                return Err("convert-trace needs an input and an output path".into());
            };
            let mut name = None;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--name" => {
                        name = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| "--name needs a value".to_string())?,
                        )
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::ConvertTrace(ConvertOptions {
                input: input.clone(),
                output: output.clone(),
                name,
            }))
        }
        "record-bus" => {
            let mut workload = None;
            let mut scale = Scale::Default;
            let mut output = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--workload" => workload = Some(value("--workload")?),
                    "--out" => output = Some(value("--out")?),
                    "--scale" => {
                        scale = match value("--scale")?.as_str() {
                            "small" => Scale::Small,
                            "default" => Scale::Default,
                            other => return Err(format!("unknown scale '{other}'")),
                        }
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::RecordBus(RecordOptions {
                workload: workload.ok_or("record-bus needs --workload")?,
                scale,
                output: output.ok_or("record-bus needs --out")?,
            }))
        }
        "import-trace" => {
            let (Some(input), Some(output)) = (args.get(1), args.get(2)) else {
                return Err("import-trace needs an input and an output path".into());
            };
            let mut name = None;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--name" => {
                        name = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| "--name needs a value".to_string())?,
                        )
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::ImportTrace(ImportOptions {
                input: input.clone(),
                output: output.clone(),
                name,
            }))
        }
        "run" | "compare" | "voltage-plot" | "replay" => {
            let mut opt = RunOptions::default();
            let mut tsv_out = None;
            let mut svg_out = None;
            let mut replay_in = None;
            let mut replay_check = false;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--workload" => opt.workload = value("--workload")?,
                    "--design" => opt.design = value("--design")?,
                    "--trace" => opt.trace = value("--trace")?,
                    "--trace-file" => opt.trace_file = Some(value("--trace-file")?),
                    "--scale" => {
                        opt.scale = match value("--scale")?.as_str() {
                            "small" => Scale::Small,
                            "default" => Scale::Default,
                            other => return Err(format!("unknown scale '{other}'")),
                        }
                    }
                    "--cache" => {
                        opt.cache_bytes = value("--cache")?
                            .parse()
                            .map_err(|e| format!("--cache: {e}"))?
                    }
                    "--ways" => {
                        opt.ways = value("--ways")?
                            .parse()
                            .map_err(|e| format!("--ways: {e}"))?
                    }
                    "--maxline" => {
                        opt.maxline = Some(
                            value("--maxline")?
                                .parse()
                                .map_err(|e| format!("--maxline: {e}"))?,
                        )
                    }
                    "--dq-policy" => {
                        opt.dq_policy = match value("--dq-policy")?.as_str() {
                            "fifo" => DqPolicy::Fifo,
                            "lru" => DqPolicy::Lru,
                            other => return Err(format!("unknown DQ policy '{other}'")),
                        }
                    }
                    "--adaptation" => {
                        opt.adaptation = match value("--adaptation")?.as_str() {
                            "static" => AdaptationMode::Static,
                            "adaptive" => AdaptationMode::Adaptive,
                            "dynamic" => AdaptationMode::Dynamic,
                            other => return Err(format!("unknown adaptation '{other}'")),
                        }
                    }
                    "--cache-policy" => {
                        opt.cache_policy = match value("--cache-policy")?.as_str() {
                            "lru" => ReplacementPolicy::Lru,
                            "fifo" => ReplacementPolicy::Fifo,
                            other => return Err(format!("unknown cache policy '{other}'")),
                        }
                    }
                    "--capacitor-uf" => {
                        opt.capacitor_uf = value("--capacitor-uf")?
                            .parse()
                            .map_err(|e| format!("--capacitor-uf: {e}"))?
                    }
                    "--verify" => opt.verify = true,
                    "--trace-out" => opt.trace_out = Some(value("--trace-out")?),
                    "--metrics-out" => opt.metrics_out = Some(value("--metrics-out")?),
                    "--stream-out" => opt.stream_out = Some(value("--stream-out")?),
                    "--tsv-out" if cmd == "voltage-plot" => {
                        tsv_out = Some(value("--tsv-out")?);
                    }
                    "--svg-out" if cmd == "voltage-plot" => {
                        svg_out = Some(value("--svg-out")?);
                    }
                    "--in" if cmd == "replay" => replay_in = Some(value("--in")?),
                    "--check" if cmd == "replay" => replay_check = true,
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            match cmd.as_str() {
                "run" => Ok(Command::Run(opt)),
                "compare" => Ok(Command::Compare(opt)),
                "replay" => Ok(Command::ReplayTrace(ReplayOptions {
                    run: opt,
                    input: replay_in.ok_or("replay needs --in <trace>")?,
                    check: replay_check,
                })),
                _ => Ok(Command::VoltagePlot(PlotOptions {
                    run: opt,
                    tsv_out,
                    svg_out,
                })),
            }
        }
        other => Err(format!("unknown command '{other}' (try `help`)")),
    }
}

/// Resolves a trace selector.
///
/// # Errors
///
/// Returns a message listing the valid selectors.
pub fn trace_of(name: &str) -> Result<TraceKind, String> {
    Ok(match name {
        "none" => TraceKind::None,
        "rf1" => TraceKind::Rf1,
        "rf2" => TraceKind::Rf2,
        "rf3" => TraceKind::Rf3,
        "solar" => TraceKind::Solar,
        "thermal" => TraceKind::Thermal,
        other => {
            return Err(format!(
                "unknown trace '{other}' (none|rf1|rf2|rf3|solar|thermal)"
            ))
        }
    })
}

/// Builds the [`SimConfig`] described by `opt`.
///
/// # Errors
///
/// Returns a message for unknown designs/traces or invalid thresholds.
pub fn config_of(opt: &RunOptions) -> Result<SimConfig, String> {
    let design = match opt.design.as_str() {
        "wl" => {
            let thresholds = match opt.maxline {
                Some(m) => Thresholds::with_maxline(8, m).map_err(|e| e.to_string())?,
                None => Thresholds::paper_default(),
            };
            let adaptation = if opt.maxline.is_some() {
                AdaptationMode::Static
            } else {
                opt.adaptation
            };
            DesignKind::Wl {
                thresholds,
                dq_policy: opt.dq_policy,
                adaptation,
            }
        }
        "wl-dyn" => DesignKind::Wl {
            thresholds: Thresholds::paper_default(),
            dq_policy: opt.dq_policy,
            adaptation: AdaptationMode::Dynamic,
        },
        "nvsram" => DesignKind::NvSram,
        "wt" => DesignKind::VCacheWt,
        "nvcache" => DesignKind::NvCacheWb,
        "replay" => DesignKind::Replay { region_instrs: 64 },
        "wbuf" => DesignKind::WBuf { capacity: 6 },
        other => return Err(format!("unknown design '{other}'")),
    };
    let mut cfg = SimConfig::wl_cache();
    cfg.design = design;
    cfg.geometry = CacheGeometry::new(opt.cache_bytes, opt.ways, 64);
    cfg.cache_policy = opt.cache_policy;
    cfg = cfg
        .with_trace(trace_of(&opt.trace)?)
        .with_capacitor_uf(opt.capacitor_uf);
    if let Some(path) = &opt.trace_file {
        let trace =
            ehsim_energy::load_trace(path).map_err(|e| format!("--trace-file {path}: {e}"))?;
        cfg = cfg.with_custom_trace(trace);
    }
    if opt.verify {
        cfg = cfg.with_verify();
    }
    Ok(cfg)
}

/// Finds a workload by its figure label.
///
/// # Errors
///
/// Returns a message listing valid names.
pub fn workload_of(name: &str, scale: Scale) -> Result<Box<dyn Workload>, String> {
    all23(scale)
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            let names: Vec<String> = all23(Scale::Small)
                .iter()
                .map(|w| w.name().to_string())
                .collect();
            format!("unknown workload '{name}'; one of: {}", names.join(", "))
        })
}

/// Renders one report as a human-readable block.
pub fn render_report(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "workload      {}", r.workload);
    let _ = writeln!(s, "design        {}", r.design);
    let _ = writeln!(s, "trace         {}", r.trace);
    let _ = writeln!(s, "time          {:.3} ms", r.total_seconds() * 1e3);
    let _ = writeln!(
        s,
        "  on / off    {:.3} / {:.3} ms",
        r.on_time_ps as f64 / 1e9,
        r.off_time_ps as f64 / 1e9
    );
    let _ = writeln!(s, "outages       {}", r.outages);
    let _ = writeln!(s, "instructions  {}", r.instructions);
    let _ = writeln!(s, "hit rate      {:.2} %", r.cache.hit_rate() * 100.0);
    let _ = writeln!(s, "NVM writes    {} B", r.cache.nvm_write_bytes);
    let _ = writeln!(s, "energy        {:.2} uJ", r.energy.total() / 1e6);
    let _ = writeln!(s, "checksum      {:#018x}", r.checksum);
    if let Some(wl) = &r.wl {
        let _ = writeln!(
            s,
            "WL            maxline {}..{}, {} reconfigs, {} stalls \
             ({:.3} % of total time, {:.3} % of on-time)",
            wl.maxline_min,
            wl.maxline_max,
            wl.reconfigurations,
            wl.stalls,
            wl.stall_fraction * 100.0,
            wl.stall_fraction_on * 100.0
        );
    }
    s
}

/// True when the file at `path` starts with the Bus-trace magic.
///
/// # Errors
///
/// Returns a message when the file cannot be read.
fn sniff_bus_trace(path: &str) -> Result<bool, String> {
    let mut head = [0u8; 8];
    let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let n = std::io::Read::read(&mut f, &mut head).map_err(|e| format!("{path}: {e}"))?;
    Ok(BusTrace::sniff(&head[..n]))
}

/// Renders one recorded/imported Bus trace as a summary block.
fn render_bus_summary(trace: &BusTrace, path: &str) -> String {
    let c = trace.counts();
    let mut s = String::new();
    let _ = writeln!(s, "trace         {path}");
    let _ = writeln!(s, "name          {}", trace.name());
    let _ = writeln!(s, "mem           {} B", trace.mem_bytes());
    let _ = writeln!(
        s,
        "ops           {} loads, {} stores, {} computes ({} cycles)",
        c.loads, c.stores, c.computes, c.compute_cycles
    );
    let _ = writeln!(s, "encoded       {} B", trace.encoded_len());
    let _ = writeln!(s, "checksum      {:#018x}", trace.checksum());
    s
}

/// Renders one side of a Bus-trace divergence.
fn render_bus_op(op: Option<BusOp>) -> String {
    match op {
        None => "<end of stream>".into(),
        Some(BusOp::Load { addr, size }) => format!("load  {addr:#010x} x{}", size.bytes()),
        Some(BusOp::Store { addr, size }) => format!("store {addr:#010x} x{}", size.bytes()),
        Some(BusOp::Compute { cycles }) => format!("compute {cycles} cycles"),
    }
}

/// Renders an event-level comparison of two Bus traces.
fn render_bus_diff(a: &BusTrace, a_path: &str, b: &BusTrace, b_path: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "a             {a_path} ({} ops)", a.ops());
    let _ = writeln!(s, "b             {b_path} ({} ops)", b.ops());
    match a.first_divergence(b) {
        None => {
            let _ = writeln!(s, "streams identical: no divergence ({} ops)", a.ops());
        }
        Some(d) => {
            let _ = writeln!(s, "first divergence at op ordinal {}", d.ordinal);
            let _ = writeln!(s, "  a: {}", render_bus_op(d.a));
            let _ = writeln!(s, "  b: {}", render_bus_op(d.b));
        }
    }
    s
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a message for configuration or simulation failures.
pub fn execute(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut s = String::from("workloads:\n");
            for w in all23(Scale::Small) {
                let _ = writeln!(s, "  {}", w.name());
            }
            s.push_str("designs:\n  wl wl-dyn nvsram wt nvcache replay wbuf\n");
            s.push_str("traces:\n  none rf1 rf2 rf3 solar thermal\n");
            Ok(s)
        }
        Command::ValidateTrace(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let check = ehsim_obs::validate_chrome_trace(&text)
                .map_err(|e| format!("{path}: invalid trace: {e}"))?;
            Ok(format!(
                "{path}: valid ({} events: {} spans, {} slices, {} instants, {} counter samples)\n",
                check.events, check.spans, check.complete, check.instants, check.counters
            ))
        }
        Command::Run(opt) => {
            let cfg = config_of(opt)?;
            let w = workload_of(&opt.workload, opt.scale)?;
            let sim = Simulator::new(cfg);
            if let Some(stream_path) = &opt.stream_out {
                let obs = ehsim_obs::StreamingObserver::to_path(std::path::Path::new(stream_path))
                    .map_err(|e| format!("--stream-out {stream_path}: {e}"))?;
                let stats = obs.stats_handle();
                let (r, _machine) = sim
                    .run_with(w.as_ref(), ehsim_obs::ObserverBox::custom(obs))
                    .map_err(|e| e.to_string())?;
                let mut s = render_report(&r);
                let snap = stats
                    .lock()
                    .map_err(|_| "stream stats poisoned".to_string())?
                    .clone();
                if let Some(err) = &snap.io_error {
                    return Err(format!("--stream-out {stream_path}: {err}"));
                }
                let _ = writeln!(
                    s,
                    "stream        {stream_path} ({} events, peak buffer {})",
                    snap.events, snap.peak_buffered
                );
                // Chrome/TSV exports are derived from the streamed
                // capture itself, proving the JSONL is self-sufficient.
                if opt.trace_out.is_some() || opt.metrics_out.is_some() {
                    let run = ehsim_analyze::Run::load(stream_path)?;
                    let trace = run.to_trace();
                    if let Some(path) = &opt.trace_out {
                        let name = format!("{} / {} / {}", r.workload, r.design, r.trace);
                        std::fs::write(path, trace.chrome_trace(&name))
                            .map_err(|e| format!("--trace-out {path}: {e}"))?;
                        let _ = writeln!(s, "trace         {path} ({} events)", trace.events.len());
                    }
                    if let Some(path) = &opt.metrics_out {
                        std::fs::write(path, trace.interval_metrics_tsv())
                            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
                        let _ = writeln!(s, "metrics       {path}");
                    }
                }
                return Ok(s);
            }
            let observe = opt.trace_out.is_some() || opt.metrics_out.is_some();
            if !observe {
                let r = sim.run(w.as_ref()).map_err(|e| e.to_string())?;
                return Ok(render_report(&r));
            }
            let (r, trace) = sim.run_traced(w.as_ref()).map_err(|e| e.to_string())?;
            let mut s = render_report(&r);
            if let Some(path) = &opt.trace_out {
                let name = format!("{} / {} / {}", r.workload, r.design, r.trace);
                std::fs::write(path, trace.chrome_trace(&name))
                    .map_err(|e| format!("--trace-out {path}: {e}"))?;
                let _ = writeln!(s, "trace         {path} ({} events)", trace.events.len());
            }
            if let Some(path) = &opt.metrics_out {
                std::fs::write(path, trace.interval_metrics_tsv())
                    .map_err(|e| format!("--metrics-out {path}: {e}"))?;
                let _ = writeln!(s, "metrics       {path}");
            }
            Ok(s)
        }
        Command::DiffTraces(a_path, b_path) => {
            let a_bus = sniff_bus_trace(a_path)?;
            let b_bus = sniff_bus_trace(b_path)?;
            match (a_bus, b_bus) {
                (true, true) => {
                    let a =
                        BusTrace::load(Path::new(a_path)).map_err(|e| format!("{a_path}: {e}"))?;
                    let b =
                        BusTrace::load(Path::new(b_path)).map_err(|e| format!("{b_path}: {e}"))?;
                    Ok(render_bus_diff(&a, a_path, &b, b_path))
                }
                (false, false) => {
                    let a = ehsim_analyze::Run::load(a_path)?;
                    let b = ehsim_analyze::Run::load(b_path)?;
                    let report = ehsim_analyze::diff_runs(&a, a_path, &b, b_path);
                    Ok(ehsim_analyze::render_diff(&report, &a, &b))
                }
                _ => Err(format!(
                    "cannot diff a Bus trace against an event capture \
                     ({} is {}, {} is {})",
                    a_path,
                    if a_bus {
                        "a Bus trace"
                    } else {
                        "an event capture"
                    },
                    b_path,
                    if b_bus {
                        "a Bus trace"
                    } else {
                        "an event capture"
                    },
                )),
            }
        }
        Command::RecordBus(rec) => {
            let w = workload_of(&rec.workload, rec.scale)?;
            let trace = BusTrace::record(w.as_ref());
            trace
                .save(Path::new(&rec.output))
                .map_err(|e| format!("--out {}: {e}", rec.output))?;
            Ok(render_bus_summary(&trace, &rec.output))
        }
        Command::ImportTrace(imp) => {
            let text =
                std::fs::read_to_string(&imp.input).map_err(|e| format!("{}: {e}", imp.input))?;
            let name = imp.name.clone().unwrap_or_else(|| {
                Path::new(&imp.input)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| imp.input.clone())
            });
            let trace =
                import_column_trace(&text, &name).map_err(|e| format!("{}: {e}", imp.input))?;
            trace
                .save(Path::new(&imp.output))
                .map_err(|e| format!("{}: {e}", imp.output))?;
            Ok(render_bus_summary(&trace, &imp.output))
        }
        Command::ReplayTrace(rep) => {
            let trace = BusTrace::load(Path::new(&rep.input))
                .map_err(|e| format!("--in {}: {e}", rep.input))?;
            let cfg = config_of(&rep.run)?;
            let r = Simulator::new(cfg.clone())
                .replay(&trace)
                .map_err(|e| e.to_string())?;
            let mut s = render_report(&r);
            let _ = writeln!(
                s,
                "replayed      {} ({} ops, {} B encoded)",
                rep.input,
                trace.ops(),
                trace.encoded_len()
            );
            if rep.check {
                let w = workload_of(trace.name(), rep.run.scale).map_err(|e| {
                    format!(
                        "--check: trace '{}' has no native workload: {e}",
                        trace.name()
                    )
                })?;
                let direct = Simulator::new(cfg)
                    .run(w.as_ref())
                    .map_err(|e| e.to_string())?;
                if direct != r {
                    return Err(format!(
                        "--check: replay diverged from direct execution\n\
                         direct:\n{}\nreplay:\n{}",
                        render_report(&direct),
                        render_report(&r)
                    ));
                }
                let _ = writeln!(s, "check         replay == direct execution");
            }
            Ok(s)
        }
        Command::VoltagePlot(plot) => {
            let opt = &plot.run;
            let cfg = config_of(opt)?;
            let w = workload_of(&opt.workload, opt.scale)?;
            let (r, mut machine) = Simulator::new(cfg)
                .run_with(w.as_ref(), ehsim_obs::ObserverBox::recording_sampled())
                .map_err(|e| e.to_string())?;
            let th = machine.voltage_thresholds();
            let rails = [
                (th.v_on, "Von"),
                (th.v_backup, "Vbackup"),
                (th.v_min, "Vmin"),
            ];
            let end = machine.now();
            let trace = machine.take_observer().into_trace(end);
            let series = trace.voltage_series();
            let mut s = render_report(&r);
            let _ = writeln!(s, "samples       {} voltage points", series.len());
            if let Some(path) = &plot.tsv_out {
                std::fs::write(path, ehsim_analyze::voltage_tsv(&series))
                    .map_err(|e| format!("--tsv-out {path}: {e}"))?;
                let _ = writeln!(s, "voltage tsv   {path}");
            }
            if let Some(path) = &plot.svg_out {
                let title = format!(
                    "{} / {} / {} — capacitor voltage",
                    r.workload, r.design, r.trace
                );
                std::fs::write(path, ehsim_analyze::voltage_svg(&series, &title, &rails))
                    .map_err(|e| format!("--svg-out {path}: {e}"))?;
                let _ = writeln!(s, "voltage svg   {path}");
            }
            Ok(s)
        }
        Command::ConvertTrace(conv) => {
            let run = ehsim_analyze::Run::load(&conv.input)?;
            if run.events.is_empty() {
                return Err(format!(
                    "{}: no events to convert (interval-metrics TSV carries \
                     no timeline; convert a JSONL stream or Chrome JSON)",
                    conv.input
                ));
            }
            let name = conv
                .name
                .clone()
                .or_else(|| run.name.clone())
                .unwrap_or_else(|| conv.input.clone());
            let trace = run.to_trace();
            let json = trace.chrome_trace(&name);
            std::fs::write(&conv.output, &json).map_err(|e| format!("{}: {e}", conv.output))?;
            Ok(format!(
                "{} ({}) -> {} ({} events)\n",
                conv.input,
                run.source.label(),
                conv.output,
                trace.events.len()
            ))
        }
        Command::Compare(opt) => {
            let w = workload_of(&opt.workload, opt.scale)?;
            let mut s = format!(
                "{:<15} {:>10} {:>8} {:>9} {:>11}\n",
                "design", "time(ms)", "outages", "hit(%)", "energy(uJ)"
            );
            let designs = ["nvsram", "nvcache", "wt", "replay", "wl", "wl-dyn", "wbuf"];
            for d in designs {
                let mut o = opt.clone();
                o.design = d.into();
                let cfg = config_of(&o)?;
                let r = Simulator::new(cfg)
                    .run(w.as_ref())
                    .map_err(|e| e.to_string())?;
                let _ = writeln!(
                    s,
                    "{:<15} {:>10.3} {:>8} {:>9.2} {:>11.2}",
                    r.design,
                    r.total_seconds() * 1e3,
                    r.outages,
                    r.cache.hit_rate() * 100.0,
                    r.energy.total() / 1e6
                );
            }
            Ok(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse(&argv(
            "run --workload qsort --design nvsram --trace rf2 --cache 2048 \
             --ways 4 --capacitor-uf 0.5 --verify --scale small",
        ))
        .unwrap();
        let Command::Run(opt) = cmd else {
            panic!("expected run");
        };
        assert_eq!(opt.workload, "qsort");
        assert_eq!(opt.design, "nvsram");
        assert_eq!(opt.cache_bytes, 2048);
        assert_eq!(opt.ways, 4);
        assert_eq!(opt.capacitor_uf, 0.5);
        assert!(opt.verify);
        assert_eq!(opt.scale, Scale::Small);
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse(&argv("run --bogus 1")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --cache")).is_err());
    }

    #[test]
    fn maxline_implies_static() {
        let Command::Run(opt) = parse(&argv("run --maxline 4")).unwrap() else {
            panic!()
        };
        let cfg = config_of(&opt).unwrap();
        match cfg.design {
            DesignKind::Wl {
                thresholds,
                adaptation,
                ..
            } => {
                assert_eq!(thresholds.maxline(), 4);
                assert_eq!(adaptation, AdaptationMode::Static);
            }
            _ => panic!("expected WL"),
        }
    }

    #[test]
    fn all_designs_resolve() {
        for d in ["wl", "wl-dyn", "nvsram", "wt", "nvcache", "replay", "wbuf"] {
            let opt = RunOptions {
                design: d.into(),
                ..Default::default()
            };
            assert!(config_of(&opt).is_ok(), "{d}");
        }
        let opt = RunOptions {
            design: "bogus".into(),
            ..Default::default()
        };
        assert!(config_of(&opt).is_err());
    }

    #[test]
    fn workload_lookup_by_figure_label() {
        assert!(workload_of("FFT_i", Scale::Small).is_ok());
        assert!(workload_of("nope", Scale::Small).is_err());
    }

    #[test]
    fn run_command_executes_end_to_end() {
        let cmd = parse(&argv("run --workload sha --scale small --trace rf1")).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("checksum"), "{out}");
        assert!(out.contains("WL"), "{out}");
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse(&argv(
            "run --workload sha --trace-out /tmp/t.json --metrics-out /tmp/m.tsv",
        ))
        .unwrap();
        let Command::Run(opt) = cmd else {
            panic!("expected run");
        };
        assert_eq!(opt.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(opt.metrics_out.as_deref(), Some("/tmp/m.tsv"));
        assert!(parse(&argv("run --trace-out")).is_err());
    }

    #[test]
    fn run_with_trace_out_writes_valid_chrome_trace() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ehsim_cli_test_trace.json");
        let metrics_path = dir.join("ehsim_cli_test_metrics.tsv");
        let cmd = parse(&argv(&format!(
            "run --workload sha --scale small --trace rf1 --trace-out {} --metrics-out {}",
            trace_path.display(),
            metrics_path.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("trace"), "{out}");
        let json = std::fs::read_to_string(&trace_path).unwrap();
        let check = ehsim_obs::validate_chrome_trace(&json).unwrap();
        assert!(check.events > 0);
        let tsv = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(tsv.starts_with("interval\t"), "{tsv}");
        // The validate-trace subcommand accepts what run just wrote.
        let out = execute(&Command::ValidateTrace(trace_path.display().to_string())).unwrap();
        assert!(out.contains("valid ("), "{out}");
        assert!(execute(&Command::ValidateTrace("/nonexistent.json".into())).is_err());
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn parses_analysis_subcommands() {
        assert_eq!(
            parse(&argv("diff-traces a.json b.jsonl")).unwrap(),
            Command::DiffTraces("a.json".into(), "b.jsonl".into())
        );
        assert!(parse(&argv("diff-traces only-one")).is_err());
        let Command::ConvertTrace(conv) =
            parse(&argv("convert-trace in.jsonl out.json --name sha/wl")).unwrap()
        else {
            panic!("expected convert-trace");
        };
        assert_eq!(conv.input, "in.jsonl");
        assert_eq!(conv.output, "out.json");
        assert_eq!(conv.name.as_deref(), Some("sha/wl"));
        assert!(parse(&argv("convert-trace in.jsonl")).is_err());
        let Command::VoltagePlot(plot) = parse(&argv(
            "voltage-plot --workload sha --trace rf1 --tsv-out v.tsv --svg-out v.svg",
        ))
        .unwrap() else {
            panic!("expected voltage-plot");
        };
        assert_eq!(plot.run.workload, "sha");
        assert_eq!(plot.tsv_out.as_deref(), Some("v.tsv"));
        assert_eq!(plot.svg_out.as_deref(), Some("v.svg"));
        // --tsv-out is voltage-plot-only.
        assert!(parse(&argv("run --tsv-out x.tsv")).is_err());
        let Command::Run(opt) = parse(&argv("run --stream-out t.jsonl")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(opt.stream_out.as_deref(), Some("t.jsonl"));
    }

    #[test]
    fn stream_out_diff_and_convert_round_trip() {
        let dir = std::env::temp_dir();
        let jsonl = dir.join("ehsim_cli_test_stream.jsonl");
        let json = dir.join("ehsim_cli_test_stream.json");
        let cmd = parse(&argv(&format!(
            "run --workload sha --scale small --trace rf1 --stream-out {}",
            jsonl.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("stream"), "{out}");
        // A streamed run reports the same numbers as a plain run.
        let plain = execute(&parse(&argv("run --workload sha --scale small --trace rf1")).unwrap())
            .unwrap();
        for line in plain.lines() {
            assert!(out.contains(line), "missing line {line:?} in {out}");
        }
        // Self-diff of the streamed capture reports no divergence.
        let diff = execute(&Command::DiffTraces(
            jsonl.display().to_string(),
            jsonl.display().to_string(),
        ))
        .unwrap();
        assert!(diff.contains("no divergence"), "{diff}");
        // The streamed JSONL converts to Chrome JSON that validates.
        let conv = execute(&Command::ConvertTrace(ConvertOptions {
            input: jsonl.display().to_string(),
            output: json.display().to_string(),
            name: None,
        }))
        .unwrap();
        assert!(conv.contains("jsonl"), "{conv}");
        let check = execute(&Command::ValidateTrace(json.display().to_string())).unwrap();
        assert!(check.contains("valid ("), "{check}");
        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(&json);
    }

    #[test]
    fn voltage_plot_writes_tsv_and_svg() {
        let dir = std::env::temp_dir();
        let tsv = dir.join("ehsim_cli_test_v.tsv");
        let svg = dir.join("ehsim_cli_test_v.svg");
        let cmd = parse(&argv(&format!(
            "voltage-plot --workload sha --scale small --trace rf1 --tsv-out {} --svg-out {}",
            tsv.display(),
            svg.display()
        )))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("voltage tsv"), "{out}");
        let tsv_text = std::fs::read_to_string(&tsv).unwrap();
        assert!(tsv_text.starts_with("t_ps\tvolts\n"), "{tsv_text}");
        assert!(
            tsv_text.lines().count() > 2,
            "sampled trajectory is non-trivial"
        );
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg "));
        assert!(svg_text.contains("Vbackup"), "rails overlaid");
        let _ = std::fs::remove_file(&tsv);
        let _ = std::fs::remove_file(&svg);
    }

    #[test]
    fn parses_bus_trace_subcommands() {
        let Command::RecordBus(rec) = parse(&argv(
            "record-bus --workload sha --scale small --out t.bustrace",
        ))
        .unwrap() else {
            panic!("expected record-bus");
        };
        assert_eq!(rec.workload, "sha");
        assert_eq!(rec.scale, Scale::Small);
        assert_eq!(rec.output, "t.bustrace");
        assert!(parse(&argv("record-bus --workload sha")).is_err());
        assert!(parse(&argv("record-bus --out t.bustrace")).is_err());

        let Command::ReplayTrace(rep) = parse(&argv(
            "replay --in t.bustrace --design nvsram --trace rf2 --check",
        ))
        .unwrap() else {
            panic!("expected replay");
        };
        assert_eq!(rep.input, "t.bustrace");
        assert_eq!(rep.run.design, "nvsram");
        assert!(rep.check);
        assert!(parse(&argv("replay --design wl")).is_err());
        // --in/--check are replay-only.
        assert!(parse(&argv("run --in t.bustrace")).is_err());
        assert!(parse(&argv("run --check")).is_err());

        let Command::ImportTrace(imp) = parse(&argv(
            "import-trace mem.txt out.bustrace --name lachesis/fft",
        ))
        .unwrap() else {
            panic!("expected import-trace");
        };
        assert_eq!(imp.input, "mem.txt");
        assert_eq!(imp.output, "out.bustrace");
        assert_eq!(imp.name.as_deref(), Some("lachesis/fft"));
        assert!(parse(&argv("import-trace only-one")).is_err());
    }

    #[test]
    fn record_replay_check_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("ehsim_cli_test_sha.bustrace");
        let out = execute(
            &parse(&argv(&format!(
                "record-bus --workload sha --scale small --out {}",
                path.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("loads"), "{out}");
        // Replay under a non-default design, cross-checked against the
        // direct execution of the same configuration.
        let out = execute(
            &parse(&argv(&format!(
                "replay --in {} --design nvsram --trace rf1 --scale small --check",
                path.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(
            out.contains("check         replay == direct execution"),
            "{out}"
        );
        assert!(out.contains("NVSRAM"), "{out}");
        // Self-diff of the trace file reports identity.
        let diff = execute(&Command::DiffTraces(
            path.display().to_string(),
            path.display().to_string(),
        ))
        .unwrap();
        assert!(diff.contains("no divergence"), "{diff}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn import_trace_round_trip_and_diff() {
        let dir = std::env::temp_dir();
        let txt = dir.join("ehsim_cli_test_import.txt");
        let bus_a = dir.join("ehsim_cli_test_import_a.bustrace");
        let bus_b = dir.join("ehsim_cli_test_import_b.bustrace");
        std::fs::write(&txt, "# comment\n0x100,R\n0x104,W\nc 32\n").unwrap();
        let out = execute(&Command::ImportTrace(ImportOptions {
            input: txt.display().to_string(),
            output: bus_a.display().to_string(),
            name: None,
        }))
        .unwrap();
        assert!(
            out.contains("1 loads, 1 stores, 1 computes (32 cycles)"),
            "{out}"
        );
        // Default name is the input file stem.
        assert!(out.contains("ehsim_cli_test_import"), "{out}");
        // An imported trace replays end-to-end.
        let rep = execute(
            &parse(&argv(&format!(
                "replay --in {} --trace rf1",
                bus_a.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(rep.contains("instructions"), "{rep}");
        // --check on an imported trace fails: no native kernel.
        let err =
            execute(&parse(&argv(&format!("replay --in {} --check", bus_a.display()))).unwrap())
                .unwrap_err();
        assert!(err.contains("no native workload"), "{err}");
        // diff-traces pinpoints the first diverging op.
        std::fs::write(&txt, "0x100,R\n0x108,W\nc 32\n").unwrap();
        execute(&Command::ImportTrace(ImportOptions {
            input: txt.display().to_string(),
            output: bus_b.display().to_string(),
            name: None,
        }))
        .unwrap();
        let diff = execute(&Command::DiffTraces(
            bus_a.display().to_string(),
            bus_b.display().to_string(),
        ))
        .unwrap();
        assert!(diff.contains("first divergence at op ordinal 1"), "{diff}");
        assert!(diff.contains("store 0x00000104"), "{diff}");
        assert!(diff.contains("store 0x00000108"), "{diff}");
        // Mixed kinds are rejected with a clear message.
        let jsonl = dir.join("ehsim_cli_test_import.jsonl");
        std::fs::write(&jsonl, "{}\n").unwrap();
        let err = execute(&Command::DiffTraces(
            bus_a.display().to_string(),
            jsonl.display().to_string(),
        ))
        .unwrap_err();
        assert!(err.contains("cannot diff a Bus trace"), "{err}");
        for p in [&txt, &bus_a, &bus_b, &jsonl] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn list_names_everything() {
        let out = execute(&Command::List).unwrap();
        assert!(out.contains("adpcmdecode"));
        assert!(out.contains("wbuf"));
        assert!(out.contains("thermal"));
    }
}
