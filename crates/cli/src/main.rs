//! Thin shell around [`ehsim_cli`]: parse, execute, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ehsim_cli::parse(&args).and_then(|cmd| ehsim_cli::execute(&cmd)) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{}", ehsim_cli::USAGE);
            std::process::exit(2);
        }
    }
}
