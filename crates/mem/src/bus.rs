//! The [`Bus`] trait workloads execute against, and the [`Workload`]
//! abstraction for named benchmark kernels.

/// Width of a single memory access issued by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessSize {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl AccessSize {
    /// Number of bytes covered by this access size.
    #[inline]
    pub const fn bytes(self) -> u32 {
        match self {
            AccessSize::B1 => 1,
            AccessSize::B2 => 2,
            AccessSize::B4 => 4,
            AccessSize::B8 => 8,
        }
    }
}

/// The memory interface benchmark kernels run against.
///
/// Implementations route accesses through a simulated memory hierarchy
/// (`ehsim`'s machine) or directly against a flat
/// [`FunctionalMem`](crate::FunctionalMem) when only the functional result
/// is needed. Addresses are byte addresses in a private, per-workload
/// address space starting at zero.
///
/// Accesses must be **naturally aligned** (an N-byte access at an
/// N-byte-aligned address), as on a real in-order core; an access that
/// would straddle a cache-line boundary panics in the simulated
/// hierarchy.
///
/// The `load`/`store` methods are the object-safe core; the `load_u8`,
/// `store_u32`, … conveniences are provided so kernels read naturally.
pub trait Bus {
    /// Loads `size.bytes()` bytes at `addr` (little-endian, zero-extended).
    fn load(&mut self, addr: u32, size: AccessSize) -> u64;

    /// Stores the low `size.bytes()` bytes of `value` at `addr`
    /// (little-endian).
    fn store(&mut self, addr: u32, size: AccessSize, value: u64);

    /// Accounts for `cycles` cycles of pure computation (no memory
    /// traffic). A functional implementation may ignore this.
    fn compute(&mut self, cycles: u64);

    /// Loads one byte at `addr`.
    #[inline]
    fn load_u8(&mut self, addr: u32) -> u8 {
        self.load(addr, AccessSize::B1) as u8
    }

    /// Loads a little-endian `u16` at `addr`.
    #[inline]
    fn load_u16(&mut self, addr: u32) -> u16 {
        self.load(addr, AccessSize::B2) as u16
    }

    /// Loads a little-endian `u32` at `addr`.
    #[inline]
    fn load_u32(&mut self, addr: u32) -> u32 {
        self.load(addr, AccessSize::B4) as u32
    }

    /// Loads a little-endian `u64` at `addr`.
    #[inline]
    fn load_u64(&mut self, addr: u32) -> u64 {
        self.load(addr, AccessSize::B8)
    }

    /// Loads a little-endian `i32` at `addr`.
    #[inline]
    fn load_i32(&mut self, addr: u32) -> i32 {
        self.load_u32(addr) as i32
    }

    /// Stores one byte at `addr`.
    #[inline]
    fn store_u8(&mut self, addr: u32, value: u8) {
        self.store(addr, AccessSize::B1, u64::from(value));
    }

    /// Stores a little-endian `u16` at `addr`.
    #[inline]
    fn store_u16(&mut self, addr: u32, value: u16) {
        self.store(addr, AccessSize::B2, u64::from(value));
    }

    /// Stores a little-endian `u32` at `addr`.
    #[inline]
    fn store_u32(&mut self, addr: u32, value: u32) {
        self.store(addr, AccessSize::B4, u64::from(value));
    }

    /// Stores a little-endian `u64` at `addr`.
    #[inline]
    fn store_u64(&mut self, addr: u32, value: u64) {
        self.store(addr, AccessSize::B8, value);
    }

    /// Stores a little-endian `i32` at `addr`.
    #[inline]
    fn store_i32(&mut self, addr: u32, value: i32) {
        self.store_u32(addr, value as u32);
    }
}

/// A named benchmark kernel that performs real computation over a [`Bus`].
///
/// Implementations must be deterministic: two runs over equivalent buses
/// produce the same access stream and the same checksum. The checksum is
/// the kernel's functional result folded to a `u64`; the `ehsim` test
/// suite compares checksums from full crash-consistency simulations
/// against a run over plain [`FunctionalMem`](crate::FunctionalMem) to
/// validate that the cache designs never corrupt data across power
/// failures.
pub trait Workload {
    /// Short stable identifier, e.g. `"adpcmdecode"`. Matches the labels
    /// used in the paper's figures.
    fn name(&self) -> &str;

    /// Bytes of address space the kernel touches. The bus must be able to
    /// serve addresses in `0..mem_bytes()`.
    fn mem_bytes(&self) -> u32;

    /// Runs the kernel to completion, returning its checksum.
    fn run(&self, bus: &mut dyn Bus) -> u64;
}

impl<W: Workload + ?Sized> Workload for &W {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn mem_bytes(&self) -> u32 {
        (**self).mem_bytes()
    }
    fn run(&self, bus: &mut dyn Bus) -> u64 {
        (**self).run(bus)
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn mem_bytes(&self) -> u32 {
        (**self).mem_bytes()
    }
    fn run(&self, bus: &mut dyn Bus) -> u64 {
        (**self).run(bus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionalMem;

    #[test]
    fn access_size_bytes() {
        assert_eq!(AccessSize::B1.bytes(), 1);
        assert_eq!(AccessSize::B2.bytes(), 2);
        assert_eq!(AccessSize::B4.bytes(), 4);
        assert_eq!(AccessSize::B8.bytes(), 8);
    }

    #[test]
    fn convenience_round_trips() {
        let mut mem = FunctionalMem::new(64);
        mem.store_u8(0, 0xab);
        mem.store_u16(2, 0xbeef);
        mem.store_u32(4, 0xdead_beef);
        mem.store_u64(8, 0x0123_4567_89ab_cdef);
        mem.store_i32(16, -42);
        assert_eq!(mem.load_u8(0), 0xab);
        assert_eq!(mem.load_u16(2), 0xbeef);
        assert_eq!(mem.load_u32(4), 0xdead_beef);
        assert_eq!(mem.load_u64(8), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.load_i32(16), -42);
    }

    struct Nop;
    impl Workload for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn mem_bytes(&self) -> u32 {
            0
        }
        fn run(&self, bus: &mut dyn Bus) -> u64 {
            bus.compute(1);
            7
        }
    }

    #[test]
    fn workload_blanket_impls() {
        let w = Nop;
        let mut mem = FunctionalMem::new(0);
        assert_eq!(w.run(&mut mem), 7);
        let boxed: Box<dyn Workload> = Box::new(Nop);
        assert_eq!(boxed.name(), "nop");
        assert_eq!(boxed.run(&mut mem), 7);
    }
}
