//! Memory substrate for the WL-Cache reproduction.
//!
//! This crate provides everything "below" and "beside" the caches:
//!
//! - [`Bus`] — the interface workloads execute against. Every load, store
//!   and compute burst of a benchmark flows through this trait, which lets
//!   the same kernel run either on a raw [`FunctionalMem`] (to obtain a
//!   golden checksum) or on the full energy-harvesting machine in the
//!   `ehsim` crate.
//! - [`Workload`] — a named benchmark kernel over [`Bus`].
//! - [`FunctionalMem`] — a byte-accurate flat memory, used both as the
//!   NVM backing store and as the reference oracle in tests.
//! - [`NvmTiming`] / [`NvmEnergy`] — the ReRAM-style main-memory timing
//!   (Table 2 of the paper) and energy parameters.
//! - [`NvmPort`] — a single memory port with busy-time tracking, which is
//!   how asynchronous write-backs contend with demand fills.
//! - [`BusTrace`] / [`TraceRecorder`] — record/replay of the Bus access
//!   stream: capture a workload's design-independent op stream once and
//!   replay it against any machine (see the `record` module docs for the
//!   exactness argument).
//!
//! # Examples
//!
//! ```
//! use ehsim_mem::{Bus, FunctionalMem};
//!
//! let mut mem = FunctionalMem::new(64);
//! mem.store_u32(0x10, 0xdead_beef);
//! assert_eq!(mem.load_u32(0x10), 0xdead_beef);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod functional;
mod nvm;
mod port;
mod record;

pub use bus::{AccessSize, Bus, Workload};
pub use functional::FunctionalMem;
pub use nvm::{NvmEnergy, NvmTiming};
pub use port::NvmPort;
pub use record::{
    import_column_trace, BusOp, BusTrace, BusTraceBuilder, Divergence, OpCounts, ReplayCursor,
    TraceFileError, TraceRecorder,
};

/// Picoseconds — the simulator's base time unit.
///
/// The modelled core runs at 1 GHz (see Table 2 of the paper), so one CPU
/// cycle equals [`PS_PER_CYCLE`] picoseconds.
pub type Ps = u64;

/// Picojoules — the simulator's base energy unit.
pub type Pj = f64;

/// Picoseconds per CPU cycle at the paper's 1 GHz clock.
pub const PS_PER_CYCLE: Ps = 1_000;

/// Default cache-line size in bytes (Table 2: 64 B blocks).
pub const LINE_BYTES: u32 = 64;

/// Returns the line-aligned base address of `addr` for a `line_bytes`
/// block size.
///
/// # Panics
///
/// Panics in debug builds if `line_bytes` is not a power of two.
#[inline]
pub fn line_base(addr: u32, line_bytes: u32) -> u32 {
    debug_assert!(line_bytes.is_power_of_two());
    addr & !(line_bytes - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_aligns_down() {
        assert_eq!(line_base(0, 64), 0);
        assert_eq!(line_base(63, 64), 0);
        assert_eq!(line_base(64, 64), 64);
        assert_eq!(line_base(0x12345, 64), 0x12340);
    }

    #[test]
    fn line_base_respects_block_size() {
        assert_eq!(line_base(0x1ff, 32), 0x1e0);
        assert_eq!(line_base(0x1ff, 128), 0x180);
    }
}
