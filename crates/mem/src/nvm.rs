//! Timing and energy parameters of the non-volatile main memory.
//!
//! Table 2 of the paper specifies a ReRAM-style NVM with the DRAM-like
//! timing tuple `tCK/tBURST/tRCD/tCL/tWTR/tWR/tXAW =
//! 0.94/7.5/18/15/7.5/150/30 ns`. The paper does not publish per-access
//! energies, so [`NvmEnergy`] carries documented 90 nm-class constants
//! (see DESIGN.md §2.4 for the calibration rationale).

use crate::Ps;

const NS_TO_PS: f64 = 1_000.0;

/// ReRAM main-memory timing parameters, in nanoseconds (Table 2).
///
/// Derived access latencies:
///
/// - **line read** (demand fill): `tRCD + tCL + tBURST`;
/// - **line write** (write-back): the issuing agent sees the same
///   `tRCD + tCL + tBURST` before the ACK. The bank then needs `tWR`
///   (150 ns) of write recovery, but the NVM is 4-way bank-interleaved
///   (`tXAW` windows allow it), so the *channel* is ready again after
///   `tWTR` — back-to-back write-backs still contend on the channel,
///   just not for the full cell-recovery time;
/// - **word write** (write-through store): `tRCD + tCL`, with `tWTR` of
///   channel recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct NvmTiming {
    /// Clock period (ns).
    pub t_ck: f64,
    /// Burst transfer time for one cache line (ns).
    pub t_burst: f64,
    /// Row-to-column command delay (ns).
    pub t_rcd: f64,
    /// Column access (CAS) latency (ns).
    pub t_cl: f64,
    /// Write-to-read turnaround (ns).
    pub t_wtr: f64,
    /// Write recovery time (ns).
    pub t_wr: f64,
    /// Activation window (ns); folded into the line-read path as a
    /// conservative extra is *not* done — kept for completeness.
    pub t_xaw: f64,
}

impl Default for NvmTiming {
    fn default() -> Self {
        Self {
            t_ck: 0.94,
            t_burst: 7.5,
            t_rcd: 18.0,
            t_cl: 15.0,
            t_wtr: 7.5,
            t_wr: 150.0,
            t_xaw: 30.0,
        }
    }
}

impl NvmTiming {
    /// Latency (ps) to read one full cache line from NVM.
    pub fn line_read_ps(&self) -> Ps {
        ((self.t_rcd + self.t_cl + self.t_burst) * NS_TO_PS) as Ps
    }

    /// Latency (ps) until a line write-back is acknowledged.
    pub fn line_write_ps(&self) -> Ps {
        ((self.t_rcd + self.t_cl + self.t_burst) * NS_TO_PS) as Ps
    }

    /// Additional channel-recovery time (ps) after a line write
    /// completes (`tWTR`; the per-bank `tWR` is hidden by 4-way bank
    /// interleaving — see the type-level docs).
    pub fn line_write_recovery_ps(&self) -> Ps {
        (self.t_wtr * NS_TO_PS) as Ps
    }

    /// Per-bank write-recovery time (`tWR`, ps): the time one bank is
    /// unavailable after a line write. Exposed for completeness; the
    /// channel model above assumes interleaving hides it.
    pub fn bank_write_recovery_ps(&self) -> Ps {
        (self.t_wr * NS_TO_PS) as Ps
    }

    /// Latency (ps) of a synchronous word write (write-through store):
    /// the full `tRCD + tCL` path — a write-through store cannot count
    /// on an open row (§2.3.1: "the long store latency as in the case
    /// without a cache").
    pub fn word_write_ps(&self) -> Ps {
        ((self.t_rcd + self.t_cl) * NS_TO_PS) as Ps
    }

    /// Additional port-recovery time (ps) after a word write.
    pub fn word_write_recovery_ps(&self) -> Ps {
        (self.t_wtr * NS_TO_PS) as Ps
    }
}

/// Energy cost of NVM accesses, in picojoules.
///
/// These constants are not given by the paper; the values below are
/// plausible for byte-addressable ReRAM/FRAM at 90 nm and are part of the
/// documented calibration (DESIGN.md §2.4). Reads are cheap; writes are
/// roughly 5× more expensive per byte.
#[derive(Debug, Clone, PartialEq)]
pub struct NvmEnergy {
    /// Energy per byte read (pJ/B).
    pub read_pj_per_byte: f64,
    /// Energy per byte written (pJ/B).
    pub write_pj_per_byte: f64,
    /// Fixed row-activation energy added to every access (pJ).
    pub activate_pj: f64,
}

impl Default for NvmEnergy {
    fn default() -> Self {
        Self {
            read_pj_per_byte: 1.0,
            write_pj_per_byte: 4.5,
            activate_pj: 10.0,
        }
    }
}

impl NvmEnergy {
    /// Energy (pJ) to read `bytes` bytes.
    pub fn read_pj(&self, bytes: u32) -> f64 {
        self.activate_pj + self.read_pj_per_byte * f64::from(bytes)
    }

    /// Energy (pJ) to write `bytes` bytes.
    pub fn write_pj(&self, bytes: u32) -> f64 {
        self.activate_pj + self.write_pj_per_byte * f64::from(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let t = NvmTiming::default();
        assert_eq!(t.t_ck, 0.94);
        assert_eq!(t.t_burst, 7.5);
        assert_eq!(t.t_rcd, 18.0);
        assert_eq!(t.t_cl, 15.0);
        assert_eq!(t.t_wtr, 7.5);
        assert_eq!(t.t_wr, 150.0);
        assert_eq!(t.t_xaw, 30.0);
    }

    #[test]
    fn derived_latencies() {
        let t = NvmTiming::default();
        assert_eq!(t.line_read_ps(), 40_500);
        assert_eq!(t.line_write_ps(), 40_500);
        assert_eq!(t.line_write_recovery_ps(), 7_500);
        assert_eq!(t.bank_write_recovery_ps(), 150_000);
        assert_eq!(t.word_write_ps(), 33_000);
        assert_eq!(t.word_write_recovery_ps(), 7_500);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let e = NvmEnergy::default();
        assert!(e.write_pj(64) > e.read_pj(64));
        assert!(e.read_pj(64) > e.read_pj(4));
    }

    #[test]
    fn energy_scales_with_bytes() {
        let e = NvmEnergy::default();
        let d = e.read_pj(64) - e.read_pj(32);
        assert!((d - 32.0 * e.read_pj_per_byte).abs() < 1e-9);
    }
}
