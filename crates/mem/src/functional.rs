//! Byte-accurate flat memory.

use crate::{AccessSize, Bus};

/// A flat, byte-accurate memory array.
///
/// `FunctionalMem` serves three roles in the reproduction:
///
/// 1. the persistent NVM backing store of the simulated machine,
/// 2. the reference oracle in crash-consistency tests, and
/// 3. a trivial [`Bus`] so workloads can be executed "functionally" to
///    obtain golden checksums without any timing or energy model.
///
/// All multi-byte accesses are little-endian. Memory is zero-initialised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalMem {
    bytes: Vec<u8>,
}

impl FunctionalMem {
    /// Creates a zero-filled memory of `size` bytes.
    pub fn new(size: u32) -> Self {
        Self {
            bytes: vec![0; size as usize],
        }
    }

    /// Size of the memory in bytes.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Returns `true` if the memory has zero length.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `size.bytes()` bytes at `addr`, little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of memory.
    pub fn read(&self, addr: u32, size: AccessSize) -> u64 {
        let a = addr as usize;
        let n = size.bytes() as usize;
        let mut v: u64 = 0;
        for (i, b) in self.bytes[a..a + n].iter().enumerate() {
            v |= u64::from(*b) << (8 * i);
        }
        v
    }

    /// Writes the low `size.bytes()` bytes of `value` at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of memory.
    pub fn write(&mut self, addr: u32, size: AccessSize, value: u64) {
        let a = addr as usize;
        let n = size.bytes() as usize;
        for i in 0..n {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
    }

    /// Copies a whole line of `line.len()` bytes out of memory at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the line runs past the end of memory.
    pub fn read_line(&self, base: u32, line: &mut [u8]) {
        let a = base as usize;
        line.copy_from_slice(&self.bytes[a..a + line.len()]);
    }

    /// Writes a whole line into memory at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the line runs past the end of memory.
    pub fn write_line(&mut self, base: u32, line: &[u8]) {
        let a = base as usize;
        self.bytes[a..a + line.len()].copy_from_slice(line);
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Bus for FunctionalMem {
    fn load(&mut self, addr: u32, size: AccessSize) -> u64 {
        self.read(addr, size)
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u64) {
        self.write(addr, size, value);
    }

    fn compute(&mut self, _cycles: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_initialised() {
        let mem = FunctionalMem::new(16);
        assert_eq!(mem.read(0, AccessSize::B8), 0);
        assert_eq!(mem.len(), 16);
        assert!(!mem.is_empty());
        assert!(FunctionalMem::new(0).is_empty());
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = FunctionalMem::new(8);
        mem.write(0, AccessSize::B4, 0x0403_0201);
        assert_eq!(mem.as_bytes()[..4], [1, 2, 3, 4]);
        assert_eq!(mem.read(1, AccessSize::B2), 0x0302);
    }

    #[test]
    fn partial_writes_do_not_clobber_neighbours() {
        let mut mem = FunctionalMem::new(8);
        mem.write(0, AccessSize::B8, u64::MAX);
        mem.write(2, AccessSize::B2, 0);
        assert_eq!(mem.read(0, AccessSize::B8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn line_round_trip() {
        let mut mem = FunctionalMem::new(128);
        let line: Vec<u8> = (0..64).collect();
        mem.write_line(64, &line);
        let mut out = vec![0u8; 64];
        mem.read_line(64, &mut out);
        assert_eq!(out, line);
        // First line untouched.
        mem.read_line(0, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mem = FunctionalMem::new(4);
        let _ = mem.read(2, AccessSize::B4);
    }

    proptest! {
        #[test]
        fn write_then_read_round_trips(
            addr in 0u32..1000,
            value: u64,
            size_ix in 0usize..4,
        ) {
            let sizes = [AccessSize::B1, AccessSize::B2, AccessSize::B4, AccessSize::B8];
            let size = sizes[size_ix];
            let mut mem = FunctionalMem::new(1024);
            mem.write(addr, size, value);
            let mask = if size.bytes() == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * size.bytes())) - 1
            };
            prop_assert_eq!(mem.read(addr, size), value & mask);
        }

        #[test]
        fn disjoint_writes_commute(
            a in 0u32..100,
            b in 200u32..300,
            va: u32,
            vb: u32,
        ) {
            let mut m1 = FunctionalMem::new(512);
            m1.write(a, AccessSize::B4, va.into());
            m1.write(b, AccessSize::B4, vb.into());
            let mut m2 = FunctionalMem::new(512);
            m2.write(b, AccessSize::B4, vb.into());
            m2.write(a, AccessSize::B4, va.into());
            prop_assert_eq!(m1, m2);
        }
    }
}
