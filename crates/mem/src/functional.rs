//! Byte-accurate flat memory.

use crate::{AccessSize, Bus};

/// A flat, byte-accurate memory array.
///
/// `FunctionalMem` serves three roles in the reproduction:
///
/// 1. the persistent NVM backing store of the simulated machine,
/// 2. the reference oracle in crash-consistency tests, and
/// 3. a trivial [`Bus`] so workloads can be executed "functionally" to
///    obtain golden checksums without any timing or energy model.
///
/// All multi-byte accesses are little-endian. Memory is zero-initialised.
///
/// An optional line-granular write tracker (see
/// [`FunctionalMem::enable_write_tracking`]) records which lines have
/// been written since the tracker was last drained; the simulator's
/// incremental crash-consistency checker uses it to compare only the
/// lines that could have diverged since the previous outage instead of
/// cloning and scanning the whole memory.
#[derive(Debug, Clone)]
pub struct FunctionalMem {
    bytes: Vec<u8>,
    tracker: Option<WriteTracker>,
}

/// Line-granular dirty bitset over a [`FunctionalMem`].
#[derive(Debug, Clone)]
struct WriteTracker {
    /// log2 of the tracking granularity in bytes.
    line_shift: u32,
    /// One bit per line, set when any byte of the line is written.
    words: Vec<u64>,
}

impl WriteTracker {
    #[inline]
    fn mark_span(&mut self, addr: u32, len: usize) {
        debug_assert!(len > 0);
        let first = (addr >> self.line_shift) as usize;
        let last = (addr as usize + len - 1) >> self.line_shift;
        for line in first..=last {
            self.words[line >> 6] |= 1u64 << (line & 63);
        }
    }
}

/// Equality is over memory contents only; write-tracking state is
/// bookkeeping (the crash-consistency oracle compares bytes).
impl PartialEq for FunctionalMem {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for FunctionalMem {}

impl FunctionalMem {
    /// Creates a zero-filled memory of `size` bytes.
    pub fn new(size: u32) -> Self {
        Self {
            bytes: vec![0; size as usize],
            tracker: None,
        }
    }

    /// Starts recording which `line_bytes`-sized lines are written.
    /// Replaces any previous tracker (previously recorded lines are
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn enable_write_tracking(&mut self, line_bytes: u32) {
        assert!(
            line_bytes.is_power_of_two(),
            "tracking granularity must be a power of two"
        );
        let lines = (self.bytes.len() as u32).div_ceil(line_bytes) as usize;
        self.tracker = Some(WriteTracker {
            line_shift: line_bytes.trailing_zeros(),
            words: vec![0; lines.div_ceil(64)],
        });
    }

    /// Drains the write tracker: appends the base address of every line
    /// written since the last drain to `out` (in ascending order) and
    /// clears the recorded set. No-op if tracking is not enabled.
    pub fn take_written_lines(&mut self, out: &mut Vec<u32>) {
        let Some(t) = &mut self.tracker else { return };
        for (wix, word) in t.words.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push((((wix << 6) | bit) as u32) << t.line_shift);
                w &= w - 1;
            }
            *word = 0;
        }
    }

    /// Size of the memory in bytes.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Returns `true` if the memory has zero length.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `size.bytes()` bytes at `addr`, little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of memory.
    #[inline]
    pub fn read(&self, addr: u32, size: AccessSize) -> u64 {
        let a = addr as usize;
        let n = size.bytes() as usize;
        let mut v: u64 = 0;
        for (i, b) in self.bytes[a..a + n].iter().enumerate() {
            v |= u64::from(*b) << (8 * i);
        }
        v
    }

    /// Writes the low `size.bytes()` bytes of `value` at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of memory.
    #[inline]
    pub fn write(&mut self, addr: u32, size: AccessSize, value: u64) {
        let a = addr as usize;
        let n = size.bytes() as usize;
        for i in 0..n {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
        if let Some(t) = &mut self.tracker {
            t.mark_span(addr, n);
        }
    }

    /// Copies a whole line of `line.len()` bytes out of memory at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the line runs past the end of memory.
    #[inline]
    pub fn read_line(&self, base: u32, line: &mut [u8]) {
        let a = base as usize;
        line.copy_from_slice(&self.bytes[a..a + line.len()]);
    }

    /// Writes a whole line into memory at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the line runs past the end of memory.
    #[inline]
    pub fn write_line(&mut self, base: u32, line: &[u8]) {
        let a = base as usize;
        self.bytes[a..a + line.len()].copy_from_slice(line);
        if let Some(t) = &mut self.tracker {
            t.mark_span(base, line.len());
        }
    }

    /// Borrows the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Bus for FunctionalMem {
    fn load(&mut self, addr: u32, size: AccessSize) -> u64 {
        self.read(addr, size)
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u64) {
        self.write(addr, size, value);
    }

    fn compute(&mut self, _cycles: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_initialised() {
        let mem = FunctionalMem::new(16);
        assert_eq!(mem.read(0, AccessSize::B8), 0);
        assert_eq!(mem.len(), 16);
        assert!(!mem.is_empty());
        assert!(FunctionalMem::new(0).is_empty());
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = FunctionalMem::new(8);
        mem.write(0, AccessSize::B4, 0x0403_0201);
        assert_eq!(mem.as_bytes()[..4], [1, 2, 3, 4]);
        assert_eq!(mem.read(1, AccessSize::B2), 0x0302);
    }

    #[test]
    fn partial_writes_do_not_clobber_neighbours() {
        let mut mem = FunctionalMem::new(8);
        mem.write(0, AccessSize::B8, u64::MAX);
        mem.write(2, AccessSize::B2, 0);
        assert_eq!(mem.read(0, AccessSize::B8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn line_round_trip() {
        let mut mem = FunctionalMem::new(128);
        let line: Vec<u8> = (0..64).collect();
        mem.write_line(64, &line);
        let mut out = vec![0u8; 64];
        mem.read_line(64, &mut out);
        assert_eq!(out, line);
        // First line untouched.
        mem.read_line(0, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mem = FunctionalMem::new(4);
        let _ = mem.read(2, AccessSize::B4);
    }

    #[test]
    fn write_tracking_reports_touched_lines_once() {
        let mut mem = FunctionalMem::new(512);
        mem.enable_write_tracking(64);
        mem.write(4, AccessSize::B4, 1); // line 0
        mem.write(62, AccessSize::B8, 2); // straddles lines 0 and 1
        mem.write_line(256, &[7u8; 64]); // line 4
        let mut lines = Vec::new();
        mem.take_written_lines(&mut lines);
        assert_eq!(lines, vec![0, 64, 256]);
        // Drained: nothing new until the next write.
        lines.clear();
        mem.take_written_lines(&mut lines);
        assert!(lines.is_empty());
        mem.write(130, AccessSize::B1, 3);
        mem.take_written_lines(&mut lines);
        assert_eq!(lines, vec![128]);
    }

    #[test]
    fn write_tracking_covers_every_changed_byte() {
        let mut a = FunctionalMem::new(1024);
        let mut b = FunctionalMem::new(1024);
        b.enable_write_tracking(64);
        let mut x: u32 = 0x1234_5678;
        for _ in 0..200 {
            let addr = x % (1024 - 8);
            b.write(addr, AccessSize::B8, u64::from(x) << 7);
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        }
        let mut lines = Vec::new();
        b.take_written_lines(&mut lines);
        // Every byte that differs from the pristine copy lies in a
        // reported line — the soundness the incremental checker needs.
        for (i, (x, y)) in a.as_bytes().iter().zip(b.as_bytes()).enumerate() {
            if x != y {
                let base = (i as u32 / 64) * 64;
                assert!(lines.contains(&base), "changed byte {i} untracked");
            }
        }
        // Tracking does not affect equality semantics.
        a.write(0, AccessSize::B1, 1);
        let mut c = FunctionalMem::new(1024);
        c.enable_write_tracking(64);
        c.write(0, AccessSize::B1, 1);
        assert_eq!(a, c);
    }

    proptest! {
        #[test]
        fn write_then_read_round_trips(
            addr in 0u32..1000,
            value: u64,
            size_ix in 0usize..4,
        ) {
            let sizes = [AccessSize::B1, AccessSize::B2, AccessSize::B4, AccessSize::B8];
            let size = sizes[size_ix];
            let mut mem = FunctionalMem::new(1024);
            mem.write(addr, size, value);
            let mask = if size.bytes() == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * size.bytes())) - 1
            };
            prop_assert_eq!(mem.read(addr, size), value & mask);
        }

        #[test]
        fn disjoint_writes_commute(
            a in 0u32..100,
            b in 200u32..300,
            va: u32,
            vb: u32,
        ) {
            let mut m1 = FunctionalMem::new(512);
            m1.write(a, AccessSize::B4, va.into());
            m1.write(b, AccessSize::B4, vb.into());
            let mut m2 = FunctionalMem::new(512);
            m2.write(b, AccessSize::B4, vb.into());
            m2.write(a, AccessSize::B4, va.into());
            prop_assert_eq!(m1, m2);
        }
    }
}
