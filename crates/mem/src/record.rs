//! Record/replay of the [`Bus`] access stream.
//!
//! A deterministic workload issues the **same** sequence of
//! load/store/compute operations no matter which memory hierarchy it
//! runs against (the hierarchy is functionally transparent — loads
//! return the bytes stored, and kernels branch only on loaded data).
//! That makes the Bus access stream a *design-independent* artifact: it
//! can be captured once, cheaply, against a flat [`FunctionalMem`], and
//! then replayed against any number of simulated machines without
//! re-executing the kernel's own computation. This is the classic
//! trace-driven cache-simulation decoupling.
//!
//! What must be preserved for replay to be **exact** (bit-identical
//! reports): the op kinds, the addresses and sizes, the per-call
//! `compute` cycle arguments, and the program order — the machine
//! settles harvested/consumed energy after every operation, so even
//! merging two adjacent `compute` calls would reorder floating-point
//! accumulation and change outage timing. What need *not* be preserved:
//! data values. Cache hit/miss behaviour, dirtiness, timing and energy
//! all depend on addresses and state only, never on the bytes moved, so
//! replayed stores carry a zero value and the recorded kernel checksum
//! is reported instead (`crates/cache` designs route values into data
//! arrays but never branch on them; the replay-equivalence suite pins
//! this).
//!
//! The stream is delta-encoded and run-length-compressed, in memory and
//! on disk: each memory op stores a zigzag-varint address delta against
//! the previous memory op, and consecutive ops with the same shape
//! (kind, size and delta — i.e. strided loops — or identical `compute`
//! bursts) collapse into one unit plus a repeat token. Typical kernels
//! encode in ~1–3 bytes per operation.
//!
//! [`BusTrace::save`]/[`BusTrace::load`] give the artifact a versioned
//! on-disk form (`TraceFile`), and [`import_column_trace`] ingests
//! external column-format access traces (DACE / Valgrind-lachesis style
//! `op addr [size]` or `addr,op` lines) so foreign workloads can be
//! scored on the simulator without a native kernel.

use crate::bus::{AccessSize, Bus, Workload};
use crate::FunctionalMem;
use std::io::{self, Read, Write};
use std::path::Path;

/// One recorded bus operation, as replayed in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// A load of `size.bytes()` bytes at `addr`.
    Load {
        /// Byte address.
        addr: u32,
        /// Access width.
        size: AccessSize,
    },
    /// A store of `size.bytes()` bytes at `addr` (values are not
    /// recorded; see the module docs for why replay stays exact).
    Store {
        /// Byte address.
        addr: u32,
        /// Access width.
        size: AccessSize,
    },
    /// A burst of pure computation, in cycles, exactly as the kernel
    /// passed it to [`Bus::compute`].
    Compute {
        /// Cycle count of this single `compute` call.
        cycles: u64,
    },
}

/// Operation totals of a trace, as counted by one decode walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Number of load operations.
    pub loads: u64,
    /// Number of store operations.
    pub stores: u64,
    /// Number of `compute` calls.
    pub computes: u64,
    /// Total cycles across all `compute` calls.
    pub compute_cycles: u64,
}

impl OpCounts {
    /// Retired-instruction count this stream produces on the simulated
    /// machine: one per memory op plus one per compute cycle.
    pub fn instructions(&self) -> u64 {
        self.loads + self.stores + self.compute_cycles
    }

    /// Total operations (memory ops + compute calls).
    pub fn ops(&self) -> u64 {
        self.loads + self.stores + self.computes
    }
}

// --- token encoding ---------------------------------------------------
//
// token byte: bits 0..2 = tag, bits 2..4 = size code (memory ops only).
//   tag 0 load  : token, zigzag-varint(addr delta)
//   tag 1 store : token, zigzag-varint(addr delta)
//   tag 2 compute: token, varint(cycles)
//   tag 3 repeat : token, varint(n) — repeat the previous unit n more
//                  times; each repetition advances the address by the
//                  unit's delta (memory ops) or re-issues the same
//                  cycle burst (compute).

const TAG_LOAD: u8 = 0;
const TAG_STORE: u8 = 1;
const TAG_COMPUTE: u8 = 2;
const TAG_REPEAT: u8 = 3;

fn size_code(size: AccessSize) -> u8 {
    match size {
        AccessSize::B1 => 0,
        AccessSize::B2 => 1,
        AccessSize::B4 => 2,
        AccessSize::B8 => 3,
    }
}

fn code_size(code: u8) -> AccessSize {
    match code & 0b11 {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // overlong encoding
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The repeatable unit of the run-length encoder: what a token other
/// than `repeat` describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Mem {
        store: bool,
        size: AccessSize,
        delta: i64,
    },
    Compute {
        cycles: u64,
    },
}

/// Incremental encoder building the compressed op stream.
#[derive(Debug, Clone, Default)]
pub struct BusTraceBuilder {
    bytes: Vec<u8>,
    /// Address of the most recent memory op *pushed* (including pending
    /// repetitions), the delta basis for the next one.
    last_addr: u32,
    pending: Option<(Unit, u64)>,
    counts: OpCounts,
}

impl BusTraceBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one operation to the stream.
    pub fn push(&mut self, op: BusOp) {
        let unit = match op {
            BusOp::Load { addr, size } | BusOp::Store { addr, size } => {
                let store = matches!(op, BusOp::Store { .. });
                let delta = i64::from(addr) - i64::from(self.last_addr);
                self.last_addr = addr;
                if store {
                    self.counts.stores += 1;
                } else {
                    self.counts.loads += 1;
                }
                Unit::Mem { store, size, delta }
            }
            BusOp::Compute { cycles } => {
                self.counts.computes += 1;
                self.counts.compute_cycles += cycles;
                Unit::Compute { cycles }
            }
        };
        match &mut self.pending {
            Some((p, n)) if *p == unit => *n += 1,
            _ => {
                self.flush_pending();
                self.pending = Some((unit, 1));
            }
        }
    }

    fn flush_pending(&mut self) {
        let Some((unit, n)) = self.pending.take() else {
            return;
        };
        match unit {
            Unit::Mem { store, size, delta } => {
                let tag = if store { TAG_STORE } else { TAG_LOAD };
                self.bytes.push(tag | (size_code(size) << 2));
                put_varint(&mut self.bytes, zigzag(delta));
            }
            Unit::Compute { cycles } => {
                self.bytes.push(TAG_COMPUTE);
                put_varint(&mut self.bytes, cycles);
            }
        }
        if n > 1 {
            self.bytes.push(TAG_REPEAT);
            put_varint(&mut self.bytes, n - 1);
        }
    }

    /// Operation totals so far.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Seals the stream into a [`BusTrace`].
    ///
    /// `name` labels reports produced from replays; `mem_bytes` is the
    /// address-space size a replaying machine must provide; `checksum`
    /// is the kernel's functional result, reported by replayed runs in
    /// place of re-computing it.
    pub fn finish(mut self, name: &str, mem_bytes: u32, checksum: u64) -> BusTrace {
        self.flush_pending();
        self.bytes.shrink_to_fit();
        BusTrace {
            name: name.to_string(),
            mem_bytes,
            checksum,
            counts: self.counts,
            bytes: self.bytes,
        }
    }
}

/// A recorded, compressed Bus access stream: the design-independent
/// half of a simulation, captured once per workload and replayed
/// against any machine configuration.
///
/// `BusTrace` implements [`Workload`], so a recorded (or imported)
/// trace can be handed to anything that runs workloads; its `run`
/// replays the stream and returns the recorded checksum.
#[derive(Debug, Clone, PartialEq)]
pub struct BusTrace {
    name: String,
    mem_bytes: u32,
    checksum: u64,
    counts: OpCounts,
    bytes: Vec<u8>,
}

impl BusTrace {
    /// Records `workload`'s access stream by running it once against a
    /// [`TraceRecorder`] over a flat [`FunctionalMem`] — the cheapest
    /// functionally-correct bus, so recording costs roughly one
    /// kernel execution.
    pub fn record(workload: &dyn Workload) -> BusTrace {
        let mut rec = TraceRecorder::new(FunctionalMem::new(workload.mem_bytes()));
        let checksum = workload.run(&mut rec);
        rec.finish(workload.name(), workload.mem_bytes(), checksum)
    }

    /// The recorded workload's name (reports from replays carry it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes of address space the stream touches (what
    /// [`Workload::mem_bytes`] returned at record time).
    pub fn mem_bytes(&self) -> u32 {
        self.mem_bytes
    }

    /// The recorded kernel's functional checksum (0 for imported
    /// traces, which have no native kernel to compute one).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Operation totals.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Total operations in the stream.
    pub fn ops(&self) -> u64 {
        self.counts.ops()
    }

    /// Size of the compressed in-memory encoding.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// FNV-1a hash of the encoded op stream — the content fingerprint
    /// the sweep engine's trace dedup indexes by (the same hash the
    /// on-disk format carries as its payload checksum). Equal streams
    /// always hash equal; the converse is confirmed with
    /// [`BusTrace::same_ops`] before any sharing happens.
    pub fn content_fnv(&self) -> u64 {
        fnv1a(&self.bytes)
    }

    /// Whether `other` records the same op stream over the same address
    /// space: equal `mem_bytes` and byte-equal encoded payloads. The
    /// encoding is canonical — one op sequence has exactly one encoding
    /// (delta, varint and run-length decisions are all deterministic
    /// functions of the sequence) — so byte equality is op-for-op
    /// equality. The *name* and kernel checksum may differ: distinct
    /// workloads can share one access pattern, which is exactly what
    /// the sweep engine's dedup exploits.
    pub fn same_ops(&self, other: &BusTrace) -> bool {
        self.mem_bytes == other.mem_bytes && self.bytes == other.bytes
    }

    /// A decoding cursor over the stream, yielding [`BusOp`]s in
    /// program order.
    pub fn cursor(&self) -> ReplayCursor<'_> {
        ReplayCursor {
            bytes: &self.bytes,
            pos: 0,
            last_addr: 0,
            prev: None,
            repeat_left: 0,
        }
    }

    /// Compares two streams op-for-op and reports the first divergence:
    /// the 0-based ordinal of the first differing operation together
    /// with each side's op at that ordinal (`None` where a stream
    /// ended). Returns `None` when the streams are identical.
    pub fn first_divergence(&self, other: &BusTrace) -> Option<Divergence> {
        let mut a = self.cursor();
        let mut b = other.cursor();
        let mut ordinal = 0u64;
        loop {
            match (a.next(), b.next()) {
                (None, None) => return None,
                (x, y) if x == y => ordinal += 1,
                (x, y) => {
                    return Some(Divergence {
                        ordinal,
                        a: x,
                        b: y,
                    })
                }
            }
        }
    }

    // --- on-disk format (`TraceFile`) ---------------------------------
    //
    //   magic    8 B   "EHBUSTR" + format version byte (currently 1)
    //   name_len 4 B   LE u32, followed by that many UTF-8 bytes
    //   mem      4 B   LE u32 address-space size
    //   checksum 8 B   LE u64 kernel checksum
    //   loads    8 B   LE u64 \
    //   stores   8 B   LE u64  | op totals (validated against a decode
    //   computes 8 B   LE u64  | walk at load time)
    //   cycles   8 B   LE u64 /
    //   len      8 B   LE u64 payload length
    //   payload        the compressed op stream
    //   fnv      8 B   LE u64 FNV-1a of the payload

    /// Serializes the trace in the versioned `TraceFile` format.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        let name = self.name.as_bytes();
        let name_len = u32::try_from(name.len()).unwrap_or(u32::MAX);
        w.write_all(&name_len.to_le_bytes())?;
        w.write_all(&name[..name_len as usize])?;
        w.write_all(&self.mem_bytes.to_le_bytes())?;
        w.write_all(&self.checksum.to_le_bytes())?;
        for n in [
            self.counts.loads,
            self.counts.stores,
            self.counts.computes,
            self.counts.compute_cycles,
        ] {
            w.write_all(&n.to_le_bytes())?;
        }
        w.write_all(&(self.bytes.len() as u64).to_le_bytes())?;
        w.write_all(&self.bytes)?;
        w.write_all(&fnv1a(&self.bytes).to_le_bytes())?;
        Ok(())
    }

    /// Deserializes and **validates** a `TraceFile`: magic/version,
    /// payload checksum, declared op totals against a full decode walk,
    /// and every access against the declared address-space bound.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFileError`] naming what failed; a trace that
    /// loads successfully replays without panicking.
    pub fn read_from(r: &mut impl Read) -> Result<BusTrace, TraceFileError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic[..7] != MAGIC[..7] {
            return Err(TraceFileError::Format("not a Bus trace file".into()));
        }
        if magic[7] != VERSION {
            return Err(TraceFileError::Format(format!(
                "unsupported trace format version {} (this build reads {VERSION})",
                magic[7]
            )));
        }
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(TraceFileError::Format(format!(
                "unreasonable name length {name_len}"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| TraceFileError::Format("trace name is not UTF-8".into()))?;
        let mem_bytes = read_u32(r)?;
        let checksum = read_u64(r)?;
        let counts = OpCounts {
            loads: read_u64(r)?,
            stores: read_u64(r)?,
            computes: read_u64(r)?,
            compute_cycles: read_u64(r)?,
        };
        let len = read_u64(r)?;
        let len = usize::try_from(len)
            .map_err(|_| TraceFileError::Format(format!("payload length {len} overflows")))?;
        let mut bytes = vec![0u8; len];
        r.read_exact(&mut bytes)?;
        let fnv = read_u64(r)?;
        if fnv != fnv1a(&bytes) {
            return Err(TraceFileError::Format(
                "payload checksum mismatch (truncated or corrupted file)".into(),
            ));
        }
        let trace = BusTrace {
            name,
            mem_bytes,
            checksum,
            counts,
            bytes,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Full decode walk: every op must decode, stay in `0..mem_bytes`,
    /// be naturally aligned, and the totals must match the header.
    fn validate(&self) -> Result<(), TraceFileError> {
        let mut walked = OpCounts::default();
        let mut cursor = self.cursor();
        for op in &mut cursor {
            match op {
                BusOp::Load { addr, size } | BusOp::Store { addr, size } => {
                    let bytes = size.bytes();
                    if addr % bytes != 0 {
                        return Err(TraceFileError::Format(format!(
                            "misaligned {}-byte access at {addr:#x}",
                            bytes
                        )));
                    }
                    if u64::from(addr) + u64::from(bytes) > u64::from(self.mem_bytes) {
                        return Err(TraceFileError::Format(format!(
                            "access at {addr:#x} exceeds the declared {} -byte address space",
                            self.mem_bytes
                        )));
                    }
                    if matches!(op, BusOp::Store { .. }) {
                        walked.stores += 1;
                    } else {
                        walked.loads += 1;
                    }
                }
                BusOp::Compute { cycles } => {
                    walked.computes += 1;
                    walked.compute_cycles += cycles;
                }
            }
        }
        if cursor.pos != self.bytes.len() || cursor.repeat_left != 0 {
            return Err(TraceFileError::Format(
                "trailing garbage or truncated op stream".into(),
            ));
        }
        if walked != self.counts {
            return Err(TraceFileError::Format(format!(
                "op totals disagree with the stream: header {:?}, walked {walked:?}",
                self.counts
            )));
        }
        Ok(())
    }

    /// Writes the trace to `path` in the `TraceFile` format.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save(&self, path: &Path) -> Result<(), TraceFileError> {
        let file = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Reads and validates a `TraceFile` from `path`.
    ///
    /// # Errors
    ///
    /// See [`BusTrace::read_from`].
    pub fn load(path: &Path) -> Result<BusTrace, TraceFileError> {
        let file = std::fs::File::open(path)?;
        let mut r = io::BufReader::new(file);
        Self::read_from(&mut r)
    }

    /// Whether `bytes` starts with the `TraceFile` magic (any version)
    /// — for sniffing file kinds without parsing.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 7 && bytes[..7] == MAGIC[..7]
    }
}

const MAGIC: &[u8; 8] = b"EHBUSTR\x01";
const VERSION: u8 = 1;

fn read_u32(r: &mut impl Read) -> Result<u32, TraceFileError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, TraceFileError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// FNV-1a 64-bit hash (payload integrity check of the on-disk format).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Error loading or validating a `TraceFile`.
#[derive(Debug)]
pub enum TraceFileError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a valid trace of a version this build reads.
    Format(String),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "i/o error: {e}"),
            TraceFileError::Format(m) => write!(f, "invalid trace file: {m}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// First point where two [`BusTrace`]s disagree
/// (see [`BusTrace::first_divergence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based ordinal of the first differing operation.
    pub ordinal: u64,
    /// The left stream's op at that ordinal (`None`: stream ended).
    pub a: Option<BusOp>,
    /// The right stream's op at that ordinal (`None`: stream ended).
    pub b: Option<BusOp>,
}

/// Decoding iterator over a [`BusTrace`]'s op stream.
///
/// Malformed bytes terminate iteration early; traces produced by
/// [`BusTraceBuilder`] are well-formed by construction and traces read
/// from disk are validated on load, so in practice the cursor yields
/// exactly [`BusTrace::ops`] operations.
#[derive(Debug, Clone)]
pub struct ReplayCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    last_addr: u32,
    prev: Option<Unit>,
    repeat_left: u64,
}

impl ReplayCursor<'_> {
    fn apply(&mut self, unit: Unit) -> BusOp {
        match unit {
            Unit::Mem { store, size, delta } => {
                let addr = (i64::from(self.last_addr) + delta) as u32;
                self.last_addr = addr;
                if store {
                    BusOp::Store { addr, size }
                } else {
                    BusOp::Load { addr, size }
                }
            }
            Unit::Compute { cycles } => BusOp::Compute { cycles },
        }
    }
}

impl Iterator for ReplayCursor<'_> {
    type Item = BusOp;

    fn next(&mut self) -> Option<BusOp> {
        if self.repeat_left > 0 {
            self.repeat_left -= 1;
            let unit = self.prev?;
            return Some(self.apply(unit));
        }
        let &token = self.bytes.get(self.pos)?;
        self.pos += 1;
        let unit = match token & 0b11 {
            TAG_COMPUTE => Unit::Compute {
                cycles: get_varint(self.bytes, &mut self.pos)?,
            },
            TAG_REPEAT => {
                self.repeat_left = get_varint(self.bytes, &mut self.pos)?;
                if self.repeat_left == 0 {
                    return None; // malformed: empty repeat
                }
                self.repeat_left -= 1;
                let unit = self.prev?;
                return Some(self.apply(unit));
            }
            tag => Unit::Mem {
                store: tag == TAG_STORE,
                size: code_size(token >> 2),
                delta: unzigzag(get_varint(self.bytes, &mut self.pos)?),
            },
        };
        self.prev = Some(unit);
        Some(self.apply(unit))
    }
}

/// A recorded trace *is* a workload: replaying it through any [`Bus`]
/// issues the captured stream (stores carry a zero value) and returns
/// the recorded checksum.
impl Workload for BusTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn mem_bytes(&self) -> u32 {
        self.mem_bytes
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        for op in self.cursor() {
            match op {
                BusOp::Load { addr, size } => {
                    bus.load(addr, size);
                }
                BusOp::Store { addr, size } => bus.store(addr, size, 0),
                BusOp::Compute { cycles } => bus.compute(cycles),
            }
        }
        self.checksum
    }
}

/// A [`Bus`] wrapper that forwards every operation to `inner` while
/// appending it to a [`BusTraceBuilder`].
///
/// Wrap a [`FunctionalMem`] to capture a workload's stream at kernel
/// speed ([`BusTrace::record`] does exactly that), or wrap a full
/// machine to record while simulating.
#[derive(Debug)]
pub struct TraceRecorder<B> {
    inner: B,
    builder: BusTraceBuilder,
}

impl<B: Bus> TraceRecorder<B> {
    /// Wraps `inner`, recording every op that flows through.
    pub fn new(inner: B) -> Self {
        Self {
            inner,
            builder: BusTraceBuilder::new(),
        }
    }

    /// The wrapped bus.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Operation totals recorded so far.
    pub fn counts(&self) -> OpCounts {
        self.builder.counts()
    }

    /// Seals the recording (see [`BusTraceBuilder::finish`]).
    pub fn finish(self, name: &str, mem_bytes: u32, checksum: u64) -> BusTrace {
        self.builder.finish(name, mem_bytes, checksum)
    }
}

impl<B: Bus> Bus for TraceRecorder<B> {
    fn load(&mut self, addr: u32, size: AccessSize) -> u64 {
        self.builder.push(BusOp::Load { addr, size });
        self.inner.load(addr, size)
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u64) {
        self.builder.push(BusOp::Store { addr, size });
        self.inner.store(addr, size, value);
    }

    fn compute(&mut self, cycles: u64) {
        self.builder.push(BusOp::Compute { cycles });
        self.inner.compute(cycles);
    }
}

/// Imports an external column-format access trace (DACE /
/// Valgrind-lachesis style) as a [`BusTrace`] named `name`.
///
/// Accepted line shapes (fields split on whitespace and/or commas;
/// blank lines and lines starting with `#`, `;` or `//` are skipped):
///
/// * `<op> <addr> [size]` — e.g. `l 0x1f00 4`, `W 4096`, `store 0x80 8`
/// * `<addr> <op> [size]` — e.g. `0x1f00,R` (lachesis column order)
/// * `c <cycles>` / `compute <cycles>` — a computation burst
///
/// Ops: `l`/`r`/`R`/`L`/`load`/`read`/`0` are loads; `s`/`w`/`W`/`S`/
/// `store`/`write`/`1` are stores. Addresses parse as hex with a `0x`
/// prefix or as decimal. The size defaults to 4 bytes and must be 1, 2,
/// 4 or 8; addresses are aligned **down** to the access size (the
/// simulated hierarchy requires natural alignment). The trace's
/// `mem_bytes` is the smallest line-rounded span covering every access,
/// and its checksum is 0 (imported streams have no native kernel).
///
/// # Errors
///
/// Returns `line <n>: <what>` for the first unparseable line.
pub fn import_column_trace(text: &str, name: &str) -> Result<BusTrace, String> {
    let mut builder = BusTraceBuilder::new();
    let mut top = 0u64;
    for (ix, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with('#')
            || line.starts_with(';')
            || line.starts_with("//")
        {
            continue;
        }
        let fields: Vec<&str> = line
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|f| !f.is_empty())
            .collect();
        let err = |what: String| format!("line {}: {what}", ix + 1);
        let op = parse_op(&fields).map_err(&err)?;
        match op {
            BusOp::Load { addr, size } | BusOp::Store { addr, size } => {
                top = top.max(u64::from(addr) + u64::from(size.bytes()));
                if top > u64::from(u32::MAX) {
                    return Err(err(format!("address {addr:#x} overflows the 32-bit space")));
                }
            }
            BusOp::Compute { .. } => {}
        }
        builder.push(op);
    }
    if builder.counts().ops() == 0 {
        return Err("no operations found (empty or all-comment input)".into());
    }
    // Round the span up to a whole number of 64-byte lines so the
    // replaying machine's NVM covers every access.
    let mem_bytes =
        u32::try_from(top.div_ceil(u64::from(crate::LINE_BYTES)) * u64::from(crate::LINE_BYTES))
            .map_err(|_| "address space overflows 32 bits".to_string())?;
    Ok(builder.finish(name, mem_bytes, 0))
}

/// Parses one line's fields into an op (see [`import_column_trace`]).
fn parse_op(fields: &[&str]) -> Result<BusOp, String> {
    let Some(&first) = fields.first() else {
        return Err("empty line".into());
    };
    // compute burst?
    if matches!(first, "c" | "C" | "compute") {
        let cycles = fields
            .get(1)
            .ok_or_else(|| "compute needs a cycle count".to_string())?;
        let cycles = parse_num(cycles)?;
        return Ok(BusOp::Compute { cycles });
    }
    // `<op> <addr> [size]` or `<addr> <op> [size]`
    let (kind, addr, rest) = if let Some(kind) = op_kind(first) {
        let addr = fields
            .get(1)
            .ok_or_else(|| format!("'{first}' needs an address"))?;
        (kind, parse_num(addr)?, &fields[2..])
    } else {
        let addr = parse_num(first)?;
        let op = fields
            .get(1)
            .ok_or_else(|| "address without an op field".to_string())?;
        let kind =
            op_kind(op).ok_or_else(|| format!("unknown op '{op}' (load/store/l/s/r/w/0/1)"))?;
        (kind, addr, &fields[2..])
    };
    let size = match rest.first() {
        None => AccessSize::B4,
        Some(&s) => match parse_num(s)? {
            1 => AccessSize::B1,
            2 => AccessSize::B2,
            4 => AccessSize::B4,
            8 => AccessSize::B8,
            other => return Err(format!("unsupported access size {other} (1|2|4|8)")),
        },
    };
    let addr = u32::try_from(addr).map_err(|_| format!("address {addr:#x} overflows 32 bits"))?;
    let addr = addr & !(size.bytes() - 1); // natural alignment
    Ok(if kind {
        BusOp::Store { addr, size }
    } else {
        BusOp::Load { addr, size }
    })
}

/// `Some(true)` for store tokens, `Some(false)` for loads.
fn op_kind(tok: &str) -> Option<bool> {
    match tok {
        "l" | "L" | "r" | "R" | "load" | "read" | "0" => Some(false),
        "s" | "S" | "w" | "W" | "store" | "write" | "1" => Some(true),
        _ => None,
    }
}

fn parse_num(tok: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| format!("'{tok}' is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic op soup with every kind/size and both small and
    /// large address jumps.
    fn soup(n: u32) -> Vec<BusOp> {
        let mut x = 0x1234_5678u32;
        let mut ops = Vec::new();
        for i in 0..n {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let size = match x % 4 {
                0 => AccessSize::B1,
                1 => AccessSize::B2,
                2 => AccessSize::B4,
                _ => AccessSize::B8,
            };
            let addr = (x >> 3) & !(size.bytes() - 1);
            ops.push(match (x >> 30) % 3 {
                0 => BusOp::Load { addr, size },
                1 => BusOp::Store { addr, size },
                _ => BusOp::Compute {
                    cycles: u64::from(x % 5000) + 1,
                },
            });
            if i % 7 == 0 {
                // runs of identical ops to exercise the RLE path
                for _ in 0..(x % 5) {
                    ops.push(BusOp::Compute { cycles: 64 });
                }
            }
        }
        ops
    }

    fn build(ops: &[BusOp]) -> BusTrace {
        let mut b = BusTraceBuilder::new();
        for &op in ops {
            b.push(op);
        }
        b.finish("soup", u32::MAX, 42)
    }

    #[test]
    fn encode_decode_round_trips() {
        let ops = soup(5000);
        let trace = build(&ops);
        let decoded: Vec<BusOp> = trace.cursor().collect();
        assert_eq!(decoded, ops);
        assert_eq!(trace.ops(), ops.len() as u64);
    }

    #[test]
    fn counts_tally_every_kind() {
        let ops = vec![
            BusOp::Load {
                addr: 0,
                size: AccessSize::B4,
            },
            BusOp::Store {
                addr: 4,
                size: AccessSize::B4,
            },
            BusOp::Compute { cycles: 10 },
            BusOp::Compute { cycles: 10 },
        ];
        let t = build(&ops);
        let c = t.counts();
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 1);
        assert_eq!(c.computes, 2);
        assert_eq!(c.compute_cycles, 20);
        assert_eq!(c.instructions(), 22);
        assert_eq!(c.ops(), 4);
    }

    #[test]
    fn strided_loops_compress_hard() {
        // 100k stores at stride 4 plus 100k identical compute bursts:
        // constant deltas collapse into unit+repeat tokens.
        let mut b = BusTraceBuilder::new();
        for i in 0..100_000u32 {
            b.push(BusOp::Store {
                addr: i * 4,
                size: AccessSize::B4,
            });
        }
        for _ in 0..100_000 {
            b.push(BusOp::Compute { cycles: 37 });
        }
        let t = b.finish("stride", u32::MAX, 0);
        assert_eq!(t.ops(), 200_000);
        assert!(
            t.encoded_len() < 32,
            "two RLE units must encode in a handful of bytes, got {}",
            t.encoded_len()
        );
        let decoded: Vec<BusOp> = t.cursor().collect();
        assert_eq!(decoded.len(), 200_000);
        assert_eq!(
            decoded[99_999],
            BusOp::Store {
                addr: 399_996,
                size: AccessSize::B4
            }
        );
        assert_eq!(decoded[100_000], BusOp::Compute { cycles: 37 });
    }

    #[test]
    fn recorder_captures_what_flows_through() {
        let mut rec = TraceRecorder::new(FunctionalMem::new(256));
        rec.store_u32(0, 7);
        rec.store_u32(4, 8);
        assert_eq!(rec.load_u32(0), 7, "recording is functionally transparent");
        rec.compute(100);
        assert_eq!(rec.counts().ops(), 4);
        let t = rec.finish("mini", 256, 15);
        let ops: Vec<BusOp> = t.cursor().collect();
        assert_eq!(
            ops,
            vec![
                BusOp::Store {
                    addr: 0,
                    size: AccessSize::B4
                },
                BusOp::Store {
                    addr: 4,
                    size: AccessSize::B4
                },
                BusOp::Load {
                    addr: 0,
                    size: AccessSize::B4
                },
                BusOp::Compute { cycles: 100 },
            ]
        );
    }

    struct Mini;
    impl Workload for Mini {
        fn name(&self) -> &str {
            "mini"
        }
        fn mem_bytes(&self) -> u32 {
            256
        }
        fn run(&self, bus: &mut dyn Bus) -> u64 {
            let mut acc = 0u64;
            for i in 0..32u32 {
                bus.store_u32(i * 4, i * 3);
            }
            for i in 0..32u32 {
                acc = acc.wrapping_add(u64::from(bus.load_u32(i * 4)));
                bus.compute(5);
            }
            acc
        }
    }

    #[test]
    fn recorded_trace_is_a_workload() {
        let t = BusTrace::record(&Mini);
        assert_eq!(t.name(), "mini");
        assert_eq!(t.mem_bytes(), 256);
        let expect: u64 = (0..32).map(|i| u64::from(i * 3u32)).sum();
        assert_eq!(t.checksum(), expect);
        // Replaying through a fresh FunctionalMem yields the recorded
        // checksum (not a recomputed one) and the same access stream.
        let mut mem = FunctionalMem::new(t.mem_bytes());
        assert_eq!(t.run(&mut mem), expect);
        let t2 = BusTrace::record(&t);
        assert_eq!(t.first_divergence(&t2), None);
        // Replayed stores carry zeros, not the original data.
        assert_eq!(mem.load_u32(4), 0);
    }

    #[test]
    fn divergence_reports_ordinal_and_ops() {
        let a = build(&[
            BusOp::Load {
                addr: 0,
                size: AccessSize::B4,
            },
            BusOp::Compute { cycles: 9 },
        ]);
        let b = build(&[
            BusOp::Load {
                addr: 0,
                size: AccessSize::B4,
            },
            BusOp::Compute { cycles: 10 },
        ]);
        let d = a.first_divergence(&b).expect("streams differ");
        assert_eq!(d.ordinal, 1);
        assert_eq!(d.a, Some(BusOp::Compute { cycles: 9 }));
        assert_eq!(d.b, Some(BusOp::Compute { cycles: 10 }));
        // Length mismatch: the shorter side reports None.
        let c = build(&[BusOp::Load {
            addr: 0,
            size: AccessSize::B4,
        }]);
        let d = a.first_divergence(&c).expect("lengths differ");
        assert_eq!(d.ordinal, 1);
        assert_eq!(d.b, None);
        assert_eq!(a.first_divergence(&a), None);
    }

    #[test]
    fn trace_file_round_trips() {
        let t = BusTrace::record(&Mini);
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        assert!(BusTrace::sniff(&buf));
        let back = BusTrace::read_from(&mut buf.as_slice()).expect("read");
        assert_eq!(back, t);
    }

    #[test]
    fn trace_file_rejects_corruption() {
        let t = BusTrace::record(&Mini);
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(BusTrace::read_from(&mut bad.as_slice()).is_err());
        assert!(!BusTrace::sniff(&bad));

        // Unsupported version.
        let mut bad = buf.clone();
        bad[7] = 99;
        assert!(matches!(
            BusTrace::read_from(&mut bad.as_slice()),
            Err(TraceFileError::Format(m)) if m.contains("version")
        ));

        // Flipped payload byte: FNV catches it.
        let mut bad = buf.clone();
        let payload_at = buf.len() - 9; // last payload byte (before fnv)
        bad[payload_at] ^= 0xff;
        assert!(BusTrace::read_from(&mut bad.as_slice()).is_err());

        // Truncation.
        let bad = &buf[..buf.len() - 4];
        assert!(BusTrace::read_from(&mut &bad[..]).is_err());
    }

    #[test]
    fn trace_file_validation_rejects_out_of_bounds_streams() {
        // Hand-build a trace whose stream exceeds its declared span.
        let mut b = BusTraceBuilder::new();
        b.push(BusOp::Store {
            addr: 1024,
            size: AccessSize::B4,
        });
        let t = b.finish("oob", 64, 0);
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        assert!(matches!(
            BusTrace::read_from(&mut buf.as_slice()),
            Err(TraceFileError::Format(m)) if m.contains("exceeds")
        ));
    }

    #[test]
    fn import_accepts_both_column_orders_and_compute() {
        let text = "\
# a comment
l 0x40 4
0x80,W
s 0x100 8
c 250
// another comment
128 r 2
w 0x47 1
";
        let t = import_column_trace(text, "foreign").expect("imports");
        assert_eq!(t.name(), "foreign");
        assert_eq!(t.checksum(), 0);
        let ops: Vec<BusOp> = t.cursor().collect();
        assert_eq!(
            ops,
            vec![
                BusOp::Load {
                    addr: 0x40,
                    size: AccessSize::B4
                },
                BusOp::Store {
                    addr: 0x80,
                    size: AccessSize::B4
                },
                BusOp::Store {
                    addr: 0x100,
                    size: AccessSize::B8
                },
                BusOp::Compute { cycles: 250 },
                BusOp::Load {
                    addr: 128,
                    size: AccessSize::B2
                },
                BusOp::Store {
                    addr: 0x47,
                    size: AccessSize::B1
                },
            ]
        );
        // Span covers the highest access, rounded to whole lines.
        assert_eq!(t.mem_bytes(), 0x140);
    }

    #[test]
    fn import_aligns_addresses_down() {
        let t = import_column_trace("l 0x46 4", "x").expect("imports");
        assert_eq!(
            t.cursor().next(),
            Some(BusOp::Load {
                addr: 0x44,
                size: AccessSize::B4
            })
        );
    }

    #[test]
    fn import_rejects_garbage_with_line_numbers() {
        let e = import_column_trace("l 0x40\nfrob 1\n", "x").expect_err("rejects");
        assert!(e.contains("line 2"), "{e}");
        assert!(import_column_trace("", "x").is_err());
        assert!(import_column_trace("l 0x40 3", "x").is_err(), "bad size");
        assert!(import_column_trace("c", "x").is_err(), "cycle-less compute");
        assert!(import_column_trace("0x40", "x").is_err(), "op-less address");
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos), Some(v));
            assert_eq!(pos, out.len());
        }
        for d in [0i64, 1, -1, 63, -64, i64::from(i32::MAX), -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // Truncated varint decodes to None, not a panic.
        assert_eq!(get_varint(&[0x80], &mut 0), None);
    }
}
