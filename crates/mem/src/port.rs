//! Single NVM memory port with busy-time tracking.

use crate::Ps;

/// A single-ported NVM interface.
///
/// Energy-harvesting microcontrollers have one path to main memory.
/// Asynchronous write-backs issued by WL-Cache (or ReplayCache's region
/// persists) occupy the port but do **not** stall the core; a later demand
/// access (miss fill, synchronous store, checkpoint flush) must wait until
/// the port frees up. This is how the simulator models both the ILP
/// benefit of asynchronous write-back and its contention cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NvmPort {
    busy_until: Ps,
}

impl NvmPort {
    /// Creates an idle port.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an operation at time `now` taking `service` ps, after
    /// which the port needs `recovery` ps before the next operation.
    ///
    /// Returns `(start, done)`: the operation begins at
    /// `start = max(now, busy_until)` and its result (data or ACK) is
    /// available at `done = start + service`. The port stays busy until
    /// `done + recovery`.
    #[inline]
    pub fn schedule(&mut self, now: Ps, service: Ps, recovery: Ps) -> (Ps, Ps) {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done + recovery;
        (start, done)
    }

    /// First instant at which a new operation could start.
    #[inline]
    pub fn busy_until(&self) -> Ps {
        self.busy_until
    }

    /// Whether the port is idle at `now`.
    #[inline]
    pub fn is_idle_at(&self, now: Ps) -> bool {
        now >= self.busy_until
    }

    /// Clears all in-flight state (used at power-off: volatile queues are
    /// lost; whatever was committed stays committed).
    pub fn reset(&mut self) {
        self.busy_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_port_starts_immediately() {
        let mut p = NvmPort::new();
        let (start, done) = p.schedule(1_000, 500, 100);
        assert_eq!(start, 1_000);
        assert_eq!(done, 1_500);
        assert_eq!(p.busy_until(), 1_600);
    }

    #[test]
    fn busy_port_delays_start() {
        let mut p = NvmPort::new();
        p.schedule(0, 1_000, 0);
        let (start, done) = p.schedule(400, 200, 0);
        assert_eq!(start, 1_000);
        assert_eq!(done, 1_200);
    }

    #[test]
    fn recovery_blocks_next_op_but_not_completion() {
        let mut p = NvmPort::new();
        let (_, done) = p.schedule(0, 100, 1_000);
        assert_eq!(done, 100);
        let (start, _) = p.schedule(done, 100, 0);
        assert_eq!(start, 1_100);
    }

    #[test]
    fn is_idle_at_tracks_busy_until() {
        let mut p = NvmPort::new();
        assert!(p.is_idle_at(0));
        p.schedule(0, 100, 50);
        assert!(!p.is_idle_at(149));
        assert!(p.is_idle_at(150));
    }

    #[test]
    fn reset_clears_busy() {
        let mut p = NvmPort::new();
        p.schedule(0, 10_000, 0);
        p.reset();
        assert!(p.is_idle_at(0));
    }
}
