//! Criterion micro-benchmarks for the core data structures: the
//! DirtyQueue protocol operations, the tag/data array, the power-trace
//! cursor, capacitor arithmetic, and the CACTI-lite estimator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ehsim_cache::{CacheGeometry, ReplacementPolicy, TagArray};
use ehsim_energy::{Capacitor, ChargingModel, TraceKind};
use ehsim_hwcost::{dirty_queue_spec, estimate};
use std::hint::black_box;
use wl_cache::{DirtyQueue, DqPolicy};

fn bench_dirty_queue(c: &mut Criterion) {
    c.bench_function("dirty_queue/push_clean_ack_cycle", |b| {
        b.iter_batched(
            || DirtyQueue::new(8),
            |mut q| {
                for i in 0..6u32 {
                    q.push(i * 64);
                }
                let (sel, _) = q.select_for_cleaning(DqPolicy::Fifo, |_| Some(0));
                q.mark_cleaning(sel.unwrap(), 1_000);
                black_box(q.pop_acked(2_000));
                black_box(q.len())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("dirty_queue/lru_select_8", |b| {
        b.iter_batched(
            || {
                let mut q = DirtyQueue::new(8);
                for i in 0..8u32 {
                    q.push(i * 64);
                }
                q
            },
            |mut q| {
                let (sel, _) =
                    q.select_for_cleaning(DqPolicy::Lru, |base| Some(u64::from(base ^ 0x5a)));
                black_box(sel)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tag_array(c: &mut Criterion) {
    let geom = CacheGeometry::paper_default();
    let mut array = TagArray::new(geom, ReplacementPolicy::Lru);
    let line = vec![0u8; 64];
    for i in 0..128u32 {
        let addr = i * 64;
        let v = array.victim(addr);
        array.fill(v, addr, &line);
    }
    c.bench_function("tag_array/lookup_hit", |b| {
        b.iter(|| black_box(array.lookup(black_box(0x1040))))
    });
    c.bench_function("tag_array/victim_select", |b| {
        b.iter(|| black_box(array.victim(black_box(0x9040))))
    });
}

fn bench_trace(c: &mut Criterion) {
    let trace = TraceKind::Rf1.build();
    c.bench_function("trace/advance_1us", |b| {
        let mut cursor = trace.cursor();
        b.iter(|| black_box(cursor.advance(1_000_000)))
    });
}

fn bench_capacitor(c: &mut Criterion) {
    c.bench_function("capacitor/drain_charge", |b| {
        let mut cap = Capacitor::paper_default();
        cap.set_voltage(3.3);
        b.iter(|| {
            cap.drain_pj(black_box(10.0));
            cap.charge_pj(black_box(10.0));
            black_box(cap.voltage())
        })
    });
    c.bench_function("charging/efficiency", |b| {
        let m = ChargingModel::paper_default();
        b.iter(|| black_box(m.efficiency(black_box(3.37))))
    });
}

fn bench_hwcost(c: &mut Criterion) {
    c.bench_function("hwcost/dirty_queue_estimate", |b| {
        b.iter(|| black_box(estimate(&dirty_queue_spec(8, 32))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_dirty_queue, bench_tag_array, bench_trace, bench_capacitor, bench_hwcost
}
criterion_main!(benches);
