//! Criterion benchmarks of the simulator itself: per-design hot paths
//! (store/load streams) and a small end-to-end workload, measuring the
//! harness's own throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ehsim::{SimConfig, Simulator};
use ehsim_energy::TraceKind;
use ehsim_mem::{Bus, Workload};
use ehsim_workloads::prelude::*;
use std::hint::black_box;

struct StoreStream;
impl Workload for StoreStream {
    fn name(&self) -> &str {
        "store-stream"
    }
    fn mem_bytes(&self) -> u32 {
        16 * 1024
    }
    fn run(&self, bus: &mut dyn Bus) -> u64 {
        for i in 0..4_096u32 {
            bus.store_u32((i * 4) % 16_384, i);
        }
        1
    }
}

fn bench_design_hot_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine/store_stream_4k");
    for cfg in SimConfig::all_designs() {
        g.bench_function(cfg.design.label(), |b| {
            b.iter(|| {
                let r = Simulator::new(cfg.clone()).run(&StoreStream).unwrap();
                black_box(r.total_time_ps)
            })
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("sim/sha_small_wl_rf1", |b| {
        let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf1);
        let w = Sha::small();
        b.iter(|| {
            let r = Simulator::new(cfg.clone()).run(&w).unwrap();
            black_box(r.checksum)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_design_hot_paths, bench_end_to_end
}
criterion_main!(benches);
