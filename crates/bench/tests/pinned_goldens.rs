//! Pinned figure goldens: Small-scale TSV contents hashed against
//! constants committed in this file.
//!
//! `sweep_golden` proves the parallel engine matches a serial rerun of
//! the *same* code — which, by itself, would still pass if a change to
//! the simulator's numerics moved every figure. This test anchors the
//! values themselves: the FNV-1a hash of each rendered TSV is pinned,
//! so any semantic drift (RNG, settlement order, energy model) fails
//! here even when it is internally self-consistent.
//!
//! If a change to the model is *intentional*, regenerate with:
//! `cargo test -p ehsim-bench --test pinned_goldens -- --nocapture`
//! (the failure message prints the new table) — and say so in the
//! commit message, because the Default-scale `results/*.tsv` move too.

use ehsim_bench::figures::{self, FigureFn};
use ehsim_workloads::Scale;

/// 64-bit FNV-1a over the TSV bytes.
fn fnv1a(data: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in data.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const GOLDEN: &[(&str, FigureFn, u64)] = &[
    ("fig04", figures::fig04, 0x8510e75cec527477),
    ("fig07", figures::fig07, 0xdca5e7c1effbe9a5),
    ("fig13a", figures::fig13a, 0x79b6e11d165894a5),
];

#[test]
fn small_scale_figures_are_pinned() {
    let mut table = String::new();
    let mut mismatches = Vec::new();
    for (name, f, expected) in GOLDEN {
        let got = fnv1a(f(Scale::Small).contents());
        table.push_str(&format!(
            "    (\"{name}\", figures::{name}, {got:#018x}),\n"
        ));
        if got != *expected {
            mismatches.push(format!(
                "{name}: expected {expected:#018x}, got {got:#018x}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "pinned figure mismatches:\n{}\nfull regenerated table:\n{table}",
        mismatches.join("\n")
    );
}
