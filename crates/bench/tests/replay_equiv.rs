//! Record/replay equivalence over the full workload suite.
//!
//! A [`BusTrace`] captures the design-independent half of a simulation;
//! replaying it against any configuration must reproduce the direct
//! run's [`ehsim::Report`] field-for-field — timing, outages, energy,
//! cache statistics, WL adaptation and checksum alike. The sim crate
//! pins this for one kernel across the design grid; these tests pin it
//! for **every** workload in the suite and for a sampled
//! design × harvesting-trace grid, at the scale the figure goldens use.

use ehsim::{BusTrace, SimConfig, Simulator};
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

/// Every workload, one representative harvested configuration.
#[test]
fn all_workloads_replay_exactly() {
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf1);
    for w in ehsim_workloads::all23(Scale::Small) {
        let trace = BusTrace::record(w.as_ref());
        let direct = Simulator::new(cfg.clone()).run(w.as_ref()).unwrap();
        let replay = Simulator::new(cfg.clone()).replay(&trace).unwrap();
        assert_eq!(direct, replay, "replay diverged for {}", w.name());
    }
}

/// Representative workloads, the whole design grid under several
/// harvesting environments — one recording fanned across every cell,
/// exactly as the sweep engine shares one trace per workload.
#[test]
fn design_grid_replays_exactly() {
    for name in ["sha", "dijkstra", "adpcmdecode"] {
        let w = ehsim_workloads::all23(Scale::Small)
            .into_iter()
            .find(|w| w.name() == name)
            .unwrap();
        let trace = BusTrace::record(w.as_ref());
        for kind in [TraceKind::None, TraceKind::Rf1, TraceKind::Solar] {
            let mut cfgs = SimConfig::all_designs();
            cfgs.push(SimConfig::wl_cache_dyn());
            for cfg in cfgs {
                let cfg = cfg.with_trace(kind);
                let direct = Simulator::new(cfg.clone()).run(w.as_ref()).unwrap();
                let replay = Simulator::new(cfg.clone()).replay(&trace).unwrap();
                assert_eq!(
                    direct,
                    replay,
                    "replay diverged for {name} / {} / {}",
                    cfg.design.label(),
                    cfg.trace_label()
                );
            }
        }
    }
}

/// Crash-consistency verification sees identical machines under replay:
/// the oracle memory is rebuilt from the replayed stream, so `--verify`
/// passes and the report still matches the direct run.
#[test]
fn verified_replay_matches_direct() {
    let w = ehsim_workloads::all23(Scale::Small)
        .into_iter()
        .find(|w| w.name() == "qsort")
        .unwrap();
    let trace = BusTrace::record(w.as_ref());
    let cfg = SimConfig::wl_cache()
        .with_trace(TraceKind::Rf2)
        .with_verify();
    let direct = Simulator::new(cfg.clone()).run(w.as_ref()).unwrap();
    let replay = Simulator::new(cfg).replay(&trace).unwrap();
    assert_eq!(direct, replay);
}

/// A trace round-tripped through the on-disk format replays to the
/// same report as the in-memory original.
#[test]
fn disk_round_trip_replays_exactly() {
    let w = ehsim_workloads::all23(Scale::Small)
        .into_iter()
        .find(|w| w.name() == "patricia")
        .unwrap();
    let trace = BusTrace::record(w.as_ref());
    let path = std::env::temp_dir().join("ehsim_replay_equiv_patricia.bustrace");
    trace.save(&path).unwrap();
    let loaded = BusTrace::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(trace, loaded);
    let cfg = SimConfig::wl_cache().with_trace(TraceKind::Rf1);
    let a = Simulator::new(cfg.clone()).replay(&trace).unwrap();
    let b = Simulator::new(cfg).replay(&loaded).unwrap();
    assert_eq!(a, b);
}
