//! Byte-identity of engine-generated figures against a serial
//! reference.
//!
//! The sweep executor parallelizes simulations and memoizes repeated
//! configurations; neither may change a single output byte. Setting
//! `EHSIM_SWEEP_SERIAL=1` makes the executor run every job inline, in
//! submission order, without touching the cache — the exact behavior
//! of the pre-engine serial harness. This test renders fig04, fig07
//! and fig13a both ways at `Scale::Small` and compares the TSVs.
//!
//! Kept as a single `#[test]` because the serial switch is a
//! process-wide environment variable.

use ehsim_bench::figures::{self, FigureFn};
use ehsim_workloads::Scale;

#[test]
fn engine_figures_match_serial_reference() {
    let cases: &[(&str, FigureFn)] = &[
        ("fig04", figures::fig04),
        ("fig07", figures::fig07),
        ("fig13a", figures::fig13a),
    ];

    // Engine side first: parallel workers plus the memo cache.
    let engine: Vec<String> = cases
        .iter()
        .map(|(_, f)| f(Scale::Small).contents().to_string())
        .collect();

    // Serial, cache-free reference.
    std::env::set_var("EHSIM_SWEEP_SERIAL", "1");
    let serial: Vec<String> = cases
        .iter()
        .map(|(_, f)| f(Scale::Small).contents().to_string())
        .collect();
    std::env::remove_var("EHSIM_SWEEP_SERIAL");

    for ((name, _), (e, s)) in cases.iter().zip(engine.iter().zip(&serial)) {
        assert!(e.lines().count() > 1, "{name}: produced no data rows");
        assert_eq!(e, s, "{name}: engine and serial TSVs differ");
    }
}
