//! Determinism pin for the batched settlement engine over every fig13a
//! configuration: the default path and the `EHSIM_NO_BATCH` reference
//! path (entered programmatically via
//! [`ehsim::with_settle_batching_disabled`], which is exactly what the
//! env switch gates at machine construction) must produce
//! field-for-field identical [`ehsim::Report`]s for all 5 designs × 5
//! harvesting traces of the paper's headline figure.

use ehsim::{with_settle_batching_disabled, SimConfig, Simulator};
use ehsim_energy::TraceKind;
use ehsim_workloads::{all23, Scale};

#[test]
fn every_fig13a_config_is_engine_invariant() {
    let designs: Vec<SimConfig> = vec![
        SimConfig::nvsram(),
        SimConfig::vcache_wt(),
        SimConfig::replay(),
        SimConfig::wl_cache(),
        SimConfig::wl_cache_dyn(),
    ];
    let traces = [
        TraceKind::Rf1,
        TraceKind::Rf2,
        TraceKind::Rf3,
        TraceKind::Solar,
        TraceKind::Thermal,
    ];
    // A cross-section of the suite, not all 23 (debug-mode runtime):
    // pointer-chasing, bus-heavy image code, and a dense hash kernel.
    let picks = ["dijkstra", "susancorners", "sha"];
    let workloads = all23(Scale::Small);
    let picked: Vec<_> = picks
        .iter()
        .map(|n| {
            workloads
                .iter()
                .find(|w| w.name() == *n)
                .unwrap_or_else(|| panic!("workload {n} missing from suite"))
        })
        .collect();
    for design in &designs {
        for &trace in &traces {
            let cfg = design.clone().with_trace(trace);
            for w in &picked {
                let batched = Simulator::new(cfg.clone())
                    .run(w.as_ref())
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} / {} on {}: {e}",
                            cfg.design.label(),
                            w.name(),
                            cfg.trace_label()
                        )
                    });
                let reference =
                    with_settle_batching_disabled(|| Simulator::new(cfg.clone()).run(w.as_ref()))
                        .unwrap_or_else(|e| {
                            panic!(
                                "{} / {} on {}: {e}",
                                cfg.design.label(),
                                w.name(),
                                cfg.trace_label()
                            )
                        });
                assert_eq!(
                    batched,
                    reference,
                    "settlement engines diverged: {} / {} on {}",
                    cfg.design.label(),
                    w.name(),
                    cfg.trace_label()
                );
            }
        }
    }
}
