//! Report-level determinism of the sweep engine.
//!
//! [`ehsim_bench::exec::run_batch`] must return reports that are
//! field-for-field equal to a serial, cache-free rerun, for every
//! design and harvesting trace — regardless of worker count, memo
//! state, or submission order. The figure-level byte-identity test
//! (`sweep_golden`) checks the rendered TSVs; this one compares the
//! full [`ehsim::Report`] structs, so a divergence in any statistic
//! that happens not to be printed still fails.
//!
//! Kept as a single `#[test]` because the serial switch is a
//! process-wide environment variable.

use ehsim::SimConfig;
use ehsim_bench::exec::{run_batch, Job};
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

#[test]
fn engine_reports_match_serial_reference() {
    // Every design (plus the dynamic WL variant) under a failure-free
    // and two harvested environments, on one small kernel. The batch
    // deliberately repeats the first config so the dedup/memo path is
    // exercised on the engine side.
    let mut cfgs: Vec<SimConfig> = Vec::new();
    for trace in [TraceKind::None, TraceKind::Rf1, TraceKind::Solar] {
        for cfg in SimConfig::all_designs() {
            cfgs.push(cfg.with_trace(trace));
        }
        cfgs.push(SimConfig::wl_cache_dyn().with_trace(trace));
    }
    let mut batch: Vec<Job> = cfgs
        .iter()
        .map(|cfg| Job::new(cfg.clone(), 0, Scale::Small))
        .collect();
    batch.push(batch[0].clone());

    // Engine side: parallel workers plus the memo cache.
    let engine = run_batch(&batch);

    // Serial, cache-free reference.
    std::env::set_var("EHSIM_SWEEP_SERIAL", "1");
    let serial = run_batch(&batch);
    std::env::remove_var("EHSIM_SWEEP_SERIAL");

    assert_eq!(engine.len(), serial.len());
    for (job, (e, s)) in batch.iter().zip(engine.iter().zip(&serial)) {
        assert_eq!(
            **e,
            **s,
            "engine and serial reports differ for {} on {}",
            job.cfg.design.label(),
            job.cfg.trace_label()
        );
    }
    // The duplicated head job must have produced the identical report.
    assert_eq!(engine[0], engine[batch.len() - 1]);
}
