//! Pins the sweep engine's trace-content dedup, in two halves.
//!
//! First, the mechanism: the trace encoding is canonical, so workloads
//! issuing the same op stream record byte-identical payloads with equal
//! fingerprints regardless of name, and any op difference breaks both.
//!
//! Second, the honest state of the suite: ROADMAP claimed
//! susancorners ≡ susanedges and jpegdecode ≡ jpegencode op-for-op,
//! but measurement says otherwise — the pairs match in op counts and
//! even encoded length, yet their access streams diverge (different
//! pixels survive the two SUSAN detectors; the two JPEG halves walk
//! blocks differently). The canonical map is therefore the identity
//! today, and this test will fail — prompting a re-check of the dedup
//! expectations — if a future suite change produces true twins.

use ehsim::BusTrace;
use ehsim_bench::exec;
use ehsim_mem::{Bus, Workload};
use ehsim_workloads::{all23, Scale};

/// A synthetic kernel whose access pattern depends only on `stride`:
/// two instances with equal stride are content twins under any name.
struct Pattern {
    name: &'static str,
    stride: u32,
}

impl Workload for Pattern {
    fn name(&self) -> &str {
        self.name
    }
    fn mem_bytes(&self) -> u32 {
        4096
    }
    fn run(&self, bus: &mut dyn Bus) -> u64 {
        for i in 0..256u32 {
            bus.store_u32((i * self.stride * 4) % 4096, i);
        }
        (0..256u32)
            .map(|i| u64::from(bus.load_u32((i * self.stride * 4) % 4096)))
            .sum()
    }
}

#[test]
fn content_identity_ignores_names_and_sees_op_changes() {
    let a = BusTrace::record(&Pattern {
        name: "alpha",
        stride: 3,
    });
    let b = BusTrace::record(&Pattern {
        name: "beta",
        stride: 3,
    });
    let c = BusTrace::record(&Pattern {
        name: "gamma",
        stride: 5,
    });
    assert!(a.same_ops(&b), "equal op streams must compare equal");
    assert_eq!(a.content_fnv(), b.content_fnv());
    assert_ne!(a.name(), b.name(), "names stay distinct under sharing");
    assert!(!a.same_ops(&c), "a differing access pattern must not alias");
    assert_ne!(a.content_fnv(), c.content_fnv());
}

#[test]
fn suite_currently_has_no_content_identical_pairs() {
    let ws = all23(Scale::Small);
    let traces: Vec<BusTrace> = ws.iter().map(|w| BusTrace::record(w.as_ref())).collect();
    let mut identical = Vec::new();
    for i in 0..traces.len() {
        for j in i + 1..traces.len() {
            if traces[i].same_ops(&traces[j]) {
                identical.push(format!("{}={}", traces[i].name(), traces[j].name()));
            }
        }
    }
    assert_eq!(
        identical,
        Vec::<String>::new(),
        "suite gained content-identical workloads — dedup now fires; \
         update this pin and the docs to match"
    );

    // The nominal twins really are near misses, not identical: equal op
    // counts, diverging streams. Guard the premise of the note above.
    let ix = |n: &str| {
        ws.iter()
            .position(|w| w.name() == n)
            .unwrap_or_else(|| panic!("workload {n} missing"))
    };
    for (a, b) in [("susancorners", "susanedges"), ("jpegdecode", "jpegencode")] {
        let (ta, tb) = (&traces[ix(a)], &traces[ix(b)]);
        assert_eq!(ta.counts(), tb.counts(), "{a}/{b} op counts should match");
        assert!(
            ta.first_divergence(tb).is_some(),
            "{a}/{b} streams compare identical — dedup expectations changed"
        );
    }
}

#[test]
fn canonical_map_is_the_identity_and_self_consistent() {
    let map = exec::canonical_map(Scale::Small);
    let n = all23(Scale::Small).len();
    assert_eq!(map.len(), n);
    for (w, &canon) in map.iter().enumerate() {
        assert_eq!(
            canon, w,
            "workload {w} unexpectedly deduplicated onto {canon}"
        );
    }
}
