//! Parallel sweep executor with process-wide memoization.
//!
//! Every figure/table regeneration is a *sweep*: a batch of independent
//! `(SimConfig, workload, scale)` simulations whose reports are then
//! reduced into TSV rows. This module runs such batches across a pool
//! of worker threads (one per CPU by default, overridable with the
//! `EHSIM_JOBS` environment variable) and memoizes completed reports in
//! a process-wide cache, so repeated configurations — most prominently
//! the `NVSRAM(ideal)` baselines that almost every figure normalizes
//! against — are simulated exactly once per process no matter how many
//! figures request them.
//!
//! Guarantees:
//!
//! * **Deterministic results.** [`run_batch`] returns reports in
//!   submission order, and simulations are pure functions of their
//!   `(SimConfig, workload, scale)` key, so neither the worker count
//!   nor the scheduling order can change any output byte. A regression
//!   test compares engine-generated figures against a serial,
//!   cache-free rerun byte for byte.
//! * **Complete keys.** The memo key is an explicit, injective
//!   encoding of every [`SimConfig`] field (design, geometry, policies,
//!   trace, capacitor, CPU/NVM/charging parameters, verify,
//!   max-outages) plus the scale and workload index, built by
//!   exhaustively destructuring the config — adding a field to
//!   `SimConfig` is a compile error here until the key learns about
//!   it, and floats are keyed by their exact bit patterns. Jobs
//!   carrying a custom power trace are never memoized.
//!
//! Setting `EHSIM_SWEEP_SERIAL=1` bypasses both the pool and the cache
//! (every job simulates inline, in order); the byte-identity test uses
//! it to produce the serial reference.
//!
//! Setting `EHSIM_TRACE_WORKLOAD=<name>` additionally records an event
//! timeline for every simulation of that workload: each one dumps a
//! Chrome `trace_event` JSON, a per-interval metrics TSV, and a
//! JSON-lines event stream (loadable by `ehsim-analyze` /
//! `ehsim-cli diff-traces`) into `EHSIM_TRACE_DIR` (default
//! `traces/`), named `<workload>__<design>__<trace>`. Recording does
//! not change any simulated value, so figures regenerated with tracing
//! on are byte-identical.

use ehsim::{DesignKind, Report, SimConfig, Simulator};
use ehsim_cache::ReplacementPolicy;
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use wl_cache::{AdaptationMode, DqPolicy};

/// One simulation of the sweep: a configuration applied to workload
/// number `workload` of the fixed 23-kernel suite at `scale`.
#[derive(Debug, Clone)]
pub struct Job {
    /// The configuration to simulate.
    pub cfg: SimConfig,
    /// Index into [`ehsim_workloads::all23`] (figure order).
    pub workload: usize,
    /// Workload scale.
    pub scale: Scale,
}

impl Job {
    /// Convenience constructor.
    pub fn new(cfg: SimConfig, workload: usize, scale: Scale) -> Self {
        Self {
            cfg,
            workload,
            scale,
        }
    }
}

/// Snapshot of the executor's process-wide counters (for the
/// `BENCH_sweep.json` emitter and progress lines).
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Simulations actually executed.
    pub sims_run: u64,
    /// Batch entries satisfied from the memo cache (or deduplicated
    /// within a batch).
    pub memo_hits: u64,
    /// Total instructions retired across all executed simulations.
    pub simulated_instructions: u64,
}

struct Counters {
    sims: AtomicU64,
    memo_hits: AtomicU64,
    instructions: AtomicU64,
}

fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        sims: AtomicU64::new(0),
        memo_hits: AtomicU64::new(0),
        instructions: AtomicU64::new(0),
    })
}

fn cache() -> &'static Mutex<HashMap<MemoKey, Arc<Report>>> {
    static C: OnceLock<Mutex<HashMap<MemoKey, Arc<Report>>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Current executor counters.
pub fn stats() -> ExecStats {
    let c = counters();
    ExecStats {
        sims_run: c.sims.load(Ordering::Relaxed),
        memo_hits: c.memo_hits.load(Ordering::Relaxed),
        simulated_instructions: c.instructions.load(Ordering::Relaxed),
    }
}

/// Worker count: `EHSIM_JOBS` if set (minimum 1), otherwise the
/// machine's available parallelism.
pub fn jobs() -> usize {
    std::env::var("EHSIM_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn serial_uncached() -> bool {
    std::env::var_os("EHSIM_SWEEP_SERIAL").is_some_and(|v| v != "0")
}

/// Canonical memo key: an injective word encoding of a [`Job`].
///
/// Hashing and equality run over the encoded words, so two keys are
/// equal exactly when every encoded field is identical. Floats are
/// encoded by bit pattern — injective by construction (distinct values
/// can never alias one cache entry; the only theoretical asymmetry,
/// `0.0` vs `-0.0` comparing `==` but encoding differently, errs
/// toward a redundant simulation, never toward a wrong figure).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey(Vec<u64>);

/// Memo key, or `None` when the job must not be memoized (custom
/// traces have no stable identity).
fn memo_key(job: &Job) -> Option<MemoKey> {
    // Exhaustive destructuring: adding a `SimConfig` field breaks this
    // binding until the encoding below covers it.
    let SimConfig {
        design,
        geometry,
        cache_policy,
        trace,
        custom_trace,
        capacitor_uf,
        cpu,
        nvm_timing,
        nvm_energy,
        charging,
        verify,
        max_outages,
    } = &job.cfg;
    if custom_trace.is_some() {
        return None;
    }
    let mut k: Vec<u64> = Vec::with_capacity(40);
    match design {
        DesignKind::VCacheWt => k.push(0),
        DesignKind::NvCacheWb => k.push(1),
        DesignKind::NvSram => k.push(2),
        DesignKind::Replay { region_instrs } => {
            k.push(3);
            k.push(*region_instrs);
        }
        DesignKind::WBuf { capacity } => {
            k.push(4);
            k.push(*capacity as u64);
        }
        DesignKind::Wl {
            thresholds,
            dq_policy,
            adaptation,
        } => {
            k.push(5);
            k.push(thresholds.dq_capacity() as u64);
            k.push(thresholds.maxline() as u64);
            k.push(thresholds.waterline() as u64);
            k.push(match dq_policy {
                DqPolicy::Fifo => 0,
                DqPolicy::Lru => 1,
            });
            k.push(match adaptation {
                AdaptationMode::Static => 0,
                AdaptationMode::Adaptive => 1,
                AdaptationMode::Dynamic => 2,
            });
        }
    }
    k.push(u64::from(geometry.size_bytes()));
    k.push(u64::from(geometry.ways()));
    k.push(u64::from(geometry.line_bytes()));
    k.push(match cache_policy {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::Fifo => 1,
    });
    k.push(match trace {
        TraceKind::None => 0,
        TraceKind::Rf1 => 1,
        TraceKind::Rf2 => 2,
        TraceKind::Rf3 => 3,
        TraceKind::Solar => 4,
        TraceKind::Thermal => 5,
    });
    k.push(capacitor_uf.to_bits());
    let ehsim::CpuParams {
        ps_per_cycle,
        compute_pj_per_cycle,
        reg_checkpoint_ps,
        reg_checkpoint_pj,
        reg_restore_ps,
        reg_restore_pj,
        static_power_uw,
    } = cpu;
    k.push(*ps_per_cycle);
    k.push(compute_pj_per_cycle.to_bits());
    k.push(*reg_checkpoint_ps);
    k.push(reg_checkpoint_pj.to_bits());
    k.push(*reg_restore_ps);
    k.push(reg_restore_pj.to_bits());
    k.push(static_power_uw.to_bits());
    let ehsim_mem::NvmTiming {
        t_ck,
        t_burst,
        t_rcd,
        t_cl,
        t_wtr,
        t_wr,
        t_xaw,
    } = nvm_timing;
    for t in [t_ck, t_burst, t_rcd, t_cl, t_wtr, t_wr, t_xaw] {
        k.push(t.to_bits());
    }
    let ehsim_mem::NvmEnergy {
        read_pj_per_byte,
        write_pj_per_byte,
        activate_pj,
    } = nvm_energy;
    for e in [read_pj_per_byte, write_pj_per_byte, activate_pj] {
        k.push(e.to_bits());
    }
    let ehsim_energy::ChargingModel { v_knee, steepness } = charging;
    k.push(v_knee.to_bits());
    k.push(*steepness as u64);
    k.push(u64::from(*verify));
    k.push(*max_outages);
    k.push(match job.scale {
        Scale::Small => 0,
        Scale::Default => 1,
    });
    k.push(job.workload as u64);
    Some(MemoKey(k))
}

/// The workload name whose simulations should also dump event
/// timelines (`EHSIM_TRACE_WORKLOAD`), if any.
fn trace_workload() -> Option<&'static str> {
    static W: OnceLock<Option<String>> = OnceLock::new();
    W.get_or_init(|| {
        std::env::var("EHSIM_TRACE_WORKLOAD")
            .ok()
            .filter(|w| !w.is_empty())
    })
    .as_deref()
}

/// Turns a design/trace label into a filename fragment.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Dumps the Chrome trace, interval metrics, and JSONL event stream
/// for one traced simulation into `EHSIM_TRACE_DIR` (default
/// `traces/`). Export failures only warn: a sweep must not die over a
/// timeline.
fn dump_trace(job: &Job, report: &Report, trace: &ehsim::RunTrace) {
    let dir = std::env::var("EHSIM_TRACE_DIR").unwrap_or_else(|_| "traces".into());
    let stem = format!(
        "{}__{}__{}",
        sanitize(&report.workload),
        sanitize(&report.design),
        sanitize(report.trace)
    );
    let name = format!("{} / {} / {}", report.workload, report.design, report.trace);
    let dir = std::path::Path::new(&dir);
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(
            dir.join(format!("{stem}.trace.json")),
            trace.chrome_trace(&name),
        )?;
        std::fs::write(
            dir.join(format!("{stem}.intervals.tsv")),
            trace.interval_metrics_tsv(),
        )?;
        std::fs::write(dir.join(format!("{stem}.events.jsonl")), trace.jsonl())
    };
    if let Err(e) = write() {
        eprintln!(
            "warning: failed to dump trace for {} ({}): {e}",
            name,
            job.cfg.trace_label()
        );
    }
}

/// Runs one job to completion, panicking with context on simulation
/// errors (the harness treats them as fatal).
fn simulate(job: &Job) -> Report {
    let workloads = ehsim_workloads::all23(job.scale);
    let w = workloads
        .get(job.workload)
        .unwrap_or_else(|| panic!("workload index {} out of range", job.workload));
    let label = job.cfg.design.label();
    let trace = job.cfg.trace_label();
    // A traced run is bit-identical to an untraced one (the observer
    // only records), so routing the selected workload through
    // `run_traced` cannot change any figure byte.
    let report = if trace_workload() == Some(w.name()) {
        Simulator::new(job.cfg.clone())
            .run_traced(w.as_ref())
            .map(|(report, run_trace)| {
                dump_trace(job, &report, &run_trace);
                report
            })
    } else {
        Simulator::new(job.cfg.clone()).run(w.as_ref())
    }
    .unwrap_or_else(|e| panic!("{label} / {} on {trace}: {e}", w.name()));
    let c = counters();
    c.sims.fetch_add(1, Ordering::Relaxed);
    c.instructions
        .fetch_add(report.instructions, Ordering::Relaxed);
    report
}

enum Slot {
    Done(Arc<Report>),
    Pending(usize),
}

/// Runs a batch of jobs and returns their reports in submission order.
///
/// Jobs already in the memo cache are returned without simulating;
/// duplicate keys within the batch simulate once. The remaining misses
/// execute on a [`std::thread::scope`] work queue of [`jobs`] workers.
pub fn run_batch(batch: &[Job]) -> Vec<Arc<Report>> {
    if serial_uncached() {
        return batch.iter().map(|j| Arc::new(simulate(j))).collect();
    }

    // Resolve against the cache and deduplicate within the batch.
    let mut slots: Vec<Slot> = Vec::with_capacity(batch.len());
    let mut misses: Vec<&Job> = Vec::new();
    let mut miss_keys: Vec<Option<MemoKey>> = Vec::new();
    {
        let cache = cache().lock().expect("sweep cache poisoned");
        let mut pending: HashMap<MemoKey, usize> = HashMap::new();
        for job in batch {
            match memo_key(job) {
                Some(key) => {
                    if let Some(hit) = cache.get(&key) {
                        counters().memo_hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Done(Arc::clone(hit)));
                    } else if let Some(&ix) = pending.get(&key) {
                        counters().memo_hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Pending(ix));
                    } else {
                        let ix = misses.len();
                        misses.push(job);
                        miss_keys.push(Some(key.clone()));
                        pending.insert(key, ix);
                        slots.push(Slot::Pending(ix));
                    }
                }
                None => {
                    let ix = misses.len();
                    misses.push(job);
                    miss_keys.push(None);
                    slots.push(Slot::Pending(ix));
                }
            }
        }
    }

    // Execute the misses on the worker pool.
    let results: Vec<OnceLock<Arc<Report>>> = (0..misses.len()).map(|_| OnceLock::new()).collect();
    if !misses.is_empty() {
        let workers = jobs().min(misses.len());
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= misses.len() {
                        break;
                    }
                    let report = Arc::new(simulate(misses[i]));
                    let _ = results[i].set(report);
                });
            }
        });
    }

    // Publish new results and assemble in submission order.
    let results: Vec<Arc<Report>> = results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("worker completed every claimed job")
        })
        .collect();
    {
        let mut cache = cache().lock().expect("sweep cache poisoned");
        for (key, report) in miss_keys.iter().zip(&results) {
            if let Some(key) = key {
                cache.insert(key.clone(), Arc::clone(report));
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Done(r) => r,
            Slot::Pending(ix) => Arc::clone(&results[ix]),
        })
        .collect()
}

/// Runs the full 23-workload suite for each configuration, sharing one
/// batch (and therefore the worker pool and the memo cache) across all
/// of them. Returns one report vector per configuration, in order.
pub fn run_suites(cfgs: &[SimConfig], scale: Scale) -> Vec<Vec<Arc<Report>>> {
    let count = ehsim_workloads::all23(scale).len();
    let batch: Vec<Job> = cfgs
        .iter()
        .flat_map(|cfg| (0..count).map(move |w| Job::new(cfg.clone(), w, scale)))
        .collect();
    let flat = run_batch(&batch);
    flat.chunks(count).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_cache::CacheGeometry;
    use wl_cache::Thresholds;

    fn key(cfg: SimConfig) -> MemoKey {
        memo_key(&Job::new(cfg, 0, Scale::Small)).expect("memoizable")
    }

    /// Every `SimConfig` field must feed the memo key: for each field,
    /// perturb it from the same base and demand a distinct key. A field
    /// that stopped influencing the key would silently alias distinct
    /// configurations onto one cached report.
    #[test]
    fn keys_distinguish_every_field() {
        let base = SimConfig::wl_cache();
        let base_key = key(base.clone());
        let variants: Vec<(&str, SimConfig)> = vec![
            ("design", SimConfig::nvsram()),
            ("design params", {
                let mut c = base.clone();
                c.design = DesignKind::Wl {
                    thresholds: Thresholds::with_maxline(8, 4).unwrap(),
                    dq_policy: DqPolicy::Fifo,
                    adaptation: AdaptationMode::Adaptive,
                };
                c
            }),
            ("dq_policy", base.clone().with_dq_policy(DqPolicy::Lru)),
            ("adaptation", SimConfig::wl_cache_dyn()),
            (
                "geometry",
                base.clone().with_geometry(CacheGeometry::new(2048, 2, 64)),
            ),
            (
                "cache_policy",
                base.clone().with_cache_policy(ReplacementPolicy::Fifo),
            ),
            ("trace", base.clone().with_trace(TraceKind::Rf1)),
            ("capacitor_uf", base.clone().with_capacitor_uf(2.0)),
            ("cpu", {
                let mut c = base.clone();
                c.cpu.static_power_uw += 1.0;
                c
            }),
            ("nvm_timing", {
                let mut c = base.clone();
                c.nvm_timing.t_wr += 1.0;
                c
            }),
            ("nvm_energy", {
                let mut c = base.clone();
                c.nvm_energy.write_pj_per_byte += 1.0;
                c
            }),
            ("charging", {
                let mut c = base.clone();
                c.charging.v_knee += 0.1;
                c
            }),
            ("verify", base.clone().with_verify()),
            ("max_outages", {
                let mut c = base.clone();
                c.max_outages += 1;
                c
            }),
        ];
        let mut keys = vec![("base", base_key)];
        for (field, cfg) in variants {
            let k = key(cfg);
            for (other, ok) in &keys {
                assert_ne!(&k, ok, "{field} collides with {other}");
            }
            keys.push((field, k));
        }
    }

    #[test]
    fn scale_and_workload_feed_the_key() {
        let cfg = SimConfig::nvsram();
        let a = memo_key(&Job::new(cfg.clone(), 0, Scale::Small)).unwrap();
        let b = memo_key(&Job::new(cfg.clone(), 1, Scale::Small)).unwrap();
        let c = memo_key(&Job::new(cfg, 0, Scale::Default)).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn equal_jobs_share_a_key() {
        let a = memo_key(&Job::new(SimConfig::wl_cache(), 3, Scale::Small));
        let b = memo_key(&Job::new(SimConfig::wl_cache(), 3, Scale::Small));
        assert_eq!(a, b);
    }

    #[test]
    fn custom_traces_are_never_memoized() {
        let trace = ehsim_energy::PowerTrace::constant(100.0);
        let cfg = SimConfig::wl_cache().with_custom_trace(trace);
        assert_eq!(memo_key(&Job::new(cfg, 0, Scale::Small)), None);
    }
}
