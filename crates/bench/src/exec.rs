//! Parallel trace-driven sweep executor with process-wide memoization.
//!
//! Every figure/table regeneration is a *sweep*: a batch of independent
//! `(SimConfig, workload, scale)` simulations whose reports are then
//! reduced into TSV rows. This module runs such batches across a pool
//! of worker threads (one per CPU by default, overridable with the
//! `EHSIM_JOBS` environment variable) and memoizes completed reports in
//! a process-wide cache, so repeated configurations — most prominently
//! the `NVSRAM(ideal)` baselines that almost every figure normalizes
//! against — are simulated exactly once per process no matter how many
//! figures request them.
//!
//! **Trace-driven execution.** Workloads are deterministic and their
//! Bus access stream is design-independent, so the engine records each
//! `(workload, scale)` stream once per process — one kernel execution
//! against a flat memory ([`ehsim::BusTrace::record`]) — and *replays*
//! the shared in-memory trace for every simulation of that workload
//! ([`ehsim::Simulator::replay`]). Replay is bit-exact (see the
//! `ehsim_mem::record` module docs for the argument and the
//! replay-equivalence suite for the pin), and skips both the kernel's
//! own computation and the per-sim workload construction, which
//! dominated sweep wall-clock (`BENCH_replay.json` quantifies the
//! speedup). Two environment switches exist for debugging:
//! `EHSIM_EXACT=1` falls back to direct kernel execution for every
//! simulation, and `EHSIM_REPLAY_CHECK=1` runs *both* paths and
//! asserts the replayed [`Report`] equals the direct one
//! field-for-field. `EHSIM_BATCH_CHECK=1` is the settlement twin: it
//! runs every simulation through both the batched settlement engine
//! and the per-retire reference path and asserts the reports
//! identical.
//!
//! **Trace-content dedup.** Workloads issuing the byte-identical Bus
//! stream need only one simulation per configuration (the encoding is
//! canonical, so byte equality ⟺ op equality — today's suite has no
//! such pair, see `tests/trace_dedup.rs`, but the machinery stays
//! armed). The engine fingerprints every recorded trace
//! (FNV over the canonical encoding), confirms candidate matches
//! byte-for-byte, and redirects a twin's memo key to the first
//! workload recorded with that content — so each shared pattern
//! simulates once per configuration, and the twin's report is the
//! canonical one with its own name and kernel checksum restored.
//! Dedup applies to the replay engine only (`EHSIM_EXACT=1` re-executes
//! every kernel for real); hits are counted in [`ExecStats`].
//!
//! **Persistent trace store.** `EHSIM_TRACE_CACHE=<dir>` keeps
//! recorded `.bustrace` files across processes, keyed on (workload,
//! scale, format version): a warm store lets a sweep skip kernel
//! recording entirely. Loads are validated by the trace-file decode
//! walk + payload checksum plus a workload-name check; validation
//! failures fall back to recording and refresh the store entry.
//!
//! Guarantees:
//!
//! * **Deterministic results.** [`run_batch`] returns reports in
//!   submission order, and simulations are pure functions of their
//!   `(SimConfig, workload, scale)` key, so neither the worker count
//!   nor the scheduling order can change any output byte. A regression
//!   test compares engine-generated figures against a serial,
//!   cache-free rerun byte for byte.
//! * **Complete keys.** The memo key is an explicit, injective
//!   encoding of every [`SimConfig`] field (design, geometry, policies,
//!   trace, capacitor, CPU/NVM/charging parameters, verify,
//!   max-outages) plus the scale and workload index, built by
//!   exhaustively destructuring the config — adding a field to
//!   `SimConfig` is a compile error here until the key learns about
//!   it, and floats are keyed by their exact bit patterns. Jobs
//!   carrying a custom power trace are never memoized.
//!
//! Setting `EHSIM_SWEEP_SERIAL=1` bypasses the pool, the memo cache
//! *and* the replay engine (every job re-executes its kernel inline,
//! in order); the byte-identity tests use it to produce the serial
//! reference, so they also pin replay against direct execution across
//! every figure.
//!
//! Setting `EHSIM_TRACE_WORKLOAD=<name>` additionally streams an event
//! timeline for every simulation of that workload: each one writes a
//! JSON-lines event stream (loadable by `ehsim-analyze` /
//! `ehsim-cli diff-traces`, convertible to Chrome/interval exports
//! with `ehsim-cli convert-trace`) into `EHSIM_TRACE_DIR` (default
//! `traces/`), named `<workload>__<design>__<trace>.events.jsonl`.
//! Events flow through a bounded-buffer [`StreamingObserver`] straight
//! to disk, so tracing adds no per-event memory footprint, and
//! observation does not change any simulated value, so figures
//! regenerated with tracing on are byte-identical.

use ehsim::{BusTrace, DesignKind, ObserverBox, Report, SimConfig, Simulator};
use ehsim_cache::ReplacementPolicy;
use ehsim_energy::TraceKind;
use ehsim_obs::StreamingObserver;
use ehsim_workloads::Scale;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use wl_cache::{AdaptationMode, DqPolicy};

/// One simulation of the sweep: a configuration applied to workload
/// number `workload` of the fixed 23-kernel suite at `scale`.
#[derive(Debug, Clone)]
pub struct Job {
    /// The configuration to simulate.
    pub cfg: SimConfig,
    /// Index into [`ehsim_workloads::all23`] (figure order).
    pub workload: usize,
    /// Workload scale.
    pub scale: Scale,
}

impl Job {
    /// Convenience constructor.
    pub fn new(cfg: SimConfig, workload: usize, scale: Scale) -> Self {
        Self {
            cfg,
            workload,
            scale,
        }
    }
}

/// Snapshot of the executor's process-wide counters (for the
/// `BENCH_sweep.json` emitter and progress lines).
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Simulations actually executed.
    pub sims_run: u64,
    /// Batch entries satisfied from the memo cache (or deduplicated
    /// within a batch).
    pub memo_hits: u64,
    /// Total instructions retired across all executed simulations.
    pub simulated_instructions: u64,
    /// Bus traces recorded (one kernel execution per `(workload,
    /// scale)` the engine saw).
    pub traces_recorded: u64,
    /// Simulations satisfied by trace replay rather than direct kernel
    /// execution.
    pub sims_replayed: u64,
    /// Batch entries served with another workload's simulation because
    /// the two op streams are content-identical (trace dedup).
    pub sims_deduped: u64,
    /// Bus traces loaded from the persistent `EHSIM_TRACE_CACHE` store
    /// instead of recorded.
    pub trace_cache_hits: u64,
}

struct Counters {
    sims: AtomicU64,
    memo_hits: AtomicU64,
    instructions: AtomicU64,
    traces: AtomicU64,
    replays: AtomicU64,
    deduped: AtomicU64,
    trace_cache_hits: AtomicU64,
}

fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        sims: AtomicU64::new(0),
        memo_hits: AtomicU64::new(0),
        instructions: AtomicU64::new(0),
        traces: AtomicU64::new(0),
        replays: AtomicU64::new(0),
        deduped: AtomicU64::new(0),
        trace_cache_hits: AtomicU64::new(0),
    })
}

fn cache() -> &'static Mutex<HashMap<MemoKey, Arc<Report>>> {
    static C: OnceLock<Mutex<HashMap<MemoKey, Arc<Report>>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Current executor counters.
pub fn stats() -> ExecStats {
    let c = counters();
    ExecStats {
        sims_run: c.sims.load(Ordering::Relaxed),
        memo_hits: c.memo_hits.load(Ordering::Relaxed),
        simulated_instructions: c.instructions.load(Ordering::Relaxed),
        traces_recorded: c.traces.load(Ordering::Relaxed),
        sims_replayed: c.replays.load(Ordering::Relaxed),
        sims_deduped: c.deduped.load(Ordering::Relaxed),
        trace_cache_hits: c.trace_cache_hits.load(Ordering::Relaxed),
    }
}

/// Worker count: `EHSIM_JOBS` if set (minimum 1), otherwise the
/// machine's available parallelism.
pub fn jobs() -> usize {
    std::env::var("EHSIM_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn serial_uncached() -> bool {
    std::env::var_os("EHSIM_SWEEP_SERIAL").is_some_and(|v| v != "0")
}

/// Execution-engine label for benchmark artifacts: `"replay"`
/// normally, `"exact"` under `EHSIM_EXACT=1`, with `+check`
/// (`EHSIM_REPLAY_CHECK=1`) and `+batch-check` (`EHSIM_BATCH_CHECK=1`)
/// suffixes for the dual-path cross-check modes.
pub fn engine() -> &'static str {
    match (exact_mode(), replay_check(), batch_check()) {
        (true, _, false) => "exact",
        (true, _, true) => "exact+batch-check",
        (false, false, false) => "replay",
        (false, true, false) => "replay+check",
        (false, false, true) => "replay+batch-check",
        (false, true, true) => "replay+check+batch-check",
    }
}

/// `EHSIM_EXACT=1`: skip the replay engine, re-execute every kernel.
fn exact_mode() -> bool {
    std::env::var_os("EHSIM_EXACT").is_some_and(|v| v != "0")
}

/// `EHSIM_REPLAY_CHECK=1`: run replay *and* direct execution for every
/// simulation and assert the reports identical (debug cross-check).
fn replay_check() -> bool {
    std::env::var_os("EHSIM_REPLAY_CHECK").is_some_and(|v| v != "0")
}

/// `EHSIM_BATCH_CHECK=1`: run every simulation through *both*
/// settlement engines — the default batched one and the per-retire
/// reference path — and assert the reports field-for-field identical
/// (the settlement twin of `EHSIM_REPLAY_CHECK`).
fn batch_check() -> bool {
    std::env::var_os("EHSIM_BATCH_CHECK").is_some_and(|v| v != "0")
}

/// `EHSIM_TRACE_CACHE=<dir>`: the persistent `.bustrace` store. Keyed
/// on (workload, scale, format version); a warm store lets a sweep
/// skip kernel recording entirely.
fn trace_cache_dir() -> Option<&'static std::path::Path> {
    static D: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();
    D.get_or_init(|| {
        std::env::var_os("EHSIM_TRACE_CACHE")
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from)
    })
    .as_deref()
}

/// Name of workload `ix` in the fixed 23-kernel suite, without
/// constructing the kernels (names are scale-independent and built
/// once per process).
fn workload_name(ix: usize) -> &'static str {
    static NAMES: OnceLock<Vec<String>> = OnceLock::new();
    NAMES
        .get_or_init(|| {
            ehsim_workloads::all23(Scale::Small)
                .iter()
                .map(|w| w.name().to_string())
                .collect()
        })
        .get(ix)
        .unwrap_or_else(|| panic!("workload index {ix} out of range"))
}

/// Filename fragment for a [`Scale`].
fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Default => "default",
    }
}

/// Persistent-store path for `(workload, scale)`. The `v1` component
/// is the trace-file format version: a future format bump changes the
/// key, so stale-format files are never even opened (and would be
/// rejected by load-time validation if they were).
fn trace_cache_path(dir: &std::path::Path, workload: usize, scale: Scale) -> std::path::PathBuf {
    dir.join(format!(
        "{}__{}__v1.bustrace",
        sanitize(workload_name(workload)),
        scale_label(scale)
    ))
}

/// The process-wide shared Bus trace for `(workload, scale)`,
/// recording it on first use. The map lock is held only to fetch the
/// per-key cell; the recording itself runs under the cell's own
/// `OnceLock`, so concurrent workers record distinct workloads in
/// parallel and block only on the one they both need.
///
/// With `EHSIM_TRACE_CACHE=<dir>` set, first use tries the persistent
/// store before recording: a loaded file passes the full decode walk
/// and payload checksum ([`BusTrace::load`]) plus a workload-name check
/// here, and anything that fails validation simply falls back to
/// recording (which then refreshes the store entry, best-effort).
fn shared_trace(workload: usize, scale: Scale) -> Arc<BusTrace> {
    type Cell = Arc<OnceLock<Arc<BusTrace>>>;
    static TRACES: OnceLock<Mutex<HashMap<(usize, Scale), Cell>>> = OnceLock::new();
    let cell: Cell = {
        let mut map = TRACES
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("trace cache poisoned");
        Arc::clone(map.entry((workload, scale)).or_default())
    };
    let trace = cell.get_or_init(|| {
        if let Some(dir) = trace_cache_dir() {
            if let Ok(t) = BusTrace::load(&trace_cache_path(dir, workload, scale)) {
                if t.name() == workload_name(workload) {
                    counters().trace_cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::new(t);
                }
            }
        }
        let workloads = ehsim_workloads::all23(scale);
        let w = workloads
            .get(workload)
            .unwrap_or_else(|| panic!("workload index {workload} out of range"));
        counters().traces.fetch_add(1, Ordering::Relaxed);
        let t = BusTrace::record(w.as_ref());
        if let Some(dir) = trace_cache_dir() {
            let path = trace_cache_path(dir, workload, scale);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "warning: cannot create trace cache dir {}: {e}",
                    dir.display()
                );
            } else if let Err(e) = t.save(&path) {
                eprintln!("warning: failed to persist {}: {e}", path.display());
            }
        }
        Arc::new(t)
    });
    Arc::clone(trace)
}

/// The canonical workload index for `workload`'s trace *content*:
/// op-identical workloads collapse onto the first index registered for
/// their content, so the memo cache simulates the shared access
/// pattern once per configuration. Fingerprint matches are confirmed
/// byte-for-byte ([`BusTrace::same_ops`]) before any sharing happens —
/// an FNV collision costs a redundant simulation, never a wrong
/// report. Today's suite has no content-identical pairs (the nominal
/// susan/jpeg twins diverge mid-stream; see `tests/trace_dedup.rs`),
/// so this map is currently the identity.
fn canonical_workload(workload: usize, scale: Scale) -> usize {
    /// Fingerprint registry: (scale, payload FNV, mem_bytes) → workload
    /// indices that share the fingerprint, in registration order.
    type ContentReg = HashMap<(Scale, u64, u32), Vec<usize>>;
    static MEMO: OnceLock<Mutex<HashMap<(usize, Scale), usize>>> = OnceLock::new();
    static REG: OnceLock<Mutex<ContentReg>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&canon) = memo
        .lock()
        .expect("dedup memo poisoned")
        .get(&(workload, scale))
    {
        return canon;
    }
    let own = shared_trace(workload, scale);
    let canon = {
        let mut reg = REG
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("dedup registry poisoned");
        let candidates = reg
            .entry((scale, own.content_fnv(), own.mem_bytes()))
            .or_default();
        let found = candidates
            .iter()
            .copied()
            .find(|&ix| ix == workload || shared_trace(ix, scale).same_ops(&own));
        match found {
            Some(ix) => ix,
            None => {
                candidates.push(workload);
                workload
            }
        }
    };
    memo.lock()
        .expect("dedup memo poisoned")
        .insert((workload, scale), canon);
    canon
}

/// Canonical memo key: an injective word encoding of a [`Job`].
///
/// Hashing and equality run over the encoded words, so two keys are
/// equal exactly when every encoded field is identical. Floats are
/// encoded by bit pattern — injective by construction (distinct values
/// can never alias one cache entry; the only theoretical asymmetry,
/// `0.0` vs `-0.0` comparing `==` but encoding differently, errs
/// toward a redundant simulation, never toward a wrong figure).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey(Vec<u64>);

/// Memo key, or `None` when the job must not be memoized (custom
/// traces have no stable identity).
fn memo_key(job: &Job) -> Option<MemoKey> {
    // Exhaustive destructuring: adding a `SimConfig` field breaks this
    // binding until the encoding below covers it.
    let SimConfig {
        design,
        geometry,
        cache_policy,
        trace,
        custom_trace,
        capacitor_uf,
        cpu,
        nvm_timing,
        nvm_energy,
        charging,
        verify,
        max_outages,
    } = &job.cfg;
    if custom_trace.is_some() {
        return None;
    }
    let mut k: Vec<u64> = Vec::with_capacity(40);
    match design {
        DesignKind::VCacheWt => k.push(0),
        DesignKind::NvCacheWb => k.push(1),
        DesignKind::NvSram => k.push(2),
        DesignKind::Replay { region_instrs } => {
            k.push(3);
            k.push(*region_instrs);
        }
        DesignKind::WBuf { capacity } => {
            k.push(4);
            k.push(*capacity as u64);
        }
        DesignKind::Wl {
            thresholds,
            dq_policy,
            adaptation,
        } => {
            k.push(5);
            k.push(thresholds.dq_capacity() as u64);
            k.push(thresholds.maxline() as u64);
            k.push(thresholds.waterline() as u64);
            k.push(match dq_policy {
                DqPolicy::Fifo => 0,
                DqPolicy::Lru => 1,
            });
            k.push(match adaptation {
                AdaptationMode::Static => 0,
                AdaptationMode::Adaptive => 1,
                AdaptationMode::Dynamic => 2,
            });
        }
    }
    k.push(u64::from(geometry.size_bytes()));
    k.push(u64::from(geometry.ways()));
    k.push(u64::from(geometry.line_bytes()));
    k.push(match cache_policy {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::Fifo => 1,
    });
    k.push(match trace {
        TraceKind::None => 0,
        TraceKind::Rf1 => 1,
        TraceKind::Rf2 => 2,
        TraceKind::Rf3 => 3,
        TraceKind::Solar => 4,
        TraceKind::Thermal => 5,
    });
    k.push(capacitor_uf.to_bits());
    let ehsim::CpuParams {
        ps_per_cycle,
        compute_pj_per_cycle,
        reg_checkpoint_ps,
        reg_checkpoint_pj,
        reg_restore_ps,
        reg_restore_pj,
        static_power_uw,
    } = cpu;
    k.push(*ps_per_cycle);
    k.push(compute_pj_per_cycle.to_bits());
    k.push(*reg_checkpoint_ps);
    k.push(reg_checkpoint_pj.to_bits());
    k.push(*reg_restore_ps);
    k.push(reg_restore_pj.to_bits());
    k.push(static_power_uw.to_bits());
    let ehsim_mem::NvmTiming {
        t_ck,
        t_burst,
        t_rcd,
        t_cl,
        t_wtr,
        t_wr,
        t_xaw,
    } = nvm_timing;
    for t in [t_ck, t_burst, t_rcd, t_cl, t_wtr, t_wr, t_xaw] {
        k.push(t.to_bits());
    }
    let ehsim_mem::NvmEnergy {
        read_pj_per_byte,
        write_pj_per_byte,
        activate_pj,
    } = nvm_energy;
    for e in [read_pj_per_byte, write_pj_per_byte, activate_pj] {
        k.push(e.to_bits());
    }
    let ehsim_energy::ChargingModel { v_knee, steepness } = charging;
    k.push(v_knee.to_bits());
    k.push(*steepness as u64);
    k.push(u64::from(*verify));
    k.push(*max_outages);
    k.push(match job.scale {
        Scale::Small => 0,
        Scale::Default => 1,
    });
    k.push(job.workload as u64);
    Some(MemoKey(k))
}

/// The workload name whose simulations should also dump event
/// timelines (`EHSIM_TRACE_WORKLOAD`), if any.
fn trace_workload() -> Option<&'static str> {
    static W: OnceLock<Option<String>> = OnceLock::new();
    W.get_or_init(|| {
        std::env::var("EHSIM_TRACE_WORKLOAD")
            .ok()
            .filter(|w| !w.is_empty())
    })
    .as_deref()
}

/// Turns a design/trace label into a filename fragment.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Opens the JSONL event-stream sink for one traced simulation:
/// `EHSIM_TRACE_DIR` (default `traces/`) /
/// `<workload>__<design>__<trace>.events.jsonl`. Events stream through
/// a bounded buffer straight to disk (no in-RAM timeline); observation
/// never perturbs the simulation, and open failures only warn and fall
/// back to no observation — a sweep must not die over a timeline.
fn stream_sink(job: &Job, workload: &str) -> ObserverBox {
    let dir = std::env::var("EHSIM_TRACE_DIR").unwrap_or_else(|_| "traces".into());
    let dir = std::path::PathBuf::from(dir);
    let stem = format!(
        "{}__{}__{}",
        sanitize(workload),
        sanitize(job.cfg.design.label()),
        sanitize(job.cfg.trace_label())
    );
    let open = || -> std::io::Result<StreamingObserver> {
        std::fs::create_dir_all(&dir)?;
        StreamingObserver::to_path(&dir.join(format!("{stem}.events.jsonl")))
    };
    match open() {
        Ok(obs) => ObserverBox::custom(obs),
        Err(e) => {
            eprintln!("warning: failed to open event stream for {stem}: {e}");
            ObserverBox::Noop
        }
    }
}

/// Direct execution: builds the kernel suite and re-runs the kernel on
/// the simulated machine (the exact path; also the serial-reference
/// path). Panics with context on simulation errors — the harness
/// treats them as fatal.
fn run_direct(job: &Job, streaming: bool) -> Report {
    let workloads = ehsim_workloads::all23(job.scale);
    let w = workloads
        .get(job.workload)
        .unwrap_or_else(|| panic!("workload index {} out of range", job.workload));
    let obs = if streaming {
        stream_sink(job, w.name())
    } else {
        ObserverBox::Noop
    };
    Simulator::new(job.cfg.clone())
        .run_with(w.as_ref(), obs)
        .map(|(report, _)| report)
        .unwrap_or_else(|e| {
            panic!(
                "{} / {} on {}: {e}",
                job.cfg.design.label(),
                w.name(),
                job.cfg.trace_label()
            )
        })
}

/// Trace-driven execution: replays the process-wide shared Bus trace
/// for this job's workload (recording it on first use).
fn run_replay(job: &Job, streaming: bool) -> Report {
    let trace = shared_trace(job.workload, job.scale);
    let obs = if streaming {
        stream_sink(job, trace.name())
    } else {
        ObserverBox::Noop
    };
    counters().replays.fetch_add(1, Ordering::Relaxed);
    Simulator::new(job.cfg.clone())
        .replay_with(&trace, obs)
        .map(|(report, _)| report)
        .unwrap_or_else(|e| {
            panic!(
                "{} / {} on {} (replay): {e}",
                job.cfg.design.label(),
                trace.name(),
                job.cfg.trace_label()
            )
        })
}

/// Runs one job to completion via the replay engine (or directly under
/// `EHSIM_EXACT`), updating the process-wide counters.
fn simulate(job: &Job) -> Report {
    let streaming = trace_workload() == Some(workload_name(job.workload));
    let report = if exact_mode() {
        run_direct(job, streaming)
    } else {
        let replayed = run_replay(job, streaming);
        if replay_check() {
            let direct = run_direct(job, false);
            assert_eq!(
                direct,
                replayed,
                "replay diverged from direct execution: {} / {} on {}",
                job.cfg.design.label(),
                workload_name(job.workload),
                job.cfg.trace_label()
            );
        }
        replayed
    };
    if batch_check() {
        // Same simulation again, but with every machine constructed on
        // the per-retire reference settlement path.
        let reference = ehsim::with_settle_batching_disabled(|| {
            if exact_mode() {
                run_direct(job, false)
            } else {
                run_replay(job, false)
            }
        });
        assert_eq!(
            reference,
            report,
            "batched settlement diverged from the per-retire reference: {} / {} on {}",
            job.cfg.design.label(),
            workload_name(job.workload),
            job.cfg.trace_label()
        );
    }
    count(&report);
    report
}

/// Counter bump shared by the engine and serial-reference paths.
fn count(report: &Report) {
    let c = counters();
    c.sims.fetch_add(1, Ordering::Relaxed);
    c.instructions
        .fetch_add(report.instructions, Ordering::Relaxed);
}

enum Slot {
    Done(Arc<Report>),
    Pending(usize),
}

/// Runs a batch of jobs and returns their reports in submission order.
///
/// Jobs already in the memo cache are returned without simulating;
/// duplicate keys within the batch simulate once. The remaining misses
/// execute on a [`std::thread::scope`] work queue of [`jobs`] workers.
pub fn run_batch(batch: &[Job]) -> Vec<Arc<Report>> {
    if serial_uncached() {
        // The serial reference always re-executes kernels directly, so
        // byte-identity tests comparing the engine against it pin the
        // replay engine to direct execution across every figure.
        return batch
            .iter()
            .map(|j| {
                let streaming = trace_workload() == Some(workload_name(j.workload));
                let report = run_direct(j, streaming);
                count(&report);
                Arc::new(report)
            })
            .collect();
    }

    // Compute memo keys first, redirecting each job to its content
    // dedup canonical workload (this may record traces, so it happens
    // outside the cache lock). Exact mode opts out: it exists to
    // re-execute every kernel for real, which sharing would undercut.
    let dedup = !exact_mode();
    let keys: Vec<Option<MemoKey>> = batch
        .iter()
        .map(|job| {
            let key = memo_key(job)?;
            if dedup {
                let canon = canonical_workload(job.workload, job.scale);
                if canon != job.workload {
                    let mut twin = job.clone();
                    twin.workload = canon;
                    return memo_key(&twin);
                }
            }
            Some(key)
        })
        .collect();

    // Resolve against the cache and deduplicate within the batch.
    let mut slots: Vec<Slot> = Vec::with_capacity(batch.len());
    let mut misses: Vec<&Job> = Vec::new();
    let mut miss_keys: Vec<Option<MemoKey>> = Vec::new();
    {
        let cache = cache().lock().expect("sweep cache poisoned");
        let mut pending: HashMap<MemoKey, usize> = HashMap::new();
        for (job, key) in batch.iter().zip(keys) {
            match key {
                Some(key) => {
                    if let Some(hit) = cache.get(&key) {
                        counters().memo_hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Done(Arc::clone(hit)));
                    } else if let Some(&ix) = pending.get(&key) {
                        counters().memo_hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Pending(ix));
                    } else {
                        let ix = misses.len();
                        misses.push(job);
                        miss_keys.push(Some(key.clone()));
                        pending.insert(key, ix);
                        slots.push(Slot::Pending(ix));
                    }
                }
                None => {
                    let ix = misses.len();
                    misses.push(job);
                    miss_keys.push(None);
                    slots.push(Slot::Pending(ix));
                }
            }
        }
    }

    // Execute the misses on the worker pool.
    let results: Vec<OnceLock<Arc<Report>>> = (0..misses.len()).map(|_| OnceLock::new()).collect();
    if !misses.is_empty() {
        let workers = jobs().min(misses.len());
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= misses.len() {
                        break;
                    }
                    let report = Arc::new(simulate(misses[i]));
                    let _ = results[i].set(report);
                });
            }
        });
    }

    // Publish new results and assemble in submission order.
    let results: Vec<Arc<Report>> = results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("worker completed every claimed job")
        })
        .collect();
    {
        let mut cache = cache().lock().expect("sweep cache poisoned");
        for (key, report) in miss_keys.iter().zip(&results) {
            if let Some(key) = key {
                cache.insert(key.clone(), Arc::clone(report));
            }
        }
    }
    slots
        .into_iter()
        .zip(batch)
        .map(|(slot, job)| {
            let report = match slot {
                Slot::Done(r) => r,
                Slot::Pending(ix) => Arc::clone(&results[ix]),
            };
            // A report carrying another workload's name means this entry
            // was served through the content-dedup canonical key. All
            // simulated fields are shared (the op streams are
            // byte-identical), but the report's identity is this job's:
            // restore its own name and recorded kernel checksum.
            let own_name = workload_name(job.workload);
            if report.workload != own_name {
                counters().deduped.fetch_add(1, Ordering::Relaxed);
                let mut patched = (*report).clone();
                patched.workload = own_name.to_string();
                patched.checksum = shared_trace(job.workload, job.scale).checksum();
                Arc::new(patched)
            } else {
                report
            }
        })
        .collect()
}

/// The content-dedup canonical index of every suite workload at
/// `scale` (diagnostics and tests; records any not-yet-recorded
/// traces). `map[i] == i` means workload `i` is its own canonical
/// representative. As of this writing the map is the identity — the
/// suite's nominal twin pairs (susancorners/susanedges,
/// jpegdecode/jpegencode) match in op *counts* but diverge in their
/// access streams, so no sharing is currently possible; the engine
/// stands ready should a future suite change produce true twins.
pub fn canonical_map(scale: Scale) -> Vec<usize> {
    let n = ehsim_workloads::all23(scale).len();
    (0..n).map(|w| canonical_workload(w, scale)).collect()
}

/// Runs the full 23-workload suite for each configuration, sharing one
/// batch (and therefore the worker pool and the memo cache) across all
/// of them. Returns one report vector per configuration, in order.
pub fn run_suites(cfgs: &[SimConfig], scale: Scale) -> Vec<Vec<Arc<Report>>> {
    let count = ehsim_workloads::all23(scale).len();
    let batch: Vec<Job> = cfgs
        .iter()
        .flat_map(|cfg| (0..count).map(move |w| Job::new(cfg.clone(), w, scale)))
        .collect();
    let flat = run_batch(&batch);
    flat.chunks(count).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_cache::CacheGeometry;
    use wl_cache::Thresholds;

    fn key(cfg: SimConfig) -> MemoKey {
        memo_key(&Job::new(cfg, 0, Scale::Small)).expect("memoizable")
    }

    /// Every `SimConfig` field must feed the memo key: for each field,
    /// perturb it from the same base and demand a distinct key. A field
    /// that stopped influencing the key would silently alias distinct
    /// configurations onto one cached report.
    #[test]
    fn keys_distinguish_every_field() {
        let base = SimConfig::wl_cache();
        let base_key = key(base.clone());
        let variants: Vec<(&str, SimConfig)> = vec![
            ("design", SimConfig::nvsram()),
            ("design params", {
                let mut c = base.clone();
                c.design = DesignKind::Wl {
                    thresholds: Thresholds::with_maxline(8, 4).unwrap(),
                    dq_policy: DqPolicy::Fifo,
                    adaptation: AdaptationMode::Adaptive,
                };
                c
            }),
            ("dq_policy", base.clone().with_dq_policy(DqPolicy::Lru)),
            ("adaptation", SimConfig::wl_cache_dyn()),
            (
                "geometry",
                base.clone().with_geometry(CacheGeometry::new(2048, 2, 64)),
            ),
            (
                "cache_policy",
                base.clone().with_cache_policy(ReplacementPolicy::Fifo),
            ),
            ("trace", base.clone().with_trace(TraceKind::Rf1)),
            ("capacitor_uf", base.clone().with_capacitor_uf(2.0)),
            ("cpu", {
                let mut c = base.clone();
                c.cpu.static_power_uw += 1.0;
                c
            }),
            ("nvm_timing", {
                let mut c = base.clone();
                c.nvm_timing.t_wr += 1.0;
                c
            }),
            ("nvm_energy", {
                let mut c = base.clone();
                c.nvm_energy.write_pj_per_byte += 1.0;
                c
            }),
            ("charging", {
                let mut c = base.clone();
                c.charging.v_knee += 0.1;
                c
            }),
            ("verify", base.clone().with_verify()),
            ("max_outages", {
                let mut c = base.clone();
                c.max_outages += 1;
                c
            }),
        ];
        let mut keys = vec![("base", base_key)];
        for (field, cfg) in variants {
            let k = key(cfg);
            for (other, ok) in &keys {
                assert_ne!(&k, ok, "{field} collides with {other}");
            }
            keys.push((field, k));
        }
    }

    #[test]
    fn scale_and_workload_feed_the_key() {
        let cfg = SimConfig::nvsram();
        let a = memo_key(&Job::new(cfg.clone(), 0, Scale::Small)).unwrap();
        let b = memo_key(&Job::new(cfg.clone(), 1, Scale::Small)).unwrap();
        let c = memo_key(&Job::new(cfg, 0, Scale::Default)).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn equal_jobs_share_a_key() {
        let a = memo_key(&Job::new(SimConfig::wl_cache(), 3, Scale::Small));
        let b = memo_key(&Job::new(SimConfig::wl_cache(), 3, Scale::Small));
        assert_eq!(a, b);
    }

    #[test]
    fn custom_traces_are_never_memoized() {
        let trace = ehsim_energy::PowerTrace::constant(100.0);
        let cfg = SimConfig::wl_cache().with_custom_trace(trace);
        assert_eq!(memo_key(&Job::new(cfg, 0, Scale::Small)), None);
    }
}
