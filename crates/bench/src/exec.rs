//! Parallel sweep executor with process-wide memoization.
//!
//! Every figure/table regeneration is a *sweep*: a batch of independent
//! `(SimConfig, workload, scale)` simulations whose reports are then
//! reduced into TSV rows. This module runs such batches across a pool
//! of worker threads (one per CPU by default, overridable with the
//! `EHSIM_JOBS` environment variable) and memoizes completed reports in
//! a process-wide cache, so repeated configurations — most prominently
//! the `NVSRAM(ideal)` baselines that almost every figure normalizes
//! against — are simulated exactly once per process no matter how many
//! figures request them.
//!
//! Guarantees:
//!
//! * **Deterministic results.** [`run_batch`] returns reports in
//!   submission order, and simulations are pure functions of their
//!   `(SimConfig, workload, scale)` key, so neither the worker count
//!   nor the scheduling order can change any output byte. A regression
//!   test compares engine-generated figures against a serial,
//!   cache-free rerun byte for byte.
//! * **Complete keys.** The memo key is the full `Debug` rendering of
//!   the [`SimConfig`] (design, geometry, policies, trace, capacitor,
//!   CPU/NVM/charging parameters, verify, fast-path knob — Rust's
//!   shortest-round-trip float formatting makes this lossless) plus
//!   the scale and workload index. Jobs carrying a custom power trace
//!   are never memoized.
//!
//! Setting `EHSIM_SWEEP_SERIAL=1` bypasses both the pool and the cache
//! (every job simulates inline, in order); the byte-identity test uses
//! it to produce the serial reference.

use ehsim::{Report, SimConfig, Simulator};
use ehsim_workloads::Scale;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One simulation of the sweep: a configuration applied to workload
/// number `workload` of the fixed 23-kernel suite at `scale`.
#[derive(Debug, Clone)]
pub struct Job {
    /// The configuration to simulate.
    pub cfg: SimConfig,
    /// Index into [`ehsim_workloads::all23`] (figure order).
    pub workload: usize,
    /// Workload scale.
    pub scale: Scale,
}

impl Job {
    /// Convenience constructor.
    pub fn new(cfg: SimConfig, workload: usize, scale: Scale) -> Self {
        Self {
            cfg,
            workload,
            scale,
        }
    }
}

/// Snapshot of the executor's process-wide counters (for the
/// `BENCH_sweep.json` emitter and progress lines).
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Simulations actually executed.
    pub sims_run: u64,
    /// Batch entries satisfied from the memo cache (or deduplicated
    /// within a batch).
    pub memo_hits: u64,
    /// Total instructions retired across all executed simulations.
    pub simulated_instructions: u64,
}

struct Counters {
    sims: AtomicU64,
    memo_hits: AtomicU64,
    instructions: AtomicU64,
}

fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        sims: AtomicU64::new(0),
        memo_hits: AtomicU64::new(0),
        instructions: AtomicU64::new(0),
    })
}

fn cache() -> &'static Mutex<HashMap<String, Arc<Report>>> {
    static C: OnceLock<Mutex<HashMap<String, Arc<Report>>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Current executor counters.
pub fn stats() -> ExecStats {
    let c = counters();
    ExecStats {
        sims_run: c.sims.load(Ordering::Relaxed),
        memo_hits: c.memo_hits.load(Ordering::Relaxed),
        simulated_instructions: c.instructions.load(Ordering::Relaxed),
    }
}

/// Worker count: `EHSIM_JOBS` if set (minimum 1), otherwise the
/// machine's available parallelism.
pub fn jobs() -> usize {
    std::env::var("EHSIM_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn serial_uncached() -> bool {
    std::env::var_os("EHSIM_SWEEP_SERIAL").is_some_and(|v| v != "0")
}

/// Memo key, or `None` when the job must not be memoized (custom
/// traces have no stable identity).
fn memo_key(job: &Job) -> Option<String> {
    if job.cfg.custom_trace.is_some() {
        return None;
    }
    Some(format!("{:?}|{:?}|{}", job.cfg, job.scale, job.workload))
}

/// Runs one job to completion, panicking with context on simulation
/// errors (the harness treats them as fatal).
fn simulate(job: &Job) -> Report {
    let workloads = ehsim_workloads::all23(job.scale);
    let w = workloads
        .get(job.workload)
        .unwrap_or_else(|| panic!("workload index {} out of range", job.workload));
    let label = job.cfg.design.label();
    let trace = job.cfg.trace_label();
    let report = Simulator::new(job.cfg.clone())
        .run(w.as_ref())
        .unwrap_or_else(|e| panic!("{label} / {} on {trace}: {e}", w.name()));
    let c = counters();
    c.sims.fetch_add(1, Ordering::Relaxed);
    c.instructions
        .fetch_add(report.instructions, Ordering::Relaxed);
    report
}

enum Slot {
    Done(Arc<Report>),
    Pending(usize),
}

/// Runs a batch of jobs and returns their reports in submission order.
///
/// Jobs already in the memo cache are returned without simulating;
/// duplicate keys within the batch simulate once. The remaining misses
/// execute on a [`std::thread::scope`] work queue of [`jobs`] workers.
pub fn run_batch(batch: &[Job]) -> Vec<Arc<Report>> {
    if serial_uncached() {
        return batch.iter().map(|j| Arc::new(simulate(j))).collect();
    }

    // Resolve against the cache and deduplicate within the batch.
    let mut slots: Vec<Slot> = Vec::with_capacity(batch.len());
    let mut misses: Vec<&Job> = Vec::new();
    let mut miss_keys: Vec<Option<String>> = Vec::new();
    {
        let cache = cache().lock().expect("sweep cache poisoned");
        let mut pending: HashMap<String, usize> = HashMap::new();
        for job in batch {
            match memo_key(job) {
                Some(key) => {
                    if let Some(hit) = cache.get(&key) {
                        counters().memo_hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Done(Arc::clone(hit)));
                    } else if let Some(&ix) = pending.get(&key) {
                        counters().memo_hits.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Pending(ix));
                    } else {
                        let ix = misses.len();
                        misses.push(job);
                        miss_keys.push(Some(key.clone()));
                        pending.insert(key, ix);
                        slots.push(Slot::Pending(ix));
                    }
                }
                None => {
                    let ix = misses.len();
                    misses.push(job);
                    miss_keys.push(None);
                    slots.push(Slot::Pending(ix));
                }
            }
        }
    }

    // Execute the misses on the worker pool.
    let results: Vec<OnceLock<Arc<Report>>> = (0..misses.len()).map(|_| OnceLock::new()).collect();
    if !misses.is_empty() {
        let workers = jobs().min(misses.len());
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= misses.len() {
                        break;
                    }
                    let report = Arc::new(simulate(misses[i]));
                    let _ = results[i].set(report);
                });
            }
        });
    }

    // Publish new results and assemble in submission order.
    let results: Vec<Arc<Report>> = results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("worker completed every claimed job")
        })
        .collect();
    {
        let mut cache = cache().lock().expect("sweep cache poisoned");
        for (key, report) in miss_keys.iter().zip(&results) {
            if let Some(key) = key {
                cache.insert(key.clone(), Arc::clone(report));
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Done(r) => r,
            Slot::Pending(ix) => Arc::clone(&results[ix]),
        })
        .collect()
}

/// Runs the full 23-workload suite for each configuration, sharing one
/// batch (and therefore the worker pool and the memo cache) across all
/// of them. Returns one report vector per configuration, in order.
pub fn run_suites(cfgs: &[SimConfig], scale: Scale) -> Vec<Vec<Arc<Report>>> {
    let count = ehsim_workloads::all23(scale).len();
    let batch: Vec<Job> = cfgs
        .iter()
        .flat_map(|cfg| (0..count).map(move |w| Job::new(cfg.clone(), w, scale)))
        .collect();
    let flat = run_batch(&batch);
    flat.chunks(count).map(|c| c.to_vec()).collect()
}
