//! Harness utilities shared by the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index) by sweeping the relevant
//! configurations with [`ehsim::Simulator`] and printing a TSV both to
//! stdout and to `results/<name>.tsv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ehsim::{Report, SimConfig, Simulator};
use ehsim_mem::Workload;
use std::fmt::Write as _;
use std::path::Path;

/// Runs one workload under one configuration, panicking with context on
/// simulation errors (the harness treats them as fatal).
pub fn run(cfg: SimConfig, workload: &dyn Workload) -> Report {
    let label = cfg.design.label();
    let trace = cfg.trace.label();
    Simulator::new(cfg)
        .run(workload)
        .unwrap_or_else(|e| panic!("{label} / {} on {trace}: {e}", workload.name()))
}

/// A simple TSV accumulator that mirrors rows to stdout.
#[derive(Debug, Default)]
pub struct Table {
    out: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row of cells.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let line = cells
            .into_iter()
            .map(|c| c.as_ref().to_string())
            .collect::<Vec<_>>()
            .join("\t");
        println!("{line}");
        let _ = writeln!(self.out, "{line}");
    }

    /// Writes the accumulated TSV under `results/<name>.tsv`
    /// (best-effort; the harness still printed everything to stdout).
    pub fn save(&self, name: &str) {
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.tsv"));
            if std::fs::write(&path, &self.out).is_ok() {
                eprintln!("[saved {}]", path.display());
            }
        }
    }
}

/// Formats a ratio with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Geometric mean re-export for the binaries.
pub use ehsim::gmean;

/// Splits the 23 reports into (MediaBench, MiBench) halves by the known
/// suite sizes, for the per-suite gmeans the paper prints.
pub fn suite_split<T>(all: &[T]) -> (&[T], &[T]) {
    assert_eq!(all.len(), 23, "expected the full 23-workload sweep");
    all.split_at(15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_workloads::prelude::*;

    #[test]
    fn run_executes_a_small_workload() {
        let r = run(SimConfig::wl_cache(), &Sha::small());
        assert!(r.total_time_ps > 0);
    }

    #[test]
    fn suite_split_is_15_8() {
        let v: Vec<u32> = (0..23).collect();
        let (a, b) = suite_split(&v);
        assert_eq!(a.len(), 15);
        assert_eq!(b.len(), 8);
    }
}

/// Runs the full 23-workload suite under `cfg` at `scale`, in figure
/// order.
pub fn run_suite(cfg: &SimConfig, scale: ehsim_workloads::Scale) -> Vec<Report> {
    ehsim_workloads::all23(scale)
        .iter()
        .map(|w| run(cfg.clone(), w.as_ref()))
        .collect()
}

/// The 23 workload labels in figure order, plus the three gmean columns
/// the paper appends ("gmean(Media)", "gmean(Mi)", "gmean(Total)").
pub fn workload_labels() -> Vec<String> {
    ehsim_workloads::all23(ehsim_workloads::Scale::Small)
        .iter()
        .map(|w| w.name().to_string())
        .collect()
}

/// Appends per-suite and total gmean values to a row of 23 per-app
/// values, in the paper's order.
pub fn with_gmeans(values: &[f64]) -> Vec<f64> {
    let (media, mi) = suite_split(values);
    let mut out = values.to_vec();
    out.push(gmean(media.iter().copied()).unwrap_or(1.0));
    out.push(gmean(mi.iter().copied()).unwrap_or(1.0));
    out.push(gmean(values.iter().copied()).unwrap_or(1.0));
    out
}

/// Regenerates one of the Fig 4/5/6 speedup figures: per-application
/// speedup of each design relative to NVSRAM(ideal) under `trace`,
/// with the paper's per-suite gmean columns. Writes `results/<name>.tsv`.
pub fn speedup_figure(trace: ehsim_energy::TraceKind, name: &str) {
    use ehsim_workloads::Scale;
    let mut t = Table::new();
    let mut header = vec!["design".to_string()];
    header.extend(workload_labels());
    header.extend(
        ["gmean(Media)", "gmean(Mi)", "gmean(Total)"]
            .iter()
            .map(|s| s.to_string()),
    );
    t.row(header);

    let base = run_suite(&SimConfig::nvsram().with_trace(trace), Scale::Default);
    for cfg in SimConfig::all_designs() {
        let label = cfg.design.label().to_string();
        let reports = run_suite(&cfg.with_trace(trace), Scale::Default);
        let speedups: Vec<f64> = reports
            .iter()
            .zip(&base)
            .map(|(r, b)| r.speedup_vs(b))
            .collect();
        let mut row = vec![label];
        row.extend(with_gmeans(&speedups).iter().map(|v| f3(*v)));
        t.row(row);
    }
    t.save(name);
}

/// Regenerates Fig 11/12: adaptive vs best-static WL-Cache (per cache
/// replacement policy) relative to NVSRAM(ideal) under `trace`.
pub fn adaptive_figure(trace: ehsim_energy::TraceKind, name: &str) {
    use ehsim_cache::ReplacementPolicy;
    use ehsim_workloads::Scale;
    let mut t = Table::new();
    let mut header = vec!["config".to_string()];
    header.extend(workload_labels());
    header.extend(
        ["gmean(Media)", "gmean(Mi)", "gmean(Total)"]
            .iter()
            .map(|s| s.to_string()),
    );
    t.row(header);

    let base = run_suite(&SimConfig::nvsram().with_trace(trace), Scale::Default);
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
        // Best static: per application, the best of maxline 2/4/6/8
        // (exactly how the paper picks "Best" from the Fig 9 sweep).
        let mut best = vec![f64::MIN; 23];
        for maxline in [2usize, 4, 6, 8] {
            let cfg = SimConfig::wl_cache_static(maxline)
                .with_cache_policy(policy)
                .with_trace(trace);
            let reports = run_suite(&cfg, Scale::Default);
            for (i, (r, b)) in reports.iter().zip(&base).enumerate() {
                best[i] = best[i].max(r.speedup_vs(b));
            }
        }
        let mut row = vec![format!("{}(Best)", policy.label())];
        row.extend(with_gmeans(&best).iter().map(|v| f3(*v)));
        t.row(row);

        let cfg = SimConfig::wl_cache()
            .with_cache_policy(policy)
            .with_trace(trace);
        let reports = run_suite(&cfg, Scale::Default);
        let adap: Vec<f64> = reports
            .iter()
            .zip(&base)
            .map(|(r, b)| r.speedup_vs(b))
            .collect();
        let mut row = vec![format!("{}(Adap)", policy.label())];
        row.extend(with_gmeans(&adap).iter().map(|v| f3(*v)));
        t.row(row);
    }
    t.save(name);
}
