//! Harness utilities shared by the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index) by sweeping the relevant
//! configurations with [`ehsim::Simulator`] and printing a TSV both to
//! stdout and to `results/<name>.tsv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ehsim::{Report, SimConfig, Simulator};
use ehsim_mem::Workload;
use std::io::Write as _;
use std::path::Path;

pub mod exec;
pub mod figures;

/// Runs one workload under one configuration, panicking with context on
/// simulation errors (the harness treats them as fatal). This is the
/// direct, uncached entry point; sweeps should go through
/// [`exec::run_batch`] to get parallelism and memoization.
pub fn run(cfg: SimConfig, workload: &dyn Workload) -> Report {
    let label = cfg.design.label();
    let trace = cfg.trace.label();
    Simulator::new(cfg)
        .run(workload)
        .unwrap_or_else(|e| panic!("{label} / {} on {trace}: {e}", workload.name()))
}

/// A simple TSV accumulator that mirrors rows to stdout.
#[derive(Debug, Default)]
pub struct Table {
    out: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row of cells: each cell goes straight into the
    /// accumulator (tab-separated, newline-terminated) and the finished
    /// line is mirrored to stdout through a single locked handle — no
    /// intermediate per-cell allocations.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let start = self.out.len();
        let mut first = true;
        for c in cells {
            if !first {
                self.out.push('\t');
            }
            first = false;
            self.out.push_str(c.as_ref());
        }
        self.out.push('\n');
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(&self.out.as_bytes()[start..]);
    }

    /// The accumulated TSV content (what [`Table::save`] would write).
    pub fn contents(&self) -> &str {
        &self.out
    }

    /// Writes the accumulated TSV under `results/<name>.tsv`
    /// (best-effort; the harness still printed everything to stdout).
    pub fn save(&self, name: &str) {
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.tsv"));
            if std::fs::write(&path, &self.out).is_ok() {
                eprintln!("[saved {}]", path.display());
            }
        }
    }
}

/// Formats a ratio with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Geometric mean re-export for the binaries.
pub use ehsim::gmean;

/// Splits the 23 reports into (MediaBench, MiBench) halves by the known
/// suite sizes, for the per-suite gmeans the paper prints.
pub fn suite_split<T>(all: &[T]) -> (&[T], &[T]) {
    assert_eq!(all.len(), 23, "expected the full 23-workload sweep");
    all.split_at(15)
}

/// Runs the full 23-workload suite under `cfg` at `scale`, in figure
/// order, through the parallel memoizing executor (see [`exec`]).
pub fn run_suite(cfg: &SimConfig, scale: ehsim_workloads::Scale) -> Vec<Report> {
    exec::run_suites(std::slice::from_ref(cfg), scale)
        .pop()
        .expect("one suite per config")
        .iter()
        .map(|r| (**r).clone())
        .collect()
}

/// The 23 workload labels in figure order, plus the three gmean columns
/// the paper appends ("gmean(Media)", "gmean(Mi)", "gmean(Total)").
pub fn workload_labels() -> Vec<String> {
    ehsim_workloads::all23(ehsim_workloads::Scale::Small)
        .iter()
        .map(|w| w.name().to_string())
        .collect()
}

/// Appends per-suite and total gmean values to a row of 23 per-app
/// values, in the paper's order.
pub fn with_gmeans(values: &[f64]) -> Vec<f64> {
    let (media, mi) = suite_split(values);
    let mut out = values.to_vec();
    out.push(gmean(media.iter().copied()).unwrap_or(1.0));
    out.push(gmean(mi.iter().copied()).unwrap_or(1.0));
    out.push(gmean(values.iter().copied()).unwrap_or(1.0));
    out
}

/// Regenerates one of the Fig 4/5/6 speedup figures: per-application
/// speedup of each design relative to NVSRAM(ideal) under `trace`,
/// with the paper's per-suite gmean columns. Writes `results/<name>.tsv`.
pub fn speedup_figure(trace: ehsim_energy::TraceKind, name: &str) {
    figures::speedup(trace, ehsim_workloads::Scale::Default).save(name);
}

/// Regenerates Fig 11/12: adaptive vs best-static WL-Cache (per cache
/// replacement policy) relative to NVSRAM(ideal) under `trace`.
pub fn adaptive_figure(trace: ehsim_energy::TraceKind, name: &str) {
    figures::adaptive(trace, ehsim_workloads::Scale::Default).save(name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_workloads::prelude::*;

    #[test]
    fn run_executes_a_small_workload() {
        let r = run(SimConfig::wl_cache(), &Sha::small());
        assert!(r.total_time_ps > 0);
    }

    #[test]
    fn suite_split_is_15_8() {
        let v: Vec<u32> = (0..23).collect();
        let (a, b) = suite_split(&v);
        assert_eq!(a.len(), 15);
        assert_eq!(b.len(), 8);
    }
}
