//! One function per paper figure/table, all driven by the parallel
//! sweep executor in [`crate::exec`].
//!
//! Each function assembles its whole simulation demand as a single
//! batch up front — so independent configurations run concurrently and
//! repeated ones (the `NVSRAM(ideal)` baselines) hit the memo cache —
//! and then reduces the reports into a [`Table`]. Functions return the
//! table *without* saving it; the binaries (and `all_figures`) call
//! [`Table::save`]. Everything is parameterized by [`Scale`] so the
//! byte-identity regression test can run the same code at `Small`.

use crate::exec::{self, Job};
use crate::{f3, gmean, with_gmeans, workload_labels, Table};
use ehsim::{Report, SimConfig};
use ehsim_cache::{CacheGeometry, ReplacementPolicy};
use ehsim_energy::{EnergyCategory, EnergyMeter, TraceKind, VoltageThresholds};
use ehsim_workloads::Scale;
use std::sync::Arc;

/// Per-application speedup header: design + 23 workloads + gmeans.
fn speedup_header(first: &str) -> Vec<String> {
    let mut header = vec![first.to_string()];
    header.extend(workload_labels());
    header.extend(
        ["gmean(Media)", "gmean(Mi)", "gmean(Total)"]
            .iter()
            .map(|s| s.to_string()),
    );
    header
}

fn speedups(reports: &[Arc<Report>], base: &[Arc<Report>]) -> Vec<f64> {
    reports
        .iter()
        .zip(base)
        .map(|(r, b)| r.speedup_vs(b))
        .collect()
}

fn suite_gmean(reports: &[Arc<Report>], base: &[Arc<Report>]) -> f64 {
    gmean(reports.iter().zip(base).map(|(r, b)| r.speedup_vs(b))).expect("non-empty suite")
}

/// Fig 4/5/6 core: per-application speedup of each design relative to
/// NVSRAM(ideal) under `trace`, with the paper's per-suite gmeans.
pub fn speedup(trace: TraceKind, scale: Scale) -> Table {
    let mut cfgs = vec![SimConfig::nvsram().with_trace(trace)];
    cfgs.extend(
        SimConfig::all_designs()
            .into_iter()
            .map(|c| c.with_trace(trace)),
    );
    let suites = exec::run_suites(&cfgs, scale);
    let (base, designs) = suites.split_first().expect("baseline suite");

    let mut t = Table::new();
    t.row(speedup_header("design"));
    for (cfg, reports) in cfgs[1..].iter().zip(designs) {
        let mut row = vec![cfg.design.label().to_string()];
        row.extend(with_gmeans(&speedups(reports, base)).iter().map(|v| f3(*v)));
        t.row(row);
    }
    t
}

/// Fig 11/12 core: adaptive vs best-static WL-Cache (per cache
/// replacement policy) relative to NVSRAM(ideal) under `trace`.
pub fn adaptive(trace: TraceKind, scale: Scale) -> Table {
    const MAXLINES: [usize; 4] = [2, 4, 6, 8];
    let policies = [ReplacementPolicy::Lru, ReplacementPolicy::Fifo];
    let mut cfgs = vec![SimConfig::nvsram().with_trace(trace)];
    for policy in policies {
        for maxline in MAXLINES {
            cfgs.push(
                SimConfig::wl_cache_static(maxline)
                    .with_cache_policy(policy)
                    .with_trace(trace),
            );
        }
        cfgs.push(
            SimConfig::wl_cache()
                .with_cache_policy(policy)
                .with_trace(trace),
        );
    }
    let suites = exec::run_suites(&cfgs, scale);
    let base = &suites[0];

    let mut t = Table::new();
    t.row(speedup_header("config"));
    let mut ix = 1;
    for policy in policies {
        // Best static: per application, the best of maxline 2/4/6/8
        // (exactly how the paper picks "Best" from the Fig 9 sweep).
        let mut best = vec![f64::MIN; base.len()];
        for _ in MAXLINES {
            for (slot, s) in best.iter_mut().zip(speedups(&suites[ix], base)) {
                *slot = slot.max(s);
            }
            ix += 1;
        }
        let mut row = vec![format!("{}(Best)", policy.label())];
        row.extend(with_gmeans(&best).iter().map(|v| f3(*v)));
        t.row(row);

        let mut row = vec![format!("{}(Adap)", policy.label())];
        row.extend(
            with_gmeans(&speedups(&suites[ix], base))
                .iter()
                .map(|v| f3(*v)),
        );
        ix += 1;
        t.row(row);
    }
    t
}

/// Fig 4: no power failure.
pub fn fig04(scale: Scale) -> Table {
    speedup(TraceKind::None, scale)
}

/// Fig 5: Power Trace 1.
pub fn fig05(scale: Scale) -> Table {
    speedup(TraceKind::Rf1, scale)
}

/// Fig 6: Power Trace 2.
pub fn fig06(scale: Scale) -> Table {
    speedup(TraceKind::Rf2, scale)
}

/// Fig 7: normalized NVM write-traffic increase of WL-Cache compared
/// to NVSRAM(ideal) under Power Trace 1.
pub fn fig07(scale: Scale) -> Table {
    let cfgs = [
        SimConfig::nvsram().with_trace(TraceKind::Rf1),
        SimConfig::wl_cache().with_trace(TraceKind::Rf1),
    ];
    let suites = exec::run_suites(&cfgs, scale);
    let (base, wl) = (&suites[0], &suites[1]);
    let ratios: Vec<f64> = wl
        .iter()
        .zip(base)
        .map(|(w, b)| w.nvm_write_bytes() as f64 / b.nvm_write_bytes() as f64)
        .collect();
    let mut t = Table::new();
    t.row(["app", "write-traffic ratio (WL / NVSRAM)"]);
    for (name, r) in workload_labels().iter().zip(with_gmeans(&ratios)) {
        t.row([name.clone(), f3(r)]);
    }
    let g = with_gmeans(&ratios);
    t.row(["gmean(Media)".to_string(), f3(g[23])]);
    t.row(["gmean(Mi)".to_string(), f3(g[24])]);
    t.row(["gmean(Total)".to_string(), f3(g[25])]);
    t
}

/// Fig 8(a): DQ-FIFO vs DQ-LRU DirtyQueue replacement, suite gmean.
pub fn fig08a(scale: Scale) -> Table {
    use wl_cache::DqPolicy;
    let traces = [TraceKind::None, TraceKind::Rf1, TraceKind::Rf2];
    let policies = [DqPolicy::Fifo, DqPolicy::Lru];
    let mut cfgs = Vec::new();
    for trace in traces {
        cfgs.push(SimConfig::nvsram().with_trace(trace));
        for policy in policies {
            cfgs.push(
                SimConfig::wl_cache()
                    .with_dq_policy(policy)
                    .with_trace(trace),
            );
        }
    }
    let suites = exec::run_suites(&cfgs, scale);
    let mut t = Table::new();
    t.row(["scenario", "DQ-FIFO", "DQ-LRU"]);
    for (ti, trace) in traces.iter().enumerate() {
        let base = &suites[ti * 3];
        let mut cells = vec![trace.label().to_string()];
        for pi in 0..policies.len() {
            cells.push(f3(suite_gmean(&suites[ti * 3 + 1 + pi], base)));
        }
        t.row(cells);
    }
    t
}

/// Fig 8(b): set associativity (direct-mapped / 2-way / 4-way), suite
/// gmean.
pub fn fig08b(scale: Scale) -> Table {
    let traces = [TraceKind::None, TraceKind::Rf1, TraceKind::Rf2];
    let ways_list = [1u32, 2, 4];
    let mut cfgs = Vec::new();
    for trace in traces {
        cfgs.push(SimConfig::nvsram().with_trace(trace));
        for ways in ways_list {
            let geom = CacheGeometry::new(1024, ways, 64);
            cfgs.push(SimConfig::wl_cache().with_geometry(geom).with_trace(trace));
        }
    }
    let suites = exec::run_suites(&cfgs, scale);
    let mut t = Table::new();
    t.row(["scenario", "D-Map.", "2-Way", "4-Way"]);
    for (ti, trace) in traces.iter().enumerate() {
        let base = &suites[ti * 4];
        let mut cells = vec![trace.label().to_string()];
        for wi in 0..ways_list.len() {
            cells.push(f3(suite_gmean(&suites[ti * 4 + 1 + wi], base)));
        }
        t.row(cells);
    }
    t
}

/// Fig 9: per-application sensitivity to maxline (2/4/6/8) and cache
/// replacement policy (FIFO vs LRU), normalized to NVSRAM(ideal),
/// Power Trace 1.
pub fn fig09(scale: Scale) -> Table {
    const MAXLINES: [usize; 4] = [2, 4, 6, 8];
    let policies = [ReplacementPolicy::Fifo, ReplacementPolicy::Lru];
    let names: Vec<String> = ehsim_workloads::all23(scale)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let count = names.len();
    let base_cfg = SimConfig::nvsram().with_trace(TraceKind::Rf1);
    let mut jobs: Vec<Job> = (0..count)
        .map(|w| Job::new(base_cfg.clone(), w, scale))
        .collect();
    for w in 0..count {
        for maxline in MAXLINES {
            for policy in policies {
                let cfg = SimConfig::wl_cache_static(maxline)
                    .with_cache_policy(policy)
                    .with_trace(TraceKind::Rf1);
                jobs.push(Job::new(cfg, w, scale));
            }
        }
    }
    let reports = exec::run_batch(&jobs);
    let (base, rest) = reports.split_at(count);

    let mut t = Table::new();
    t.row(["app", "maxline", "FIFO", "LRU", "NVSRAM(ideal)"]);
    let mut ix = 0;
    for (w, name) in names.iter().enumerate() {
        for maxline in MAXLINES {
            let mut cells = vec![name.clone(), maxline.to_string()];
            for _ in policies {
                cells.push(f3(rest[ix].speedup_vs(&base[w])));
                ix += 1;
            }
            cells.push("1.000".into());
            t.row(cells);
        }
    }
    t
}

/// Fig 10(a): speedup vs NVSRAM(ideal) while sweeping the cache size
/// from 128 B to 4 kB, Power Trace 1, suite gmean.
pub fn fig10a(scale: Scale) -> Table {
    let sizes = [128u32, 256, 512, 1024, 2048, 4096];
    let designs = [
        SimConfig::nvsram(),
        SimConfig::vcache_wt(),
        SimConfig::replay(),
        SimConfig::wl_cache(),
    ];
    // The 1 kB NVSRAM is the common baseline so the sweep shows both
    // effects the paper reports: absolute speedup growing with size and
    // the WL/NVSRAM gap narrowing as the cache shrinks.
    let mut cfgs = vec![SimConfig::nvsram().with_trace(TraceKind::Rf1)];
    for size in sizes {
        let geom = CacheGeometry::new(size, 2, 64);
        for cfg in &designs {
            cfgs.push(cfg.clone().with_geometry(geom).with_trace(TraceKind::Rf1));
        }
    }
    let suites = exec::run_suites(&cfgs, scale);
    let base = &suites[0];
    let mut t = Table::new();
    t.row([
        "size(B)",
        "NVSRAM(ideal)",
        "VCache-WT",
        "ReplayCache",
        "WL-Cache",
    ]);
    for (si, size) in sizes.iter().enumerate() {
        let mut cells = vec![size.to_string()];
        for di in 0..designs.len() {
            cells.push(f3(suite_gmean(&suites[1 + si * designs.len() + di], base)));
        }
        t.row(cells);
    }
    t
}

/// Fig 10(b): execution time (seconds) while sweeping the capacitor
/// size from 100 nF to 1 mF, Power Trace 1, suite mean.
pub fn fig10b(scale: Scale) -> Table {
    let ufs = [0.1, 0.344, 1.0, 10.0, 100.0, 500.0, 1000.0];
    let designs = [
        SimConfig::vcache_wt(),
        SimConfig::replay(),
        SimConfig::nvsram(),
        SimConfig::wl_cache(),
    ];
    let mut cfgs = Vec::new();
    for &uf in &ufs {
        for cfg in &designs {
            cfgs.push(cfg.clone().with_capacitor_uf(uf).with_trace(TraceKind::Rf1));
        }
    }
    let suites = exec::run_suites(&cfgs, scale);
    let mut t = Table::new();
    t.row([
        "capacitor(uF)",
        "VCache-WT",
        "ReplayCache",
        "NVSRAM(ideal)",
        "WL-Cache",
    ]);
    for (ui, uf) in ufs.iter().enumerate() {
        let mut cells = vec![format!("{uf}")];
        for di in 0..designs.len() {
            let reports = &suites[ui * designs.len() + di];
            let mean: f64 =
                reports.iter().map(|r| r.total_seconds()).sum::<f64>() / reports.len() as f64;
            cells.push(format!("{mean:.4}"));
        }
        t.row(cells);
    }
    t
}

/// Fig 13(a): speedup vs NVSRAM(ideal) across power traces
/// (tr1/tr2/tr3/solar/thermal), including WL-Cache(dyn), suite gmean.
pub fn fig13a(scale: Scale) -> Table {
    let traces = [
        TraceKind::Rf1,
        TraceKind::Rf2,
        TraceKind::Rf3,
        TraceKind::Solar,
        TraceKind::Thermal,
    ];
    let designs = [
        SimConfig::nvsram(),
        SimConfig::vcache_wt(),
        SimConfig::replay(),
        SimConfig::wl_cache(),
        SimConfig::wl_cache_dyn(),
    ];
    let mut cfgs = Vec::new();
    for trace in traces {
        for cfg in &designs {
            cfgs.push(cfg.clone().with_trace(trace));
        }
    }
    let suites = exec::run_suites(&cfgs, scale);
    let mut t = Table::new();
    t.row([
        "trace",
        "NVSRAM(ideal)",
        "VCache-WT",
        "ReplayCache",
        "WL-Cache",
        "WL-Cache(dyn)",
    ]);
    for (ti, trace) in traces.iter().enumerate() {
        // The first design of each trace block *is* the baseline.
        let base = &suites[ti * designs.len()];
        let mut cells = vec![trace.label().to_string()];
        for di in 0..designs.len() {
            cells.push(f3(suite_gmean(&suites[ti * designs.len() + di], base)));
        }
        t.row(cells);
    }
    t
}

/// Fig 13(b): energy-consumption breakdown (cache read/write, memory
/// read/write, compute) per design under Power Trace 1, normalized to
/// NVSRAM(ideal)'s total, suite sum.
pub fn fig13b(scale: Scale) -> Table {
    let designs = [
        SimConfig::nvcache_wb(),
        SimConfig::vcache_wt(),
        SimConfig::nvsram(),
        SimConfig::wl_cache(),
    ];
    let labels: Vec<String> = designs
        .iter()
        .map(|c| c.design.label().to_string())
        .collect();
    let cfgs: Vec<SimConfig> = designs
        .iter()
        .map(|c| c.clone().with_trace(TraceKind::Rf1))
        .collect();
    let suites = exec::run_suites(&cfgs, scale);
    let totals: Vec<(String, EnergyMeter)> = labels
        .into_iter()
        .zip(&suites)
        .map(|(label, reports)| {
            let sum = reports
                .iter()
                .fold(EnergyMeter::new(), |acc, r| acc.merged(&r.energy));
            (label, sum)
        })
        .collect();
    let nvsram_total = totals
        .iter()
        .find(|(l, _)| l == "NVSRAM(ideal)")
        .expect("baseline present")
        .1
        .total();

    let mut t = Table::new();
    let mut header = vec!["design".to_string()];
    header.extend(EnergyCategory::ALL.iter().map(|c| c.label().to_string()));
    header.push("total(%)".into());
    t.row(header);
    for (label, m) in &totals {
        let mut cells = vec![label.clone()];
        for c in EnergyCategory::ALL {
            cells.push(format!("{:.1}", m.get(c) / nvsram_total * 100.0));
        }
        cells.push(format!("{:.1}", m.total() / nvsram_total * 100.0));
        t.row(cells);
    }
    t
}

/// §6.6 statistics for WL-Cache (adaptive, FIFO DirtyQueue) on Power
/// Traces 1 and 2.
pub fn stats66(scale: Scale) -> Table {
    let traces = [TraceKind::Rf1, TraceKind::Rf2];
    let cfgs: Vec<SimConfig> = traces
        .iter()
        .map(|&trace| SimConfig::wl_cache().with_trace(trace))
        .collect();
    let suites = exec::run_suites(&cfgs, scale);
    let mut t = Table::new();
    t.row([
        "trace",
        "reconfigs(mean)",
        "maxline-min",
        "maxline-max",
        "pred-accuracy",
        "dirty/interval",
        "writebacks/interval",
        "stall(%)",
        "outages(mean)",
    ]);
    for (trace, reports) in traces.iter().zip(&suites) {
        let n = reports.len() as f64;
        let wl: Vec<_> = reports.iter().filter_map(|r| r.wl.as_ref()).collect();
        let reconf: f64 = wl.iter().map(|w| w.reconfigurations as f64).sum::<f64>() / n;
        let mmin = wl.iter().map(|w| w.maxline_min).min().unwrap();
        let mmax = wl.iter().map(|w| w.maxline_max).max().unwrap();
        let accs: Vec<f64> = wl.iter().filter_map(|w| w.prediction_accuracy).collect();
        let acc = if accs.is_empty() {
            f64::NAN
        } else {
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        let dirty: f64 = wl.iter().map(|w| w.avg_dirty_at_checkpoint).sum::<f64>() / n;
        let wb: f64 = wl.iter().map(|w| w.avg_cleanings_per_interval).sum::<f64>() / n;
        let stall: f64 = wl.iter().map(|w| w.stall_fraction).sum::<f64>() / n * 100.0;
        let outs: f64 = reports.iter().map(|r| r.outages as f64).sum::<f64>() / n;
        t.row([
            trace.label().to_string(),
            format!("{reconf:.1}"),
            mmin.to_string(),
            mmax.to_string(),
            format!("{:.1}%", acc * 100.0),
            format!("{dirty:.1}"),
            format!("{wb:.1}"),
            format!("{stall:.3}"),
            format!("{outs:.1}"),
        ]);
    }
    t
}

/// Ablation (§3.3): WL-Cache vs the rejected write-buffer alternative,
/// plus the hardware-cost comparison from CACTI-lite.
pub fn ablation_wbuf(scale: Scale) -> Table {
    use ehsim_hwcost::{dirty_queue_spec, estimate, write_buffer_spec};
    let traces = [TraceKind::None, TraceKind::Rf1];
    let mut cfgs = Vec::new();
    for trace in traces {
        cfgs.push(SimConfig::nvsram().with_trace(trace));
        cfgs.push(SimConfig::wl_cache().with_trace(trace));
        cfgs.push(SimConfig::write_buffer().with_trace(trace));
    }
    let suites = exec::run_suites(&cfgs, scale);
    let mut t = Table::new();
    t.row(["scenario", "WL-Cache", "WBuf-Cache"]);
    for (ti, trace) in traces.iter().enumerate() {
        let base = &suites[ti * 3];
        let mut cells = vec![trace.label().to_string()];
        for di in 0..2 {
            cells.push(f3(suite_gmean(&suites[ti * 3 + 1 + di], base)));
        }
        t.row(cells);
    }
    let dq = estimate(&dirty_queue_spec(8, 32));
    let wb = estimate(&write_buffer_spec(6, 64, 32));
    t.row([
        "area (mm^2)".to_string(),
        format!("{:.5}", dq.area_mm2),
        format!("{:.5}", wb.area_mm2),
    ]);
    t.row([
        "dynamic (pJ/access)".to_string(),
        format!("{:.2}", dq.dynamic_pj_per_access),
        format!("{:.2}", wb.dynamic_pj_per_access),
    ]);
    t
}

/// Table 1: qualitative comparison of hardware complexity, energy-buffer
/// requirement, NVM-cache requirement and performance across the cache
/// schemes — derived from the implemented models (reserve energies come
/// from each design's `worst_checkpoint_pj`).
pub fn table1(_scale: Scale) -> Table {
    use ehsim_cache::designs::{NvCacheWb, NvSramCache, ReplayCache, VCacheWt};
    use ehsim_cache::CacheDesign;
    use ehsim_mem::NvmEnergy;
    use wl_cache::WlCache;

    let geom = CacheGeometry::paper_default();
    let e = NvmEnergy::default();
    let wt = VCacheWt::new(geom, ReplacementPolicy::Lru);
    let nv = NvCacheWb::new(geom, ReplacementPolicy::Lru);
    let nvsram = NvSramCache::new(geom, ReplacementPolicy::Lru);
    let replay = ReplayCache::new(geom, ReplacementPolicy::Lru, 64, 1.0);
    let wl = WlCache::new();

    let mut t = Table::new();
    t.row([
        "design",
        "HW cost",
        "energy-buffer req. (worst ckpt, nJ)",
        "NVM cache req.",
        "perf (Fig 4/5 gmean)",
    ]);
    let rows: [(&str, &str, f64, &str, &str); 5] = [
        (
            "WTCache",
            "None",
            wt.worst_checkpoint_pj(&e) / 1e3,
            "No",
            "Low",
        ),
        (
            "NVCache",
            "Low",
            nv.worst_checkpoint_pj(&e) / 1e3,
            "Yes (full)",
            "Low",
        ),
        (
            "NVSRAM(ideal)",
            "High+",
            nvsram.worst_checkpoint_pj(&e) / 1e3,
            "Yes (large)",
            "High",
        ),
        (
            "ReplayCache",
            "None (compiler)",
            replay.worst_checkpoint_pj(&e) / 1e3,
            "No",
            "Medium",
        ),
        (
            "WL-Cache",
            "Low",
            wl.worst_checkpoint_pj(&e) / 1e3,
            "No",
            "High",
        ),
    ];
    for (name, hw, nj, nvreq, perf) in rows {
        t.row([
            name.to_string(),
            hw.to_string(),
            format!("{nj:.2}"),
            nvreq.to_string(),
            perf.to_string(),
        ]);
    }
    t
}

/// Table 2: the simulation configuration in force (processor, cache,
/// NVM timing, capacitor, voltage thresholds).
pub fn table2(_scale: Scale) -> Table {
    let cfg = SimConfig::wl_cache();
    let mut t = Table::new();
    t.row(["parameter", "value"]);
    t.row(["Processor", "1.0 GHz, 1 in-order core"]);
    t.row([
        "L1 D-cache".to_string(),
        format!(
            "{} B, {}-way, {} B block (paper geometry: 8 kB via --paper)",
            cfg.geometry.size_bytes(),
            cfg.geometry.ways(),
            cfg.geometry.line_bytes()
        ),
    ]);
    t.row([
        "Cache latencies (SRAM hit/miss)".to_string(),
        "0.3 ns / 0.1 ns".to_string(),
    ]);
    t.row([
        "Cache latencies (NVRAM hit/miss)".to_string(),
        "1.6 ns / 1.5 ns".to_string(),
    ]);
    let nt = &cfg.nvm_timing;
    t.row([
        "NVM (ReRAM) tCK/tBURST/tRCD/tCL/tWTR/tWR/tXAW (ns)".to_string(),
        format!(
            "{}/{}/{}/{}/{}/{}/{}",
            nt.t_ck, nt.t_burst, nt.t_rcd, nt.t_cl, nt.t_wtr, nt.t_wr, nt.t_xaw
        ),
    ]);
    t.row([
        "Energy buffer (capacitor)".to_string(),
        format!("{} uF", cfg.capacitor_uf),
    ]);
    let nv = VoltageThresholds::nv();
    let ns = VoltageThresholds::nvsram();
    let w2 = VoltageThresholds::wl(2, 8);
    let w8 = VoltageThresholds::wl(8, 8);
    t.row([
        "Vbackup/restore".to_string(),
        format!(
            "NV({}/{}), NVSRAM({}/{}), WL({:.2}~{:.2}/{:.2}~{:.2})",
            nv.v_backup, nv.v_on, ns.v_backup, ns.v_on, w2.v_backup, w8.v_backup, w2.v_on, w8.v_on
        ),
    ]);
    t.row(["Vmin/max", "2.8 / 3.5"]);
    t
}

/// §6.2 hardware cost: CACTI-lite estimates for the DirtyQueue, the
/// SRAM/ReRAM cache arrays, and the rejected CAM write-buffer
/// alternative of §3.3.
pub fn hwcost(_scale: Scale) -> Table {
    use ehsim_hwcost::{cache_spec, dirty_queue_spec, estimate, write_buffer_spec, ArrayKind};
    let mut t = Table::new();
    t.row([
        "structure",
        "area (mm^2)",
        "dynamic (pJ/access)",
        "leakage (mW)",
    ]);
    let entries = [
        (
            "DirtyQueue (8 x 32b + state)",
            estimate(&dirty_queue_spec(8, 32)),
        ),
        (
            "8 kB SRAM cache",
            estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Sram)),
        ),
        (
            "8 kB ReRAM (NV) cache",
            estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Reram)),
        ),
        (
            "CAM write buffer (8 lines, rejected in sec. 3.3)",
            estimate(&write_buffer_spec(8, 64, 32)),
        ),
    ];
    for (name, e) in entries {
        t.row([
            name.to_string(),
            format!("{:.5}", e.area_mm2),
            format!("{:.3}", e.dynamic_pj_per_access),
            format!("{:.3}", e.leakage_uw / 1000.0),
        ]);
    }
    let dq = estimate(&dirty_queue_spec(8, 32));
    let nv = estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Reram));
    t.row([
        "DirtyQueue / NV-cache leakage".to_string(),
        String::new(),
        String::new(),
        format!("{:.1}%", dq.leakage_uw / nv.leakage_uw * 100.0),
    ]);
    t
}

/// Signature of a figure generator: renders one table at `scale`
/// without saving it.
pub type FigureFn = fn(Scale) -> Table;

/// Every figure/table of `all_figures`, in regeneration order.
pub const ALL: &[(&str, FigureFn)] = &[
    ("table1", table1),
    ("table2", table2),
    ("hwcost", hwcost),
    ("fig04", fig04),
    ("fig05", fig05),
    ("fig06", fig06),
    ("fig07", fig07),
    ("fig08a", fig08a),
    ("fig08b", fig08b),
    ("fig09", fig09),
    ("fig10a", fig10a),
    ("fig10b", fig10b),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13a", fig13a),
    ("fig13b", fig13b),
    ("stats66", stats66),
];

/// Fig 11: adaptive vs best-static, Power Trace 1.
pub fn fig11(scale: Scale) -> Table {
    adaptive(TraceKind::Rf1, scale)
}

/// Fig 12: adaptive vs best-static, Power Trace 2.
pub fn fig12(scale: Scale) -> Table {
    adaptive(TraceKind::Rf2, scale)
}
