//! Table 2: the simulation configuration in force (processor, cache,
//! NVM timing, capacitor, voltage thresholds).
use ehsim::SimConfig;
use ehsim_bench::Table;
use ehsim_energy::VoltageThresholds;

fn main() {
    let cfg = SimConfig::wl_cache();
    let mut t = Table::new();
    t.row(["parameter", "value"]);
    t.row(["Processor", "1.0 GHz, 1 in-order core"]);
    t.row([
        "L1 D-cache".to_string(),
        format!(
            "{} B, {}-way, {} B block (paper geometry: 8 kB via --paper)",
            cfg.geometry.size_bytes(),
            cfg.geometry.ways(),
            cfg.geometry.line_bytes()
        ),
    ]);
    t.row([
        "Cache latencies (SRAM hit/miss)".to_string(),
        "0.3 ns / 0.1 ns".to_string(),
    ]);
    t.row([
        "Cache latencies (NVRAM hit/miss)".to_string(),
        "1.6 ns / 1.5 ns".to_string(),
    ]);
    let nt = &cfg.nvm_timing;
    t.row([
        "NVM (ReRAM) tCK/tBURST/tRCD/tCL/tWTR/tWR/tXAW (ns)".to_string(),
        format!(
            "{}/{}/{}/{}/{}/{}/{}",
            nt.t_ck, nt.t_burst, nt.t_rcd, nt.t_cl, nt.t_wtr, nt.t_wr, nt.t_xaw
        ),
    ]);
    t.row([
        "Energy buffer (capacitor)".to_string(),
        format!("{} uF", cfg.capacitor_uf),
    ]);
    let nv = VoltageThresholds::nv();
    let ns = VoltageThresholds::nvsram();
    let w2 = VoltageThresholds::wl(2, 8);
    let w8 = VoltageThresholds::wl(8, 8);
    t.row([
        "Vbackup/restore".to_string(),
        format!(
            "NV({}/{}), NVSRAM({}/{}), WL({:.2}~{:.2}/{:.2}~{:.2})",
            nv.v_backup, nv.v_on, ns.v_backup, ns.v_on, w2.v_backup, w8.v_backup, w2.v_on, w8.v_on
        ),
    ]);
    t.row(["Vmin/max", "2.8 / 3.5"]);
    t.save("table2");
}
