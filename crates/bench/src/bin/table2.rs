//! Table 2: the simulation configuration in force (processor, cache,
//! NVM timing, capacitor, voltage thresholds).
fn main() {
    ehsim_bench::figures::table2(ehsim_workloads::Scale::Default).save("table2");
}
