//! Fig 11: adaptive vs best-static WL-Cache (LRU/FIFO cache
//! replacement) vs NVSRAM(ideal), Power Trace 1.
fn main() {
    ehsim_bench::adaptive_figure(ehsim_energy::TraceKind::Rf1, "fig11");
}
