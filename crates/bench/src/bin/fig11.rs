//! Fig 11: adaptive vs best-static WL-Cache (LRU/FIFO cache
//! replacement) vs NVSRAM(ideal), Power Trace 1.
fn main() {
    ehsim_bench::figures::fig11(ehsim_workloads::Scale::Default).save("fig11");
}
