//! Fig 10(a): speedup vs NVSRAM(ideal) while sweeping the cache size
//! from 128 B to 4 kB, Power Trace 1, suite gmean.
fn main() {
    ehsim_bench::figures::fig10a(ehsim_workloads::Scale::Default).save("fig10a");
}
