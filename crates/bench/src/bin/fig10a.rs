//! Fig 10(a): speedup vs NVSRAM(ideal) while sweeping the cache size
//! from 128 B to 4 kB, Power Trace 1, suite gmean.
use ehsim::{gmean, SimConfig};
use ehsim_bench::{f3, run_suite, Table};
use ehsim_cache::CacheGeometry;
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

fn main() {
    let mut t = Table::new();
    t.row(["size(B)", "NVSRAM(ideal)", "VCache-WT", "ReplayCache", "WL-Cache"]);
    // The 1 kB NVSRAM is the common baseline so the sweep shows both
    // effects the paper reports: absolute speedup growing with size and
    // the WL/NVSRAM gap narrowing as the cache shrinks.
    let base = run_suite(&SimConfig::nvsram().with_trace(TraceKind::Rf1), Scale::Default);
    for size in [128u32, 256, 512, 1024, 2048, 4096] {
        let geom = CacheGeometry::new(size, 2, 64);
        let mut cells = vec![size.to_string()];
        for cfg in [
            SimConfig::nvsram(),
            SimConfig::vcache_wt(),
            SimConfig::replay(),
            SimConfig::wl_cache(),
        ] {
            let reports =
                run_suite(&cfg.with_geometry(geom).with_trace(TraceKind::Rf1), Scale::Default);
            let g = gmean(reports.iter().zip(&base).map(|(r, b)| r.speedup_vs(b))).unwrap();
            cells.push(f3(g));
        }
        t.row(cells);
    }
    t.save("fig10a");
}
