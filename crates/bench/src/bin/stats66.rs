//! §6.6 statistics: threshold reconfiguration counts, observed maxline
//! range, energy-source prediction accuracy, dirty lines / write-backs
//! per power-on interval, and stall overhead — for WL-Cache (adaptive,
//! FIFO DirtyQueue) on Power Traces 1 and 2.
fn main() {
    ehsim_bench::figures::stats66(ehsim_workloads::Scale::Default).save("stats66");
}
