//! §6.6 statistics: threshold reconfiguration counts, observed maxline
//! range, energy-source prediction accuracy, dirty lines / write-backs
//! per power-on interval, and stall overhead — for WL-Cache (adaptive,
//! FIFO DirtyQueue) on Power Traces 1 and 2.
use ehsim::SimConfig;
use ehsim_bench::{run_suite, Table};
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

fn main() {
    let mut t = Table::new();
    t.row([
        "trace",
        "reconfigs(mean)",
        "maxline-min",
        "maxline-max",
        "pred-accuracy",
        "dirty/interval",
        "writebacks/interval",
        "stall(%)",
        "outages(mean)",
    ]);
    for trace in [TraceKind::Rf1, TraceKind::Rf2] {
        let reports = run_suite(&SimConfig::wl_cache().with_trace(trace), Scale::Default);
        let n = reports.len() as f64;
        let wl: Vec<_> = reports.iter().filter_map(|r| r.wl.as_ref()).collect();
        let reconf: f64 = wl.iter().map(|w| w.reconfigurations as f64).sum::<f64>() / n;
        let mmin = wl.iter().map(|w| w.maxline_min).min().unwrap();
        let mmax = wl.iter().map(|w| w.maxline_max).max().unwrap();
        let accs: Vec<f64> = wl.iter().filter_map(|w| w.prediction_accuracy).collect();
        let acc = if accs.is_empty() {
            f64::NAN
        } else {
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        let dirty: f64 = wl.iter().map(|w| w.avg_dirty_at_checkpoint).sum::<f64>() / n;
        let wb: f64 = wl.iter().map(|w| w.avg_cleanings_per_interval).sum::<f64>() / n;
        let stall: f64 = wl.iter().map(|w| w.stall_fraction).sum::<f64>() / n * 100.0;
        let outs: f64 = reports.iter().map(|r| r.outages as f64).sum::<f64>() / n;
        t.row([
            trace.label().to_string(),
            format!("{reconf:.1}"),
            mmin.to_string(),
            mmax.to_string(),
            format!("{:.1}%", acc * 100.0),
            format!("{dirty:.1}"),
            format!("{wb:.1}"),
            format!("{stall:.3}"),
            format!("{outs:.1}"),
        ]);
    }
    t.save("stats66");
}
