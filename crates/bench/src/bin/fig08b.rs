//! Fig 8(b): WL-Cache speedup with direct-mapped / 2-way / 4-way set
//! associativity, relative to NVSRAM(ideal), averaged over the suite.
fn main() {
    ehsim_bench::figures::fig08b(ehsim_workloads::Scale::Default).save("fig08b");
}
