//! Fig 8(b): WL-Cache speedup with direct-mapped / 2-way / 4-way set
//! associativity, relative to NVSRAM(ideal), averaged over the suite.
use ehsim::{gmean, SimConfig};
use ehsim_bench::{f3, run_suite, Table};
use ehsim_cache::CacheGeometry;
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

fn main() {
    let mut t = Table::new();
    t.row(["scenario", "D-Map.", "2-Way", "4-Way"]);
    for trace in [TraceKind::None, TraceKind::Rf1, TraceKind::Rf2] {
        let base = run_suite(&SimConfig::nvsram().with_trace(trace), Scale::Default);
        let mut cells = vec![trace.label().to_string()];
        for ways in [1u32, 2, 4] {
            let geom = CacheGeometry::new(1024, ways, 64);
            let cfg = SimConfig::wl_cache().with_geometry(geom).with_trace(trace);
            let reports = run_suite(&cfg, Scale::Default);
            let g = gmean(reports.iter().zip(&base).map(|(r, b)| r.speedup_vs(b))).unwrap();
            cells.push(f3(g));
        }
        t.row(cells);
    }
    t.save("fig08b");
}
