//! Fig 12: adaptive vs best-static WL-Cache (LRU/FIFO cache
//! replacement) vs NVSRAM(ideal), Power Trace 2.
fn main() {
    ehsim_bench::figures::fig12(ehsim_workloads::Scale::Default).save("fig12");
}
