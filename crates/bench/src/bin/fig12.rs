//! Fig 12: adaptive vs best-static WL-Cache (LRU/FIFO cache
//! replacement) vs NVSRAM(ideal), Power Trace 2.
fn main() {
    ehsim_bench::adaptive_figure(ehsim_energy::TraceKind::Rf2, "fig12");
}
