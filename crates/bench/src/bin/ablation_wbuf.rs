//! Ablation (§3.3): WL-Cache vs the rejected write-buffer alternative.
//!
//! The paper argues a WTCache with a CAM write-back buffer could mimic
//! WL-Cache but loses on (1) CAM search on the critical path, (2) a
//! full-line (data-carrying) buffer's energy, and (3) lengthened miss
//! latency. This bench quantifies the comparison plus the hardware-cost
//! side from CACTI-lite.
use ehsim::{gmean, SimConfig};
use ehsim_bench::{f3, run_suite, Table};
use ehsim_energy::TraceKind;
use ehsim_hwcost::{dirty_queue_spec, estimate, write_buffer_spec};
use ehsim_workloads::Scale;

fn main() {
    let mut t = Table::new();
    t.row(["scenario", "WL-Cache", "WBuf-Cache"]);
    for trace in [TraceKind::None, TraceKind::Rf1] {
        let base = run_suite(&SimConfig::nvsram().with_trace(trace), Scale::Default);
        let mut cells = vec![trace.label().to_string()];
        for cfg in [SimConfig::wl_cache(), SimConfig::write_buffer()] {
            let reports = run_suite(&cfg.with_trace(trace), Scale::Default);
            let g = gmean(reports.iter().zip(&base).map(|(r, b)| r.speedup_vs(b))).unwrap();
            cells.push(f3(g));
        }
        t.row(cells);
    }
    let dq = estimate(&dirty_queue_spec(8, 32));
    let wb = estimate(&write_buffer_spec(6, 64, 32));
    t.row([
        "area (mm^2)".to_string(),
        format!("{:.5}", dq.area_mm2),
        format!("{:.5}", wb.area_mm2),
    ]);
    t.row([
        "dynamic (pJ/access)".to_string(),
        format!("{:.2}", dq.dynamic_pj_per_access),
        format!("{:.2}", wb.dynamic_pj_per_access),
    ]);
    t.save("ablation_wbuf");
}
