//! Ablation (§3.3): WL-Cache vs the rejected write-buffer alternative.
//!
//! The paper argues a WTCache with a CAM write-back buffer could mimic
//! WL-Cache but loses on (1) CAM search on the critical path, (2) a
//! full-line (data-carrying) buffer's energy, and (3) lengthened miss
//! latency. This bench quantifies the comparison plus the hardware-cost
//! side from CACTI-lite.
fn main() {
    ehsim_bench::figures::ablation_wbuf(ehsim_workloads::Scale::Default).save("ablation_wbuf");
}
