//! Regenerates every table and figure by invoking the sibling harness
//! binaries in sequence (see DESIGN.md §3 for the index).
use std::process::Command;

const BINS: &[&str] = &[
    "table1", "table2", "hwcost", "fig04", "fig05", "fig06", "fig07", "fig08a", "fig08b",
    "fig09", "fig10a", "fig10b", "fig11", "fig12", "fig13a", "fig13b", "stats66",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in BINS {
        println!("==== {bin} ====");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
