//! Regenerates every table and figure **in-process** (see DESIGN.md §3
//! for the index), so all figures share one worker pool and one memo
//! cache — the NVSRAM baselines and other repeated configurations are
//! simulated exactly once for the whole run.
//!
//! With `--bench`, writes `BENCH_sweep.json` (wall-clock seconds,
//! simulations run vs memoized, simulated instructions/second, worker
//! count) next to the `results/` directory.

use ehsim_bench::{exec, figures};
use ehsim_workloads::Scale;
use std::time::Instant;

fn main() {
    let bench = std::env::args().any(|a| a == "--bench");
    let start = Instant::now();
    for (name, figure) in figures::ALL {
        println!("==== {name} ====");
        figure(Scale::Default).save(name);
        println!();
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = exec::stats();
    let ips = stats.simulated_instructions as f64 / wall;
    eprintln!(
        "[all_figures: {wall:.1}s wall, {} sims run ({} replayed from {} traces), \
         {} memoized, {} deduped, {} trace-cache hits, {} workers, \
         {ips:.2e} simulated instr/s]",
        stats.sims_run,
        stats.sims_replayed,
        stats.traces_recorded,
        stats.memo_hits,
        stats.sims_deduped,
        stats.trace_cache_hits,
        exec::jobs(),
    );
    if bench {
        let json = format!(
            "{{\n  \"wall_clock_seconds\": {wall:.3},\n  \"jobs\": {},\n  \"engine\": \"{}\",\n  \"sims_run\": {},\n  \"memo_hits\": {},\n  \"traces_recorded\": {},\n  \"sims_replayed\": {},\n  \"sims_deduped\": {},\n  \"trace_cache_hits\": {},\n  \"simulated_instructions\": {},\n  \"simulated_instructions_per_second\": {ips:.1}\n}}\n",
            exec::jobs(),
            exec::engine(),
            stats.sims_run,
            stats.memo_hits,
            stats.traces_recorded,
            stats.sims_replayed,
            stats.sims_deduped,
            stats.trace_cache_hits,
            stats.simulated_instructions,
        );
        match std::fs::write("BENCH_sweep.json", &json) {
            Ok(()) => eprintln!("[saved BENCH_sweep.json]"),
            Err(e) => eprintln!("[could not write BENCH_sweep.json: {e}]"),
        }
    }
}
