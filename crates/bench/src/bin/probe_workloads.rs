//! Per-workload probe (not a paper figure): instruction counts, NVM
//! footprints and trace-1 outage counts, used to balance kernel sizes.

use ehsim::SimConfig;
use ehsim_bench::run;
use ehsim_energy::TraceKind;
use ehsim_workloads::prelude::*;

fn main() {
    println!("workload\tinstrs(k)\tmem(kB)\ttr1-outages\ttr1-time(ms)");
    for w in all23(Scale::Default) {
        let r = run(SimConfig::wl_cache(), w.as_ref());
        let rt = run(SimConfig::wl_cache().with_trace(TraceKind::Rf1), w.as_ref());
        println!(
            "{}\t{}\t{}\t{}\t{:.1}",
            w.name(),
            r.instructions / 1_000,
            w.mem_bytes() / 1024,
            rt.outages,
            rt.total_seconds() * 1e3,
        );
    }
}
