//! Fig 10(b): execution time (seconds) while sweeping the capacitor
//! size from 100 nF to 1 mF, Power Trace 1, suite mean.
use ehsim::SimConfig;
use ehsim_bench::{run_suite, Table};
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

fn main() {
    let mut t = Table::new();
    t.row([
        "capacitor(uF)",
        "VCache-WT",
        "ReplayCache",
        "NVSRAM(ideal)",
        "WL-Cache",
    ]);
    for uf in [0.1, 0.344, 1.0, 10.0, 100.0, 500.0, 1000.0] {
        let mut cells = vec![format!("{uf}")];
        for cfg in [
            SimConfig::vcache_wt(),
            SimConfig::replay(),
            SimConfig::nvsram(),
            SimConfig::wl_cache(),
        ] {
            let reports = run_suite(
                &cfg.with_capacitor_uf(uf).with_trace(TraceKind::Rf1),
                Scale::Default,
            );
            let mean: f64 =
                reports.iter().map(|r| r.total_seconds()).sum::<f64>() / reports.len() as f64;
            cells.push(format!("{mean:.4}"));
        }
        t.row(cells);
    }
    t.save("fig10b");
}
