//! Fig 10(b): execution time (seconds) while sweeping the capacitor
//! size from 100 nF to 1 mF, Power Trace 1, suite mean.
fn main() {
    ehsim_bench::figures::fig10b(ehsim_workloads::Scale::Default).save("fig10b");
}
