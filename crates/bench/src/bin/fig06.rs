//! Fig 6: normalized speedup of each cache design vs NVSRAM(ideal)
//! under Power Trace 2.
fn main() {
    ehsim_bench::speedup_figure(ehsim_energy::TraceKind::Rf2, "fig06");
}
