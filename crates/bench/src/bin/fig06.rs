//! Fig 6: normalized speedup of each cache design vs NVSRAM(ideal)
//! under Power Trace 2.
fn main() {
    ehsim_bench::figures::fig06(ehsim_workloads::Scale::Default).save("fig06");
}
