//! §6.2 hardware cost: CACTI-lite estimates for the DirtyQueue, the
//! SRAM/ReRAM cache arrays, and the rejected CAM write-buffer
//! alternative of §3.3.
fn main() {
    ehsim_bench::figures::hwcost(ehsim_workloads::Scale::Default).save("hwcost");
}
