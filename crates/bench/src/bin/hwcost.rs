//! §6.2 hardware cost: CACTI-lite estimates for the DirtyQueue, the
//! SRAM/ReRAM cache arrays, and the rejected CAM write-buffer
//! alternative of §3.3.
use ehsim_bench::Table;
use ehsim_hwcost::{cache_spec, dirty_queue_spec, estimate, write_buffer_spec, ArrayKind};

fn main() {
    let mut t = Table::new();
    t.row(["structure", "area (mm^2)", "dynamic (pJ/access)", "leakage (mW)"]);
    let entries = [
        ("DirtyQueue (8 x 32b + state)", estimate(&dirty_queue_spec(8, 32))),
        (
            "8 kB SRAM cache",
            estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Sram)),
        ),
        (
            "8 kB ReRAM (NV) cache",
            estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Reram)),
        ),
        (
            "CAM write buffer (8 lines, rejected in sec. 3.3)",
            estimate(&write_buffer_spec(8, 64, 32)),
        ),
    ];
    for (name, e) in entries {
        t.row([
            name.to_string(),
            format!("{:.5}", e.area_mm2),
            format!("{:.3}", e.dynamic_pj_per_access),
            format!("{:.3}", e.leakage_uw / 1000.0),
        ]);
    }
    let dq = estimate(&dirty_queue_spec(8, 32));
    let nv = estimate(&cache_spec(8 * 1024, 64, 20, ArrayKind::Reram));
    t.row([
        "DirtyQueue / NV-cache leakage".to_string(),
        String::new(),
        String::new(),
        format!("{:.1}%", dq.leakage_uw / nv.leakage_uw * 100.0),
    ]);
    t.save("hwcost");
}
