//! Fig 13(a): speedup vs NVSRAM(ideal) across power traces
//! (tr1/tr2/tr3/solar/thermal), including WL-Cache(dyn), suite gmean.
fn main() {
    ehsim_bench::figures::fig13a(ehsim_workloads::Scale::Default).save("fig13a");
}
