//! Fig 13(a): speedup vs NVSRAM(ideal) across power traces
//! (tr1/tr2/tr3/solar/thermal), including WL-Cache(dyn), suite gmean.
use ehsim::{gmean, SimConfig};
use ehsim_bench::{f3, run_suite, Table};
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

fn main() {
    let mut t = Table::new();
    t.row([
        "trace",
        "NVSRAM(ideal)",
        "VCache-WT",
        "ReplayCache",
        "WL-Cache",
        "WL-Cache(dyn)",
    ]);
    for trace in [
        TraceKind::Rf1,
        TraceKind::Rf2,
        TraceKind::Rf3,
        TraceKind::Solar,
        TraceKind::Thermal,
    ] {
        let base = run_suite(&SimConfig::nvsram().with_trace(trace), Scale::Default);
        let mut cells = vec![trace.label().to_string()];
        for cfg in [
            SimConfig::nvsram(),
            SimConfig::vcache_wt(),
            SimConfig::replay(),
            SimConfig::wl_cache(),
            SimConfig::wl_cache_dyn(),
        ] {
            let reports = run_suite(&cfg.with_trace(trace), Scale::Default);
            let g = gmean(reports.iter().zip(&base).map(|(r, b)| r.speedup_vs(b))).unwrap();
            cells.push(f3(g));
        }
        t.row(cells);
    }
    t.save("fig13a");
}
