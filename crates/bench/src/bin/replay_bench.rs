//! Replay-engine benchmark: aggregate sweep throughput of trace-driven
//! replay versus direct kernel execution, same-window pairing.
//!
//! Both windows run the *identical* set of simulations — every design
//! in [`SimConfig::all_designs`] plus `WL-Cache(dyn)`, on Power
//! Trace 1, across the full 23-kernel suite:
//!
//! * **direct** — the pre-replay production path, exactly as the sweep
//!   engine's `EHSIM_EXACT` fallback pays it: each simulation
//!   constructs the workload suite and re-executes its kernel on the
//!   simulated machine.
//! * **replay** — the trace-driven path: each workload's Bus stream is
//!   recorded once (against a flat functional memory) inside the
//!   window, then every simulation replays the shared trace. The
//!   recording cost is charged to the replay window, so the reported
//!   speedup is end-to-end, not amortized away.
//!
//! Every replayed [`Report`] is asserted equal, field for field, to its
//! direct twin before any number is written — a benchmark that drifted
//! from the byte-identity contract would abort instead of reporting.
//! Results go to `BENCH_replay.json` (sims/sec per window plus the
//! aggregate speedup). `--smoke` switches to the `Small` workload scale
//! for CI smoke runs (numbers are then meaningless; the run only proves
//! the harness and the equivalence assertion execute).

use ehsim::{BusTrace, Report, SimConfig, Simulator};
use ehsim_energy::TraceKind;
use ehsim_mem::FunctionalMem;
use ehsim_workloads::Scale;
use std::fmt::Write as _;
use std::time::Instant;

/// The benchmarked configuration set: the five named designs plus the
/// dynamic WL-Cache variant, all on the paper's Power Trace 1.
fn configs() -> Vec<SimConfig> {
    let mut cfgs = SimConfig::all_designs();
    cfgs.push(SimConfig::wl_cache_dyn());
    cfgs.into_iter()
        .map(|c| c.with_trace(TraceKind::Rf1))
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Small } else { Scale::Default };
    let cfgs = configs();
    let n_workloads = ehsim_workloads::all23(scale).len();
    let sims = cfgs.len() * n_workloads;

    // --- direct window: per-sim suite construction + kernel execution.
    let t0 = Instant::now();
    let mut direct: Vec<Report> = Vec::with_capacity(sims);
    for cfg in &cfgs {
        for ix in 0..n_workloads {
            let workloads = ehsim_workloads::all23(scale);
            let w = &workloads[ix];
            let r = Simulator::new(cfg.clone())
                .run(w.as_ref())
                .unwrap_or_else(|e| panic!("{} / {}: {e}", cfg.design.label(), w.name()));
            direct.push(r);
        }
        eprintln!("replay_bench: direct   {:>12} done", cfg.design.label());
    }
    let direct_wall = t0.elapsed().as_secs_f64();

    // --- replay window: record once per workload, then replay.
    let t0 = Instant::now();
    let traces: Vec<BusTrace> = ehsim_workloads::all23(scale)
        .iter()
        .map(|w| BusTrace::record(w.as_ref()))
        .collect();
    let record_wall = t0.elapsed().as_secs_f64();
    let mut replayed: Vec<Report> = Vec::with_capacity(sims);
    for cfg in &cfgs {
        for trace in &traces {
            let r = Simulator::new(cfg.clone())
                .replay(trace)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", cfg.design.label(), trace.name()));
            replayed.push(r);
        }
        eprintln!("replay_bench: replay   {:>12} done", cfg.design.label());
    }
    let replay_wall = t0.elapsed().as_secs_f64(); // includes recording

    // --- decomposition: kernel-only window — per-sim suite
    // construction plus kernel execution over flat memory, with no
    // simulated machine. This is exactly the work replay removes from
    // each simulation; the remainder of the direct window is machine
    // simulation, which replay must still perform access-for-access.
    let t0 = Instant::now();
    for _ in 0..cfgs.len() {
        for ix in 0..n_workloads {
            let workloads = ehsim_workloads::all23(scale);
            let w = &workloads[ix];
            let mut mem = FunctionalMem::new(w.mem_bytes());
            let _ = w.run(&mut mem);
        }
    }
    let kernel_wall = t0.elapsed().as_secs_f64();
    let machine_wall = (direct_wall - kernel_wall).max(0.0);
    // Amdahl bound for trace-driven decoupling at this op mix: even a
    // free replay path still pays the machine-simulation window.
    let ceiling = if machine_wall > 0.0 {
        direct_wall / machine_wall
    } else {
        f64::INFINITY
    };

    // --- equivalence gate: every pair identical, field for field.
    assert_eq!(direct.len(), replayed.len());
    for (d, r) in direct.iter().zip(&replayed) {
        assert_eq!(
            d, r,
            "replay diverged from direct execution: {} / {}",
            d.design, d.workload
        );
    }

    let instructions: u64 = direct.iter().map(|r| r.instructions).sum();
    let direct_sps = sims as f64 / direct_wall;
    let replay_sps = sims as f64 / replay_wall;
    let speedup = direct_wall / replay_wall;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"replay\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(json, "  \"jobs\": 1,");
    let _ = writeln!(json, "  \"configs\": {},", cfgs.len());
    let _ = writeln!(json, "  \"workloads\": {n_workloads},");
    let _ = writeln!(json, "  \"sims_per_window\": {sims},");
    let _ = writeln!(
        json,
        "  \"simulated_instructions_per_window\": {instructions},"
    );
    let _ = writeln!(json, "  \"direct_wall_s\": {direct_wall:.3},");
    let _ = writeln!(json, "  \"direct_sims_per_second\": {direct_sps:.3},");
    let _ = writeln!(json, "  \"record_wall_s\": {record_wall:.3},");
    let _ = writeln!(json, "  \"replay_wall_s\": {replay_wall:.3},");
    let _ = writeln!(json, "  \"replay_sims_per_second\": {replay_sps:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"kernel_only_wall_s\": {kernel_wall:.3},");
    let _ = writeln!(json, "  \"machine_wall_s\": {machine_wall:.3},");
    let _ = writeln!(json, "  \"speedup_ceiling_same_window\": {ceiling:.3},");
    let _ = writeln!(json, "  \"reports_identical\": true");
    json.push_str("}\n");

    std::fs::write("BENCH_replay.json", &json).expect("write BENCH_replay.json");
    println!(
        "replay_bench: {sims} sims — direct {direct_wall:.1} s ({direct_sps:.2} sims/s), \
         replay {replay_wall:.1} s ({replay_sps:.2} sims/s), speedup {speedup:.2}x \
         (same-window ceiling {ceiling:.2}x) -> BENCH_replay.json"
    );
}
