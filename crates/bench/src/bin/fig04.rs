//! Fig 4: normalized speedup of each cache design vs NVSRAM(ideal),
//! no power failure, 23 applications + per-suite gmeans.
fn main() {
    ehsim_bench::speedup_figure(ehsim_energy::TraceKind::None, "fig04");
}
