//! Fig 4: normalized speedup of each cache design vs NVSRAM(ideal),
//! no power failure, 23 applications + per-suite gmeans.
fn main() {
    ehsim_bench::figures::fig04(ehsim_workloads::Scale::Default).save("fig04");
}
