//! Table 1: qualitative comparison of hardware complexity, energy-buffer
//! requirement, NVM-cache requirement and performance across the cache
//! schemes — derived from the implemented models (reserve energies come
//! from each design's `worst_checkpoint_pj`).
use ehsim::SimConfig;
use ehsim_bench::Table;
use ehsim_cache::designs::{NvCacheWb, NvSramCache, ReplayCache, VCacheWt};
use ehsim_cache::{CacheDesign, CacheGeometry, ReplacementPolicy};
use ehsim_mem::NvmEnergy;
use wl_cache::WlCache;

fn main() {
    let geom = CacheGeometry::paper_default();
    let e = NvmEnergy::default();
    let wt = VCacheWt::new(geom, ReplacementPolicy::Lru);
    let nv = NvCacheWb::new(geom, ReplacementPolicy::Lru);
    let nvsram = NvSramCache::new(geom, ReplacementPolicy::Lru);
    let replay = ReplayCache::new(geom, ReplacementPolicy::Lru, 64, 1.0);
    let wl = WlCache::new();

    let mut t = Table::new();
    t.row([
        "design",
        "HW cost",
        "energy-buffer req. (worst ckpt, nJ)",
        "NVM cache req.",
        "perf (Fig 4/5 gmean)",
    ]);
    let rows: [(&str, &str, f64, &str, &str); 5] = [
        ("WTCache", "None", wt.worst_checkpoint_pj(&e) / 1e3, "No", "Low"),
        ("NVCache", "Low", nv.worst_checkpoint_pj(&e) / 1e3, "Yes (full)", "Low"),
        (
            "NVSRAM(ideal)",
            "High+",
            nvsram.worst_checkpoint_pj(&e) / 1e3,
            "Yes (large)",
            "High",
        ),
        (
            "ReplayCache",
            "None (compiler)",
            replay.worst_checkpoint_pj(&e) / 1e3,
            "No",
            "Medium",
        ),
        ("WL-Cache", "Low", wl.worst_checkpoint_pj(&e) / 1e3, "No", "High"),
    ];
    for (name, hw, nj, nvreq, perf) in rows {
        t.row([
            name.to_string(),
            hw.to_string(),
            format!("{nj:.2}"),
            nvreq.to_string(),
            perf.to_string(),
        ]);
    }
    let _ = SimConfig::wl_cache(); // keep the dependency honest
    t.save("table1");
}
