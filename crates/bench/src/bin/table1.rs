//! Table 1: qualitative comparison of hardware complexity, energy-buffer
//! requirement, NVM-cache requirement and performance across the cache
//! schemes — derived from the implemented models (reserve energies come
//! from each design's `worst_checkpoint_pj`).
fn main() {
    ehsim_bench::figures::table1(ehsim_workloads::Scale::Default).save("table1");
}
