//! Fig 5: normalized speedup of each cache design vs NVSRAM(ideal)
//! under Power Trace 1.
fn main() {
    ehsim_bench::speedup_figure(ehsim_energy::TraceKind::Rf1, "fig05");
}
