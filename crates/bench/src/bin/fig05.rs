//! Fig 5: normalized speedup of each cache design vs NVSRAM(ideal)
//! under Power Trace 1.
fn main() {
    ehsim_bench::figures::fig05(ehsim_workloads::Scale::Default).save("fig05");
}
