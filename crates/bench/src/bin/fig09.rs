//! Fig 9: per-application sensitivity to maxline (2/4/6/8) and cache
//! replacement policy (FIFO vs LRU), normalized to NVSRAM(ideal),
//! Power Trace 1.
fn main() {
    ehsim_bench::figures::fig09(ehsim_workloads::Scale::Default).save("fig09");
}
