//! Fig 9: per-application sensitivity to maxline (2/4/6/8) and cache
//! replacement policy (FIFO vs LRU), normalized to NVSRAM(ideal),
//! Power Trace 1.
use ehsim::SimConfig;
use ehsim_bench::{f3, run, run_suite, Table};
use ehsim_cache::ReplacementPolicy;
use ehsim_energy::TraceKind;
use ehsim_workloads::{all23, Scale};

fn main() {
    let base = run_suite(&SimConfig::nvsram().with_trace(TraceKind::Rf1), Scale::Default);
    let mut t = Table::new();
    t.row(["app", "maxline", "FIFO", "LRU", "NVSRAM(ideal)"]);
    let workloads = all23(Scale::Default);
    for (i, w) in workloads.iter().enumerate() {
        for maxline in [2usize, 4, 6, 8] {
            let mut cells = vec![w.name().to_string(), maxline.to_string()];
            for policy in [ReplacementPolicy::Fifo, ReplacementPolicy::Lru] {
                let cfg = SimConfig::wl_cache_static(maxline)
                    .with_cache_policy(policy)
                    .with_trace(TraceKind::Rf1);
                let r = run(cfg, w.as_ref());
                cells.push(f3(r.speedup_vs(&base[i])));
            }
            cells.push("1.000".into());
            t.row(cells);
        }
    }
    t.save("fig09");
}
