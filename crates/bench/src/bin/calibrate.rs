//! Calibration probe (not a paper figure): prints the no-failure
//! speedup shape across designs and the outage counts per trace, so the
//! documented constants in DESIGN.md §2.4 can be checked against the
//! paper's reported values (Fig 4 shape; §6.6 outage counts
//! 33/45/121/12/9).

use ehsim::{gmean, SimConfig};
use ehsim_bench::{f2, run};
use ehsim_energy::TraceKind;
use ehsim_workloads::prelude::*;

fn main() {
    let probes = all23(Scale::Default);

    println!("== mean power draw while on (no-failure runs) ==");
    for cfg in SimConfig::all_designs() {
        let label = cfg.design.label().to_string();
        let mut draw = Vec::new();
        for w in &probes {
            let r = run(cfg.clone(), w.as_ref());
            // pJ / ps = W; ×1e6 → µW.
            draw.push(r.energy.total() / r.on_time_ps as f64 * 1e6);
        }
        let mean = draw.iter().sum::<f64>() / draw.len() as f64;
        println!("{label}\tmean draw {mean:.0} uW");
    }

    println!("\n== no-failure speedup vs NVSRAM(ideal) ==");
    let mut per_design: Vec<(String, Vec<f64>)> = Vec::new();
    for w in &probes {
        let base = run(SimConfig::nvsram(), w.as_ref());
        for cfg in SimConfig::all_designs() {
            let label = cfg.design.label().to_string();
            let r = run(cfg, w.as_ref());
            let s = r.speedup_vs(&base);
            if let Some(e) = per_design.iter_mut().find(|(l, _)| *l == label) {
                e.1.push(s);
            } else {
                per_design.push((label, vec![s]));
            }
        }
    }
    for (label, speeds) in &per_design {
        println!(
            "{label}\tgmean {}\tmin {}\tmax {}",
            f2(gmean(speeds.iter().copied()).unwrap()),
            f2(speeds.iter().cloned().fold(f64::INFINITY, f64::min)),
            f2(speeds.iter().cloned().fold(0.0, f64::max)),
        );
    }

    println!("\n== outages per trace (WL-Cache, mean over workloads) ==");
    for trace in [
        TraceKind::Rf1,
        TraceKind::Rf2,
        TraceKind::Rf3,
        TraceKind::Solar,
        TraceKind::Thermal,
    ] {
        let mut outs = Vec::new();
        let mut times = Vec::new();
        for w in &probes {
            let r = run(SimConfig::wl_cache().with_trace(trace), w.as_ref());
            outs.push(r.outages as f64);
            times.push(r.total_seconds());
        }
        let mean = outs.iter().sum::<f64>() / outs.len() as f64;
        let tmean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{}\tmean outages {:.1}\tmean time {:.3} s",
            trace.label(),
            mean,
            tmean
        );
    }

    println!("\n== trace-1 per-design diagnostics (mean over workloads) ==");
    for cfg in SimConfig::all_designs() {
        let label = cfg.design.label().to_string();
        let (mut outs, mut offf, mut wr) = (0.0, 0.0, 0.0);
        for w in &probes {
            let r = run(cfg.clone().with_trace(TraceKind::Rf1), w.as_ref());
            outs += r.outages as f64;
            offf += r.off_time_ps as f64 / r.total_time_ps as f64;
            wr += r.nvm_write_bytes() as f64;
        }
        let n = probes.len() as f64;
        println!(
            "{label}\toutages {:.1}\toff-frac {:.2}\tnvm-wr {:.0} kB",
            outs / n,
            offf / n,
            wr / n / 1024.0
        );
    }

    println!("\n== trace-1 speedups vs NVSRAM(ideal) (gmean) ==");
    let mut per_design: Vec<(String, Vec<f64>)> = Vec::new();
    for w in &probes {
        let base = run(SimConfig::nvsram().with_trace(TraceKind::Rf1), w.as_ref());
        for cfg in SimConfig::all_designs() {
            let label = cfg.design.label().to_string();
            let r = run(cfg.with_trace(TraceKind::Rf1), w.as_ref());
            let s = r.speedup_vs(&base);
            if let Some(e) = per_design.iter_mut().find(|(l, _)| *l == label) {
                e.1.push(s);
            } else {
                per_design.push((label, vec![s]));
            }
        }
    }
    for (label, speeds) in &per_design {
        println!(
            "{label}\tgmean {}",
            f2(gmean(speeds.iter().copied()).unwrap())
        );
    }
}
