//! Per-layer hot-path microbenchmark: raw simulated-instruction
//! throughput of the per-access / per-retire path, per cache design.
//!
//! Unlike `BENCH_sweep.json` (which times the whole figure suite through
//! the memoized sweep engine), this binary drives [`ehsim::Machine`]
//! directly with a fixed, deterministic load/store/compute mix and
//! reports instructions per wall-clock second — the quantity the
//! tentpole optimisations (SoA tag array, O(1) settlement, incremental
//! consistency checking) are meant to move. Two scenarios per design:
//!
//! * `no-failure` — no harvesting trace, so `settle()` never runs the
//!   outage protocol: this isolates the per-access cache path plus the
//!   energy-metering fixed costs.
//! * `tr.1(RF)` — the paper's Power Trace 1 with real outages: this
//!   additionally exercises charge integration, the voltage monitor,
//!   checkpoints and recharge.
//!
//! The vendored criterion stub cannot report measurements
//! programmatically, so timing uses `std::time::Instant` directly; each
//! scenario takes the best of `REPS` repetitions to suppress scheduler
//! noise. Results go to `BENCH_hotpath.json`. If the environment
//! variable `EHSIM_HOTPATH_BASELINE_IPS` holds the aggregate
//! instructions/sec of a previous run (the pre-PR baseline), the JSON
//! also records it and the resulting speedup. If
//! `EHSIM_HOTPATH_BASELINE_JSON` points at a `BENCH_hotpath.json`
//! produced by the *baseline* binary, each scenario additionally
//! records its own baseline throughput and speedup, plus their
//! geometric mean — the per-layer comparison (an aggregate over wall
//! time is dominated by the slowest scenarios, which are bound by the
//! byte-identity contract on the settlement numerics, so it understates
//! gains in the layers this benchmark exists to watch).
//!
//! Two auxiliary sections ride along, both excluded from the
//! aggregate: `recording_observer` (what full event capture costs) and
//! `settlement_batching` (per-retire reference settlement paired
//! same-window against the default batched engine, on both the
//! bus-heavy aggregate mix and a compute-heavy mix whose long stretches
//! the engine can actually fuse).
//!
//! `--smoke` shrinks the iteration counts to a few milliseconds total
//! for CI smoke runs (throughput numbers are then meaningless; the run
//! only proves the harness executes).

use ehsim::{Machine, ObserverBox, SimConfig};
use ehsim_energy::TraceKind;
use ehsim_mem::Bus;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Bytes of simulated memory; also the address space of the access mix.
const MEM_BYTES: u32 = 64 * 1024;

/// Per-iteration cost of [`drive`]: 8 stores + 8 loads + 64 compute.
const INSTR_PER_ITER: u64 = 80;

/// A deterministic load/store/compute mix over a working set larger than
/// the cache, so fills, write-backs and evictions all stay hot. The LCG
/// is fixed — every run issues the identical access sequence.
fn drive(m: &mut Machine, iters: u32) -> u64 {
    let mut x = 0x9e37_79b9u32;
    for _ in 0..iters {
        for j in 0..8u32 {
            let addr = (x.wrapping_add(j.wrapping_mul(0x61c8_8647)) >> 7) % (MEM_BYTES / 4) * 4;
            m.store_u32(addr, x ^ j);
            black_box(m.load_u32(addr));
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        }
        m.compute(64);
    }
    m.instructions()
}

/// Instructions per [`drive_compute`] iteration: 2 bus ops + one long
/// compute stretch.
const INSTR_PER_COMPUTE_ITER: u64 = 2 + 32_768;

/// Compute-dominated mix: one store/load pair, then a 32 768-cycle
/// stretch — sixteen settlement chunks with no intervening bus access,
/// the shape the batched engine fuses into a single register-carried
/// run. [`drive`] is the opposite extreme (a bus access every fifth
/// instruction, so every run is one chunk long); real workloads sit in
/// between, most of them near [`drive`].
fn drive_compute(m: &mut Machine, iters: u32) -> u64 {
    let mut x = 0x9e37_79b9u32;
    for _ in 0..iters {
        let addr = (x >> 7) % (MEM_BYTES / 4) * 4;
        m.store_u32(addr, x);
        black_box(m.load_u32(addr));
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        m.compute(32_768);
    }
    m.instructions()
}

struct Scenario {
    design: &'static str,
    trace: &'static str,
    instructions: u64,
    best_wall_s: f64,
    ips: f64,
}

/// Per-scenario throughput extracted from a previous run's JSON
/// (written by this same binary — one scenario object per line, so a
/// line scan suffices and no JSON dependency is needed).
fn parse_baseline_scenarios(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(design), Some(trace), Some(ips)) = (
            field_str(line, "\"design\": \""),
            field_str(line, "\"trace\": \""),
            field_num(line, "\"instructions_per_second\": "),
        ) else {
            continue;
        };
        out.push((design, trace, ips));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+e".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_scenario(cfg: &SimConfig, iters: u32, reps: u32) -> (u64, f64) {
    run_scenario_on(cfg, iters, reps, drive, false)
}

/// `per_retire` forces the reference settlement path (the programmatic
/// form of `EHSIM_NO_BATCH=1`) for every machine of the run, so the
/// batched engine can be paired against per-retire settlement inside
/// one process window; `mix` selects the drive kernel.
fn run_scenario_on(
    cfg: &SimConfig,
    iters: u32,
    reps: u32,
    mix: fn(&mut Machine, u32) -> u64,
    per_retire: bool,
) -> (u64, f64) {
    let new_machine = |cfg: &SimConfig| {
        if per_retire {
            ehsim::with_settle_batching_disabled(|| Machine::new(cfg, MEM_BYTES))
        } else {
            Machine::new(cfg, MEM_BYTES)
        }
    };
    // Warm-up pass (not timed): page in code and trace storage.
    let mut warm = new_machine(cfg);
    mix(&mut warm, (iters / 8).max(1));
    let mut best = f64::INFINITY;
    let mut instructions = 0;
    for _ in 0..reps {
        let mut m = new_machine(cfg);
        let t0 = Instant::now();
        instructions = mix(&mut m, iters);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
    }
    (instructions, best)
}

/// Like [`run_scenario`] but with the recording observer attached:
/// measures what enabling full event capture costs on the same drive
/// mix. Also returns the recorded event count of the final repetition,
/// to put the cost in events/iteration terms.
fn run_recording_scenario(cfg: &SimConfig, iters: u32, reps: u32) -> (u64, f64, usize) {
    let mut warm = Machine::with_observer(cfg, MEM_BYTES, ObserverBox::recording());
    drive(&mut warm, (iters / 8).max(1));
    let mut best = f64::INFINITY;
    let mut instructions = 0;
    let mut events = 0;
    for _ in 0..reps {
        let mut m = Machine::with_observer(cfg, MEM_BYTES, ObserverBox::recording());
        let t0 = Instant::now();
        instructions = drive(&mut m, iters);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        let end = m.now();
        events = m.take_observer().into_trace(end).events.len();
    }
    (instructions, best, events)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (iters, mut reps) = if smoke { (200, 1) } else { (40_000, 3) };
    // More repetitions make the per-scenario best-of robust against
    // multi-second throughput drift on shared machines.
    if let Some(r) = std::env::var("EHSIM_HOTPATH_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        reps = r.max(1);
    }

    let mut scenarios = Vec::new();
    for cfg in SimConfig::all_designs() {
        for trace in [TraceKind::None, TraceKind::Rf1] {
            let cfg = cfg.clone().with_trace(trace);
            let design = cfg.design.label();
            let (instructions, wall) = run_scenario(&cfg, iters, reps);
            let ips = instructions as f64 / wall;
            eprintln!(
                "hotpath: {design:>9} / {:<10} {ips:>12.0} instr/s",
                trace.label()
            );
            scenarios.push(Scenario {
                design,
                trace: trace.label(),
                instructions,
                best_wall_s: wall,
                ips,
            });
        }
    }

    // Recording-observer overhead: the WL-Cache scenarios once more
    // with full event capture attached. Kept out of the aggregate —
    // this section quantifies the cost of *observing*, not the hot
    // path itself (which ships with the no-op observer).
    let mut recording = Vec::new();
    for trace in [TraceKind::None, TraceKind::Rf1] {
        let cfg = SimConfig::wl_cache().with_trace(trace);
        let design = cfg.design.label();
        let (instructions, wall, events) = run_recording_scenario(&cfg, iters, reps);
        let ips = instructions as f64 / wall;
        let noop_ips = scenarios
            .iter()
            .find(|s| s.design == design && s.trace == trace.label())
            .map(|s| s.ips)
            .unwrap_or(ips);
        let slowdown_pct = (noop_ips / ips - 1.0) * 100.0;
        eprintln!(
            "hotpath: {design:>9} / {:<10} {ips:>12.0} instr/s recording \
             ({events} events, {slowdown_pct:+.1} % vs no-op)",
            trace.label()
        );
        recording.push((design, trace.label(), events, ips, slowdown_pct));
    }

    // Settlement-batching rows, paired per-retire vs batched inside one
    // process window. Two drive mixes bracket the engine's range:
    // `bus-heavy` (the aggregate's own kernel — a bus access every
    // fifth instruction, so every fusable run is a single chunk and the
    // rows measure pure engine overhead) and `compute-heavy` (16-chunk
    // stretches the engine fuses into register-carried runs). The
    // bus-heavy batched numbers reuse the scenario measurements above;
    // compute-heavy runs both paths back to back. Like the recording
    // section, all rows stay out of the aggregate — the aggregate
    // tracks the shipping configuration (batched) on the bus-heavy mix.
    type Mix = (&'static str, fn(&mut Machine, u32) -> u64, u32);
    let mixes: [Mix; 2] = [
        ("bus-heavy", drive, iters),
        (
            "compute-heavy",
            drive_compute,
            ((iters as u64 * INSTR_PER_ITER / INSTR_PER_COMPUTE_ITER) as u32).max(1),
        ),
    ];
    let mut batching = Vec::new();
    for (mix, kernel, mix_iters) in mixes {
        for cfg in SimConfig::all_designs() {
            for trace in [TraceKind::None, TraceKind::Rf1] {
                let cfg = cfg.clone().with_trace(trace);
                let design = cfg.design.label();
                let (instructions, wall) = run_scenario_on(&cfg, mix_iters, reps, kernel, true);
                let ips_ref = instructions as f64 / wall;
                let ips_batched = if mix == "bus-heavy" {
                    scenarios
                        .iter()
                        .find(|s| s.design == design && s.trace == trace.label())
                        .map(|s| s.ips)
                        .unwrap_or(ips_ref)
                } else {
                    let (instructions, wall) =
                        run_scenario_on(&cfg, mix_iters, reps, kernel, false);
                    instructions as f64 / wall
                };
                let speedup = ips_batched / ips_ref;
                eprintln!(
                    "hotpath: {design:>9} / {:<10} {ips_ref:>12.0} instr/s per-retire \
                     {mix} (batching {speedup:.2}x)",
                    trace.label()
                );
                batching.push((design, trace.label(), mix, ips_ref, ips_batched, speedup));
            }
        }
    }

    let total_instr: u64 = scenarios.iter().map(|s| s.instructions).sum();
    let total_wall: f64 = scenarios.iter().map(|s| s.best_wall_s).sum();
    let aggregate = total_instr as f64 / total_wall;

    let baseline = std::env::var("EHSIM_HOTPATH_BASELINE_IPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let baseline_scenarios = std::env::var("EHSIM_HOTPATH_BASELINE_JSON")
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .map(|t| parse_baseline_scenarios(&t))
        .filter(|v| !v.is_empty());
    let scenario_base = |s: &Scenario| -> Option<f64> {
        baseline_scenarios
            .as_ref()?
            .iter()
            .find_map(|(d, t, ips)| (d == s.design && t == s.trace).then_some(*ips))
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hotpath\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"iters_per_scenario\": {iters},");
    let _ = writeln!(json, "  \"instructions_per_iter\": {INSTR_PER_ITER},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        let base_fields = match scenario_base(s) {
            Some(b) => format!(
                ", \"baseline_instructions_per_second\": {b:.1}, \"speedup\": {:.3}",
                s.ips / b
            ),
            None => String::new(),
        };
        let _ = writeln!(
            json,
            "    {{\"design\": \"{}\", \"trace\": \"{}\", \"instructions\": {}, \"best_wall_s\": {:.6}, \"instructions_per_second\": {:.1}{base_fields}}}{sep}",
            s.design, s.trace, s.instructions, s.best_wall_s, s.ips
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"recording_observer\": [\n");
    for (i, (design, trace, events, ips, slowdown)) in recording.iter().enumerate() {
        let sep = if i + 1 == recording.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"observed_design\": \"{design}\", \"observed_trace\": \"{trace}\", \"events\": {events}, \"ips_recording\": {ips:.1}, \"slowdown_vs_noop_pct\": {slowdown:.1}}}{sep}",
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"settlement_batching\": [\n");
    for (i, (design, trace, mix, ips_ref, ips_batched, speedup)) in batching.iter().enumerate() {
        let sep = if i + 1 == batching.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"design\": \"{design}\", \"trace\": \"{trace}\", \"mix\": \"{mix}\", \"ips_per_retire\": {ips_ref:.1}, \"ips_batched\": {ips_batched:.1}, \"batching_speedup\": {speedup:.3}}}{sep}",
        );
    }
    json.push_str("  ],\n");
    for mix in ["bus-heavy", "compute-heavy"] {
        let ratios: Vec<f64> = batching
            .iter()
            .filter(|b| b.2 == mix)
            .map(|b| b.5.ln())
            .collect();
        if ratios.is_empty() {
            continue;
        }
        let g = (ratios.iter().sum::<f64>() / ratios.len() as f64).exp();
        let key = mix.replace('-', "_");
        let _ = writeln!(json, "  \"settlement_batching_geomean_{key}\": {g:.3},");
        println!("hotpath: settlement batching geomean {g:.2}x vs per-retire ({mix}, same window)");
    }
    let speedups: Vec<f64> = scenarios
        .iter()
        .filter_map(|s| scenario_base(s).map(|b| s.ips / b))
        .collect();
    if !speedups.is_empty() {
        let geomean = (speedups.iter().map(|r| r.ln()).sum::<f64>() / speedups.len() as f64).exp();
        let _ = writeln!(json, "  \"geomean_speedup_vs_baseline\": {geomean:.3},");
        println!("hotpath: per-scenario geomean speedup {geomean:.2}x");
    }
    let _ = writeln!(json, "  \"total_instructions\": {total_instr},");
    let _ = writeln!(json, "  \"total_wall_s\": {total_wall:.6},");
    if let Some(base) = baseline {
        let _ = writeln!(
            json,
            "  \"aggregate_instructions_per_second\": {aggregate:.1},"
        );
        let _ = writeln!(json, "  \"baseline_instructions_per_second\": {base:.1},");
        let _ = writeln!(json, "  \"speedup_vs_baseline\": {:.3}", aggregate / base);
    } else {
        let _ = writeln!(
            json,
            "  \"aggregate_instructions_per_second\": {aggregate:.1}"
        );
    }
    json.push_str("}\n");

    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("hotpath: aggregate {aggregate:.0} instr/s -> BENCH_hotpath.json");
    if let Some(base) = baseline {
        println!("hotpath: speedup vs baseline {:.2}x", aggregate / base);
    }
}
