//! Fig 7: normalized NVM write-traffic increase of WL-Cache compared to
//! NVSRAM(ideal) under Power Trace 1.
use ehsim::SimConfig;
use ehsim_bench::{f3, run_suite, with_gmeans, workload_labels, Table};
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;

fn main() {
    let base = run_suite(&SimConfig::nvsram().with_trace(TraceKind::Rf1), Scale::Default);
    let wl = run_suite(&SimConfig::wl_cache().with_trace(TraceKind::Rf1), Scale::Default);
    let ratios: Vec<f64> = wl
        .iter()
        .zip(&base)
        .map(|(w, b)| w.nvm_write_bytes() as f64 / b.nvm_write_bytes() as f64)
        .collect();
    let mut t = Table::new();
    let mut header = vec!["app".to_string()];
    header.push("write-traffic ratio (WL / NVSRAM)".into());
    t.row(header);
    for (name, r) in workload_labels().iter().zip(with_gmeans(&ratios)) {
        t.row([name.clone(), f3(r)]);
    }
    let g = with_gmeans(&ratios);
    t.row(["gmean(Media)".to_string(), f3(g[23])]);
    t.row(["gmean(Mi)".to_string(), f3(g[24])]);
    t.row(["gmean(Total)".to_string(), f3(g[25])]);
    t.save("fig07");
}
