//! Fig 7: normalized NVM write-traffic increase of WL-Cache compared to
//! NVSRAM(ideal) under Power Trace 1.
fn main() {
    ehsim_bench::figures::fig07(ehsim_workloads::Scale::Default).save("fig07");
}
