//! Fig 8(a): WL-Cache speedup with DQ-FIFO vs DQ-LRU DirtyQueue
//! replacement, relative to NVSRAM(ideal), averaged over the suite.
use ehsim::{gmean, SimConfig};
use ehsim_bench::{f3, run_suite, Table};
use ehsim_energy::TraceKind;
use ehsim_workloads::Scale;
use wl_cache::DqPolicy;

fn main() {
    let mut t = Table::new();
    t.row(["scenario", "DQ-FIFO", "DQ-LRU"]);
    for trace in [TraceKind::None, TraceKind::Rf1, TraceKind::Rf2] {
        let base = run_suite(&SimConfig::nvsram().with_trace(trace), Scale::Default);
        let mut cells = vec![trace.label().to_string()];
        for policy in [DqPolicy::Fifo, DqPolicy::Lru] {
            let cfg = SimConfig::wl_cache().with_dq_policy(policy).with_trace(trace);
            let reports = run_suite(&cfg, Scale::Default);
            let g = gmean(reports.iter().zip(&base).map(|(r, b)| r.speedup_vs(b))).unwrap();
            cells.push(f3(g));
        }
        t.row(cells);
    }
    t.save("fig08a");
}
