//! Fig 8(a): WL-Cache speedup with DQ-FIFO vs DQ-LRU DirtyQueue
//! replacement, relative to NVSRAM(ideal), averaged over the suite.
fn main() {
    ehsim_bench::figures::fig08a(ehsim_workloads::Scale::Default).save("fig08a");
}
