//! Fig 13(b): energy-consumption breakdown (cache read/write, memory
//! read/write, compute) per design under Power Trace 1, normalized to
//! NVSRAM(ideal)'s total, suite sum.
use ehsim::SimConfig;
use ehsim_bench::{run_suite, Table};
use ehsim_energy::{EnergyCategory, EnergyMeter, TraceKind};
use ehsim_workloads::Scale;

fn main() {
    let designs = [
        SimConfig::nvcache_wb(),
        SimConfig::vcache_wt(),
        SimConfig::nvsram(),
        SimConfig::wl_cache(),
    ];
    let mut totals: Vec<(String, EnergyMeter)> = Vec::new();
    for cfg in designs {
        let label = cfg.design.label().to_string();
        let reports = run_suite(&cfg.with_trace(TraceKind::Rf1), Scale::Default);
        let sum = reports
            .iter()
            .fold(EnergyMeter::new(), |acc, r| acc.merged(&r.energy));
        totals.push((label, sum));
    }
    let nvsram_total = totals
        .iter()
        .find(|(l, _)| l == "NVSRAM(ideal)")
        .expect("baseline present")
        .1
        .total();

    let mut t = Table::new();
    let mut header = vec!["design".to_string()];
    header.extend(EnergyCategory::ALL.iter().map(|c| c.label().to_string()));
    header.push("total(%)".into());
    t.row(header);
    for (label, m) in &totals {
        let mut cells = vec![label.clone()];
        for c in EnergyCategory::ALL {
            cells.push(format!("{:.1}", m.get(c) / nvsram_total * 100.0));
        }
        cells.push(format!("{:.1}", m.total() / nvsram_total * 100.0));
        t.row(cells);
    }
    t.save("fig13b");
}
