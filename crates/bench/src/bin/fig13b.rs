//! Fig 13(b): energy-consumption breakdown (cache read/write, memory
//! read/write, compute) per design under Power Trace 1, normalized to
//! NVSRAM(ideal)'s total, suite sum.
fn main() {
    ehsim_bench::figures::fig13b(ehsim_workloads::Scale::Default).save("fig13b");
}
