//! Streaming trace recording: a JSON-lines event codec and a
//! bounded-buffer [`Observer`] that writes events incrementally.
//!
//! The in-memory [`crate::Recorder`] buffers every event — around a
//! million per hot-path scenario, far more on Default-scale multi-minute
//! runs. [`StreamingObserver`] instead holds at most
//! [`StreamingObserver::capacity`] events before serializing them to its
//! sink as one JSON object per line, so recording memory is constant in
//! run length. The JSONL format round-trips exactly: every field is
//! printed with Rust's shortest-round-trip formatting, and
//! [`parse_jsonl_line`] restores the identical `(timestamp, Event)`
//! pair, which is what lets `ehsim-analyze` rebuild the full `Run`
//! model (counters, histograms, intervals) from a streamed file.

use crate::event::Event;
use crate::observer::Observer;
use crate::recorder::{tally, ObsCounters, ObsHistograms};
use ehsim_mem::Ps;
use std::fmt::Write as _;
use std::io;
use std::sync::{Arc, Mutex};

/// Default cap on buffered events before a flush to the sink.
pub const DEFAULT_STREAM_CAPACITY: usize = 4096;

/// Serializes one `(timestamp, event)` pair as a single JSON object
/// (no trailing newline), e.g.
/// `{"ts":1200,"ev":"DqEnqueue","base":64}`.
///
/// Numeric fields use Rust's shortest-round-trip formatting, so
/// [`parse_jsonl_line`] recovers bit-identical values.
pub fn event_to_jsonl(at: Ps, ev: &Event) -> String {
    let mut s = String::with_capacity(48);
    let _ = write!(s, "{{\"ts\":{at},\"ev\":\"");
    match *ev {
        Event::InitialThresholds { maxline, waterline } => {
            let _ = write!(
                s,
                "InitialThresholds\",\"maxline\":{maxline},\"waterline\":{waterline}"
            );
        }
        Event::PowerOn { interval } => {
            let _ = write!(s, "PowerOn\",\"interval\":{interval}");
        }
        Event::OutageBegin { on_ps, voltage } => {
            let _ = write!(s, "OutageBegin\",\"on_ps\":{on_ps},\"voltage\":{voltage}");
        }
        Event::CheckpointBegin { dirty_lines } => {
            let _ = write!(s, "CheckpointBegin\",\"dirty_lines\":{dirty_lines}");
        }
        Event::CheckpointEnd { flushed_lines } => {
            let _ = write!(s, "CheckpointEnd\",\"flushed_lines\":{flushed_lines}");
        }
        Event::PowerOff => s.push_str("PowerOff\""),
        Event::RestoreBegin => s.push_str("RestoreBegin\""),
        Event::RestoreEnd => s.push_str("RestoreEnd\""),
        Event::RunEnd => s.push_str("RunEnd\""),
        Event::DqEnqueue { base } => {
            let _ = write!(s, "DqEnqueue\",\"base\":{base}");
        }
        Event::DqAck { base } => {
            let _ = write!(s, "DqAck\",\"base\":{base}");
        }
        Event::DqStall { until } => {
            let _ = write!(s, "DqStall\",\"until\":{until}");
        }
        Event::DqStaleDrop { dropped } => {
            let _ = write!(s, "DqStaleDrop\",\"dropped\":{dropped}");
        }
        Event::WritebackIssued { base, ack_at } => {
            let _ = write!(s, "WritebackIssued\",\"base\":{base},\"ack_at\":{ack_at}");
        }
        Event::Reconfigure { maxline, waterline } => {
            let _ = write!(
                s,
                "Reconfigure\",\"maxline\":{maxline},\"waterline\":{waterline}"
            );
        }
        Event::DynRaise { maxline } => {
            let _ = write!(s, "DynRaise\",\"maxline\":{maxline}");
        }
        Event::VoltageCross { rail, rising } => {
            let _ = write!(
                s,
                "VoltageCross\",\"rail\":\"{}\",\"rising\":{rising}",
                rail.label()
            );
        }
        Event::VoltageSample { voltage } => {
            let _ = write!(s, "VoltageSample\",\"voltage\":{voltage}");
        }
        Event::EnergySample {
            harvested_pj,
            consumed_pj,
        } => {
            let _ = write!(
                s,
                "EnergySample\",\"harvested_pj\":{harvested_pj},\"consumed_pj\":{consumed_pj}"
            );
        }
    }
    // Variants with fields already closed their name quote above; the
    // field-less arms pushed the closing quote themselves.
    s.push('}');
    s
}

fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing field \"{key}\" in `{line}`"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated field \"{key}\" in `{line}`"))?;
    Ok(&rest[..end])
}

fn field_str<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let raw = field(line, key)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("field \"{key}\" is not a string in `{line}`"))
}

fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    field(line, key)?
        .parse()
        .map_err(|e| format!("field \"{key}\": {e} in `{line}`"))
}

fn field_usize(line: &str, key: &str) -> Result<usize, String> {
    field(line, key)?
        .parse()
        .map_err(|e| format!("field \"{key}\": {e} in `{line}`"))
}

fn field_u32(line: &str, key: &str) -> Result<u32, String> {
    field(line, key)?
        .parse()
        .map_err(|e| format!("field \"{key}\": {e} in `{line}`"))
}

fn field_f64(line: &str, key: &str) -> Result<f64, String> {
    field(line, key)?
        .parse()
        .map_err(|e| format!("field \"{key}\": {e} in `{line}`"))
}

fn field_bool(line: &str, key: &str) -> Result<bool, String> {
    match field(line, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("field \"{key}\": expected bool, got `{other}`")),
    }
}

/// Parses one line written by [`event_to_jsonl`] back into the
/// identical `(timestamp, Event)` pair.
///
/// # Errors
///
/// Returns a message naming the missing/malformed field or unknown
/// event kind.
pub fn parse_jsonl_line(line: &str) -> Result<(Ps, Event), String> {
    let ts = field_u64(line, "ts")?;
    let kind = field_str(line, "ev")?;
    let ev = match kind {
        "InitialThresholds" => Event::InitialThresholds {
            maxline: field_usize(line, "maxline")?,
            waterline: field_usize(line, "waterline")?,
        },
        "PowerOn" => Event::PowerOn {
            interval: field_u64(line, "interval")?,
        },
        "OutageBegin" => Event::OutageBegin {
            on_ps: field_u64(line, "on_ps")?,
            voltage: field_f64(line, "voltage")?,
        },
        "CheckpointBegin" => Event::CheckpointBegin {
            dirty_lines: field_usize(line, "dirty_lines")?,
        },
        "CheckpointEnd" => Event::CheckpointEnd {
            flushed_lines: field_u64(line, "flushed_lines")?,
        },
        "PowerOff" => Event::PowerOff,
        "RestoreBegin" => Event::RestoreBegin,
        "RestoreEnd" => Event::RestoreEnd,
        "RunEnd" => Event::RunEnd,
        "DqEnqueue" => Event::DqEnqueue {
            base: field_u32(line, "base")?,
        },
        "DqAck" => Event::DqAck {
            base: field_u32(line, "base")?,
        },
        "DqStall" => Event::DqStall {
            until: field_u64(line, "until")?,
        },
        "DqStaleDrop" => Event::DqStaleDrop {
            dropped: field_usize(line, "dropped")?,
        },
        "WritebackIssued" => Event::WritebackIssued {
            base: field_u32(line, "base")?,
            ack_at: field_u64(line, "ack_at")?,
        },
        "Reconfigure" => Event::Reconfigure {
            maxline: field_usize(line, "maxline")?,
            waterline: field_usize(line, "waterline")?,
        },
        "DynRaise" => Event::DynRaise {
            maxline: field_usize(line, "maxline")?,
        },
        "VoltageCross" => Event::VoltageCross {
            rail: match field_str(line, "rail")? {
                "Von" => ehsim_energy::Rail::Von,
                "Vbackup" => ehsim_energy::Rail::Vbackup,
                "Vmin" => ehsim_energy::Rail::Vmin,
                other => return Err(format!("unknown rail `{other}` in `{line}`")),
            },
            rising: field_bool(line, "rising")?,
        },
        "VoltageSample" => Event::VoltageSample {
            voltage: field_f64(line, "voltage")?,
        },
        "EnergySample" => Event::EnergySample {
            harvested_pj: field_f64(line, "harvested_pj")?,
            consumed_pj: field_f64(line, "consumed_pj")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok((ts, ev))
}

/// Summary statistics published by a [`StreamingObserver`] through its
/// shared handle — the streaming twin of a [`crate::Recorder`]'s
/// counters and histograms, plus buffer accounting for the
/// constant-memory claim.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Events written (including the final `RunEnd`).
    pub events: u64,
    /// Peak number of events held in the buffer at once; bounded by
    /// the observer's configured capacity.
    pub peak_buffered: usize,
    /// Number of buffer flushes to the sink.
    pub flushes: u64,
    /// Event counts, identical to what a [`crate::Recorder`] tallies.
    pub counters: ObsCounters,
    /// Metric histograms, identical to a [`crate::Recorder`]'s.
    pub histograms: ObsHistograms,
    /// Whether the stream was closed with a `RunEnd`.
    pub ended: bool,
    /// The first sink I/O error, if any (the stream stops writing but
    /// keeps tallying so the simulation is never perturbed).
    pub io_error: Option<String>,
}

/// Shared view of a running stream's [`StreamStats`], updated at every
/// flush and at end-of-observation. Keep a clone to read results after
/// the machine consumed the observer (the [`crate::ObserverBox::custom`]
/// pattern from `examples/`).
pub type StreamStatsHandle = Arc<Mutex<StreamStats>>;

/// A bounded-buffer [`Observer`] that writes the event timeline
/// incrementally as JSON-lines.
///
/// Attach it with [`crate::ObserverBox::custom`]; memory stays constant
/// (at most `capacity` buffered events) regardless of run length, so
/// Default-scale multi-minute runs can be recorded without holding the
/// ~million-event timeline in RAM. The emitted file converts back into
/// the full `Run` model with `ehsim-analyze` (or `ehsim-cli
/// convert-trace`), so streamed traces diff exactly like in-memory ones.
///
/// Sink errors never panic and never reach the simulation: the first
/// error is recorded in [`StreamStats::io_error`], writing stops, and
/// tallying continues.
pub struct StreamingObserver {
    out: Box<dyn io::Write + Send>,
    buf: Vec<(Ps, Event)>,
    capacity: usize,
    stats: StreamStats,
    last_ts: Ps,
    sample_voltage: bool,
    shared: StreamStatsHandle,
}

impl std::fmt::Debug for StreamingObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingObserver")
            .field("capacity", &self.capacity)
            .field("buffered", &self.buf.len())
            .field("events", &self.stats.events)
            .finish_non_exhaustive()
    }
}

impl StreamingObserver {
    /// Streams to `sink` with the default buffer capacity
    /// ([`DEFAULT_STREAM_CAPACITY`] events).
    pub fn new(sink: impl io::Write + Send + 'static) -> Self {
        Self::with_capacity(sink, DEFAULT_STREAM_CAPACITY)
    }

    /// Streams to `sink`, flushing whenever `capacity` events are
    /// buffered (clamped to at least 1).
    pub fn with_capacity(sink: impl io::Write + Send + 'static, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        StreamingObserver {
            out: Box::new(sink),
            buf: Vec::with_capacity(capacity),
            capacity,
            stats: StreamStats::default(),
            last_ts: 0,
            sample_voltage: false,
            shared: Arc::new(Mutex::new(StreamStats::default())),
        }
    }

    /// Creates the stream writing to a freshly created file at `path`
    /// (buffered).
    ///
    /// # Errors
    ///
    /// Returns the file-creation error.
    pub fn to_path(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(io::BufWriter::new(file)))
    }

    /// Additionally asks the machine for per-settlement voltage samples.
    #[must_use]
    pub fn with_voltage_sampling(mut self) -> Self {
        self.sample_voltage = true;
        self
    }

    /// Configured buffer capacity (the bound on in-memory events).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shared handle to the stream's statistics; refreshed at every
    /// flush and when observation ends.
    pub fn stats_handle(&self) -> StreamStatsHandle {
        Arc::clone(&self.shared)
    }

    fn publish(&self) {
        if let Ok(mut s) = self.shared.lock() {
            *s = self.stats.clone();
        }
    }

    fn flush_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.stats.flushes += 1;
        if self.stats.io_error.is_none() {
            let mut line = String::with_capacity(64);
            for (at, ev) in &self.buf {
                line.clear();
                line.push_str(&event_to_jsonl(*at, ev));
                line.push('\n');
                if let Err(e) = self.out.write_all(line.as_bytes()) {
                    self.stats.io_error = Some(e.to_string());
                    break;
                }
            }
        }
        self.buf.clear();
        self.publish();
    }

    fn close(&mut self, at: Ps) {
        if self.stats.ended {
            return;
        }
        self.event(at, Event::RunEnd);
        self.stats.ended = true;
        self.flush_buf();
        if self.stats.io_error.is_none() {
            if let Err(e) = self.out.flush() {
                self.stats.io_error = Some(e.to_string());
            }
        }
        self.publish();
    }
}

impl Observer for StreamingObserver {
    fn event(&mut self, at: Ps, ev: Event) {
        tally(
            &mut self.stats.counters,
            &mut self.stats.histograms,
            at,
            &ev,
        );
        self.stats.events += 1;
        self.last_ts = self.last_ts.max(at);
        self.buf.push((at, ev));
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buf.len());
        if self.buf.len() >= self.capacity {
            self.flush_buf();
        }
    }

    fn wants_voltage(&self) -> bool {
        self.sample_voltage
    }

    fn end(&mut self, at: Ps) {
        self.close(at);
    }
}

/// Safety net for abandoned streams (error paths that never reach
/// [`Observer::end`]): closes the stream at the last seen timestamp so
/// the file on disk is still a complete, parseable timeline.
impl Drop for StreamingObserver {
    fn drop(&mut self) {
        let at = self.last_ts;
        self.close(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_energy::Rail;

    fn all_variants() -> Vec<(Ps, Event)> {
        vec![
            (
                0,
                Event::InitialThresholds {
                    maxline: 6,
                    waterline: 2,
                },
            ),
            (0, Event::PowerOn { interval: 0 }),
            (5, Event::DqEnqueue { base: 64 }),
            (
                7,
                Event::WritebackIssued {
                    base: 64,
                    ack_at: 107,
                },
            ),
            (107, Event::DqAck { base: 64 }),
            (120, Event::DqStall { until: 140 }),
            (150, Event::DqStaleDrop { dropped: 2 }),
            (
                200,
                Event::OutageBegin {
                    on_ps: 200,
                    voltage: 2.9531,
                },
            ),
            (200, Event::CheckpointBegin { dirty_lines: 3 }),
            (
                230,
                Event::EnergySample {
                    harvested_pj: 123.456789,
                    consumed_pj: 98.7654321,
                },
            ),
            (230, Event::CheckpointEnd { flushed_lines: 3 }),
            (230, Event::PowerOff),
            (
                400,
                Event::VoltageCross {
                    rail: Rail::Von,
                    rising: true,
                },
            ),
            (400, Event::RestoreBegin),
            (410, Event::RestoreEnd),
            (410, Event::PowerOn { interval: 1 }),
            (
                420,
                Event::Reconfigure {
                    maxline: 5,
                    waterline: 2,
                },
            ),
            (430, Event::DynRaise { maxline: 6 }),
            (440, Event::VoltageSample { voltage: 3.0125 }),
            (500, Event::RunEnd),
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant_exactly() {
        for (at, ev) in all_variants() {
            let line = event_to_jsonl(at, &ev);
            let (ts2, ev2) = parse_jsonl_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!((at, ev), (ts2, ev2), "{line}");
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl_line("{}").is_err());
        assert!(parse_jsonl_line("{\"ts\":1}").is_err());
        assert!(parse_jsonl_line("{\"ts\":1,\"ev\":\"Nope\"}").is_err());
        assert!(parse_jsonl_line("{\"ts\":1,\"ev\":\"DqEnqueue\"}").is_err());
        assert!(parse_jsonl_line("{\"ts\":x,\"ev\":\"PowerOff\"}").is_err());
        assert!(parse_jsonl_line(
            "{\"ts\":1,\"ev\":\"VoltageCross\",\"rail\":\"Vx\",\"rising\":true}"
        )
        .is_err());
    }

    #[test]
    fn streaming_observer_bounds_its_buffer_and_matches_recorder() {
        use crate::recorder::Recorder;

        let events = all_variants();
        let sink: Vec<u8> = Vec::new();
        let shared_sink = Arc::new(Mutex::new(Vec::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl io::Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if let Ok(mut v) = self.0.lock() {
                    v.extend_from_slice(buf);
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        drop(sink);

        let mut stream =
            StreamingObserver::with_capacity(SharedWriter(Arc::clone(&shared_sink)), 4)
                .with_voltage_sampling();
        assert!(stream.wants_voltage());
        let handle = stream.stats_handle();
        let mut recorder = Recorder::default();
        // Deliver everything except the trailing RunEnd, which arrives
        // through end-of-observation on both sinks.
        for &(at, ev) in events.iter().take(events.len() - 1) {
            stream.event(at, ev);
            recorder.event(at, ev);
        }
        stream.end(500);
        let trace = recorder.finish(500);
        drop(stream);

        let stats = handle.lock().map(|s| s.clone()).unwrap_or_default();
        assert!(stats.ended);
        assert!(stats.io_error.is_none(), "{:?}", stats.io_error);
        assert_eq!(stats.events as usize, events.len());
        assert!(
            stats.peak_buffered <= 4,
            "buffer exceeded its bound: {}",
            stats.peak_buffered
        );
        assert!(stats.flushes >= 2, "a 4-cap buffer must flush repeatedly");
        // Summary statistics agree with the in-memory recorder exactly.
        assert_eq!(stats.counters, trace.counters);
        assert_eq!(stats.histograms, trace.histograms);

        // The JSONL on the sink reconciles event-for-event.
        let bytes = shared_sink.lock().map(|v| v.clone()).unwrap_or_default();
        let text = String::from_utf8(bytes).expect("jsonl is utf-8");
        let parsed: Vec<(Ps, Event)> = text
            .lines()
            .map(|l| parse_jsonl_line(l).unwrap_or_else(|e| panic!("{e}")))
            .collect();
        assert_eq!(parsed, trace.events);
    }

    #[test]
    fn drop_closes_an_unfinished_stream_at_the_last_timestamp() {
        let shared_sink = Arc::new(Mutex::new(Vec::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl io::Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if let Ok(mut v) = self.0.lock() {
                    v.extend_from_slice(buf);
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut stream = StreamingObserver::new(SharedWriter(Arc::clone(&shared_sink)));
        stream.event(42, Event::PowerOn { interval: 0 });
        drop(stream);
        let bytes = shared_sink.lock().map(|v| v.clone()).unwrap_or_default();
        let text = String::from_utf8(bytes).expect("utf-8");
        let last = text.lines().last().expect("stream closed on drop");
        assert_eq!(parse_jsonl_line(last), Ok((42, Event::RunEnd)));
    }
}
