//! A fixed-size log₂-bucketed histogram.

/// Number of buckets: bucket `b` holds values whose bit-length is `b`,
/// i.e. `[2^(b−1), 2^b)`, with bucket 0 reserved for the value 0. 48
/// bits comfortably covers picosecond durations (2⁴⁸ ps ≈ 4.7 min).
const BUCKETS: usize = 48;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Constant-size (no allocation per sample), so the recording observer
/// can feed it from the hot path. Exact `count`/`sum`/`min`/`max` are
/// kept alongside the buckets; percentiles are bucket-resolution
/// approximations (reported as the bucket's upper bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket-resolution percentile: the upper bound of the bucket that
    /// contains the `p`-quantile sample (`p` in `[0, 1]`), clamped to
    /// the exact max. `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lower, upper, count)` value ranges.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| {
                if b == 0 {
                    (0, 0, c)
                } else {
                    (1u64 << (b - 1), (1u64 << b) - 1, c)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn exact_stats_and_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1_000_000));
        // value 0 -> bucket 0; 1 -> [1,1]; 2,3 -> [2,3]; 1000 -> [512,1023].
        let buckets: Vec<_> = h.buckets().collect();
        assert!(buckets.contains(&(0, 0, 1)));
        assert!(buckets.contains(&(1, 1, 1)));
        assert!(buckets.contains(&(2, 3, 2)));
        assert!(buckets.contains(&(512, 1023, 1)));
    }

    #[test]
    fn percentile_is_bucket_resolution() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        // p50 lands in the [8,15] bucket.
        assert_eq!(h.percentile(0.5), Some(15));
        // p100 is clamped to the exact max.
        assert_eq!(h.percentile(1.0), Some(1_000_000));
    }
}
