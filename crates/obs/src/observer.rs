//! The event sink trait and its statically-dispatched box.

use crate::event::Event;
use crate::recorder::Recorder;
use ehsim_mem::Ps;
use std::fmt;

/// A sink for simulator [`Event`]s.
///
/// Contract: observers are *observation only* — an implementation must
/// not feed anything back into the simulation. The simulator guarantees
/// the converse: a run computes bit-identical results whatever observer
/// is attached.
pub trait Observer {
    /// Called once per event, with the simulated timestamp it occurred
    /// at. Timestamps are nondecreasing per emitting site but may
    /// interleave slightly across sites (DirtyQueue ACKs are reported at
    /// their NVM completion time, which can precede the current cursor
    /// of the machine lifecycle); exporters sort before rendering.
    fn event(&mut self, at: Ps, ev: Event);

    /// Whether the machine should emit per-settlement
    /// [`Event::VoltageSample`]s for this sink. Defaults to `false`:
    /// per-settle sampling is too hot for the default recording path, so
    /// sinks opt in explicitly (e.g.
    /// [`Recorder::with_voltage_sampling`]).
    fn wants_voltage(&self) -> bool {
        false
    }

    /// Called once when observation ends, with the machine's final
    /// timestamp. The default forwards an [`Event::RunEnd`]; sinks with
    /// buffered output (the streaming observer) override this to flush.
    fn end(&mut self, at: Ps) {
        self.event(at, Event::RunEnd);
    }
}

/// The do-nothing sink; the default for every simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline(always)]
    fn event(&mut self, _at: Ps, _ev: Event) {}
}

/// Statically-dispatched observer, mirroring the `DesignBox` idiom: the
/// hot path pays one enum-discriminant test ([`ObserverBox::enabled`])
/// instead of a virtual call, and the `Noop` arm compiles to nothing.
///
/// The `Custom` variant accepts any boxed [`Observer`] for ad-hoc
/// tooling; it is dispatched dynamically and never constructed by the
/// simulator itself.
// The size gap between `Noop` and `Recording` is deliberate: the
// recorder lives inline so the per-event path while recording has no
// extra indirection, and there is exactly one `ObserverBox` per
// `Machine`, so the footprint never multiplies.
#[allow(clippy::large_enum_variant)]
#[derive(Default)]
pub enum ObserverBox {
    /// No observation; the hot path stays untouched.
    #[default]
    Noop,
    /// Record the full timeline, counters and histograms.
    Recording(Recorder),
    /// A user-supplied sink (dynamic dispatch).
    Custom(Box<dyn Observer + Send>),
}

impl ObserverBox {
    /// A fresh recording observer.
    pub fn recording() -> Self {
        ObserverBox::Recording(Recorder::default())
    }

    /// A recording observer that additionally samples capacitor voltage
    /// once per settlement window ([`Event::VoltageSample`]).
    pub fn recording_sampled() -> Self {
        ObserverBox::Recording(Recorder::with_voltage_sampling())
    }

    /// Boxes a user-supplied sink (see `examples/invariant_observer.rs`
    /// for the cookbook). To read results back after the run, keep
    /// shared state (`Arc<Mutex<_>>`) inside the observer.
    pub fn custom(observer: impl Observer + Send + 'static) -> Self {
        ObserverBox::Custom(Box::new(observer))
    }

    /// `true` unless this is the no-op sink. Instrumentation sites guard
    /// argument computation with this so the disabled path does no work.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        !matches!(self, ObserverBox::Noop)
    }

    /// Whether the machine should emit per-settlement voltage samples.
    /// Always `false` for the no-op sink; other sinks answer via
    /// [`Observer::wants_voltage`].
    #[inline]
    pub fn voltage_sampling(&self) -> bool {
        match self {
            ObserverBox::Noop => false,
            ObserverBox::Recording(r) => r.wants_voltage(),
            ObserverBox::Custom(o) => o.wants_voltage(),
        }
    }

    /// Delivers one event to the sink.
    #[inline]
    pub fn emit(&mut self, at: Ps, ev: Event) {
        match self {
            ObserverBox::Noop => {}
            ObserverBox::Recording(r) => r.event(at, ev),
            ObserverBox::Custom(o) => o.event(at, ev),
        }
    }

    /// Signals the end of observation at the machine's final timestamp
    /// (see [`Observer::end`]); the streaming observer flushes here.
    pub fn end(&mut self, at: Ps) {
        match self {
            ObserverBox::Noop => {}
            ObserverBox::Recording(r) => r.end(at),
            ObserverBox::Custom(o) => o.end(at),
        }
    }

    /// The recorder, if this is a recording sink.
    pub fn recorder(&self) -> Option<&Recorder> {
        match self {
            ObserverBox::Recording(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the sink into a [`crate::RunTrace`] ending at `end`.
    /// Non-recording sinks yield an empty trace.
    pub fn into_trace(self, end: Ps) -> crate::RunTrace {
        match self {
            ObserverBox::Recording(r) => r.finish(end),
            _ => Recorder::default().finish(end),
        }
    }
}

impl fmt::Debug for ObserverBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObserverBox::Noop => f.write_str("ObserverBox::Noop"),
            ObserverBox::Recording(r) => f.debug_tuple("ObserverBox::Recording").field(r).finish(),
            ObserverBox::Custom(_) => f.write_str("ObserverBox::Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let mut obs = ObserverBox::Noop;
        assert!(!obs.enabled());
        obs.emit(5, Event::PowerOff);
        assert!(obs.recorder().is_none());
        assert_eq!(obs.into_trace(10).counters, crate::ObsCounters::default());
    }

    #[test]
    fn custom_sink_receives_events() {
        struct Count(u64);
        impl Observer for Count {
            fn event(&mut self, _at: Ps, _ev: Event) {
                self.0 += 1;
            }
        }
        let mut obs = ObserverBox::Custom(Box::new(Count(0)));
        assert!(obs.enabled());
        obs.emit(1, Event::PowerOff);
        obs.emit(2, Event::RestoreBegin);
        if let ObserverBox::Custom(_) = obs {
        } else {
            panic!("variant changed");
        }
    }
}
