//! The event taxonomy.

use ehsim_energy::Rail;
use ehsim_mem::Ps;

/// One observable simulator event, emitted at a picosecond timestamp.
///
/// Events describe the power-failure lifecycle (machine layer), the
/// DirtyQueue cleaning protocol (WL-Cache layer) and capacitor rail
/// crossings (energy layer). Every variant is `Copy` so recording is a
/// 16-byte push with no allocation per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// WL-Cache's configured thresholds at machine construction. Emitted
    /// once, before the run, so exporters can seed the maxline counter
    /// track; not counted as a reconfiguration.
    InitialThresholds {
        /// Configured stall threshold (dirty-line budget).
        maxline: usize,
        /// Configured cleaning trigger.
        waterline: usize,
    },
    /// Execution (re)starts: first boot or completed restore.
    PowerOn {
        /// Power-on interval index, 0 for the initial boot.
        interval: u64,
    },
    /// The capacitor dropped below `Vbackup`: the on-interval ends and
    /// the JIT checkpoint protocol begins.
    OutageBegin {
        /// Length of the on-interval that just ended.
        on_ps: Ps,
        /// Capacitor voltage at the trigger.
        voltage: f64,
    },
    /// JIT checkpoint starts.
    CheckpointBegin {
        /// Dirty lines held by the design when the checkpoint triggered.
        dirty_lines: usize,
    },
    /// JIT checkpoint finished.
    CheckpointEnd {
        /// Cache lines actually flushed by this checkpoint.
        flushed_lines: u64,
    },
    /// The supply is cut; volatile state is gone. Recharge begins.
    PowerOff,
    /// The capacitor reached `Von`; architectural restore begins.
    RestoreBegin,
    /// Restore finished; a `PowerOn` follows at the same timestamp.
    RestoreEnd,
    /// End of the run; closes the final on-interval.
    RunEnd,
    /// A store made a clean line dirty: the line entered the DirtyQueue.
    DqEnqueue {
        /// Line base address.
        base: u32,
    },
    /// An async write-back completed; the line left the DirtyQueue.
    /// Timestamped at the NVM ACK, which may trail the enqueue by the
    /// full write-back latency.
    DqAck {
        /// Line base address.
        base: u32,
    },
    /// A store hit `maxline` with the oldest cleaning still in flight:
    /// the core stalls until that ACK.
    DqStall {
        /// Timestamp the stalling store resumes at.
        until: Ps,
    },
    /// `select_for_cleaning` discarded queue entries whose lines were
    /// re-dirtied or evicted since enqueue.
    DqStaleDrop {
        /// Number of entries dropped.
        dropped: usize,
    },
    /// The cleaning protocol issued an async line write-back.
    WritebackIssued {
        /// Line base address.
        base: u32,
        /// Timestamp the NVM will ACK at (`ack_at − now` is the
        /// write-back latency).
        ack_at: Ps,
    },
    /// The adaptive controller moved `maxline`/`waterline` at reboot.
    Reconfigure {
        /// New stall threshold.
        maxline: usize,
        /// New cleaning trigger.
        waterline: usize,
    },
    /// The §4 dynamic mechanism raised `maxline` mid-interval to absorb
    /// a stall under surplus energy.
    DynRaise {
        /// New stall threshold.
        maxline: usize,
    },
    /// The capacitor crossed a named voltage rail.
    VoltageCross {
        /// Which rail was crossed.
        rail: Rail,
        /// `true` for a rising (charging) crossing.
        rising: bool,
    },
    /// Opt-in capacitor-voltage sample, emitted once per settlement
    /// window (and per recharge step) when the attached observer asks
    /// for voltage sampling. Off by default: the default recording path
    /// never sees these, so traces and goldens are unchanged unless a
    /// caller opts in.
    VoltageSample {
        /// Capacitor voltage after the settlement.
        voltage: f64,
    },
    /// Cumulative energy totals at a power-on-interval boundary, emitted
    /// just before each `CheckpointEnd` and once at the end of the run.
    /// Consecutive samples telescope into per-interval deltas that
    /// reconcile exactly with the run's `EnergyMeter` totals.
    EnergySample {
        /// Cumulative energy delivered by the harvesting trace (pJ),
        /// including recharge-to-`Von` harvesting.
        harvested_pj: f64,
        /// Cumulative metered consumption (pJ) — the `EnergyMeter`
        /// total at the sample time.
        consumed_pj: f64,
    },
}
