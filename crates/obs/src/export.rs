//! Exporters: Chrome `trace_event` JSON and per-interval metrics TSV,
//! plus the schema validator CI runs over emitted traces.
//!
//! Everything here is hand-rolled string formatting / line scanning —
//! the workspace is offline and carries no JSON dependency. The emitter
//! writes exactly one event object per line so the validator (and the
//! hotpath baseline parser, which uses the same idiom) can line-scan.

use crate::event::Event;
use crate::recorder::RunTrace;
use std::fmt::Write as _;

/// Picoseconds per microsecond — Chrome trace timestamps are in µs.
const PS_PER_US: f64 = 1e6;

/// Thread ids used in the exported timeline.
const TID_MACHINE: u32 = 1;
const TID_WRITEBACK: u32 = 2;
const TID_STALL: u32 = 3;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ps: u64) -> String {
    format!("{:.6}", ps as f64 / PS_PER_US)
}

/// Renders a [`RunTrace`] as Chrome `trace_event` JSON (object form,
/// `traceEvents` array). Open it in `chrome://tracing` or Perfetto.
///
/// Layout: tid 1 carries the machine lifecycle as balanced B/E spans
/// (`on`, `checkpoint`, `recharge`, `restore`) plus instants (outage,
/// reconfigure, rail crossings); tid 2 carries each async write-back as
/// a complete (`X`) slice spanning issue→ACK; tid 3 carries store
/// stalls. Counter (`C`) tracks follow DirtyQueue occupancy and the
/// maxline/waterline thresholds.
pub(crate) fn chrome_trace(trace: &RunTrace, name: &str) -> String {
    let mut events = trace.events.clone();
    // Stable by timestamp: ACKs are recorded at NVM completion time and
    // can trail the emission cursor; same-ts lifecycle order (e.g. an E
    // immediately followed by a B) is preserved.
    events.sort_by_key(|(ts, _)| *ts);

    let mut lines: Vec<String> = Vec::with_capacity(events.len() + 8);
    let pname = escape_json(name);
    lines.push(format!(
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{pname}\"}}}}"
    ));
    for (tid, tname) in [
        (TID_MACHINE, "machine"),
        (TID_WRITEBACK, "nvm-writeback"),
        (TID_STALL, "core-stall"),
    ] {
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{tname}\"}}}}"
        ));
    }

    // Open-span stack on the machine thread; closing is guarded on the
    // expected name so the output is balanced by construction.
    let mut stack: Vec<&'static str> = Vec::new();
    let mut dq_occupancy: i64 = 0;

    let begin = |lines: &mut Vec<String>,
                 stack: &mut Vec<&'static str>,
                 ts: u64,
                 name: &'static str,
                 args: String| {
        stack.push(name);
        lines.push(format!(
            "{{\"ph\":\"B\",\"pid\":1,\"tid\":{TID_MACHINE},\"ts\":{},\"name\":\"{name}\"{args}}}",
            ts_us(ts)
        ));
    };
    let end = |lines: &mut Vec<String>,
               stack: &mut Vec<&'static str>,
               ts: u64,
               name: &'static str,
               args: String| {
        if stack.last() == Some(&name) {
            stack.pop();
            lines.push(format!(
                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{TID_MACHINE},\"ts\":{},\"name\":\"{name}\"{args}}}",
                ts_us(ts)
            ));
        }
    };
    let instant = |lines: &mut Vec<String>, ts: u64, name: &str, args: String| {
        lines.push(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{TID_MACHINE},\"ts\":{},\"s\":\"t\",\"name\":\"{name}\"{args}}}",
            ts_us(ts)
        ));
    };
    let counter = |lines: &mut Vec<String>, ts: u64, name: &str, value: i64| {
        lines.push(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"{name}\",\"args\":{{\"value\":{value}}}}}",
            ts_us(ts)
        ));
    };
    let counter_f = |lines: &mut Vec<String>, ts: u64, name: &str, value: f64| {
        lines.push(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"{name}\",\"args\":{{\"value\":{value}}}}}",
            ts_us(ts)
        ));
    };

    for &(ts, ev) in &events {
        match ev {
            Event::InitialThresholds { maxline, waterline } => {
                counter(&mut lines, ts, "maxline", maxline as i64);
                counter(&mut lines, ts, "waterline", waterline as i64);
            }
            Event::PowerOn { interval } => {
                begin(
                    &mut lines,
                    &mut stack,
                    ts,
                    "on",
                    format!(",\"args\":{{\"interval\":{interval}}}"),
                );
            }
            Event::OutageBegin { on_ps, voltage } => {
                end(&mut lines, &mut stack, ts, "on", String::new());
                instant(
                    &mut lines,
                    ts,
                    "outage",
                    format!(",\"args\":{{\"on_ps\":{on_ps},\"voltage\":{voltage:.4}}}"),
                );
                // Histogram counter track: each sample the histogram
                // records is also a point on a Perfetto counter, so the
                // distribution is browsable over time.
                counter(&mut lines, ts, "hist:outage_interval_ps", on_ps as i64);
            }
            Event::CheckpointBegin { dirty_lines } => {
                begin(
                    &mut lines,
                    &mut stack,
                    ts,
                    "checkpoint",
                    format!(",\"args\":{{\"dirty_lines\":{dirty_lines}}}"),
                );
            }
            Event::CheckpointEnd { flushed_lines } => {
                end(
                    &mut lines,
                    &mut stack,
                    ts,
                    "checkpoint",
                    format!(",\"args\":{{\"flushed_lines\":{flushed_lines}}}"),
                );
                counter(
                    &mut lines,
                    ts,
                    "hist:dirty_at_checkpoint",
                    flushed_lines as i64,
                );
                if dq_occupancy != 0 {
                    dq_occupancy = 0;
                    counter(&mut lines, ts, "dq_occupancy", 0);
                }
            }
            Event::PowerOff => {
                begin(&mut lines, &mut stack, ts, "recharge", String::new());
            }
            Event::RestoreBegin => {
                end(&mut lines, &mut stack, ts, "recharge", String::new());
                begin(&mut lines, &mut stack, ts, "restore", String::new());
            }
            Event::RestoreEnd => {
                end(&mut lines, &mut stack, ts, "restore", String::new());
            }
            Event::RunEnd => {
                while let Some(&name) = stack.last() {
                    end(&mut lines, &mut stack, ts, name, String::new());
                }
            }
            Event::DqEnqueue { base } => {
                dq_occupancy += 1;
                counter(&mut lines, ts, "dq_occupancy", dq_occupancy);
                let _ = base;
            }
            Event::DqAck { base } => {
                dq_occupancy = (dq_occupancy - 1).max(0);
                counter(&mut lines, ts, "dq_occupancy", dq_occupancy);
                let _ = base;
            }
            Event::DqStall { until } => {
                lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{TID_STALL},\"ts\":{},\"dur\":{},\"name\":\"stall\"}}",
                    ts_us(ts),
                    ts_us(until.saturating_sub(ts))
                ));
            }
            Event::DqStaleDrop { dropped } => {
                dq_occupancy = (dq_occupancy - dropped as i64).max(0);
                counter(&mut lines, ts, "dq_occupancy", dq_occupancy);
            }
            Event::WritebackIssued { base, ack_at } => {
                lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{TID_WRITEBACK},\"ts\":{},\"dur\":{},\"name\":\"writeback\",\"args\":{{\"base\":{base}}}}}",
                    ts_us(ts),
                    ts_us(ack_at.saturating_sub(ts))
                ));
                counter(
                    &mut lines,
                    ts,
                    "hist:writeback_latency_ps",
                    ack_at.saturating_sub(ts) as i64,
                );
            }
            Event::Reconfigure { maxline, waterline } => {
                instant(
                    &mut lines,
                    ts,
                    "reconfigure",
                    format!(",\"args\":{{\"maxline\":{maxline},\"waterline\":{waterline}}}"),
                );
                counter(&mut lines, ts, "maxline", maxline as i64);
                counter(&mut lines, ts, "waterline", waterline as i64);
            }
            Event::DynRaise { maxline } => {
                instant(
                    &mut lines,
                    ts,
                    "dyn-raise",
                    format!(",\"args\":{{\"maxline\":{maxline}}}"),
                );
                counter(&mut lines, ts, "maxline", maxline as i64);
            }
            Event::VoltageCross { rail, rising } => {
                let dir = if rising { "rise" } else { "fall" };
                instant(
                    &mut lines,
                    ts,
                    &format!("{} {dir}", rail.label()),
                    String::new(),
                );
            }
            Event::VoltageSample { voltage } => {
                counter_f(&mut lines, ts, "capacitor_v", voltage);
            }
            Event::EnergySample {
                harvested_pj,
                consumed_pj,
            } => {
                counter_f(&mut lines, ts, "harvested_pj", harvested_pj);
                counter_f(&mut lines, ts, "consumed_pj", consumed_pj);
            }
        }
    }

    let mut out = String::with_capacity(lines.len() * 96 + 64);
    out.push_str("{\"traceEvents\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n],\n\"displayTimeUnit\": \"ms\"\n}\n");
    out
}

/// One finished power-on interval, as derived from the event timeline.
///
/// This is the typed row behind [`RunTrace::interval_metrics_tsv`]; the
/// `ehsim-analyze` crate consumes the same rows for cross-run diffing.
/// Rows close at the interval's `CheckpointEnd` (or at `RunEnd` for the
/// final, uninterrupted one, where `dirty_flushed` is `None` because no
/// checkpoint ran). For non-WL designs the DirtyQueue columns are zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceInterval {
    /// Power-on interval index (0 = initial boot).
    pub interval: u64,
    /// `PowerOn` timestamp.
    pub start_ps: u64,
    /// `OutageBegin` (or `RunEnd`) timestamp.
    pub end_ps: u64,
    /// Length of the on-interval.
    pub on_ps: u64,
    /// Lines flushed by the JIT checkpoint that closed the interval;
    /// `None` for the final interval the run ended inside.
    pub dirty_flushed: Option<u64>,
    /// Async write-backs issued (`WritebackIssued`).
    pub cleanings: u64,
    /// DirtyQueue enqueues.
    pub enqueues: u64,
    /// DirtyQueue ACKs timestamped inside the interval.
    pub acks: u64,
    /// Core stalls on `maxline`.
    pub stalls: u64,
    /// Stale queue entries dropped.
    pub stale_drops: u64,
    /// §4 dynamic `maxline` raises inside the interval.
    pub dyn_raises: u64,
    /// `maxline` in force when the interval closed (`None` for non-WL
    /// designs, which never emit thresholds).
    pub maxline: Option<usize>,
    /// `waterline` in force when the interval closed.
    pub waterline: Option<usize>,
    /// Energy harvested during this interval (pJ): the exact f64
    /// difference of consecutive cumulative [`Event::EnergySample`]s.
    /// `None` when the run was recorded without energy instrumentation.
    pub harvested_delta_pj: Option<f64>,
    /// Energy consumed during this interval (pJ), same telescoping
    /// construction.
    pub consumed_delta_pj: Option<f64>,
    /// Cumulative harvested energy at interval close (pJ).
    pub harvested_cum_pj: Option<f64>,
    /// Cumulative metered consumption at interval close (pJ) — the
    /// `EnergyMeter` total at that instant, bit-exact.
    pub consumed_cum_pj: Option<f64>,
}

/// Derives the per-power-on-interval rows from a trace's timeline.
pub(crate) fn intervals(trace: &RunTrace) -> Vec<TraceInterval> {
    let mut events = trace.events.clone();
    // Stable sort: same-ts emission order (EnergySample before
    // CheckpointEnd / RunEnd) is preserved.
    events.sort_by_key(|(ts, _)| *ts);

    let mut rows = Vec::new();
    let mut maxline: Option<usize> = None;
    let mut waterline: Option<usize> = None;
    let mut cur: Option<TraceInterval> = None;
    let mut prev_harvested = 0.0_f64;
    let mut prev_consumed = 0.0_f64;

    for &(ts, ev) in &events {
        match ev {
            Event::InitialThresholds {
                maxline: m,
                waterline: w,
            } => {
                maxline = Some(m);
                waterline = Some(w);
            }
            Event::PowerOn { interval } => {
                cur = Some(TraceInterval {
                    interval,
                    start_ps: ts,
                    maxline,
                    waterline,
                    ..TraceInterval::default()
                });
            }
            Event::OutageBegin { on_ps, .. } => {
                if let Some(row) = cur.as_mut() {
                    row.end_ps = ts;
                    row.on_ps = on_ps;
                }
            }
            Event::EnergySample {
                harvested_pj,
                consumed_pj,
            } => {
                if let Some(row) = cur.as_mut() {
                    row.harvested_cum_pj = Some(harvested_pj);
                    row.consumed_cum_pj = Some(consumed_pj);
                    row.harvested_delta_pj = Some(harvested_pj - prev_harvested);
                    row.consumed_delta_pj = Some(consumed_pj - prev_consumed);
                }
                prev_harvested = harvested_pj;
                prev_consumed = consumed_pj;
            }
            Event::CheckpointEnd { flushed_lines } => {
                if let Some(mut row) = cur.take() {
                    row.dirty_flushed = Some(flushed_lines);
                    row.maxline = maxline;
                    row.waterline = waterline;
                    rows.push(row);
                }
            }
            Event::RunEnd => {
                if let Some(mut row) = cur.take() {
                    row.end_ps = ts;
                    row.on_ps = ts.saturating_sub(row.start_ps);
                    row.maxline = maxline;
                    row.waterline = waterline;
                    rows.push(row);
                }
            }
            Event::WritebackIssued { .. } => {
                if let Some(row) = cur.as_mut() {
                    row.cleanings += 1;
                }
            }
            Event::DqEnqueue { .. } => {
                if let Some(row) = cur.as_mut() {
                    row.enqueues += 1;
                }
            }
            Event::DqAck { .. } => {
                if let Some(row) = cur.as_mut() {
                    row.acks += 1;
                }
            }
            Event::DqStall { .. } => {
                if let Some(row) = cur.as_mut() {
                    row.stalls += 1;
                }
            }
            Event::DqStaleDrop { dropped } => {
                if let Some(row) = cur.as_mut() {
                    row.stale_drops += dropped as u64;
                }
            }
            Event::DynRaise { maxline: m } => {
                maxline = Some(m);
                if let Some(row) = cur.as_mut() {
                    row.dyn_raises += 1;
                }
            }
            Event::Reconfigure {
                maxline: m,
                waterline: w,
            } => {
                maxline = Some(m);
                waterline = Some(w);
            }
            Event::CheckpointBegin { .. }
            | Event::PowerOff
            | Event::RestoreBegin
            | Event::RestoreEnd
            | Event::VoltageCross { .. }
            | Event::VoltageSample { .. } => {}
        }
    }
    rows
}

/// Renders per-power-on-interval metrics as a TSV table (same style as
/// `results/*.tsv`), one row per [`TraceInterval`]. The four energy
/// columns are appended last and print `-` when the run carried no
/// [`Event::EnergySample`]s, so pre-existing column positions are
/// stable.
pub(crate) fn interval_metrics_tsv(trace: &RunTrace) -> String {
    let mut out = String::new();
    out.push_str(
        "interval\tstart_ps\tend_ps\ton_ps\tdirty_flushed\tcleanings\tenqueues\tacks\tstalls\tstale_drops\tdyn_raises\tmaxline\twaterline\tharvested_pj\tconsumed_pj\tharvested_cum_pj\tconsumed_cum_pj\n",
    );
    let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    let optu = |v: Option<usize>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    // `{}` is Rust's shortest round-trip float formatting: the analyze
    // crate parses these back to bit-identical values.
    let optf = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    for row in intervals(trace) {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            row.interval,
            row.start_ps,
            row.end_ps,
            row.on_ps,
            opt(row.dirty_flushed),
            row.cleanings,
            row.enqueues,
            row.acks,
            row.stalls,
            row.stale_drops,
            row.dyn_raises,
            optu(row.maxline),
            optu(row.waterline),
            optf(row.harvested_delta_pj),
            optf(row.consumed_delta_pj),
            optf(row.harvested_cum_pj),
            optf(row.consumed_cum_pj),
        );
    }
    histogram_footer(&mut out, trace);
    out
}

/// Appends the three run-wide [`crate::ObsHistograms`] as `#`-prefixed
/// footer lines, so TSV consumers that treat `#` as a comment (and the
/// interval-row counters above) are unaffected. One `# histogram`
/// summary line per histogram, then one `# bucket` line per non-empty
/// log2 bucket: `lower<TAB>upper<TAB>count` with both bounds inclusive.
fn histogram_footer(out: &mut String, trace: &RunTrace) {
    let h = &trace.histograms;
    for (name, hist) in [
        ("outage_interval_ps", &h.outage_interval_ps),
        ("dirty_at_checkpoint", &h.dirty_at_checkpoint),
        ("writeback_latency_ps", &h.writeback_latency_ps),
    ] {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
        let _ = writeln!(
            out,
            "# histogram\t{name}\tcount={}\tsum={}\tmean={:.3}\tmin={}\tp50={}\tp99={}\tmax={}",
            hist.count(),
            hist.sum(),
            hist.mean(),
            opt(hist.min()),
            opt(hist.percentile(0.5)),
            opt(hist.percentile(0.99)),
            opt(hist.max()),
        );
        for (lower, upper, count) in hist.buckets() {
            let _ = writeln!(out, "# bucket\t{name}\t{lower}\t{upper}\t{count}");
        }
    }
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total event objects (including metadata).
    pub events: usize,
    /// Matched begin/end span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
    /// Complete (`X`) slices.
    pub complete: usize,
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+e".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Schema check over an emitted Chrome trace: every event object has a
/// phase and name, non-metadata timestamps are monotonically
/// nondecreasing in file order, `B`/`E` pairs are balanced per thread
/// with matching names, and `X` slices carry a nonnegative duration.
///
/// Relies on the one-event-per-line layout produced by
/// [`RunTrace::chrome_trace`].
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let mut check = TraceCheck {
        events: 0,
        spans: 0,
        instants: 0,
        counters: 0,
        complete: 0,
    };
    let mut last_ts: f64 = f64::NEG_INFINITY;
    // (tid, open span names) — the exporter uses a single pid.
    let mut stacks: Vec<(u32, Vec<String>)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let Some(ph) = field_str(line, "\"ph\":\"") else {
            continue;
        };
        check.events += 1;
        let n = lineno + 1;
        let name = field_str(line, "\"name\":\"")
            .ok_or_else(|| format!("line {n}: event without name"))?;
        if ph == "M" {
            continue;
        }
        let ts = field_num(line, "\"ts\":").ok_or_else(|| format!("line {n}: event without ts"))?;
        if ts < last_ts {
            return Err(format!(
                "line {n}: timestamp {ts} goes backwards (previous {last_ts})"
            ));
        }
        last_ts = ts;
        let tid = field_num(line, "\"tid\":").unwrap_or(0.0) as u32;
        match ph.as_str() {
            "B" => {
                let idx = match stacks.iter().position(|(t, _)| *t == tid) {
                    Some(i) => i,
                    None => {
                        stacks.push((tid, Vec::new()));
                        stacks.len() - 1
                    }
                };
                stacks[idx].1.push(name);
            }
            "E" => {
                let stack = stacks
                    .iter_mut()
                    .find_map(|(t, s)| (*t == tid).then_some(s))
                    .ok_or_else(|| {
                        format!("line {n}: E \"{name}\" on tid {tid} with no open span")
                    })?;
                match stack.pop() {
                    Some(open) if open == name => check.spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "line {n}: E \"{name}\" does not match open span \"{open}\""
                        ))
                    }
                    None => {
                        return Err(format!("line {n}: E \"{name}\" with no open span"));
                    }
                }
            }
            "X" => {
                let dur = field_num(line, "\"dur\":")
                    .ok_or_else(|| format!("line {n}: X without dur"))?;
                if dur < 0.0 {
                    return Err(format!("line {n}: negative duration {dur}"));
                }
                check.complete += 1;
            }
            "i" => check.instants += 1,
            "C" => check.counters += 1,
            other => return Err(format!("line {n}: unknown phase \"{other}\"")),
        }
    }
    if check.events == 0 {
        return Err("no trace events found".to_string());
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span \"{open}\" never closed"));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::Observer;
    use crate::recorder::Recorder;

    fn sample_trace() -> RunTrace {
        let mut r = Recorder::default();
        r.event(
            0,
            Event::InitialThresholds {
                maxline: 6,
                waterline: 2,
            },
        );
        r.event(0, Event::PowerOn { interval: 0 });
        r.event(10, Event::DqEnqueue { base: 64 });
        r.event(
            20,
            Event::WritebackIssued {
                base: 64,
                ack_at: 120,
            },
        );
        r.event(120, Event::DqAck { base: 64 });
        r.event(
            500,
            Event::OutageBegin {
                on_ps: 500,
                voltage: 2.96,
            },
        );
        r.event(500, Event::CheckpointBegin { dirty_lines: 1 });
        r.event(550, Event::CheckpointEnd { flushed_lines: 1 });
        r.event(550, Event::PowerOff);
        r.event(900, Event::RestoreBegin);
        r.event(920, Event::RestoreEnd);
        r.event(920, Event::PowerOn { interval: 1 });
        r.event(
            930,
            Event::VoltageCross {
                rail: ehsim_energy::Rail::Vbackup,
                rising: false,
            },
        );
        r.finish(1000)
    }

    #[test]
    fn chrome_trace_round_trips_validator() {
        let json = sample_trace().chrome_trace("sha/WL-Cache");
        let check = validate_chrome_trace(&json).expect("valid trace");
        // Spans: on (x2), checkpoint, recharge, restore.
        assert_eq!(check.spans, 5);
        assert!(check.complete >= 1);
        assert!(check.instants >= 2);
        assert!(check.counters >= 3);
    }

    #[test]
    fn validator_rejects_unbalanced_and_backwards() {
        let json = sample_trace().chrome_trace("x");
        // Drop the final E lines -> unbalanced.
        let truncated: String = json
            .lines()
            .filter(|l| !l.contains("\"ph\":\"E\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(validate_chrome_trace(&truncated).is_err());
        // Reverse event order -> timestamps go backwards.
        let reversed: String = json.lines().rev().collect::<Vec<_>>().join("\n");
        assert!(validate_chrome_trace(&reversed).is_err());
        assert!(validate_chrome_trace("").is_err());
    }

    #[test]
    fn interval_metrics_rows_per_interval() {
        let tsv = sample_trace().interval_metrics_tsv();
        let lines: Vec<&str> = tsv.lines().filter(|l| !l.starts_with('#')).collect();
        // Header + interval 0 (closed by checkpoint) + interval 1 (RunEnd).
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("interval\tstart_ps"));
        let row0: Vec<&str> = lines[1].split('\t').collect();
        assert_eq!(row0[0], "0"); // interval
        assert_eq!(row0[3], "500"); // on_ps
        assert_eq!(row0[4], "1"); // dirty_flushed
        assert_eq!(row0[5], "1"); // cleanings
        assert_eq!(row0[6], "1"); // enqueues
        assert_eq!(row0[11], "6"); // maxline
        let row1: Vec<&str> = lines[2].split('\t').collect();
        assert_eq!(row1[0], "1");
        assert_eq!(row1[4], "-"); // no checkpoint closed the final row
        assert_eq!(row1[3], "80"); // 1000 - 920
    }

    #[test]
    fn interval_metrics_footer_renders_all_histograms() {
        let tsv = sample_trace().interval_metrics_tsv();
        let footer: Vec<&str> = tsv.lines().filter(|l| l.starts_with('#')).collect();
        // One summary line per histogram, always present (even if empty).
        for name in [
            "outage_interval_ps",
            "dirty_at_checkpoint",
            "writeback_latency_ps",
        ] {
            let summary = footer
                .iter()
                .find(|l| l.starts_with("# histogram\t") && l.contains(name))
                .unwrap_or_else(|| panic!("missing histogram summary for {name}"));
            assert!(summary.contains("count="), "{summary}");
            assert!(summary.contains("p99="), "{summary}");
        }
        // sample_trace has one WritebackIssued->DqAck pair (latency 100)
        // and one checkpoint with 1 dirty line; their buckets must show.
        let wb = footer
            .iter()
            .find(|l| l.starts_with("# histogram\twriteback_latency_ps"))
            .expect("write-back summary");
        assert!(wb.contains("count=1"), "{wb}");
        assert!(wb.contains("min=100"), "{wb}");
        let wb_bucket = footer
            .iter()
            .find(|l| l.starts_with("# bucket\twriteback_latency_ps"))
            .expect("non-empty histograms must render bucket lines");
        // log2 bucket holding 100: [64, 127], count 1.
        assert_eq!(*wb_bucket, "# bucket\twriteback_latency_ps\t64\t127\t1");
    }
}
