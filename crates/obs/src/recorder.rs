//! The recording sink: timeline + counters + histograms.

use crate::event::Event;
use crate::histogram::Histogram;
use crate::observer::Observer;
use ehsim_mem::Ps;

/// Event counts accumulated by a [`Recorder`].
///
/// These reconcile exactly with the run's aggregate `Report`: e.g.
/// `outages` equals the report's outage count and `reconfigurations +
/// dyn_raises` equals the WL report's `reconfigurations` (the adaptive
/// controller counts a dynamic raise as a reconfiguration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// `PowerOn` events (initial boot + one per completed restore).
    pub power_ons: u64,
    /// `OutageBegin` events.
    pub outages: u64,
    /// `CheckpointBegin` events.
    pub checkpoints: u64,
    /// `Reconfigure` events (reboot-time threshold moves).
    pub reconfigurations: u64,
    /// `DynRaise` events (§4 mid-interval raises).
    pub dyn_raises: u64,
    /// `DqEnqueue` events.
    pub dq_enqueues: u64,
    /// `DqAck` events.
    pub dq_acks: u64,
    /// `DqStall` events.
    pub dq_stalls: u64,
    /// `WritebackIssued` events.
    pub writebacks_issued: u64,
    /// Total entries dropped across `DqStaleDrop` events.
    pub stale_drops: u64,
    /// `VoltageCross` events.
    pub voltage_crossings: u64,
    /// `VoltageSample` events (zero unless sampling was opted into).
    pub voltage_samples: u64,
    /// `EnergySample` events (one per completed checkpoint + one at run
    /// end on an instrumented machine).
    pub energy_samples: u64,
}

/// The lightweight metric histograms kept by a [`Recorder`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsHistograms {
    /// Length of each completed on-interval (ps), fed by `OutageBegin`.
    pub outage_interval_ps: Histogram,
    /// Lines flushed per JIT checkpoint, fed by `CheckpointEnd`.
    pub dirty_at_checkpoint: Histogram,
    /// Async write-back latency (ps), fed by `WritebackIssued`.
    pub writeback_latency_ps: Histogram,
}

/// Folds one event into counters and histograms.
///
/// Shared by [`Recorder`] (which additionally stores the timeline) and
/// the bounded-buffer [`crate::StreamingObserver`] (which writes the
/// timeline to disk instead): both therefore report identical summary
/// statistics for the same event stream.
pub(crate) fn tally(
    counters: &mut ObsCounters,
    histograms: &mut ObsHistograms,
    at: Ps,
    ev: &Event,
) {
    match *ev {
        Event::PowerOn { .. } => counters.power_ons += 1,
        Event::OutageBegin { on_ps, .. } => {
            counters.outages += 1;
            histograms.outage_interval_ps.record(on_ps);
        }
        Event::CheckpointBegin { .. } => counters.checkpoints += 1,
        Event::CheckpointEnd { flushed_lines } => {
            histograms.dirty_at_checkpoint.record(flushed_lines);
        }
        Event::Reconfigure { .. } => counters.reconfigurations += 1,
        Event::DynRaise { .. } => counters.dyn_raises += 1,
        Event::DqEnqueue { .. } => counters.dq_enqueues += 1,
        Event::DqAck { .. } => counters.dq_acks += 1,
        Event::DqStall { .. } => counters.dq_stalls += 1,
        Event::DqStaleDrop { dropped } => counters.stale_drops += dropped as u64,
        Event::WritebackIssued { ack_at, .. } => {
            counters.writebacks_issued += 1;
            histograms
                .writeback_latency_ps
                .record(ack_at.saturating_sub(at));
        }
        Event::VoltageCross { .. } => counters.voltage_crossings += 1,
        Event::VoltageSample { .. } => counters.voltage_samples += 1,
        Event::EnergySample { .. } => counters.energy_samples += 1,
        Event::InitialThresholds { .. }
        | Event::PowerOff
        | Event::RestoreBegin
        | Event::RestoreEnd
        | Event::RunEnd => {}
    }
}

/// Entries per arena chunk: at 32 bytes per `(Ps, Event)` pair a chunk
/// is ~1 MiB — big enough that chunk turnover is off the hot path, small
/// enough that a short run wastes little.
const ARENA_CHUNK: usize = 32 * 1024;

/// An [`Observer`] that records every event with its timestamp and
/// maintains [`ObsCounters`] and [`ObsHistograms`] incrementally.
///
/// The timeline is stored in an arena of fixed-capacity chunks rather
/// than one growable vector: a long recording run (hundreds of millions
/// of events) never pays a realloc-and-copy of the whole history on the
/// emission path — each chunk is allocated once at full capacity and
/// then only ever appended to. [`Recorder::finish`] assembles the
/// contiguous timeline exactly once, when recording is over.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    chunks: Vec<Vec<(Ps, Event)>>,
    counters: ObsCounters,
    histograms: ObsHistograms,
    sample_voltage: bool,
    ended: bool,
}

impl Observer for Recorder {
    fn event(&mut self, at: Ps, ev: Event) {
        tally(&mut self.counters, &mut self.histograms, at, &ev);
        if matches!(ev, Event::RunEnd) {
            self.ended = true;
        }
        if self.chunks.last().is_none_or(|c| c.len() == ARENA_CHUNK) {
            self.chunks.push(Vec::with_capacity(ARENA_CHUNK));
        }
        if let Some(chunk) = self.chunks.last_mut() {
            chunk.push((at, ev));
        }
    }

    fn wants_voltage(&self) -> bool {
        self.sample_voltage
    }
}

impl Recorder {
    /// A recorder that additionally asks the machine for per-settlement
    /// capacitor-voltage samples ([`Event::VoltageSample`]). Sampling is
    /// too hot for the default recording path, so it is opt-in only.
    pub fn with_voltage_sampling() -> Self {
        Recorder {
            sample_voltage: true,
            ..Recorder::default()
        }
    }

    /// Recorded events so far, in emission order.
    pub fn events(&self) -> impl Iterator<Item = (Ps, Event)> + '_ {
        self.chunks.iter().flatten().copied()
    }

    /// Number of events recorded so far.
    pub fn events_len(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }

    /// Counters so far.
    pub fn counters(&self) -> &ObsCounters {
        &self.counters
    }

    /// Closes the timeline at `end` (unless the machine already
    /// delivered [`Event::RunEnd`]) and yields the finished trace,
    /// collecting the arena into one contiguous vector — the single
    /// copy the arena deferred out of the emission path.
    pub fn finish(mut self, end: Ps) -> RunTrace {
        if !self.ended {
            self.event(end, Event::RunEnd);
        }
        let mut events = Vec::with_capacity(self.events_len());
        for mut chunk in self.chunks {
            events.append(&mut chunk);
        }
        RunTrace {
            events,
            counters: self.counters,
            histograms: self.histograms,
        }
    }
}

/// A completed run's timeline, ready for export.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// `(timestamp, event)` pairs in emission order, terminated by
    /// [`Event::RunEnd`].
    pub events: Vec<(Ps, Event)>,
    /// Event counts.
    pub counters: ObsCounters,
    /// Metric histograms.
    pub histograms: ObsHistograms,
}

impl RunTrace {
    /// Renders the timeline as Chrome `trace_event` JSON. `name` labels
    /// the process in the viewer (typically `workload/design`).
    pub fn chrome_trace(&self, name: &str) -> String {
        crate::export::chrome_trace(self, name)
    }

    /// Renders per-power-on-interval metrics as a TSV table.
    pub fn interval_metrics_tsv(&self) -> String {
        crate::export::interval_metrics_tsv(self)
    }

    /// The per-power-on-interval rows behind
    /// [`RunTrace::interval_metrics_tsv`], as typed values.
    pub fn intervals(&self) -> Vec<crate::TraceInterval> {
        crate::export::intervals(self)
    }

    /// Renders the timeline as JSON-lines (one event per line), the
    /// format the [`crate::StreamingObserver`] writes incrementally.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 48);
        for (at, ev) in &self.events {
            out.push_str(&crate::stream::event_to_jsonl(*at, ev));
            out.push('\n');
        }
        out
    }

    /// The opt-in capacitor-voltage trajectory: `(ts, volts)` per
    /// [`Event::VoltageSample`]. Empty unless the run was recorded with
    /// [`Recorder::with_voltage_sampling`].
    pub fn voltage_series(&self) -> Vec<(Ps, f64)> {
        self.events
            .iter()
            .filter_map(|&(at, ev)| match ev {
                Event::VoltageSample { voltage } => Some((at, voltage)),
                _ => None,
            })
            .collect()
    }

    /// Number of recorded events matching `pred` (test convenience).
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> u64 {
        self.events.iter().filter(|(_, e)| pred(e)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_track_events() {
        let mut r = Recorder::default();
        r.event(0, Event::PowerOn { interval: 0 });
        r.event(
            100,
            Event::OutageBegin {
                on_ps: 100,
                voltage: 2.95,
            },
        );
        r.event(100, Event::CheckpointBegin { dirty_lines: 3 });
        r.event(150, Event::CheckpointEnd { flushed_lines: 3 });
        r.event(150, Event::PowerOff);
        r.event(
            40,
            Event::WritebackIssued {
                base: 64,
                ack_at: 90,
            },
        );
        r.event(200, Event::RestoreBegin);
        r.event(210, Event::RestoreEnd);
        r.event(210, Event::PowerOn { interval: 1 });
        let t = r.finish(300);
        assert_eq!(t.counters.power_ons, 2);
        assert_eq!(t.counters.outages, 1);
        assert_eq!(t.counters.checkpoints, 1);
        assert_eq!(t.counters.writebacks_issued, 1);
        assert_eq!(t.histograms.outage_interval_ps.count(), 1);
        assert_eq!(t.histograms.outage_interval_ps.sum(), 100);
        assert_eq!(t.histograms.dirty_at_checkpoint.sum(), 3);
        assert_eq!(t.histograms.writeback_latency_ps.sum(), 50);
        assert_eq!(t.events.last(), Some(&(300, Event::RunEnd)));
        assert_eq!(t.count(|e| matches!(e, Event::PowerOn { .. })), 2);
    }

    #[test]
    fn voltage_sampling_is_opt_in() {
        let off = Recorder::default();
        assert!(!off.wants_voltage());
        let mut on = Recorder::with_voltage_sampling();
        assert!(on.wants_voltage());
        on.event(10, Event::VoltageSample { voltage: 3.1 });
        on.event(
            20,
            Event::EnergySample {
                harvested_pj: 5.0,
                consumed_pj: 4.0,
            },
        );
        let t = on.finish(30);
        assert_eq!(t.counters.voltage_samples, 1);
        assert_eq!(t.counters.energy_samples, 1);
        assert_eq!(t.voltage_series(), vec![(10, 3.1)]);
    }

    #[test]
    fn finish_is_idempotent_when_run_end_already_arrived() {
        let mut r = Recorder::default();
        r.event(0, Event::PowerOn { interval: 0 });
        r.event(50, Event::RunEnd);
        let t = r.finish(50);
        assert_eq!(
            t.count(|e| matches!(e, Event::RunEnd)),
            1,
            "finish must not duplicate a machine-delivered RunEnd"
        );
    }
}
