//! The recording sink: timeline + counters + histograms.

use crate::event::Event;
use crate::histogram::Histogram;
use crate::observer::Observer;
use ehsim_mem::Ps;

/// Event counts accumulated by a [`Recorder`].
///
/// These reconcile exactly with the run's aggregate `Report`: e.g.
/// `outages` equals the report's outage count and `reconfigurations +
/// dyn_raises` equals the WL report's `reconfigurations` (the adaptive
/// controller counts a dynamic raise as a reconfiguration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// `PowerOn` events (initial boot + one per completed restore).
    pub power_ons: u64,
    /// `OutageBegin` events.
    pub outages: u64,
    /// `CheckpointBegin` events.
    pub checkpoints: u64,
    /// `Reconfigure` events (reboot-time threshold moves).
    pub reconfigurations: u64,
    /// `DynRaise` events (§4 mid-interval raises).
    pub dyn_raises: u64,
    /// `DqEnqueue` events.
    pub dq_enqueues: u64,
    /// `DqAck` events.
    pub dq_acks: u64,
    /// `DqStall` events.
    pub dq_stalls: u64,
    /// `WritebackIssued` events.
    pub writebacks_issued: u64,
    /// Total entries dropped across `DqStaleDrop` events.
    pub stale_drops: u64,
    /// `VoltageCross` events.
    pub voltage_crossings: u64,
}

/// The lightweight metric histograms kept by a [`Recorder`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsHistograms {
    /// Length of each completed on-interval (ps), fed by `OutageBegin`.
    pub outage_interval_ps: Histogram,
    /// Lines flushed per JIT checkpoint, fed by `CheckpointEnd`.
    pub dirty_at_checkpoint: Histogram,
    /// Async write-back latency (ps), fed by `WritebackIssued`.
    pub writeback_latency_ps: Histogram,
}

/// An [`Observer`] that records every event with its timestamp and
/// maintains [`ObsCounters`] and [`ObsHistograms`] incrementally.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    events: Vec<(Ps, Event)>,
    counters: ObsCounters,
    histograms: ObsHistograms,
}

impl Observer for Recorder {
    fn event(&mut self, at: Ps, ev: Event) {
        match ev {
            Event::PowerOn { .. } => self.counters.power_ons += 1,
            Event::OutageBegin { on_ps, .. } => {
                self.counters.outages += 1;
                self.histograms.outage_interval_ps.record(on_ps);
            }
            Event::CheckpointBegin { .. } => self.counters.checkpoints += 1,
            Event::CheckpointEnd { flushed_lines } => {
                self.histograms.dirty_at_checkpoint.record(flushed_lines);
            }
            Event::Reconfigure { .. } => self.counters.reconfigurations += 1,
            Event::DynRaise { .. } => self.counters.dyn_raises += 1,
            Event::DqEnqueue { .. } => self.counters.dq_enqueues += 1,
            Event::DqAck { .. } => self.counters.dq_acks += 1,
            Event::DqStall { .. } => self.counters.dq_stalls += 1,
            Event::DqStaleDrop { dropped } => self.counters.stale_drops += dropped as u64,
            Event::WritebackIssued { ack_at, .. } => {
                self.counters.writebacks_issued += 1;
                self.histograms
                    .writeback_latency_ps
                    .record(ack_at.saturating_sub(at));
            }
            Event::VoltageCross { .. } => self.counters.voltage_crossings += 1,
            Event::InitialThresholds { .. }
            | Event::PowerOff
            | Event::RestoreBegin
            | Event::RestoreEnd
            | Event::RunEnd => {}
        }
        self.events.push((at, ev));
    }
}

impl Recorder {
    /// Recorded events so far, in emission order.
    pub fn events(&self) -> &[(Ps, Event)] {
        &self.events
    }

    /// Counters so far.
    pub fn counters(&self) -> &ObsCounters {
        &self.counters
    }

    /// Closes the timeline at `end` and yields the finished trace.
    pub fn finish(mut self, end: Ps) -> RunTrace {
        self.events.push((end, Event::RunEnd));
        RunTrace {
            events: self.events,
            counters: self.counters,
            histograms: self.histograms,
        }
    }
}

/// A completed run's timeline, ready for export.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// `(timestamp, event)` pairs in emission order, terminated by
    /// [`Event::RunEnd`].
    pub events: Vec<(Ps, Event)>,
    /// Event counts.
    pub counters: ObsCounters,
    /// Metric histograms.
    pub histograms: ObsHistograms,
}

impl RunTrace {
    /// Renders the timeline as Chrome `trace_event` JSON. `name` labels
    /// the process in the viewer (typically `workload/design`).
    pub fn chrome_trace(&self, name: &str) -> String {
        crate::export::chrome_trace(self, name)
    }

    /// Renders per-power-on-interval metrics as a TSV table.
    pub fn interval_metrics_tsv(&self) -> String {
        crate::export::interval_metrics_tsv(self)
    }

    /// Number of recorded events matching `pred` (test convenience).
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> u64 {
        self.events.iter().filter(|(_, e)| pred(e)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_track_events() {
        let mut r = Recorder::default();
        r.event(0, Event::PowerOn { interval: 0 });
        r.event(
            100,
            Event::OutageBegin {
                on_ps: 100,
                voltage: 2.95,
            },
        );
        r.event(100, Event::CheckpointBegin { dirty_lines: 3 });
        r.event(150, Event::CheckpointEnd { flushed_lines: 3 });
        r.event(150, Event::PowerOff);
        r.event(
            40,
            Event::WritebackIssued {
                base: 64,
                ack_at: 90,
            },
        );
        r.event(200, Event::RestoreBegin);
        r.event(210, Event::RestoreEnd);
        r.event(210, Event::PowerOn { interval: 1 });
        let t = r.finish(300);
        assert_eq!(t.counters.power_ons, 2);
        assert_eq!(t.counters.outages, 1);
        assert_eq!(t.counters.checkpoints, 1);
        assert_eq!(t.counters.writebacks_issued, 1);
        assert_eq!(t.histograms.outage_interval_ps.count(), 1);
        assert_eq!(t.histograms.outage_interval_ps.sum(), 100);
        assert_eq!(t.histograms.dirty_at_checkpoint.sum(), 3);
        assert_eq!(t.histograms.writeback_latency_ps.sum(), 50);
        assert_eq!(t.events.last(), Some(&(300, Event::RunEnd)));
        assert_eq!(t.count(|e| matches!(e, Event::PowerOn { .. })), 2);
    }
}
