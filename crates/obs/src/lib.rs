//! Observability layer for the energy-harvesting simulator.
//!
//! The simulator's [`Report`](https://docs.rs/) aggregates answer *how
//! much* (outages, stalls, cleanings) but not *when*. This crate adds an
//! event timeline with a strict contract:
//!
//! * **Observation only.** An [`Observer`] receives [`Event`]s; it can
//!   never mutate simulation state, so a run with any observer attached
//!   computes bit-identical results to a run without one. The pinned
//!   figure goldens enforce this.
//! * **Zero cost when disabled.** The default sink is
//!   [`ObserverBox::Noop`]; every instrumentation site is guarded by
//!   [`ObserverBox::enabled`], a single enum-discriminant test that the
//!   optimizer folds into the surrounding code. The hot path takes no
//!   virtual call and allocates nothing.
//!
//! A [`Recorder`] sink accumulates the timeline plus counters and
//! log-scale [`Histogram`]s; [`RunTrace`] exports it as a Chrome
//! `trace_event` JSON (viewable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)) or a per-interval metrics TSV.
//! [`validate_chrome_trace`] checks an emitted trace for monotonic
//! timestamps and balanced begin/end pairs — used by CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod histogram;
mod observer;
mod recorder;
mod stream;

pub use event::Event;
pub use export::{validate_chrome_trace, TraceCheck, TraceInterval};
pub use histogram::Histogram;
pub use observer::{NoopObserver, Observer, ObserverBox};
pub use recorder::{ObsCounters, ObsHistograms, Recorder, RunTrace};
pub use stream::{
    event_to_jsonl, parse_jsonl_line, StreamStats, StreamStatsHandle, StreamingObserver,
    DEFAULT_STREAM_CAPACITY,
};

pub use ehsim_energy::Rail;
