//! Cache array technology parameters (timing and energy).

use ehsim_mem::{Pj, Ps};

/// Timing and energy of one cache array technology.
///
/// Table 2 gives hit/miss-detect latencies: SRAM 0.3 ns / 0.1 ns, NVRAM
/// (ReRAM) 1.6 ns / 1.5 ns. ReRAM cell *writes* are much slower than
/// reads; the paper does not list the cache write latency, so the ReRAM
/// write path uses a calibrated 35 ns (DESIGN.md §2.4) — this asymmetry
/// is what makes NVCache-WB the slowest design in Fig 4, exactly as in
/// the paper. Energy constants are 90 nm-class estimates (same source as
/// [`ehsim_mem::NvmEnergy`]).
///
/// `lru_extra_ps`/`lru_extra_pj` model the LRU bookkeeping overhead the
/// paper blames for FIFO outperforming LRU in energy harvesting systems
/// (§6.5): they are charged on every access when the cache replacement
/// policy is LRU.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheTech {
    /// Latency of a read hit (ps).
    pub read_hit_ps: Ps,
    /// Latency of a write hit (ps).
    pub write_hit_ps: Ps,
    /// Latency to detect a miss (tag probe, ps).
    pub miss_detect_ps: Ps,
    /// Energy of an array read (pJ).
    pub read_pj: Pj,
    /// Energy of an array write (pJ).
    pub write_pj: Pj,
    /// Extra latency per access for LRU bookkeeping (ps).
    pub lru_extra_ps: Ps,
    /// Extra energy per access for LRU bookkeeping (pJ).
    pub lru_extra_pj: Pj,
}

impl CacheTech {
    /// A volatile SRAM array (Table 2: 0.3 ns hit, 0.1 ns miss detect).
    pub fn sram() -> Self {
        Self {
            read_hit_ps: 300,
            write_hit_ps: 300,
            miss_detect_ps: 100,
            read_pj: 4.0,
            write_pj: 5.0,
            lru_extra_ps: 100,
            lru_extra_pj: 1.0,
        }
    }

    /// A non-volatile ReRAM array (Table 2: 1.6 ns hit, 1.5 ns miss
    /// detect; writes calibrated to 25 ns — see type-level docs).
    pub fn nv_reram() -> Self {
        Self {
            read_hit_ps: 1_600,
            write_hit_ps: 35_000,
            miss_detect_ps: 1_500,
            read_pj: 12.0,
            write_pj: 125.0,
            lru_extra_ps: 100,
            lru_extra_pj: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_matches_table2() {
        let t = CacheTech::sram();
        assert_eq!(t.read_hit_ps, 300);
        assert_eq!(t.miss_detect_ps, 100);
    }

    #[test]
    fn nv_reram_matches_table2_reads_and_is_write_asymmetric() {
        let t = CacheTech::nv_reram();
        assert_eq!(t.read_hit_ps, 1_600);
        assert_eq!(t.miss_detect_ps, 1_500);
        assert!(t.write_hit_ps > 5 * t.read_hit_ps);
        assert!(t.write_pj > t.read_pj);
    }

    #[test]
    fn nv_is_slower_and_hungrier_than_sram() {
        let s = CacheTech::sram();
        let n = CacheTech::nv_reram();
        assert!(n.read_hit_ps > s.read_hit_ps);
        assert!(n.write_hit_ps > s.write_hit_ps);
        assert!(n.read_pj > s.read_pj);
        assert!(n.write_pj > s.write_pj);
    }
}
