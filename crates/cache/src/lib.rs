//! Cache substrate and baseline cache designs for the WL-Cache
//! reproduction.
//!
//! This crate provides the pieces every cache design in the paper is
//! built from, plus the four baselines WL-Cache is compared against:
//!
//! - [`CacheGeometry`] / [`ReplacementPolicy`] — set-associative layout
//!   and the LRU/FIFO *cache* replacement policies of §5.4/§6.5;
//! - [`CacheTech`] — SRAM vs. ReRAM array timing/energy (Table 2);
//! - [`TagArray`] — a data-carrying set-associative array: the
//!   functional-plus-timing substrate shared by all designs;
//! - [`MemCtx`] and the [`CacheDesign`] trait — the contract between a
//!   cache design and the machine in the `ehsim` crate;
//! - [`designs`] — `VCache-WT`, `NVCache-WB`, `NVSRAM(ideal)` and
//!   `ReplayCache`. (WL-Cache itself lives in the `wl-cache` crate.)
//!
//! # Examples
//!
//! ```
//! use ehsim_cache::{CacheGeometry, ReplacementPolicy, TagArray};
//!
//! let geom = CacheGeometry::new(1024, 2, 64);
//! assert_eq!(geom.n_sets(), 8);
//! let array = TagArray::new(geom, ReplacementPolicy::Lru);
//! assert!(array.lookup(0x40).is_none()); // cold cache
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
pub mod designs;
mod geometry;
mod stats;
mod tag_array;
mod tech;

pub use ctx::{CacheDesign, MemCtx};
pub use geometry::{CacheGeometry, ReplacementPolicy};
pub use stats::CacheStats;
pub use tag_array::{SetWay, TagArray};
pub use tech::CacheTech;
