//! Cache layout and replacement-policy types.

/// Layout of a set-associative cache.
///
/// The paper's default is an 8 kB, 2-way cache with 64 B blocks
/// (Table 2); §6.5 sweeps associativity (direct-mapped/2/4-way) and cache
/// size (128 B – 4 kB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u32,
    ways: u32,
    line_bytes: u32,
}

impl CacheGeometry {
    /// Creates a geometry of `size_bytes` total capacity, `ways`-way
    /// associativity and `line_bytes` blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` and the set count are powers of two,
    /// `ways >= 1`, and `size_bytes` is an exact multiple of
    /// `ways * line_bytes`.
    pub fn new(size_bytes: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(ways >= 1, "need at least one way");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            size_bytes.is_multiple_of(ways * line_bytes),
            "size must be a multiple of ways * line_bytes"
        );
        let n_sets = size_bytes / (ways * line_bytes);
        assert!(
            n_sets.is_power_of_two(),
            "set count must be a power of two (got {n_sets})"
        );
        Self {
            size_bytes,
            ways,
            line_bytes,
        }
    }

    /// The paper's default data-cache layout: 8 kB, 2-way, 64 B blocks.
    pub fn paper_default() -> Self {
        Self::new(8 * 1024, 2, 64)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Block (line) size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Total number of lines.
    pub fn n_lines(&self) -> u32 {
        self.n_sets() * self.ways
    }

    /// Set index of a byte address.
    #[inline]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr / self.line_bytes) & (self.n_sets() - 1)
    }

    /// Tag of a byte address.
    #[inline]
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr / self.line_bytes / self.n_sets()
    }

    /// Line-aligned base address of `addr`.
    #[inline]
    pub fn line_base(&self, addr: u32) -> u32 {
        ehsim_mem::line_base(addr, self.line_bytes)
    }

    /// Reconstructs a line base address from a `(tag, set)` pair.
    #[inline]
    pub fn base_of(&self, tag: u32, set: u32) -> u32 {
        (tag * self.n_sets() + set) * self.line_bytes
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Cache (or DirtyQueue) replacement policy.
///
/// §6.5 of the paper finds FIFO *cache* replacement both faster and more
/// energy-efficient than LRU under intermittent power; §6.4 finds the
/// same for the DirtyQueue replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    #[default]
    Lru,
    /// First-in-first-out (by fill order).
    Fifo,
}

impl ReplacementPolicy {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_layout() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.n_sets(), 64);
        assert_eq!(g.n_lines(), 128);
        assert_eq!(g.ways(), 2);
        assert_eq!(g.line_bytes(), 64);
    }

    #[test]
    fn index_and_tag_partition_the_address() {
        let g = CacheGeometry::new(1024, 2, 64); // 8 sets
        let addr = 0x0001_2345;
        let set = g.set_of(addr);
        let tag = g.tag_of(addr);
        assert!(set < g.n_sets());
        assert_eq!(g.base_of(tag, set), g.line_base(addr));
    }

    #[test]
    fn direct_mapped_works() {
        let g = CacheGeometry::new(512, 1, 64);
        assert_eq!(g.n_sets(), 8);
        assert_eq!(g.set_of(64), 1);
        assert_eq!(g.set_of(512 + 64), 1);
        assert_ne!(g.tag_of(64), g.tag_of(512 + 64));
    }

    #[test]
    fn tiny_cache_from_fig10a_sweep() {
        let g = CacheGeometry::new(128, 2, 64); // one set
        assert_eq!(g.n_sets(), 1);
        assert_eq!(g.set_of(0xffff_ffc0), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheGeometry::new(3 * 128, 2, 64);
    }

    #[test]
    fn replacement_labels() {
        assert_eq!(ReplacementPolicy::Lru.label(), "LRU");
        assert_eq!(ReplacementPolicy::Fifo.label(), "FIFO");
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
