//! The baseline cache designs WL-Cache is evaluated against (Fig 1 and
//! Table 1 of the paper).
//!
//! | Design | Array | Write policy | Crash consistency |
//! |---|---|---|---|
//! | [`VCacheWt`] | volatile SRAM | write-through | inherent (every store persists) |
//! | [`NvCacheWb`] | non-volatile ReRAM | write-back | inherent (array is persistent) |
//! | [`NvSramCache`] | volatile SRAM + NV copy | write-back | JIT checkpoint of dirty lines, warm restore |
//! | [`ReplayCache`] | volatile SRAM | write-back | region-level persistence + replay |
//! | [`WriteBufferCache`] | volatile SRAM + CAM buffer | write-through into buffer | buffer flush at checkpoint (the §3.3 rejected alternative) |
//!
//! WL-Cache itself lives in the `wl-cache` crate; it shares the
//! [`WbCore`] substrate exported here.

mod common;
mod nv_cache;
mod nvsram;
mod replay;
mod write_buffer;
mod write_through;

pub use common::WbCore;
pub use nv_cache::NvCacheWb;
pub use nvsram::NvSramCache;
pub use replay::ReplayCache;
pub use write_buffer::WriteBufferCache;
pub use write_through::VCacheWt;
