//! `VCache-WT`: volatile SRAM write-through cache (Fig 1(b)).

use crate::designs::WbCore;
use crate::{CacheDesign, CacheGeometry, CacheTech, MemCtx, ReplacementPolicy};
use ehsim_energy::{EnergyCategory, VoltageThresholds};
use ehsim_mem::{AccessSize, NvmEnergy, Pj, Ps};

/// A traditional volatile write-through cache.
///
/// Every store synchronously updates both the SRAM array (on a hit; the
/// cache does not allocate on store misses) and the NVM word, so the
/// NVM is always consistent and nothing beyond the registers needs JIT
/// checkpointing. The price is that every store pays the NVM word-write
/// latency — the paper's Table 1 "Perf. Improve.: Low" row.
#[derive(Debug, Clone)]
pub struct VCacheWt {
    core: WbCore,
}

impl VCacheWt {
    /// Creates a cold write-through cache.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        Self {
            core: WbCore::new(geom, policy, CacheTech::sram()),
        }
    }
}

impl CacheDesign for VCacheWt {
    fn name(&self) -> &'static str {
        "VCache-WT"
    }

    fn thresholds(&self) -> VoltageThresholds {
        VoltageThresholds::nv()
    }

    fn load(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize) -> (Ps, u64) {
        let (_, value, _) = self.core.load(ctx, addr, size);
        (ctx.now, value)
    }

    fn store(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize, value: u64) -> Ps {
        ctx.stats.stores += 1;
        // Update the cache copy if (and only if) the line is resident:
        // write-through, no write-allocate.
        let cache_done = if let Some(sw) = self.core.array().lookup(addr) {
            ctx.stats.store_hits += 1;
            self.core.array_mut().touch(sw);
            self.core.array_mut().write(sw, addr, size, value);
            ctx.meter
                .add(EnergyCategory::CacheWrite, self.core.tech().write_pj);
            ctx.now + self.core.tech().write_hit_ps
        } else {
            ctx.now + self.core.tech().miss_detect_ps
        };
        // Synchronous NVM word write: the store retires only when the
        // word is persistent (no store-buffer optimisation, §2.3.1).
        let nvm_done = ctx.sync_word_write(addr, size, value);
        cache_done.max(nvm_done)
    }

    fn checkpoint(&mut self, _ctx: &mut MemCtx<'_>) -> Ps {
        // NVM is always up to date; registers are handled by the machine.
        _ctx.now
    }

    fn power_off(&mut self) {
        self.core.array_mut().invalidate_all();
    }

    fn reboot(&mut self, ctx: &mut MemCtx<'_>, _on_time_ps: Ps) -> Ps {
        ctx.now
    }

    fn worst_checkpoint_pj(&self, _energy: &NvmEnergy) -> Pj {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheStats;
    use ehsim_energy::EnergyMeter;
    use ehsim_mem::{FunctionalMem, NvmPort, NvmTiming};

    struct H {
        port: NvmPort,
        timing: NvmTiming,
        energy: NvmEnergy,
        nvm: FunctionalMem,
        meter: EnergyMeter,
        stats: CacheStats,
        now: Ps,
        obs: ehsim_obs::ObserverBox,
    }

    impl H {
        fn new() -> Self {
            Self {
                port: NvmPort::new(),
                timing: NvmTiming::default(),
                energy: NvmEnergy::default(),
                nvm: FunctionalMem::new(4096),
                meter: EnergyMeter::new(),
                stats: CacheStats::new(),
                now: 0,
                obs: ehsim_obs::ObserverBox::Noop,
            }
        }
        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                now: self.now,
                port: &mut self.port,
                timing: &self.timing,
                energy: &self.energy,
                nvm: &mut self.nvm,
                meter: &mut self.meter,
                stats: &mut self.stats,
                cap_voltage: 3.3,
                obs: &mut self.obs,
            }
        }
    }

    fn wt() -> VCacheWt {
        VCacheWt::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Fifo)
    }

    #[test]
    fn stores_always_reach_nvm() {
        let mut h = H::new();
        let mut c = wt();
        let mut ctx = h.ctx();
        let done = c.store(&mut ctx, 0x10, AccessSize::B4, 0xfeed);
        assert!(done >= NvmTiming::default().word_write_ps());
        assert_eq!(h.nvm.read(0x10, AccessSize::B4), 0xfeed);
        assert_eq!(h.stats.word_writes, 1);
    }

    #[test]
    fn store_miss_does_not_allocate() {
        let mut h = H::new();
        let mut c = wt();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x10, AccessSize::B4, 1);
        assert!(c.core.array().lookup(0x10).is_none());
        assert_eq!(h.stats.store_hits, 0);
    }

    #[test]
    fn store_hit_updates_cached_copy() {
        let mut h = H::new();
        h.nvm.write(0x20, AccessSize::B4, 0x1111);
        let mut c = wt();
        let mut ctx = h.ctx();
        let (_, v) = c.load(&mut ctx, 0x20, AccessSize::B4);
        assert_eq!(v, 0x1111);
        h.now = ctx.now;
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x20, AccessSize::B4, 0x2222);
        h.now = ctx.now;
        let mut ctx = h.ctx();
        let (_, v2) = c.load(&mut ctx, 0x20, AccessSize::B4);
        assert_eq!(v2, 0x2222);
        assert_eq!(h.stats.load_hits, 1);
        assert_eq!(h.stats.store_hits, 1);
    }

    #[test]
    fn power_cycle_loses_cache_but_not_data() {
        let mut h = H::new();
        let mut c = wt();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x30, AccessSize::B8, 0xdeadbeef);
        let _ = c.checkpoint(&mut ctx);
        c.power_off();
        let _ = c.reboot(&mut ctx, 0);
        let (_, v) = c.load(&mut ctx, 0x30, AccessSize::B8);
        assert_eq!(v, 0xdeadbeef);
    }

    #[test]
    fn no_checkpoint_energy_reserve_needed() {
        let c = wt();
        assert_eq!(c.worst_checkpoint_pj(&NvmEnergy::default()), 0.0);
        assert_eq!(c.thresholds(), VoltageThresholds::nv());
    }
}
