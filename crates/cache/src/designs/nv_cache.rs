//! `NVCache-WB`: fully non-volatile write-back cache (Fig 1(c)).

use crate::designs::WbCore;
use crate::{CacheDesign, CacheGeometry, CacheTech, MemCtx, ReplacementPolicy};
use ehsim_energy::VoltageThresholds;
use ehsim_mem::{AccessSize, NvmEnergy, Pj, Ps};

/// A write-back cache built entirely from non-volatile (ReRAM) cells.
///
/// Crash consistency is inherent — the array itself survives power
/// failure, so nothing needs JIT checkpointing and the cache is warm
/// after reboot. The downside is that *every* access pays ReRAM
/// latency/energy, and ReRAM writes are an order of magnitude slower
/// than SRAM writes, which makes this the slowest design in the paper's
/// Fig 4. Used as the "non-volatile cache baseline" in the abstract's
/// 3.1× claim.
#[derive(Debug, Clone)]
pub struct NvCacheWb {
    core: WbCore,
}

impl NvCacheWb {
    /// Creates a cold non-volatile write-back cache.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        Self {
            core: WbCore::new(geom, policy, CacheTech::nv_reram()),
        }
    }
}

impl CacheDesign for NvCacheWb {
    fn name(&self) -> &'static str {
        "NVCache-WB"
    }

    fn thresholds(&self) -> VoltageThresholds {
        VoltageThresholds::nv()
    }

    fn load(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize) -> (Ps, u64) {
        let (_, value, _) = self.core.load(ctx, addr, size);
        (ctx.now, value)
    }

    fn store(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize, value: u64) -> Ps {
        let (sw, _, _) = self.core.store_resident(ctx, addr, size, value);
        self.core.array_mut().set_dirty(sw, true);
        ctx.now
    }

    fn checkpoint(&mut self, ctx: &mut MemCtx<'_>) -> Ps {
        // The array is non-volatile: nothing to do.
        ctx.now
    }

    fn power_off(&mut self) {
        // Contents survive the outage.
    }

    fn reboot(&mut self, ctx: &mut MemCtx<'_>, _on_time_ps: Ps) -> Ps {
        ctx.now
    }

    fn dirty_lines(&self) -> usize {
        self.core.array().count_dirty()
    }

    fn worst_checkpoint_pj(&self, _energy: &NvmEnergy) -> Pj {
        0.0
    }

    fn persistent_overlay(&self, nvm: &ehsim_mem::FunctionalMem) -> ehsim_mem::FunctionalMem {
        // The whole array is non-volatile: every valid line (dirty ones
        // in particular) shadows main memory.
        let mut view = nvm.clone();
        for (sw, base) in self.core.array().valid_lines() {
            view.write_line(base, self.core.array().line_data(sw));
        }
        view
    }

    fn persistent_line(&self, base: u32) -> Option<&[u8]> {
        let sw = self.core.array().lookup(base)?;
        Some(self.core.array().line_data(sw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheStats;
    use ehsim_energy::EnergyMeter;
    use ehsim_mem::{FunctionalMem, NvmPort, NvmTiming};

    struct H {
        port: NvmPort,
        timing: NvmTiming,
        energy: NvmEnergy,
        nvm: FunctionalMem,
        meter: EnergyMeter,
        stats: CacheStats,
        now: Ps,
        obs: ehsim_obs::ObserverBox,
    }

    impl H {
        fn new() -> Self {
            Self {
                port: NvmPort::new(),
                timing: NvmTiming::default(),
                energy: NvmEnergy::default(),
                nvm: FunctionalMem::new(4096),
                meter: EnergyMeter::new(),
                stats: CacheStats::new(),
                now: 0,
                obs: ehsim_obs::ObserverBox::Noop,
            }
        }
        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                now: self.now,
                port: &mut self.port,
                timing: &self.timing,
                energy: &self.energy,
                nvm: &mut self.nvm,
                meter: &mut self.meter,
                stats: &mut self.stats,
                cap_voltage: 3.3,
                obs: &mut self.obs,
            }
        }
    }

    fn nv() -> NvCacheWb {
        NvCacheWb::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Fifo)
    }

    #[test]
    fn dirty_lines_survive_power_failure() {
        let mut h = H::new();
        let mut c = nv();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x40, AccessSize::B4, 0xaaaa);
        assert_eq!(c.dirty_lines(), 1);
        let _ = c.checkpoint(&mut ctx);
        c.power_off();
        let _ = c.reboot(&mut ctx, 0);
        // Warm cache: the load hits and sees the stored value, even
        // though NVM main memory was never updated.
        let (_, v) = c.load(&mut ctx, 0x40, AccessSize::B4);
        assert_eq!(v, 0xaaaa);
        assert_eq!(h.stats.load_hits, 1);
    }

    #[test]
    fn store_hits_avoid_nvm_traffic() {
        let mut h = H::new();
        let mut c = nv();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x40, AccessSize::B4, 1);
        h.now = ctx.now;
        let bytes_after_first = h.stats.nvm_write_bytes;
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x44, AccessSize::B4, 2);
        assert_eq!(h.stats.nvm_write_bytes, bytes_after_first);
        assert_eq!(h.stats.store_hits, 1);
    }

    #[test]
    fn nv_store_is_much_slower_than_sram_hit() {
        let mut h = H::new();
        let mut c = nv();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x40, AccessSize::B4, 1);
        h.now = ctx.now;
        let t0 = h.now;
        let mut ctx = h.ctx();
        let done = c.store(&mut ctx, 0x44, AccessSize::B4, 2);
        // Store hit on ReRAM: dominated by the 15 ns cell write.
        assert!(done - t0 >= 15_000, "got {} ps", done - t0);
    }

    #[test]
    fn no_reserve_needed() {
        assert_eq!(nv().worst_checkpoint_pj(&NvmEnergy::default()), 0.0);
    }
}
