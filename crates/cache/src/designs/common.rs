//! Shared machinery for write-back caches over a [`TagArray`].

use crate::{CacheGeometry, CacheTech, MemCtx, ReplacementPolicy, SetWay, TagArray};
use ehsim_energy::EnergyCategory;
use ehsim_mem::Ps;

/// The data-array half of a write-back cache design: a [`TagArray`] plus
/// its [`CacheTech`], with the timing/energy bookkeeping for the common
/// hit/miss/evict/fill paths.
///
/// `NvSramCache`, `ReplayCache` and the `wl-cache` crate's `WlCache` all
/// embed a `WbCore`; they differ only in *when* dirty lines travel to
/// NVM.
#[derive(Debug, Clone)]
pub struct WbCore {
    array: TagArray,
    tech: CacheTech,
}

impl WbCore {
    /// Creates a cold write-back core.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy, tech: CacheTech) -> Self {
        Self {
            array: TagArray::new(geom, policy),
            tech,
        }
    }

    /// The underlying array.
    pub fn array(&self) -> &TagArray {
        &self.array
    }

    /// Mutable access to the underlying array.
    pub fn array_mut(&mut self) -> &mut TagArray {
        &mut self.array
    }

    /// The array technology.
    pub fn tech(&self) -> &CacheTech {
        &self.tech
    }

    /// Per-access LRU bookkeeping overhead (zero under FIFO replacement).
    fn lru_overhead(&self, ctx: &mut MemCtx<'_>) -> Ps {
        if self.array.policy() == ReplacementPolicy::Lru {
            ctx.meter
                .add(EnergyCategory::CacheWrite, self.tech.lru_extra_pj);
            self.tech.lru_extra_ps
        } else {
            0
        }
    }

    /// Makes sure `addr`'s line is resident, running the full miss path
    /// if needed (dirty-victim write-back, then demand fill). Updates
    /// `ctx.now` to the time the line is available and returns
    /// `(slot, hit)`.
    ///
    /// Hit/miss *timing for the access itself* (read vs. write) is added
    /// by [`WbCore::load`] / [`WbCore::store_resident`]; this method
    /// accounts only the miss-path costs.
    pub fn ensure_resident(&mut self, ctx: &mut MemCtx<'_>, addr: u32) -> (SetWay, bool) {
        ctx.now += self.lru_overhead(ctx);
        if let Some(sw) = self.array.lookup(addr) {
            self.array.touch(sw);
            return (sw, true);
        }
        // Miss detect: tag probe.
        ctx.now += self.tech.miss_detect_ps;
        ctx.meter.add(EnergyCategory::CacheRead, self.tech.read_pj);

        let victim = self.array.victim(addr);
        if self.array.is_dirty(victim) {
            // Synchronous eviction write-back of the dirty victim,
            // straight from the array's flat data block.
            let base = self.array.base_addr(victim);
            ctx.meter.add(EnergyCategory::CacheRead, self.tech.read_pj);
            let done = ctx.sync_line_write(base, self.array.line_data(victim));
            ctx.stats.evict_writebacks += 1;
            ctx.now = done;
        }

        // Demand fill: read from NVM directly into the victim slot.
        let base = self.array.geometry().line_base(addr);
        let done = ctx.sync_line_read(base, self.array.fill_slot(victim, addr));
        ctx.now = done;
        ctx.meter
            .add(EnergyCategory::CacheWrite, self.tech.write_pj);
        ctx.now += self.tech.write_hit_ps;
        ctx.stats.line_fills += 1;
        (victim, false)
    }

    /// Full load path: residency + array read. Updates counters and
    /// `ctx.now`; returns `(slot, value, hit)`.
    pub fn load(
        &mut self,
        ctx: &mut MemCtx<'_>,
        addr: u32,
        size: ehsim_mem::AccessSize,
    ) -> (SetWay, u64, bool) {
        ctx.stats.loads += 1;
        let (sw, hit) = self.ensure_resident(ctx, addr);
        if hit {
            ctx.stats.load_hits += 1;
        }
        ctx.now += self.tech.read_hit_ps;
        ctx.meter.add(EnergyCategory::CacheRead, self.tech.read_pj);
        let value = self.array.read(sw, addr, size);
        (sw, value, hit)
    }

    /// Full store path for write-allocate write-back designs: residency +
    /// array write. Does **not** set the dirty bit — the caller decides
    /// (WL-Cache couples that transition to DirtyQueue insertion).
    /// Returns `(slot, was_dirty_before, hit)`.
    pub fn store_resident(
        &mut self,
        ctx: &mut MemCtx<'_>,
        addr: u32,
        size: ehsim_mem::AccessSize,
        value: u64,
    ) -> (SetWay, bool, bool) {
        ctx.stats.stores += 1;
        let (sw, hit) = self.ensure_resident(ctx, addr);
        if hit {
            ctx.stats.store_hits += 1;
        }
        let was_dirty = self.array.is_dirty(sw);
        ctx.now += self.tech.write_hit_ps;
        ctx.meter
            .add(EnergyCategory::CacheWrite, self.tech.write_pj);
        self.array.write(sw, addr, size, value);
        (sw, was_dirty, hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheStats;
    use ehsim_energy::EnergyMeter;
    use ehsim_mem::{AccessSize, FunctionalMem, NvmEnergy, NvmPort, NvmTiming};

    struct Harness {
        port: NvmPort,
        timing: NvmTiming,
        energy: NvmEnergy,
        nvm: FunctionalMem,
        meter: EnergyMeter,
        stats: CacheStats,
        now: Ps,
        obs: ehsim_obs::ObserverBox,
    }

    impl Harness {
        fn new() -> Self {
            Self {
                port: NvmPort::new(),
                timing: NvmTiming::default(),
                energy: NvmEnergy::default(),
                nvm: FunctionalMem::new(8192),
                meter: EnergyMeter::new(),
                stats: CacheStats::new(),
                now: 0,
                obs: ehsim_obs::ObserverBox::Noop,
            }
        }

        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                now: self.now,
                port: &mut self.port,
                timing: &self.timing,
                energy: &self.energy,
                nvm: &mut self.nvm,
                meter: &mut self.meter,
                stats: &mut self.stats,
                cap_voltage: 3.3,
                obs: &mut self.obs,
            }
        }
    }

    fn core() -> WbCore {
        WbCore::new(
            CacheGeometry::new(256, 2, 64),
            ReplacementPolicy::Fifo,
            CacheTech::sram(),
        )
    }

    #[test]
    fn cold_load_fills_and_hits_after() {
        let mut h = Harness::new();
        h.nvm.write(0x100, AccessSize::B4, 0xabcd);
        let mut c = core();

        let mut ctx = h.ctx();
        let (_, v, hit) = c.load(&mut ctx, 0x100, AccessSize::B4);
        let t_miss = ctx.now;
        h.now = t_miss;
        assert!(!hit);
        assert_eq!(v, 0xabcd);
        assert!(t_miss >= NvmTiming::default().line_read_ps());

        let mut ctx = h.ctx();
        let (_, v2, hit2) = c.load(&mut ctx, 0x104, AccessSize::B4);
        let t_hit = ctx.now - t_miss;
        assert!(hit2);
        assert_eq!(v2, 0); // untouched bytes
        assert!(t_hit < 1_000, "hit path should be sub-ns, got {t_hit} ps");
        assert_eq!(h.stats.loads, 2);
        assert_eq!(h.stats.load_hits, 1);
        assert_eq!(h.stats.line_fills, 1);
    }

    #[test]
    fn store_does_not_mark_dirty_by_itself() {
        let mut h = Harness::new();
        let mut c = core();
        let mut ctx = h.ctx();
        let (sw, was_dirty, hit) = c.store_resident(&mut ctx, 0x40, AccessSize::B4, 7);
        assert!(!hit && !was_dirty);
        assert!(!c.array().is_dirty(sw));
        assert_eq!(c.array().read(sw, 0x40, AccessSize::B4), 7);
    }

    #[test]
    fn dirty_eviction_writes_back_to_nvm() {
        let mut h = Harness::new();
        // Direct-mapped, 2 sets: 0x000 and 0x080 conflict (set 0).
        let mut c = WbCore::new(
            CacheGeometry::new(128, 1, 64),
            ReplacementPolicy::Fifo,
            CacheTech::sram(),
        );
        let mut ctx = h.ctx();
        let (sw, _, _) = c.store_resident(&mut ctx, 0x00, AccessSize::B4, 0x1234);
        c.array_mut().set_dirty(sw, true);
        h.now = ctx.now;

        // Conflict-miss on the same set evicts the dirty line.
        let mut ctx = h.ctx();
        let _ = c.load(&mut ctx, 0x80, AccessSize::B4);
        assert_eq!(h.stats.evict_writebacks, 1);
        assert_eq!(h.nvm.read(0x00, AccessSize::B4), 0x1234);
    }

    #[test]
    fn clean_eviction_skips_write_back() {
        let mut h = Harness::new();
        let mut c = WbCore::new(
            CacheGeometry::new(128, 1, 64),
            ReplacementPolicy::Fifo,
            CacheTech::sram(),
        );
        let mut ctx = h.ctx();
        let _ = c.load(&mut ctx, 0x00, AccessSize::B4);
        h.now = ctx.now;
        let mut ctx = h.ctx();
        let _ = c.load(&mut ctx, 0x80, AccessSize::B4);
        assert_eq!(h.stats.evict_writebacks, 0);
        assert_eq!(h.stats.line_fills, 2);
    }

    #[test]
    fn lru_policy_charges_overhead_energy() {
        let mut h_lru = Harness::new();
        let mut c_lru = WbCore::new(
            CacheGeometry::new(256, 2, 64),
            ReplacementPolicy::Lru,
            CacheTech::sram(),
        );
        let mut ctx = h_lru.ctx();
        let _ = c_lru.load(&mut ctx, 0x0, AccessSize::B4);
        let lru_energy = h_lru.meter.total();

        let mut h_fifo = Harness::new();
        let mut c_fifo = core();
        let mut ctx = h_fifo.ctx();
        let _ = c_fifo.load(&mut ctx, 0x0, AccessSize::B4);
        assert!(lru_energy > h_fifo.meter.total());
    }
}
