//! `WBuf-Cache`: the write-through cache + CAM write-back buffer
//! alternative that §3.3 of the paper considers — and rejects — as a
//! way to get WL-Cache's behaviour.
//!
//! The design: a volatile write-through SRAM cache whose stores land in
//! a small *write buffer* of full lines instead of going to NVM
//! synchronously; the buffer drains asynchronously and is flushed by
//! the JIT checkpoint on power failure. Functionally this matches
//! WL-Cache's bounded-dirty-state idea, but the paper's three §3.3
//! objections are structural, and this implementation models all of
//! them so the ablation bench (`--bin ablation_wbuf`) can quantify the
//! comparison:
//!
//! 1. **CAM cost**: every load must search the buffer before the cache
//!    can answer (the buffer may hold newer data), adding latency and
//!    CAM search energy to the *critical path* of every access;
//! 2. **energy**: the buffer holds full lines (data + address), so its
//!    checkpoint reserve and per-access energy exceed the DirtyQueue's
//!    metadata-only footprint;
//! 3. **miss latency**: a miss consults the buffer *and* the cache
//!    before going to memory, lengthening the miss path.

use crate::designs::WbCore;
use crate::{CacheDesign, CacheGeometry, CacheTech, MemCtx, ReplacementPolicy};
use ehsim_energy::{EnergyCategory, VoltageThresholds};
use ehsim_mem::{AccessSize, NvmEnergy, Pj, Ps};

/// CAM search latency added to every access: a parallel compare across
/// the line-wide buffer entries gates the cache pipeline (~1.2 ns at
/// 90 nm — this is the §3.3 "critical path" objection).
const CAM_SEARCH_PS: Ps = 1_200;
/// CAM search energy per access (from `ehsim_hwcost::write_buffer_spec`:
/// a 6–8-line CAM-searched buffer costs ~7 pJ per probe).
const CAM_SEARCH_PJ: Pj = 7.0;
/// Energy to write one line into the buffer.
const BUF_WRITE_PJ: Pj = 6.0;

#[derive(Debug, Clone)]
struct BufEntry {
    base: u32,
    data: Vec<u8>,
    /// Time at which the in-flight drain (if any) completes.
    draining_until: Option<Ps>,
}

/// The §3.3 write-buffer alternative to WL-Cache.
#[derive(Debug, Clone)]
pub struct WriteBufferCache {
    core: WbCore,
    buffer: Vec<BufEntry>,
    capacity: usize,
    /// Start draining when occupancy exceeds this (like waterline).
    drain_at: usize,
    stall_count: u64,
}

impl WriteBufferCache {
    /// Creates the design with a `capacity`-line write buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy, capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one line");
        Self {
            core: WbCore::new(geom, policy, CacheTech::sram()),
            buffer: Vec::with_capacity(capacity),
            capacity,
            drain_at: capacity.saturating_sub(1).max(1),
            stall_count: 0,
        }
    }

    /// Number of store stalls on a full buffer.
    pub fn stalls(&self) -> u64 {
        self.stall_count
    }

    fn charge_cam(&self, ctx: &mut MemCtx<'_>) {
        ctx.now += CAM_SEARCH_PS;
        ctx.meter.add(EnergyCategory::CacheRead, CAM_SEARCH_PJ);
    }

    /// Removes entries whose drain completed.
    fn reap(&mut self, now: Ps) {
        self.buffer
            .retain(|e| !matches!(e.draining_until, Some(t) if t <= now));
    }

    /// Starts draining the oldest idle entry.
    fn drain_one(&mut self, ctx: &mut MemCtx<'_>) {
        if let Some(e) = self.buffer.iter_mut().find(|e| e.draining_until.is_none()) {
            let done = {
                let (_, done) = ctx.port.schedule(
                    ctx.now,
                    ctx.timing.line_write_ps(),
                    ctx.timing.line_write_recovery_ps(),
                );
                ctx.nvm.write_line(e.base, &e.data);
                ctx.meter.add(
                    EnergyCategory::MemWrite,
                    ctx.energy.write_pj(e.data.len() as u32),
                );
                ctx.stats.nvm_write_bytes += e.data.len() as u64;
                ctx.stats.async_writebacks += 1;
                done
            };
            e.draining_until = Some(done);
        }
    }

    fn buffer_lookup(&self, base: u32) -> Option<usize> {
        self.buffer.iter().position(|e| e.base == base)
    }
}

impl CacheDesign for WriteBufferCache {
    fn name(&self) -> &'static str {
        "WBuf-Cache"
    }

    fn thresholds(&self) -> VoltageThresholds {
        // The buffer's worst case (all `capacity` lines full) must be
        // checkpointable — same reserve shape as WL-Cache at
        // maxline = capacity, i.e. the *highest* WL operating point.
        VoltageThresholds::wl(self.capacity.min(8), 8)
    }

    fn load(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize) -> (Ps, u64) {
        self.reap(ctx.now);
        // Objection 1: the CAM search gates *every* load.
        self.charge_cam(ctx);
        let base = ehsim_mem::line_base(addr, self.core.array().geometry().line_bytes());
        if let Some(ix) = self.buffer_lookup(base) {
            ctx.stats.loads += 1;
            ctx.stats.load_hits += 1;
            ctx.now += self.core.tech().read_hit_ps;
            let off = (addr - base) as usize;
            let mut v = 0u64;
            for i in 0..size.bytes() as usize {
                v |= u64::from(self.buffer[ix].data[off + i]) << (8 * i);
            }
            return (ctx.now, v);
        }
        let (_, value, _) = self.core.load(ctx, addr, size);
        (ctx.now, value)
    }

    fn store(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize, value: u64) -> Ps {
        self.reap(ctx.now);
        self.charge_cam(ctx);
        ctx.stats.stores += 1;
        let line_bytes = self.core.array().geometry().line_bytes();
        let base = ehsim_mem::line_base(addr, line_bytes);

        // Keep the cache copy coherent (write-through into SRAM).
        if let Some(sw) = self.core.array().lookup(addr) {
            ctx.stats.store_hits += 1;
            self.core.array_mut().write(sw, addr, size, value);
            ctx.meter
                .add(EnergyCategory::CacheWrite, self.core.tech().write_pj);
        }

        // Merge into an existing buffer entry or allocate a new one.
        let ix = match self.buffer_lookup(base) {
            Some(ix) => ix,
            None => {
                while self.buffer.len() >= self.capacity {
                    // Full: force a drain and wait for the earliest one.
                    self.drain_one(ctx);
                    let earliest = self
                        .buffer
                        .iter()
                        .filter_map(|e| e.draining_until)
                        .min()
                        .expect("full buffer must be draining");
                    if earliest > ctx.now {
                        self.stall_count += 1;
                        ctx.stats.stall_ps += earliest - ctx.now;
                        ctx.now = earliest;
                    }
                    self.reap(ctx.now);
                }
                // Read-modify-write: fetch the line's current contents
                // so partial stores merge correctly.
                let mut data = vec![0u8; line_bytes as usize];
                if let Some(sw) = self.core.array().lookup(base) {
                    data.copy_from_slice(self.core.array().line_data(sw));
                } else {
                    ctx.nvm.read_line(base, &mut data);
                    ctx.meter
                        .add(EnergyCategory::MemRead, ctx.energy.read_pj(line_bytes));
                    ctx.stats.nvm_read_bytes += u64::from(line_bytes);
                    let (_, done) = ctx.port.schedule(ctx.now, ctx.timing.line_read_ps(), 0);
                    ctx.now = done;
                }
                self.buffer.push(BufEntry {
                    base,
                    data,
                    draining_until: None,
                });
                self.buffer.len() - 1
            }
        };
        let off = (addr - base) as usize;
        for i in 0..size.bytes() as usize {
            self.buffer[ix].data[off + i] = (value >> (8 * i)) as u8;
        }
        ctx.meter.add(EnergyCategory::CacheWrite, BUF_WRITE_PJ);

        // Re-dirtying a draining entry is unsafe to merge — the drain
        // snapshot already left; start a fresh entry state.
        if self.buffer[ix].draining_until.is_some() {
            self.buffer[ix].draining_until = None;
        }

        if self.buffer.len() > self.drain_at {
            self.drain_one(ctx);
        }
        ctx.now
    }

    fn checkpoint(&mut self, ctx: &mut MemCtx<'_>) -> Ps {
        self.reap(ctx.now);
        for e in &self.buffer {
            let done = ctx.sync_line_write(e.base, &e.data);
            ctx.now = done;
            ctx.stats.checkpoint_lines += 1;
        }
        self.buffer.clear();
        ctx.now
    }

    fn power_off(&mut self) {
        self.core.array_mut().invalidate_all();
        self.buffer.clear();
    }

    fn reboot(&mut self, ctx: &mut MemCtx<'_>, _on_time_ps: Ps) -> Ps {
        ctx.now
    }

    fn dirty_lines(&self) -> usize {
        self.buffer.len()
    }

    fn worst_checkpoint_pj(&self, energy: &NvmEnergy) -> Pj {
        let line_bytes = self.core.array().geometry().line_bytes();
        self.capacity as f64 * energy.write_pj(line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheStats;
    use ehsim_energy::EnergyMeter;
    use ehsim_mem::{FunctionalMem, NvmPort, NvmTiming};

    struct H {
        port: NvmPort,
        timing: NvmTiming,
        energy: NvmEnergy,
        nvm: FunctionalMem,
        meter: EnergyMeter,
        stats: CacheStats,
        now: Ps,
        obs: ehsim_obs::ObserverBox,
    }

    impl H {
        fn new() -> Self {
            Self {
                port: NvmPort::new(),
                timing: NvmTiming::default(),
                energy: NvmEnergy::default(),
                nvm: FunctionalMem::new(8192),
                meter: EnergyMeter::new(),
                stats: CacheStats::new(),
                now: 0,
                obs: ehsim_obs::ObserverBox::Noop,
            }
        }
        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                now: self.now,
                port: &mut self.port,
                timing: &self.timing,
                energy: &self.energy,
                nvm: &mut self.nvm,
                meter: &mut self.meter,
                stats: &mut self.stats,
                cap_voltage: 3.3,
                obs: &mut self.obs,
            }
        }
    }

    fn wbuf() -> WriteBufferCache {
        WriteBufferCache::new(CacheGeometry::new(512, 2, 64), ReplacementPolicy::Lru, 4)
    }

    #[test]
    fn loads_see_buffered_stores() {
        let mut h = H::new();
        let mut c = wbuf();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x100, AccessSize::B4, 0xfeed);
        let (_, v) = c.load(&mut ctx, 0x100, AccessSize::B4);
        assert_eq!(v, 0xfeed, "buffer must forward to loads");
    }

    #[test]
    fn every_access_pays_the_cam_search() {
        let mut h = H::new();
        let mut c = wbuf();
        let mut ctx = h.ctx();
        let t0 = ctx.now;
        // Warm the line, then measure a *hit* load: it still pays CAM.
        let _ = c.load(&mut ctx, 0x40, AccessSize::B4);
        let warm_start = ctx.now;
        let _ = c.load(&mut ctx, 0x40, AccessSize::B4);
        let hit_latency = ctx.now - warm_start;
        assert!(hit_latency >= CAM_SEARCH_PS + 300, "got {hit_latency}");
        assert!(ctx.now > t0);
    }

    #[test]
    fn buffer_occupancy_is_bounded_and_stalls_count() {
        let mut h = H::new();
        let mut c = wbuf();
        for i in 0..16u32 {
            let mut ctx = h.ctx();
            let done = c.store(&mut ctx, i * 64, AccessSize::B4, u64::from(i));
            h.now = done;
        }
        assert!(c.dirty_lines() <= 4);
        assert!(c.stalls() > 0, "dense stores must stall on a full buffer");
    }

    #[test]
    fn checkpoint_flushes_buffer_to_nvm() {
        let mut h = H::new();
        let mut c = wbuf();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x00, AccessSize::B4, 0x11);
        let _ = c.store(&mut ctx, 0x40, AccessSize::B4, 0x22);
        let _ = c.checkpoint(&mut ctx);
        c.power_off();
        assert_eq!(h.nvm.read(0x00, AccessSize::B4), 0x11);
        assert_eq!(h.nvm.read(0x40, AccessSize::B4), 0x22);
        assert_eq!(c.dirty_lines(), 0);
    }

    #[test]
    fn partial_stores_merge_with_memory_contents() {
        let mut h = H::new();
        h.nvm.write(0x80, AccessSize::B8, 0xaaaa_bbbb_cccc_dddd);
        let mut c = wbuf();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x80, AccessSize::B2, 0x1111);
        let (_, v) = c.load(&mut ctx, 0x80, AccessSize::B8);
        assert_eq!(v, 0xaaaa_bbbb_cccc_1111);
    }

    #[test]
    fn reserve_scales_with_buffer_capacity() {
        let e = NvmEnergy::default();
        let small =
            WriteBufferCache::new(CacheGeometry::new(512, 2, 64), ReplacementPolicy::Lru, 2);
        assert!(wbuf().worst_checkpoint_pj(&e) > small.worst_checkpoint_pj(&e));
    }
}
