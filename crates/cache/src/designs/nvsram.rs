//! `NVSRAM(ideal)`: volatile write-back SRAM cache with a non-volatile
//! checkpoint counterpart (Fig 1(d)).

use crate::designs::WbCore;
use crate::{CacheDesign, CacheGeometry, CacheTech, MemCtx, ReplacementPolicy};
use ehsim_energy::{EnergyCategory, VoltageThresholds};
use ehsim_mem::{AccessSize, NvmEnergy, Pj, Ps};

/// The state-of-the-art baseline: a normal SRAM write-back cache backed
/// by a same-size ReRAM array used only for JIT checkpointing.
///
/// This models the *ideal* variant of \[16\]: at power failure exactly the
/// dirty lines are copied to the NV counterpart ("magically", without
/// extra lookup hardware), and at reboot the whole cache is restored
/// warm. Its two structural costs, which WL-Cache attacks, are:
///
/// - the energy **reserve** must cover the worst case in which *every*
///   line is dirty, so `Vbackup` is high (3.1 V) and less of each
///   interval's energy is usable for progress;
/// - restoring the warm cache requires a full recharge (`Von` = 3.5 V),
///   lengthening every outage.
#[derive(Debug, Clone)]
pub struct NvSramCache {
    core: WbCore,
    /// Per-line checkpoint cost into the adjacent ReRAM copy.
    ckpt_line_ps: Ps,
    ckpt_line_pj: Pj,
    /// Per-line warm-restore cost back into SRAM.
    restore_line_ps: Ps,
    restore_line_pj: Pj,
}

impl NvSramCache {
    /// Creates a cold NVSRAM(ideal) cache.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let sram = CacheTech::sram();
        let nv = CacheTech::nv_reram();
        let words_per_line = f64::from(geom.line_bytes()) / 8.0;
        Self {
            core: WbCore::new(geom, policy, sram.clone()),
            // One wide row write to the adjacent ReRAM per line.
            ckpt_line_ps: nv.write_hit_ps,
            ckpt_line_pj: nv.write_pj * words_per_line,
            // ReRAM row read plus SRAM row write per line.
            restore_line_ps: nv.read_hit_ps + sram.write_hit_ps,
            restore_line_pj: nv.read_pj * words_per_line + sram.write_pj * words_per_line,
        }
    }

    /// Per-line checkpoint energy (pJ) into the NV counterpart.
    pub fn checkpoint_line_pj(&self) -> Pj {
        self.ckpt_line_pj
    }
}

impl CacheDesign for NvSramCache {
    fn name(&self) -> &'static str {
        "NVSRAM(ideal)"
    }

    fn thresholds(&self) -> VoltageThresholds {
        VoltageThresholds::nvsram()
    }

    fn load(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize) -> (Ps, u64) {
        let (_, value, _) = self.core.load(ctx, addr, size);
        (ctx.now, value)
    }

    fn store(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize, value: u64) -> Ps {
        let (sw, _, _) = self.core.store_resident(ctx, addr, size, value);
        self.core.array_mut().set_dirty(sw, true);
        ctx.now
    }

    fn checkpoint(&mut self, ctx: &mut MemCtx<'_>) -> Ps {
        // Copy exactly the dirty lines into the adjacent NV array. The
        // copy is cache-to-cache: it does not touch the NVM port.
        let dirty = self.core.array().count_dirty() as u64;
        ctx.stats.checkpoint_lines += dirty;
        ctx.meter
            .add(EnergyCategory::CacheWrite, self.ckpt_line_pj * dirty as f64);
        ctx.now + self.ckpt_line_ps * dirty
    }

    fn power_off(&mut self) {
        // The array contents conceptually move to the NV counterpart and
        // come back at reboot; we model this by retaining them (the
        // restore cost is charged in `reboot`).
    }

    fn reboot(&mut self, ctx: &mut MemCtx<'_>, _on_time_ps: Ps) -> Ps {
        let valid = self.core.array().valid_lines().count() as u64;
        ctx.stats.restored_lines += valid;
        ctx.meter.add(
            EnergyCategory::CacheRead,
            self.restore_line_pj * valid as f64,
        );
        ctx.now + self.restore_line_ps * valid
    }

    fn dirty_lines(&self) -> usize {
        self.core.array().count_dirty()
    }

    fn worst_checkpoint_pj(&self, _energy: &NvmEnergy) -> Pj {
        // Every line could be dirty (§2.3.3): reserve for all of them.
        self.ckpt_line_pj * f64::from(self.core.array().geometry().n_lines())
    }

    fn persistent_overlay(&self, nvm: &ehsim_mem::FunctionalMem) -> ehsim_mem::FunctionalMem {
        // Right after a checkpoint the SRAM contents equal the NV copy,
        // which survives the outage and is restored warm.
        let mut view = nvm.clone();
        for (sw, base) in self.core.array().valid_lines() {
            view.write_line(base, self.core.array().line_data(sw));
        }
        view
    }

    fn persistent_line(&self, base: u32) -> Option<&[u8]> {
        let sw = self.core.array().lookup(base)?;
        Some(self.core.array().line_data(sw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheStats;
    use ehsim_energy::EnergyMeter;
    use ehsim_mem::{FunctionalMem, NvmPort, NvmTiming};

    struct H {
        port: NvmPort,
        timing: NvmTiming,
        energy: NvmEnergy,
        nvm: FunctionalMem,
        meter: EnergyMeter,
        stats: CacheStats,
        now: Ps,
        obs: ehsim_obs::ObserverBox,
    }

    impl H {
        fn new() -> Self {
            Self {
                port: NvmPort::new(),
                timing: NvmTiming::default(),
                energy: NvmEnergy::default(),
                nvm: FunctionalMem::new(4096),
                meter: EnergyMeter::new(),
                stats: CacheStats::new(),
                now: 0,
                obs: ehsim_obs::ObserverBox::Noop,
            }
        }
        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                now: self.now,
                port: &mut self.port,
                timing: &self.timing,
                energy: &self.energy,
                nvm: &mut self.nvm,
                meter: &mut self.meter,
                stats: &mut self.stats,
                cap_voltage: 3.3,
                obs: &mut self.obs,
            }
        }
    }

    fn cache() -> NvSramCache {
        NvSramCache::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Fifo)
    }

    #[test]
    fn checkpoint_cost_scales_with_dirty_lines() {
        let mut h = H::new();
        let mut c = cache();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x00, AccessSize::B4, 1);
        let _ = c.store(&mut ctx, 0x40, AccessSize::B4, 2);
        assert_eq!(c.dirty_lines(), 2);
        let t0 = ctx.now;
        let done = c.checkpoint(&mut ctx);
        assert_eq!(done - t0, 2 * c.ckpt_line_ps);
        assert_eq!(h.stats.checkpoint_lines, 2);
    }

    #[test]
    fn warm_cache_after_power_cycle() {
        let mut h = H::new();
        let mut c = cache();
        let mut ctx = h.ctx();
        let _ = c.store(&mut ctx, 0x80, AccessSize::B8, 0xcafe_f00d);
        let _ = c.checkpoint(&mut ctx);
        c.power_off();
        let _ = c.reboot(&mut ctx, 0);
        let (_, v) = c.load(&mut ctx, 0x80, AccessSize::B8);
        assert_eq!(v, 0xcafe_f00d);
        assert_eq!(h.stats.load_hits, 1, "restored line should hit");
        assert_eq!(h.stats.restored_lines, 1);
    }

    #[test]
    fn reserve_covers_all_lines_dirty() {
        let c = cache();
        let per_line = c.checkpoint_line_pj();
        assert_eq!(
            c.worst_checkpoint_pj(&NvmEnergy::default()),
            per_line * 4.0 // 256 B / (2×64 B) = 2 sets × 2 ways
        );
        assert_eq!(c.thresholds(), VoltageThresholds::nvsram());
    }

    #[test]
    fn restore_charges_energy_per_valid_line() {
        let mut h = H::new();
        let mut c = cache();
        let mut ctx = h.ctx();
        let _ = c.load(&mut ctx, 0x00, AccessSize::B4);
        let _ = c.load(&mut ctx, 0x40, AccessSize::B4);
        let before = h.meter.cache_read;
        let mut ctx2 = h.ctx();
        let _ = c.reboot(&mut ctx2, 0);
        assert!(h.meter.cache_read > before);
        assert_eq!(h.stats.restored_lines, 2);
    }
}
