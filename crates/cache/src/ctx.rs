//! The contract between a cache design and the simulated machine.

use crate::CacheStats;
use ehsim_energy::{EnergyMeter, VoltageThresholds};
use ehsim_mem::{AccessSize, FunctionalMem, NvmEnergy, NvmPort, NvmTiming, Pj, Ps};
use ehsim_obs::ObserverBox;

/// Everything a cache design needs from the machine to serve one
/// operation: the clock, the NVM (timing, energy, port, and persistent
/// bytes), the energy meter and the statistics sink.
///
/// The machine constructs a fresh `MemCtx` per operation with `now` set
/// to the operation's start time; designs return absolute completion
/// times. Energy is *recorded* into [`MemCtx::meter`]; the machine drains
/// the capacitor by the meter's delta after the call, so designs never
/// manipulate the capacitor directly. `cap_voltage` is a read-only
/// observation used by WL-Cache's opportunistic dynamic adaptation (§4).
#[derive(Debug)]
pub struct MemCtx<'a> {
    /// Current simulation time (start of the operation).
    pub now: Ps,
    /// The single NVM port (busy-time arbitration).
    pub port: &'a mut NvmPort,
    /// NVM timing parameters.
    pub timing: &'a NvmTiming,
    /// NVM energy parameters.
    pub energy: &'a NvmEnergy,
    /// Persistent main-memory bytes.
    pub nvm: &'a mut FunctionalMem,
    /// Energy accounting sink.
    pub meter: &'a mut EnergyMeter,
    /// Statistics sink.
    pub stats: &'a mut CacheStats,
    /// Capacitor voltage at `now` (read-only observation).
    pub cap_voltage: f64,
    /// Event sink (observation only — never influences behaviour).
    /// Instrumented designs guard emission with
    /// [`ObserverBox::enabled`] so the default no-op costs nothing.
    pub obs: &'a mut ObserverBox,
}

impl MemCtx<'_> {
    /// Synchronously writes one full line (`data`) at `base` to NVM:
    /// schedules the port, updates the persistent bytes, meters energy
    /// and counts traffic. Returns the absolute completion (ACK) time.
    #[inline]
    pub fn sync_line_write(&mut self, base: u32, data: &[u8]) -> Ps {
        let (_, done) = self.port.schedule(
            self.now,
            self.timing.line_write_ps(),
            self.timing.line_write_recovery_ps(),
        );
        self.nvm.write_line(base, data);
        let bytes = data.len() as u32;
        self.meter.add(
            ehsim_energy::EnergyCategory::MemWrite,
            self.energy.write_pj(bytes),
        );
        self.stats.nvm_write_bytes += u64::from(bytes);
        done
    }

    /// Synchronously reads one full line at `base` from NVM into `buf`.
    /// Returns the absolute completion time.
    #[inline]
    pub fn sync_line_read(&mut self, base: u32, buf: &mut [u8]) -> Ps {
        let (_, done) = self.port.schedule(self.now, self.timing.line_read_ps(), 0);
        self.nvm.read_line(base, buf);
        let bytes = buf.len() as u32;
        self.meter.add(
            ehsim_energy::EnergyCategory::MemRead,
            self.energy.read_pj(bytes),
        );
        self.stats.nvm_read_bytes += u64::from(bytes);
        done
    }

    /// Synchronously writes `size` bytes of `value` at `addr` to NVM
    /// (write-through store path). Returns the completion time.
    #[inline]
    pub fn sync_word_write(&mut self, addr: u32, size: AccessSize, value: u64) -> Ps {
        let (_, done) = self.port.schedule(
            self.now,
            self.timing.word_write_ps(),
            self.timing.word_write_recovery_ps(),
        );
        self.nvm.write(addr, size, value);
        self.meter.add(
            ehsim_energy::EnergyCategory::MemWrite,
            self.energy.write_pj(size.bytes()),
        );
        self.stats.word_writes += 1;
        self.stats.nvm_write_bytes += u64::from(size.bytes());
        done
    }

    /// Issues an *asynchronous* line write at `base` with snapshot
    /// `data`: the port is occupied but the caller does not wait.
    /// Returns the absolute ACK time. The persistent bytes are updated
    /// immediately (the snapshot is what lands in NVM).
    #[inline]
    pub fn async_line_write(&mut self, base: u32, data: &[u8]) -> Ps {
        let done = self.sync_line_write(base, data);
        self.stats.async_writebacks += 1;
        done
    }
}

/// A cache design pluggable into the `ehsim` machine.
///
/// Implementations: `VCacheWt`, `NvCacheWb`, `NvSramCache`,
/// `ReplayCache` (this crate) and `WlCache` (the `wl-cache` crate).
///
/// All methods take the machine context and return **absolute**
/// completion times (≥ `ctx.now`); the machine advances its clock to the
/// returned value.
pub trait CacheDesign {
    /// Display name matching the paper's figures (e.g. `"WL-Cache"`).
    fn name(&self) -> &'static str;

    /// Voltage operating points this design requires (may change at
    /// reboot for WL-Cache's adaptive management).
    fn thresholds(&self) -> VoltageThresholds;

    /// Serves a load; returns `(completion_time, value)`.
    fn load(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize) -> (Ps, u64);

    /// Serves a store; returns the completion time.
    fn store(&mut self, ctx: &mut MemCtx<'_>, addr: u32, size: AccessSize, value: u64) -> Ps;

    /// JIT checkpoint on impending power failure: persist whatever the
    /// design needs beyond the registers (which the machine checkpoints
    /// separately). Returns the completion time.
    fn checkpoint(&mut self, ctx: &mut MemCtx<'_>) -> Ps;

    /// Power is lost: volatile state disappears. Called after
    /// [`CacheDesign::checkpoint`] completed.
    fn power_off(&mut self);

    /// Power is back: restore state (e.g. NVSRAM's warm-cache refill)
    /// and, for adaptive designs, reconfigure thresholds using the
    /// just-finished power-on time `on_time_ps`. Returns the completion
    /// time.
    fn reboot(&mut self, ctx: &mut MemCtx<'_>, on_time_ps: Ps) -> Ps;

    /// Instruction-boundary notification (ReplayCache region tracking).
    /// `total_instrs` counts all retired instructions. Returns the (possibly
    /// advanced) completion time if the design had to stall the core.
    fn on_instructions(&mut self, ctx: &mut MemCtx<'_>, total_instrs: u64) -> Ps {
        let _ = total_instrs;
        ctx.now
    }

    /// Number of dirty lines currently held (for the §6.6 statistics).
    fn dirty_lines(&self) -> usize {
        0
    }

    /// Worst-case energy (pJ) a JIT checkpoint of this design may need,
    /// excluding registers. The machine asserts that the design's
    /// voltage reserve covers it.
    fn worst_checkpoint_pj(&self, energy: &NvmEnergy) -> Pj;

    /// Returns a copy of `nvm` overlaid with any data the design keeps
    /// *persistently* outside main memory (a non-volatile array, an NV
    /// checkpoint copy). Crash-consistency verification compares this
    /// view — taken right after a checkpoint — against the oracle
    /// memory. Volatile designs use the default (NVM alone must be
    /// consistent).
    fn persistent_overlay(&self, nvm: &FunctionalMem) -> FunctionalMem {
        nvm.clone()
    }

    /// Borrows the persistent bytes this design holds for the line at
    /// `base`, if it shadows main memory there — the per-line view of
    /// [`CacheDesign::persistent_overlay`]. `None` means main memory
    /// itself is the persistent content at `base`. The incremental
    /// crash-consistency checker uses this to compare only the lines
    /// written since the previous outage, without cloning memory.
    fn persistent_line(&self, base: u32) -> Option<&[u8]> {
        let _ = base;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_energy::EnergyMeter;
    use ehsim_mem::FunctionalMem;

    fn with_ctx(f: impl FnOnce(&mut MemCtx<'_>)) -> (FunctionalMem, EnergyMeter, CacheStats) {
        let mut port = NvmPort::new();
        let timing = NvmTiming::default();
        let energy = NvmEnergy::default();
        let mut nvm = FunctionalMem::new(4096);
        let mut meter = EnergyMeter::new();
        let mut stats = CacheStats::new();
        let mut obs = ObserverBox::Noop;
        {
            let mut ctx = MemCtx {
                now: 0,
                port: &mut port,
                timing: &timing,
                energy: &energy,
                nvm: &mut nvm,
                meter: &mut meter,
                stats: &mut stats,
                cap_voltage: 3.3,
                obs: &mut obs,
            };
            f(&mut ctx);
        }
        (nvm, meter, stats)
    }

    #[test]
    fn sync_line_write_updates_bytes_energy_stats() {
        let (nvm, meter, stats) = with_ctx(|ctx| {
            let data = vec![0xaa; 64];
            let done = ctx.sync_line_write(0x100, &data);
            assert_eq!(done, ctx.timing.line_write_ps());
        });
        assert_eq!(nvm.as_bytes()[0x100], 0xaa);
        assert_eq!(nvm.as_bytes()[0x13f], 0xaa);
        assert_eq!(nvm.as_bytes()[0x140], 0x00);
        assert!(meter.mem_write > 0.0);
        assert_eq!(stats.nvm_write_bytes, 64);
    }

    #[test]
    fn sync_line_read_copies_and_meters() {
        let (_, meter, stats) = with_ctx(|ctx| {
            ctx.nvm.write_line(0x40, &[7u8; 64]);
            let mut buf = vec![0u8; 64];
            let done = ctx.sync_line_read(0x40, &mut buf);
            assert!(buf.iter().all(|&b| b == 7));
            assert_eq!(done, ctx.timing.line_read_ps());
        });
        assert!(meter.mem_read > 0.0);
        assert_eq!(stats.nvm_read_bytes, 64);
    }

    #[test]
    fn word_write_traffic_counts_bytes() {
        let (nvm, _, stats) = with_ctx(|ctx| {
            ctx.sync_word_write(8, AccessSize::B4, 0xdead_beef);
        });
        assert_eq!(nvm.read(8, AccessSize::B4), 0xdead_beef);
        assert_eq!(stats.nvm_write_bytes, 4);
        assert_eq!(stats.word_writes, 1);
    }

    #[test]
    fn port_contention_serialises_operations() {
        with_ctx(|ctx| {
            let d1 = ctx.async_line_write(0x000, &[1u8; 64]);
            let d2 = ctx.sync_line_write(0x040, &[2u8; 64]);
            // Second write cannot start before the first's recovery ends.
            assert!(d2 >= d1 + ctx.timing.line_write_recovery_ps());
        });
    }
}
