//! Data-carrying set-associative tag/data array.

use crate::{CacheGeometry, ReplacementPolicy};
use ehsim_mem::AccessSize;

/// Identifies one line slot in a [`TagArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetWay {
    /// Set index.
    pub set: u32,
    /// Way within the set.
    pub way: u32,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    last_use: u64,
    filled_at: u64,
    data: Box<[u8]>,
}

/// A set-associative cache array that stores both metadata and line
/// contents.
///
/// Carrying real bytes means the simulated hierarchy is *functionally*
/// correct: workloads read back exactly what they stored through whatever
/// sequence of fills, write-backs, evictions and power failures occurred.
/// This is the substrate of every cache design in the reproduction.
///
/// The array itself is policy-passive: callers decide when to fill,
/// invalidate and clean lines; [`TagArray::victim`] implements the
/// LRU/FIFO *selection* only. Timing and energy live in the designs.
#[derive(Debug, Clone)]
pub struct TagArray {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    lines: Vec<Line>,
    tick: u64,
}

impl TagArray {
    /// Creates an empty (all-invalid) array.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let n = geom.n_lines() as usize;
        let line = Line {
            tag: 0,
            valid: false,
            dirty: false,
            last_use: 0,
            filled_at: 0,
            data: vec![0u8; geom.line_bytes() as usize].into_boxed_slice(),
        };
        Self {
            geom,
            policy,
            lines: vec![line; n],
            tick: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The replacement policy used by [`TagArray::victim`].
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    #[inline]
    fn ix(&self, sw: SetWay) -> usize {
        (sw.set * self.geom.ways() + sw.way) as usize
    }

    /// Finds the slot holding `addr`'s line, if present and valid.
    pub fn lookup(&self, addr: u32) -> Option<SetWay> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        (0..self.geom.ways())
            .map(|way| SetWay { set, way })
            .find(|&sw| {
                let l = &self.lines[self.ix(sw)];
                l.valid && l.tag == tag
            })
    }

    /// Records a use of `sw` for LRU bookkeeping.
    pub fn touch(&mut self, sw: SetWay) {
        self.tick += 1;
        let tick = self.tick;
        let ix = self.ix(sw);
        self.lines[ix].last_use = tick;
    }

    /// Chooses the way that `addr`'s fill should displace: an invalid way
    /// if one exists, otherwise the policy's victim (LRU stamp or FIFO
    /// fill order).
    pub fn victim(&self, addr: u32) -> SetWay {
        let set = self.geom.set_of(addr);
        let mut best: Option<(u64, SetWay)> = None;
        for way in 0..self.geom.ways() {
            let sw = SetWay { set, way };
            let l = &self.lines[self.ix(sw)];
            if !l.valid {
                return sw;
            }
            let key = match self.policy {
                ReplacementPolicy::Lru => l.last_use,
                ReplacementPolicy::Fifo => l.filled_at,
            };
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, sw));
            }
        }
        best.expect("sets have at least one way").1
    }

    /// Installs `addr`'s line with contents `data`, valid and clean.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line long.
    pub fn fill(&mut self, sw: SetWay, addr: u32, data: &[u8]) {
        assert_eq!(data.len() as u32, self.geom.line_bytes());
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let ix = self.ix(sw);
        let l = &mut self.lines[ix];
        l.tag = tag;
        l.valid = true;
        l.dirty = false;
        l.last_use = tick;
        l.filled_at = tick;
        l.data.copy_from_slice(data);
    }

    /// Whether `sw` holds a valid line.
    pub fn is_valid(&self, sw: SetWay) -> bool {
        self.lines[self.ix(sw)].valid
    }

    /// Whether `sw` holds a valid, dirty line.
    pub fn is_dirty(&self, sw: SetWay) -> bool {
        let l = &self.lines[self.ix(sw)];
        l.valid && l.dirty
    }

    /// Sets or clears the dirty bit of a valid line.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    pub fn set_dirty(&mut self, sw: SetWay, dirty: bool) {
        let ix = self.ix(sw);
        assert!(self.lines[ix].valid, "cannot mark an invalid line");
        self.lines[ix].dirty = dirty;
    }

    /// Invalidates one slot.
    pub fn invalidate(&mut self, sw: SetWay) {
        let ix = self.ix(sw);
        self.lines[ix].valid = false;
        self.lines[ix].dirty = false;
    }

    /// Invalidates every line (volatile cache at power-off).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
            l.dirty = false;
        }
    }

    /// Base address of the line currently held at `sw`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    pub fn base_addr(&self, sw: SetWay) -> u32 {
        let l = &self.lines[self.ix(sw)];
        assert!(l.valid, "invalid slot has no address");
        self.geom.base_of(l.tag, sw.set)
    }

    /// Borrows the line contents at `sw`.
    pub fn line_data(&self, sw: SetWay) -> &[u8] {
        &self.lines[self.ix(sw)].data
    }

    /// LRU stamp of the line at `sw` (used by the DirtyQueue's LRU
    /// replacement policy, which searches for the least-recently-used
    /// dirty line).
    pub fn last_use(&self, sw: SetWay) -> u64 {
        self.lines[self.ix(sw)].last_use
    }

    /// Reads `size` bytes at `addr` from the (hitting) line at `sw`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not fall within the line held at `sw`.
    pub fn read(&self, sw: SetWay, addr: u32, size: AccessSize) -> u64 {
        let off = self.offset_checked(sw, addr, size);
        let data = &self.lines[self.ix(sw)].data;
        let mut v = 0u64;
        for i in 0..size.bytes() as usize {
            v |= u64::from(data[off + i]) << (8 * i);
        }
        v
    }

    /// Writes `size` bytes of `value` at `addr` into the line at `sw`.
    /// Does **not** change the dirty bit — that is a policy decision.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not fall within the line held at `sw`.
    pub fn write(&mut self, sw: SetWay, addr: u32, size: AccessSize, value: u64) {
        let off = self.offset_checked(sw, addr, size);
        let ix = self.ix(sw);
        let data = &mut self.lines[ix].data;
        for i in 0..size.bytes() as usize {
            data[off + i] = (value >> (8 * i)) as u8;
        }
    }

    fn offset_checked(&self, sw: SetWay, addr: u32, size: AccessSize) -> usize {
        let l = &self.lines[self.ix(sw)];
        assert!(l.valid, "access to invalid line");
        let base = self.geom.base_of(l.tag, sw.set);
        assert_eq!(
            self.geom.line_base(addr),
            base,
            "address 0x{addr:x} not in line at 0x{base:x}"
        );
        let off = (addr - base) as usize;
        assert!(off + size.bytes() as usize <= self.geom.line_bytes() as usize);
        off
    }

    /// Iterates over all valid dirty lines as `(slot, base_addr)`.
    pub fn dirty_lines(&self) -> impl Iterator<Item = (SetWay, u32)> + '_ {
        let ways = self.geom.ways();
        (0..self.geom.n_lines()).filter_map(move |i| {
            let sw = SetWay {
                set: i / ways,
                way: i % ways,
            };
            let l = &self.lines[self.ix(sw)];
            (l.valid && l.dirty).then(|| (sw, self.geom.base_of(l.tag, sw.set)))
        })
    }

    /// Iterates over all valid lines as `(slot, base_addr)`.
    pub fn valid_lines(&self) -> impl Iterator<Item = (SetWay, u32)> + '_ {
        let ways = self.geom.ways();
        (0..self.geom.n_lines()).filter_map(move |i| {
            let sw = SetWay {
                set: i / ways,
                way: i % ways,
            };
            let l = &self.lines[self.ix(sw)];
            l.valid.then(|| (sw, self.geom.base_of(l.tag, sw.set)))
        })
    }

    /// Number of valid dirty lines.
    pub fn count_dirty(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray {
        // 2 sets, 2 ways, 64 B lines.
        TagArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Lru)
    }

    fn line(v: u8) -> Vec<u8> {
        vec![v; 64]
    }

    #[test]
    fn cold_array_misses_everything() {
        let a = small();
        assert!(a.lookup(0).is_none());
        assert_eq!(a.count_dirty(), 0);
        assert_eq!(a.dirty_lines().count(), 0);
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut a = small();
        let sw = a.victim(0x100);
        a.fill(sw, 0x100, &line(7));
        assert_eq!(a.lookup(0x100), Some(sw));
        assert_eq!(a.lookup(0x13f), Some(sw)); // same line
        assert!(a.lookup(0x140).is_none()); // next line
        assert_eq!(a.base_addr(sw), 0x100);
        assert_eq!(a.read(sw, 0x104, AccessSize::B4), 0x0707_0707);
    }

    #[test]
    fn victim_prefers_invalid_way() {
        let mut a = small();
        let sw0 = a.victim(0);
        a.fill(sw0, 0, &line(1));
        let sw1 = a.victim(0x100); // same set (set 0 of 2 sets? 0x100=256 → set 0)
        assert_eq!(sw1.set, sw0.set);
        assert_ne!(sw1.way, sw0.way);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut a = small();
        let s0 = a.victim(0x000);
        a.fill(s0, 0x000, &line(1));
        let s1 = a.victim(0x100);
        a.fill(s1, 0x100, &line(2));
        // Touch the older line; the newer becomes the LRU victim.
        a.touch(s0);
        let v = a.victim(0x200);
        assert_eq!(v, s1);
    }

    #[test]
    fn fifo_victim_ignores_touches() {
        let mut a = TagArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Fifo);
        let s0 = a.victim(0x000);
        a.fill(s0, 0x000, &line(1));
        let s1 = a.victim(0x100);
        a.fill(s1, 0x100, &line(2));
        a.touch(s0);
        a.touch(s0);
        let v = a.victim(0x200);
        assert_eq!(v, s0, "FIFO evicts oldest fill regardless of touches");
    }

    #[test]
    fn write_read_round_trip_and_dirty_tracking() {
        let mut a = small();
        let sw = a.victim(0x40);
        a.fill(sw, 0x40, &line(0));
        a.write(sw, 0x48, AccessSize::B8, 0x1122_3344_5566_7788);
        assert_eq!(a.read(sw, 0x48, AccessSize::B8), 0x1122_3344_5566_7788);
        assert!(!a.is_dirty(sw), "write alone does not set dirty");
        a.set_dirty(sw, true);
        assert!(a.is_dirty(sw));
        assert_eq!(a.count_dirty(), 1);
        let d: Vec<_> = a.dirty_lines().collect();
        assert_eq!(d, vec![(sw, 0x40)]);
        a.set_dirty(sw, false);
        assert_eq!(a.count_dirty(), 0);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut a = small();
        for addr in [0u32, 0x40, 0x80, 0xc0] {
            let sw = a.victim(addr);
            a.fill(sw, addr, &line(9));
            a.set_dirty(sw, true);
        }
        assert_eq!(a.valid_lines().count(), 4);
        a.invalidate_all();
        assert_eq!(a.valid_lines().count(), 0);
        assert_eq!(a.count_dirty(), 0);
        assert!(a.lookup(0).is_none());
    }

    #[test]
    #[should_panic(expected = "not in line")]
    fn cross_line_access_panics() {
        let mut a = small();
        let sw = a.victim(0);
        a.fill(sw, 0, &line(0));
        let _ = a.read(sw, 0x40, AccessSize::B1);
    }

    #[test]
    fn conflicting_fill_replaces_tag() {
        let mut a = TagArray::new(CacheGeometry::new(128, 1, 64), ReplacementPolicy::Lru);
        let sw = a.victim(0x000);
        a.fill(sw, 0x000, &line(1));
        // 0x80 maps to the same (single-way) set 0? set count = 2.
        let sw2 = a.victim(0x100);
        assert_eq!(sw2, sw);
        a.fill(sw2, 0x100, &line(2));
        assert!(a.lookup(0x000).is_none());
        assert_eq!(a.lookup(0x100), Some(sw));
    }
}
