//! Data-carrying set-associative tag/data array.

use crate::{CacheGeometry, ReplacementPolicy};
use ehsim_mem::AccessSize;

/// Identifies one line slot in a [`TagArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetWay {
    /// Set index.
    pub set: u32,
    /// Way within the set.
    pub way: u32,
}

/// A set-associative cache array that stores both metadata and line
/// contents.
///
/// Carrying real bytes means the simulated hierarchy is *functionally*
/// correct: workloads read back exactly what they stored through whatever
/// sequence of fills, write-backs, evictions and power failures occurred.
/// This is the substrate of every cache design in the reproduction.
///
/// The array itself is policy-passive: callers decide when to fill,
/// invalidate and clean lines; [`TagArray::victim`] implements the
/// LRU/FIFO *selection* only. Timing and energy live in the designs.
///
/// # Layout
///
/// Storage is struct-of-arrays: one contiguous vector per metadata field
/// (`tags`, `valid`, `dirty`, `last_use`, `filled_at`) indexed by
/// `set * ways + way`, plus a single flat data block holding every
/// line's bytes back to back. A set scan in `lookup`/`victim` therefore
/// walks `ways` adjacent elements of one small vector instead of
/// chasing a boxed allocation per line, and filling a line is a copy
/// into (or an NVM read directly targeting) a slice of the flat block.
/// Set/tag extraction uses shift/mask forms precomputed from the
/// geometry's power-of-two invariants; they are exact integer
/// equivalents of the division-based [`CacheGeometry`] helpers. A
/// maintained counter makes [`TagArray::count_dirty`] O(1).
#[derive(Debug, Clone)]
pub struct TagArray {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    tick: u64,
    ways: u32,
    line_bytes: u32,
    /// log2(line_bytes); `addr >> line_shift` is the line number.
    line_shift: u32,
    /// log2(n_sets); the set index occupies this many bits above the
    /// line offset.
    set_shift: u32,
    /// `n_sets - 1`, the mask selecting the set bits.
    set_mask: u32,
    /// Number of valid dirty lines, maintained across fills,
    /// `set_dirty` transitions and invalidations (dirty implies valid).
    dirty_count: usize,
    tags: Vec<u32>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    last_use: Vec<u64>,
    filled_at: Vec<u64>,
    /// All line contents, `line_bytes` per slot, in slot-index order.
    data: Vec<u8>,
}

impl TagArray {
    /// Creates an empty (all-invalid) array.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let n = geom.n_lines() as usize;
        let line_bytes = geom.line_bytes();
        // `lookup` packs one hit bit per way into a u64 mask.
        assert!(geom.ways() <= 64, "lookup's hit mask holds at most 64 ways");
        Self {
            geom,
            policy,
            tick: 0,
            ways: geom.ways(),
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            set_shift: geom.n_sets().trailing_zeros(),
            set_mask: geom.n_sets() - 1,
            dirty_count: 0,
            tags: vec![0; n],
            valid: vec![false; n],
            dirty: vec![false; n],
            last_use: vec![0; n],
            filled_at: vec![0; n],
            data: vec![0u8; n * line_bytes as usize],
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The replacement policy used by [`TagArray::victim`].
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    #[inline]
    fn ix(&self, sw: SetWay) -> usize {
        (sw.set * self.ways + sw.way) as usize
    }

    #[inline]
    fn set_of(&self, addr: u32) -> u32 {
        (addr >> self.line_shift) & self.set_mask
    }

    #[inline]
    fn tag_of(&self, addr: u32) -> u32 {
        addr >> (self.line_shift + self.set_shift)
    }

    /// Base address of the line whose tag is stored at slot `ix` in set
    /// `set`. Shift form of `CacheGeometry::base_of`, exact under
    /// wrapping as well.
    #[inline]
    fn base_of_ix(&self, ix: usize, set: u32) -> u32 {
        ((self.tags[ix] << self.set_shift) | set) << self.line_shift
    }

    #[inline]
    fn line_slice(&self, ix: usize) -> &[u8] {
        let lb = self.line_bytes as usize;
        &self.data[ix * lb..(ix + 1) * lb]
    }

    /// Finds the slot holding `addr`'s line, if present and valid.
    ///
    /// The scan is a branchless compare over the set's slice of the SoA
    /// tag vector: each way contributes one bit to a hit mask, and the
    /// lowest set bit picks the (unique, but lowest-way by construction)
    /// hit. With no early exit or data-dependent branch in the loop the
    /// compiler can unroll and autovectorize it across the `ways`
    /// adjacent `u32` lanes; equivalence with the early-exit scalar scan
    /// is debug-asserted on every call.
    #[inline]
    pub fn lookup(&self, addr: u32) -> Option<SetWay> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let first = (set * self.ways) as usize;
        let n = self.ways as usize;
        let tags = &self.tags[first..first + n];
        let valid = &self.valid[first..first + n];
        let mut mask: u64 = 0;
        for (way, (&t, &v)) in tags.iter().zip(valid).enumerate() {
            mask |= (((t == tag) & v) as u64) << way;
        }
        let hit = if mask == 0 {
            None
        } else {
            Some(SetWay {
                set,
                way: mask.trailing_zeros(),
            })
        };
        debug_assert_eq!(
            hit,
            self.lookup_scalar(addr),
            "masked lookup diverged from the scalar scan"
        );
        hit
    }

    /// The reference early-exit scan [`TagArray::lookup`] is checked
    /// against in debug builds.
    fn lookup_scalar(&self, addr: u32) -> Option<SetWay> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let first = (set * self.ways) as usize;
        for way in 0..self.ways {
            let ix = first + way as usize;
            if self.valid[ix] && self.tags[ix] == tag {
                return Some(SetWay { set, way });
            }
        }
        None
    }

    /// Records a use of `sw` for LRU bookkeeping.
    #[inline]
    pub fn touch(&mut self, sw: SetWay) {
        self.tick += 1;
        let ix = self.ix(sw);
        self.last_use[ix] = self.tick;
    }

    /// Chooses the way that `addr`'s fill should displace: an invalid way
    /// if one exists, otherwise the policy's victim (LRU stamp or FIFO
    /// fill order). Ties keep the lowest way.
    #[inline]
    pub fn victim(&self, addr: u32) -> SetWay {
        let set = self.set_of(addr);
        let first = (set * self.ways) as usize;
        let mut best: Option<(u64, u32)> = None;
        for way in 0..self.ways {
            let ix = first + way as usize;
            if !self.valid[ix] {
                return SetWay { set, way };
            }
            let key = match self.policy {
                ReplacementPolicy::Lru => self.last_use[ix],
                ReplacementPolicy::Fifo => self.filled_at[ix],
            };
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, way));
            }
        }
        let way = best.expect("sets have at least one way").1;
        SetWay { set, way }
    }

    /// Installs `addr`'s line with contents `data`, valid and clean.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line long.
    pub fn fill(&mut self, sw: SetWay, addr: u32, data: &[u8]) {
        assert_eq!(data.len() as u32, self.line_bytes);
        self.fill_slot(sw, addr).copy_from_slice(data);
    }

    /// Installs `addr`'s line metadata (valid, clean, fresh LRU/FIFO
    /// stamps) and returns the slot's data slice for the caller to fill
    /// in place — the allocation-free counterpart of [`TagArray::fill`],
    /// used to read a line straight from NVM into the array.
    #[inline]
    pub fn fill_slot(&mut self, sw: SetWay, addr: u32) -> &mut [u8] {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag_of(addr);
        let ix = self.ix(sw);
        if self.dirty[ix] {
            self.dirty_count -= 1;
        }
        self.tags[ix] = tag;
        self.valid[ix] = true;
        self.dirty[ix] = false;
        self.last_use[ix] = tick;
        self.filled_at[ix] = tick;
        let lb = self.line_bytes as usize;
        &mut self.data[ix * lb..(ix + 1) * lb]
    }

    /// Whether `sw` holds a valid line.
    pub fn is_valid(&self, sw: SetWay) -> bool {
        self.valid[self.ix(sw)]
    }

    /// Whether `sw` holds a valid, dirty line.
    pub fn is_dirty(&self, sw: SetWay) -> bool {
        let ix = self.ix(sw);
        self.valid[ix] && self.dirty[ix]
    }

    /// Sets or clears the dirty bit of a valid line.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    #[inline]
    pub fn set_dirty(&mut self, sw: SetWay, dirty: bool) {
        let ix = self.ix(sw);
        assert!(self.valid[ix], "cannot mark an invalid line");
        if self.dirty[ix] != dirty {
            if dirty {
                self.dirty_count += 1;
            } else {
                self.dirty_count -= 1;
            }
            self.dirty[ix] = dirty;
        }
    }

    /// Invalidates one slot.
    pub fn invalidate(&mut self, sw: SetWay) {
        let ix = self.ix(sw);
        if self.dirty[ix] {
            self.dirty_count -= 1;
        }
        self.valid[ix] = false;
        self.dirty[ix] = false;
    }

    /// Invalidates every line (volatile cache at power-off).
    pub fn invalidate_all(&mut self) {
        self.valid.fill(false);
        self.dirty.fill(false);
        self.dirty_count = 0;
    }

    /// Base address of the line currently held at `sw`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    #[inline]
    pub fn base_addr(&self, sw: SetWay) -> u32 {
        let ix = self.ix(sw);
        assert!(self.valid[ix], "invalid slot has no address");
        self.base_of_ix(ix, sw.set)
    }

    /// Borrows the line contents at `sw`.
    #[inline]
    pub fn line_data(&self, sw: SetWay) -> &[u8] {
        self.line_slice(self.ix(sw))
    }

    /// LRU stamp of the line at `sw` (used by the DirtyQueue's LRU
    /// replacement policy, which searches for the least-recently-used
    /// dirty line).
    #[inline]
    pub fn last_use(&self, sw: SetWay) -> u64 {
        self.last_use[self.ix(sw)]
    }

    /// Reads `size` bytes at `addr` from the (hitting) line at `sw`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not fall within the line held at `sw`.
    #[inline]
    pub fn read(&self, sw: SetWay, addr: u32, size: AccessSize) -> u64 {
        let (ix, off) = self.offset_checked(sw, addr, size);
        let line = self.line_slice(ix);
        let mut v = 0u64;
        for i in 0..size.bytes() as usize {
            v |= u64::from(line[off + i]) << (8 * i);
        }
        v
    }

    /// Writes `size` bytes of `value` at `addr` into the line at `sw`.
    /// Does **not** change the dirty bit — that is a policy decision.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not fall within the line held at `sw`.
    #[inline]
    pub fn write(&mut self, sw: SetWay, addr: u32, size: AccessSize, value: u64) {
        let (ix, off) = self.offset_checked(sw, addr, size);
        let lb = self.line_bytes as usize;
        let line = &mut self.data[ix * lb..(ix + 1) * lb];
        for i in 0..size.bytes() as usize {
            line[off + i] = (value >> (8 * i)) as u8;
        }
    }

    /// Bounds-checks an access and returns `(slot index, line offset)`.
    ///
    /// The user-facing cross-line panic (`"not in line"`) stays a hard
    /// assert. Slot validity and the in-line size bound are internal
    /// invariants established by construction on the access path (the
    /// designs only hand out slots obtained from `lookup`/`fill`, and
    /// `AccessSize` is naturally aligned), so they are `debug_assert!`s;
    /// the offsets produced here index into a single line slice, so even
    /// in release builds an out-of-line access cannot read another
    /// line's bytes.
    #[inline]
    fn offset_checked(&self, sw: SetWay, addr: u32, size: AccessSize) -> (usize, usize) {
        let ix = self.ix(sw);
        debug_assert!(self.valid[ix], "access to invalid line");
        let base = self.base_of_ix(ix, sw.set);
        assert_eq!(
            addr & !(self.line_bytes - 1),
            base,
            "address 0x{addr:x} not in line at 0x{base:x}"
        );
        let off = (addr - base) as usize;
        debug_assert!(off + size.bytes() as usize <= self.line_bytes as usize);
        (ix, off)
    }

    /// Iterates over all valid dirty lines as `(slot, base_addr)`, in
    /// set-major slot order.
    pub fn dirty_lines(&self) -> impl Iterator<Item = (SetWay, u32)> + '_ {
        (0..self.set_mask + 1).flat_map(move |set| {
            (0..self.ways).filter_map(move |way| {
                let ix = (set * self.ways + way) as usize;
                (self.valid[ix] && self.dirty[ix])
                    .then(|| (SetWay { set, way }, self.base_of_ix(ix, set)))
            })
        })
    }

    /// Iterates over all valid lines as `(slot, base_addr)`, in
    /// set-major slot order.
    pub fn valid_lines(&self) -> impl Iterator<Item = (SetWay, u32)> + '_ {
        (0..self.set_mask + 1).flat_map(move |set| {
            (0..self.ways).filter_map(move |way| {
                let ix = (set * self.ways + way) as usize;
                self.valid[ix].then(|| (SetWay { set, way }, self.base_of_ix(ix, set)))
            })
        })
    }

    /// Number of valid dirty lines. O(1): the count is maintained.
    pub fn count_dirty(&self) -> usize {
        self.dirty_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray {
        // 2 sets, 2 ways, 64 B lines.
        TagArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Lru)
    }

    fn line(v: u8) -> Vec<u8> {
        vec![v; 64]
    }

    #[test]
    fn cold_array_misses_everything() {
        let a = small();
        assert!(a.lookup(0).is_none());
        assert_eq!(a.count_dirty(), 0);
        assert_eq!(a.dirty_lines().count(), 0);
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut a = small();
        let sw = a.victim(0x100);
        a.fill(sw, 0x100, &line(7));
        assert_eq!(a.lookup(0x100), Some(sw));
        assert_eq!(a.lookup(0x13f), Some(sw)); // same line
        assert!(a.lookup(0x140).is_none()); // next line
        assert_eq!(a.base_addr(sw), 0x100);
        assert_eq!(a.read(sw, 0x104, AccessSize::B4), 0x0707_0707);
    }

    #[test]
    fn victim_prefers_invalid_way() {
        let mut a = small();
        let sw0 = a.victim(0);
        a.fill(sw0, 0, &line(1));
        let sw1 = a.victim(0x100); // same set (set 0 of 2 sets? 0x100=256 → set 0)
        assert_eq!(sw1.set, sw0.set);
        assert_ne!(sw1.way, sw0.way);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut a = small();
        let s0 = a.victim(0x000);
        a.fill(s0, 0x000, &line(1));
        let s1 = a.victim(0x100);
        a.fill(s1, 0x100, &line(2));
        // Touch the older line; the newer becomes the LRU victim.
        a.touch(s0);
        let v = a.victim(0x200);
        assert_eq!(v, s1);
    }

    #[test]
    fn fifo_victim_ignores_touches() {
        let mut a = TagArray::new(CacheGeometry::new(256, 2, 64), ReplacementPolicy::Fifo);
        let s0 = a.victim(0x000);
        a.fill(s0, 0x000, &line(1));
        let s1 = a.victim(0x100);
        a.fill(s1, 0x100, &line(2));
        a.touch(s0);
        a.touch(s0);
        let v = a.victim(0x200);
        assert_eq!(v, s0, "FIFO evicts oldest fill regardless of touches");
    }

    #[test]
    fn write_read_round_trip_and_dirty_tracking() {
        let mut a = small();
        let sw = a.victim(0x40);
        a.fill(sw, 0x40, &line(0));
        a.write(sw, 0x48, AccessSize::B8, 0x1122_3344_5566_7788);
        assert_eq!(a.read(sw, 0x48, AccessSize::B8), 0x1122_3344_5566_7788);
        assert!(!a.is_dirty(sw), "write alone does not set dirty");
        a.set_dirty(sw, true);
        assert!(a.is_dirty(sw));
        assert_eq!(a.count_dirty(), 1);
        let d: Vec<_> = a.dirty_lines().collect();
        assert_eq!(d, vec![(sw, 0x40)]);
        a.set_dirty(sw, false);
        assert_eq!(a.count_dirty(), 0);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut a = small();
        for addr in [0u32, 0x40, 0x80, 0xc0] {
            let sw = a.victim(addr);
            a.fill(sw, addr, &line(9));
            a.set_dirty(sw, true);
        }
        assert_eq!(a.valid_lines().count(), 4);
        a.invalidate_all();
        assert_eq!(a.valid_lines().count(), 0);
        assert_eq!(a.count_dirty(), 0);
        assert!(a.lookup(0).is_none());
    }

    #[test]
    #[should_panic(expected = "not in line")]
    fn cross_line_access_panics() {
        let mut a = small();
        let sw = a.victim(0);
        a.fill(sw, 0, &line(0));
        let _ = a.read(sw, 0x40, AccessSize::B1);
    }

    #[test]
    fn conflicting_fill_replaces_tag() {
        let mut a = TagArray::new(CacheGeometry::new(128, 1, 64), ReplacementPolicy::Lru);
        let sw = a.victim(0x000);
        a.fill(sw, 0x000, &line(1));
        // 0x80 maps to the same (single-way) set 0? set count = 2.
        let sw2 = a.victim(0x100);
        assert_eq!(sw2, sw);
        a.fill(sw2, 0x100, &line(2));
        assert!(a.lookup(0x000).is_none());
        assert_eq!(a.lookup(0x100), Some(sw));
    }

    #[test]
    fn fill_slot_matches_fill() {
        let mut a = small();
        let mut b = small();
        let sw = a.victim(0x80);
        a.fill(sw, 0x80, &line(5));
        let slot = b.fill_slot(sw, 0x80);
        slot.fill(5);
        assert_eq!(a.lookup(0x80), b.lookup(0x80));
        assert_eq!(a.line_data(sw), b.line_data(sw));
        assert_eq!(a.last_use(sw), b.last_use(sw));
        assert_eq!(a.base_addr(sw), b.base_addr(sw));
    }

    #[test]
    fn dirty_count_survives_refill_and_invalidate() {
        let mut a = small();
        let sw = a.victim(0x00);
        a.fill(sw, 0x00, &line(1));
        a.set_dirty(sw, true);
        assert_eq!(a.count_dirty(), 1);
        // Refilling a dirty slot drops it from the count.
        a.fill(sw, 0x00, &line(2));
        assert_eq!(a.count_dirty(), 0);
        a.set_dirty(sw, true);
        a.invalidate(sw);
        assert_eq!(a.count_dirty(), 0);
    }
}
