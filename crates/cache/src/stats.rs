//! Access statistics shared by all cache designs.

use ehsim_mem::Ps;

/// Counters every design maintains while serving traffic.
///
/// The figure harness derives the paper's metrics from these: write
/// traffic (Fig 7) from `nvm_write_bytes`, stall overhead (§6.6) from
/// `stall_ps`, hit rates for the sensitivity analyses, and so on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load operations issued by the core.
    pub loads: u64,
    /// Store operations issued by the core.
    pub stores: u64,
    /// Loads that hit in the cache.
    pub load_hits: u64,
    /// Stores that hit in the cache.
    pub store_hits: u64,
    /// Demand line fills from NVM.
    pub line_fills: u64,
    /// Lines written back to NVM on eviction.
    pub evict_writebacks: u64,
    /// Asynchronous line write-backs issued (WL-Cache cleaning,
    /// ReplayCache region persists).
    pub async_writebacks: u64,
    /// Dirty lines flushed by JIT checkpoints.
    pub checkpoint_lines: u64,
    /// Synchronous word writes to NVM (write-through stores).
    pub word_writes: u64,
    /// Total bytes written to NVM main memory (all causes).
    pub nvm_write_bytes: u64,
    /// Total bytes read from NVM main memory.
    pub nvm_read_bytes: u64,
    /// Time the core spent stalled waiting for a DirtyQueue slot
    /// (WL-Cache) or a region persist (ReplayCache).
    pub stall_ps: Ps,
    /// Lines restored into the cache at reboot (NVSRAM warm restore).
    pub restored_lines: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total memory operations.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Combined hit rate over loads and stores, or 1.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            1.0
        } else {
            (self.load_hits + self.store_hits) as f64 / acc as f64
        }
    }

    /// Load miss count.
    pub fn load_misses(&self) -> u64 {
        self.loads - self.load_hits
    }

    /// Store miss count.
    pub fn store_misses(&self) -> u64 {
        self.stores - self.store_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_idle() {
        assert_eq!(CacheStats::new().hit_rate(), 1.0);
    }

    #[test]
    fn derived_counters() {
        let s = CacheStats {
            loads: 10,
            stores: 6,
            load_hits: 8,
            store_hits: 3,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 16);
        assert_eq!(s.load_misses(), 2);
        assert_eq!(s.store_misses(), 3);
        assert!((s.hit_rate() - 11.0 / 16.0).abs() < 1e-12);
    }
}
