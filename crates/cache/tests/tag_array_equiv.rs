//! Old-vs-new `TagArray` equivalence: drives the struct-of-arrays
//! implementation and a faithful copy of the seed's array-of-structs
//! implementation through identical random operation sequences and
//! asserts every observable agrees at every step — lookups, victim
//! selection, read-back values, dirty accounting, and the exact
//! iteration order of `dirty_lines`/`valid_lines`.

use ehsim_cache::{CacheGeometry, ReplacementPolicy, SetWay, TagArray};
use ehsim_mem::AccessSize;
use proptest::prelude::*;

/// The seed implementation: one heap-boxed struct per line, division-
/// based indexing through [`CacheGeometry`], O(n) dirty counting.
#[derive(Clone)]
struct RefLine {
    tag: u32,
    valid: bool,
    dirty: bool,
    last_use: u64,
    filled_at: u64,
    data: Box<[u8]>,
}

struct RefArray {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    lines: Vec<RefLine>,
    tick: u64,
}

impl RefArray {
    fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let line = RefLine {
            tag: 0,
            valid: false,
            dirty: false,
            last_use: 0,
            filled_at: 0,
            data: vec![0u8; geom.line_bytes() as usize].into_boxed_slice(),
        };
        Self {
            geom,
            policy,
            lines: vec![line; geom.n_lines() as usize],
            tick: 0,
        }
    }

    fn ix(&self, sw: SetWay) -> usize {
        (sw.set * self.geom.ways() + sw.way) as usize
    }

    fn lookup(&self, addr: u32) -> Option<SetWay> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        (0..self.geom.ways())
            .map(|way| SetWay { set, way })
            .find(|&sw| {
                let l = &self.lines[self.ix(sw)];
                l.valid && l.tag == tag
            })
    }

    fn touch(&mut self, sw: SetWay) {
        self.tick += 1;
        let tick = self.tick;
        let ix = self.ix(sw);
        self.lines[ix].last_use = tick;
    }

    fn victim(&self, addr: u32) -> SetWay {
        let set = self.geom.set_of(addr);
        let mut best: Option<(u64, SetWay)> = None;
        for way in 0..self.geom.ways() {
            let sw = SetWay { set, way };
            let l = &self.lines[self.ix(sw)];
            if !l.valid {
                return sw;
            }
            let key = match self.policy {
                ReplacementPolicy::Lru => l.last_use,
                ReplacementPolicy::Fifo => l.filled_at,
            };
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, sw));
            }
        }
        best.expect("sets have at least one way").1
    }

    fn fill(&mut self, sw: SetWay, addr: u32, data: &[u8]) {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.geom.tag_of(addr);
        let ix = self.ix(sw);
        let l = &mut self.lines[ix];
        l.tag = tag;
        l.valid = true;
        l.dirty = false;
        l.last_use = tick;
        l.filled_at = tick;
        l.data.copy_from_slice(data);
    }

    fn is_dirty(&self, sw: SetWay) -> bool {
        let l = &self.lines[self.ix(sw)];
        l.valid && l.dirty
    }

    fn set_dirty(&mut self, sw: SetWay, dirty: bool) {
        let ix = self.ix(sw);
        assert!(self.lines[ix].valid);
        self.lines[ix].dirty = dirty;
    }

    fn invalidate(&mut self, sw: SetWay) {
        let ix = self.ix(sw);
        self.lines[ix].valid = false;
        self.lines[ix].dirty = false;
    }

    fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
            l.dirty = false;
        }
    }

    fn write(&mut self, sw: SetWay, addr: u32, size: AccessSize, value: u64) {
        let base = self.geom.base_of(self.lines[self.ix(sw)].tag, sw.set);
        let off = (addr - base) as usize;
        let ix = self.ix(sw);
        for i in 0..size.bytes() as usize {
            self.lines[ix].data[off + i] = (value >> (8 * i)) as u8;
        }
    }

    fn read(&self, sw: SetWay, addr: u32, size: AccessSize) -> u64 {
        let base = self.geom.base_of(self.lines[self.ix(sw)].tag, sw.set);
        let off = (addr - base) as usize;
        let data = &self.lines[self.ix(sw)].data;
        let mut v = 0u64;
        for i in 0..size.bytes() as usize {
            v |= u64::from(data[off + i]) << (8 * i);
        }
        v
    }

    fn dirty_lines(&self) -> Vec<(SetWay, u32)> {
        let ways = self.geom.ways();
        (0..self.geom.n_lines())
            .filter_map(|i| {
                let sw = SetWay {
                    set: i / ways,
                    way: i % ways,
                };
                let l = &self.lines[self.ix(sw)];
                (l.valid && l.dirty).then(|| (sw, self.geom.base_of(l.tag, sw.set)))
            })
            .collect()
    }

    fn valid_lines(&self) -> Vec<(SetWay, u32)> {
        let ways = self.geom.ways();
        (0..self.geom.n_lines())
            .filter_map(|i| {
                let sw = SetWay {
                    set: i / ways,
                    way: i % ways,
                };
                let l = &self.lines[self.ix(sw)];
                l.valid.then(|| (sw, self.geom.base_of(l.tag, sw.set)))
            })
            .collect()
    }

    fn count_dirty(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.dirty).count()
    }
}

const GEOMS: [(u32, u32, u32); 4] = [
    (256, 2, 64),  // 2 sets × 2 ways
    (128, 1, 64),  // direct-mapped
    (512, 4, 32),  // 4 sets × 4 ways, short lines
    (8192, 4, 64), // the paper-sized array
];

/// Applies one decoded operation to both arrays and checks the
/// observables they expose afterwards.
fn step(new: &mut TagArray, old: &mut RefArray, word: u64, addr_space: u32) {
    let addr = (word as u32) % addr_space;
    let op = (word >> 32) % 100;
    let line_bytes = old.geom.line_bytes();
    let aligned = addr & !(line_bytes - 1);
    match op {
        // Fill the victim slot with a deterministic pattern.
        0..=39 => {
            let vn = new.victim(aligned);
            let vo = old.victim(aligned);
            assert_eq!(vn, vo, "victim diverged for 0x{aligned:x}");
            let fill: Vec<u8> = (0..line_bytes)
                .map(|i| (word.rotate_left(i % 61) & 0xff) as u8)
                .collect();
            new.fill(vn, aligned, &fill);
            old.fill(vo, aligned, &fill);
        }
        // Hit path: touch + word write + dirty transition.
        40..=69 => {
            let hn = new.lookup(addr);
            let ho = old.lookup(addr);
            assert_eq!(hn, ho, "lookup diverged for 0x{addr:x}");
            if let Some(sw) = hn {
                new.touch(sw);
                old.touch(sw);
                let wa = (addr & !7).min(aligned + line_bytes - 8);
                new.write(sw, wa, AccessSize::B8, word);
                old.write(sw, wa, AccessSize::B8, word);
                new.set_dirty(sw, true);
                old.set_dirty(sw, true);
            }
        }
        // Clean a dirty line.
        70..=84 => {
            if let Some(sw) = old.lookup(addr) {
                if old.is_dirty(sw) {
                    new.set_dirty(sw, false);
                    old.set_dirty(sw, false);
                }
            }
        }
        // Invalidate a resident line.
        85..=97 => {
            if let Some(sw) = old.lookup(addr) {
                new.invalidate(sw);
                old.invalidate(sw);
            }
        }
        // Rare full flush.
        _ => {
            new.invalidate_all();
            old.invalidate_all();
        }
    }
}

/// Full-state comparison across every observable the designs use.
fn assert_equivalent(new: &TagArray, old: &RefArray, addr_space: u32) {
    assert_eq!(new.count_dirty(), old.count_dirty());
    assert_eq!(new.dirty_lines().collect::<Vec<_>>(), old.dirty_lines());
    assert_eq!(new.valid_lines().collect::<Vec<_>>(), old.valid_lines());
    let line_bytes = old.geom.line_bytes();
    for addr in (0..addr_space).step_by(line_bytes as usize) {
        let hn = new.lookup(addr);
        assert_eq!(hn, old.lookup(addr), "lookup(0x{addr:x})");
        assert_eq!(new.victim(addr), old.victim(addr), "victim(0x{addr:x})");
        if let Some(sw) = hn {
            assert_eq!(new.base_addr(sw), addr);
            assert_eq!(new.is_dirty(sw), old.is_dirty(sw));
            assert_eq!(new.last_use(sw), old.lines[old.ix(sw)].last_use);
            for off in (0..line_bytes).step_by(8) {
                assert_eq!(
                    new.read(sw, addr + off, AccessSize::B8),
                    old.read(sw, addr + off, AccessSize::B8),
                    "read(0x{:x})",
                    addr + off
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn soa_array_matches_seed_implementation(
        geom_ix in 0usize..GEOMS.len(),
        policy_ix in 0usize..2,
        ops in prop::collection::vec(proptest::arbitrary::any::<u64>(), 50..400),
    ) {
        let (size, ways, line) = GEOMS[geom_ix];
        let geom = CacheGeometry::new(size, ways, line);
        let policy = if policy_ix == 0 {
            ReplacementPolicy::Lru
        } else {
            ReplacementPolicy::Fifo
        };
        // 4× the cache capacity so fills conflict and evict.
        let addr_space = size * 4;
        let mut new = TagArray::new(geom, policy);
        let mut old = RefArray::new(geom, policy);
        for &word in &ops {
            step(&mut new, &mut old, word, addr_space);
        }
        assert_equivalent(&new, &old, addr_space);
    }
}
