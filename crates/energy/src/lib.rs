//! Energy subsystem for the WL-Cache reproduction.
//!
//! Energy harvesting systems buffer ambient energy in a small capacitor
//! and compute until the capacitor voltage falls below the JIT-checkpoint
//! threshold `Vbackup`; they then checkpoint, power off, and recharge
//! until `Von` before resuming (paper §2.1). This crate models:
//!
//! - [`Capacitor`] — the energy buffer, `E = ½CV²`;
//! - [`VoltageThresholds`] — the per-design `Vbackup`/`Von`/`Vmin`/`Vmax`
//!   operating points of Table 2;
//! - [`PowerTrace`] / [`TraceCursor`] — harvesting-power traces. The
//!   paper's recorded RF/solar/thermal traces are not distributed, so
//!   [`TraceKind::build`] synthesises seeded, deterministic equivalents
//!   calibrated to the paper's reported outage counts (DESIGN.md §4);
//! - [`EnergyMeter`] — per-category energy accounting used for the
//!   Fig 13(b) breakdown.
//!
//! # Examples
//!
//! ```
//! use ehsim_energy::{Capacitor, TraceKind};
//!
//! let mut cap = Capacitor::with_uf(1.0, 2.8, 3.5);
//! cap.set_voltage(3.3);
//! let before = cap.energy_pj();
//! cap.drain_pj(1_000.0);
//! assert!(cap.energy_pj() < before);
//!
//! let trace = TraceKind::Rf1.build();
//! let mut cursor = trace.cursor();
//! let harvested = cursor.advance(1_000_000_000); // 1 ms
//! assert!(harvested > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacitor;
mod charging;
mod meter;
mod thresholds;
mod trace;
mod trace_io;

pub use capacitor::Capacitor;
pub use charging::ChargingModel;
pub use meter::{EnergyCategory, EnergyMeter};
pub use thresholds::{Rail, VoltageThresholds};
pub use trace::{PowerTrace, TraceCursor, TraceKind};
pub use trace_io::{format_trace, load_trace, parse_trace, save_trace, TraceParseError};
