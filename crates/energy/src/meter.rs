//! Per-category energy accounting (used for the Fig 13(b) breakdown).

use ehsim_mem::Pj;

/// Where a unit of energy was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Core computation (pipeline, ALU, register file).
    Compute,
    /// Cache reads (tag + data array).
    CacheRead,
    /// Cache writes.
    CacheWrite,
    /// NVM main-memory reads (demand fills, warm-cache restore).
    MemRead,
    /// NVM main-memory writes (write-through stores, write-backs,
    /// checkpoint flushes).
    MemWrite,
}

impl EnergyCategory {
    /// All categories, in Fig 13(b) legend order.
    pub const ALL: [EnergyCategory; 5] = [
        EnergyCategory::CacheRead,
        EnergyCategory::CacheWrite,
        EnergyCategory::MemRead,
        EnergyCategory::MemWrite,
        EnergyCategory::Compute,
    ];

    /// Legend label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Compute => "Compute",
            EnergyCategory::CacheRead => "Cache(read)",
            EnergyCategory::CacheWrite => "Cache(write)",
            EnergyCategory::MemRead => "Mem(read)",
            EnergyCategory::MemWrite => "Mem(write)",
        }
    }
}

/// Accumulates energy consumption per [`EnergyCategory`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyMeter {
    /// Core computation energy (pJ).
    pub compute: Pj,
    /// Cache read energy (pJ).
    pub cache_read: Pj,
    /// Cache write energy (pJ).
    pub cache_write: Pj,
    /// NVM read energy (pJ).
    pub mem_read: Pj,
    /// NVM write energy (pJ).
    pub mem_write: Pj,
    /// Count of [`EnergyMeter::add`] calls — a cheap change detector so
    /// callers caching [`EnergyMeter::total`] know when the cached sum
    /// is stale without re-summing the categories.
    adds: u64,
}

/// Equality is over the accumulated energies only; the internal add
/// counter is bookkeeping, not state.
impl PartialEq for EnergyMeter {
    fn eq(&self, other: &Self) -> bool {
        self.compute == other.compute
            && self.cache_read == other.cache_read
            && self.cache_write == other.cache_write
            && self.mem_read == other.mem_read
            && self.mem_write == other.mem_write
    }
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `pj` picojoules to `category`.
    #[inline]
    pub fn add(&mut self, category: EnergyCategory, pj: Pj) {
        debug_assert!(pj >= 0.0, "energy must be non-negative, got {pj}");
        self.adds += 1;
        match category {
            EnergyCategory::Compute => self.compute += pj,
            EnergyCategory::CacheRead => self.cache_read += pj,
            EnergyCategory::CacheWrite => self.cache_write += pj,
            EnergyCategory::MemRead => self.mem_read += pj,
            EnergyCategory::MemWrite => self.mem_write += pj,
        }
    }

    /// Reads the accumulated energy for `category`.
    pub fn get(&self, category: EnergyCategory) -> Pj {
        match category {
            EnergyCategory::Compute => self.compute,
            EnergyCategory::CacheRead => self.cache_read,
            EnergyCategory::CacheWrite => self.cache_write,
            EnergyCategory::MemRead => self.mem_read,
            EnergyCategory::MemWrite => self.mem_write,
        }
    }

    /// Total energy across all categories (pJ).
    ///
    /// The sum is evaluated left-to-right in a fixed category order;
    /// callers that cache the result (keyed on [`EnergyMeter::version`])
    /// and re-call `total()` when stale therefore always observe the
    /// exact value a fresh sum would produce.
    #[inline]
    pub fn total(&self) -> Pj {
        self.compute + self.cache_read + self.cache_write + self.mem_read + self.mem_write
    }

    /// Monotonically increasing counter that changes on every
    /// [`EnergyMeter::add`]. Equal versions mean nothing was metered in
    /// between, so a cached [`EnergyMeter::total`] is still exact.
    #[inline]
    pub fn version(&self) -> u64 {
        self.adds
    }

    /// Component-wise sum of two meters.
    pub fn merged(&self, other: &EnergyMeter) -> EnergyMeter {
        EnergyMeter {
            compute: self.compute + other.compute,
            cache_read: self.cache_read + other.cache_read,
            cache_write: self.cache_write + other.cache_write,
            mem_read: self.mem_read + other.mem_read,
            mem_write: self.mem_write + other.mem_write,
            adds: self.adds + other.adds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Compute, 10.0);
        m.add(EnergyCategory::MemWrite, 5.0);
        m.add(EnergyCategory::MemWrite, 5.0);
        assert_eq!(m.total(), 20.0);
        assert_eq!(m.get(EnergyCategory::MemWrite), 10.0);
        assert_eq!(m.get(EnergyCategory::CacheRead), 0.0);
    }

    #[test]
    fn get_covers_all_categories() {
        let mut m = EnergyMeter::new();
        for (i, c) in EnergyCategory::ALL.iter().enumerate() {
            m.add(*c, (i + 1) as f64);
        }
        let sum: f64 = EnergyCategory::ALL.iter().map(|c| m.get(*c)).sum();
        assert_eq!(sum, m.total());
        assert_eq!(m.total(), 15.0);
    }

    #[test]
    fn merged_is_componentwise() {
        let mut a = EnergyMeter::new();
        a.add(EnergyCategory::CacheRead, 1.0);
        let mut b = EnergyMeter::new();
        b.add(EnergyCategory::CacheRead, 2.0);
        b.add(EnergyCategory::Compute, 3.0);
        let m = a.merged(&b);
        assert_eq!(m.cache_read, 3.0);
        assert_eq!(m.compute, 3.0);
        assert_eq!(m.total(), 6.0);
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(EnergyCategory::Compute.label(), "Compute");
        assert_eq!(EnergyCategory::MemWrite.label(), "Mem(write)");
    }
}
