//! Harvesting front-end charging model.

/// Voltage-dependent charging efficiency of the harvesting front end.
///
/// A real energy-harvesting rectifier delivers less and less of the
/// ambient power into the capacitor as the capacitor voltage approaches
/// the front end's open-circuit voltage — the current collapses and the
/// last tenths of a volt take disproportionately long to charge. This
/// is why a design that must recharge to `Von = 3.5 V` (NVSRAM) pays a
/// much larger per-outage recharge penalty than one that boots at
/// `3.3 V`, which is one of the paper's key levers (Table 2, §6.3).
///
/// The model is `η(V) = 1 − (V / v_knee)^steepness`, clamped to
/// `[0, 1]`: near-unity at low voltage, collapsing as `V → v_knee`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargingModel {
    /// Voltage at which delivered power reaches zero (slightly above
    /// the system's `Vmax`).
    pub v_knee: f64,
    /// Sharpness of the collapse.
    pub steepness: i32,
}

impl ChargingModel {
    /// The reproduction's default: knee just above the 3.5 V `Vmax`
    /// with a steep collapse — charging the 3.4 → 3.5 V tail runs at
    /// roughly half the efficiency of charging at 3.3 V, which is what
    /// makes a high `Von` (NVSRAM's warm-restore requirement at 3.5 V)
    /// expensive per outage while leaving the 3.3–3.45 V boot points of
    /// the other designs comparatively cheap.
    pub fn paper_default() -> Self {
        Self {
            v_knee: 3.54,
            steepness: 8,
        }
    }

    /// An ideal front end (η ≡ 1), useful in unit tests.
    pub fn ideal() -> Self {
        Self {
            v_knee: f64::INFINITY,
            steepness: 8,
        }
    }

    /// Fraction of harvested power actually delivered into the
    /// capacitor at voltage `v`.
    #[inline]
    pub fn efficiency(&self, v: f64) -> f64 {
        if !self.v_knee.is_finite() {
            return 1.0;
        }
        let r = v / self.v_knee;
        // `powi` with a runtime exponent is a library call on the settle
        // hot path. For the default steepness of 8 the call computes
        // `1.0 * ((r²)²)²` by repeated squaring; doing the same squaring
        // chain inline is bit-identical.
        let p = if self.steepness == 8 {
            let r2 = r * r;
            let r4 = r2 * r2;
            r4 * r4
        } else {
            r.powi(self.steepness)
        };
        (1.0 - p).clamp(0.0, 1.0)
    }
}

impl Default for ChargingModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_monotone_decreasing() {
        let m = ChargingModel::paper_default();
        let mut last = 1.1;
        for i in 0..40 {
            let v = 2.6 + 0.025 * f64::from(i);
            let e = m.efficiency(v);
            assert!(e <= last);
            assert!((0.0..=1.0).contains(&e));
            last = e;
        }
    }

    #[test]
    fn tail_is_slower_than_midrange() {
        let m = ChargingModel::paper_default();
        assert!(m.efficiency(3.0) > 1.5 * m.efficiency(3.5));
    }

    #[test]
    fn zero_beyond_knee() {
        let m = ChargingModel::paper_default();
        assert_eq!(m.efficiency(3.55), 0.0);
    }

    #[test]
    fn ideal_is_unity_everywhere() {
        let m = ChargingModel::ideal();
        assert_eq!(m.efficiency(3.5), 1.0);
        assert_eq!(m.efficiency(0.1), 1.0);
    }
}
