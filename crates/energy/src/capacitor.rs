//! The capacitor energy buffer.

use ehsim_mem::Pj;

/// Joules → picojoules.
const J_TO_PJ: f64 = 1e12;

/// The capacitor that buffers harvested energy (`E = ½CV²`).
///
/// The capacitor operates between `v_min` (below which the system is
/// dead — a correctly provisioned design never reaches it) and `v_max`
/// (charging saturates). The default configuration matches the paper's
/// 1 µF buffer with a 2.8 V–3.5 V window (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacitance_f: f64,
    voltage: f64,
    v_min: f64,
    v_max: f64,
    /// `energy_at_pj(v_min)`, precomputed once at construction with the
    /// identical `½CV²` expression so [`Capacitor::energy_above_min_pj`]
    /// returns bit-for-bit what `energy_above_pj(v_min)` would.
    e_at_v_min_pj: Pj,
}

impl Capacitor {
    /// Creates a capacitor of `capacitance_f` farads operating between
    /// `v_min` and `v_max` volts, initially charged to `v_min`.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance_f <= 0` or `v_min >= v_max` or `v_min < 0`.
    pub fn new(capacitance_f: f64, v_min: f64, v_max: f64) -> Self {
        assert!(capacitance_f > 0.0, "capacitance must be positive");
        assert!(v_min >= 0.0 && v_min < v_max, "need 0 <= v_min < v_max");
        Self {
            capacitance_f,
            voltage: v_min,
            v_min,
            v_max,
            e_at_v_min_pj: 0.5 * capacitance_f * v_min * v_min * J_TO_PJ,
        }
    }

    /// Creates a capacitor specified in microfarads.
    pub fn with_uf(uf: f64, v_min: f64, v_max: f64) -> Self {
        Self::new(uf * 1e-6, v_min, v_max)
    }

    /// The paper's default buffer: 1 µF, 2.8 V–3.5 V (Table 2).
    pub fn paper_default() -> Self {
        Self::with_uf(1.0, 2.8, 3.5)
    }

    /// Capacitance in farads.
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance_f
    }

    /// Current voltage in volts.
    #[inline]
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Lower operating voltage bound.
    #[inline]
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Upper operating voltage bound.
    #[inline]
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Sets the voltage directly (clamped to `[0, v_max]`).
    #[inline]
    pub fn set_voltage(&mut self, v: f64) {
        self.voltage = v.clamp(0.0, self.v_max);
    }

    /// Total stored energy at the current voltage, in picojoules.
    #[inline]
    pub fn energy_pj(&self) -> Pj {
        self.energy_at_pj(self.voltage)
    }

    /// Stored energy at voltage `v`, in picojoules.
    #[inline]
    pub fn energy_at_pj(&self, v: f64) -> Pj {
        0.5 * self.capacitance_f * v * v * J_TO_PJ
    }

    /// Energy released when discharging from `v_hi` down to `v_lo`, in
    /// picojoules. Returns 0 if `v_hi <= v_lo`.
    #[inline]
    pub fn energy_between_pj(&self, v_hi: f64, v_lo: f64) -> Pj {
        (self.energy_at_pj(v_hi) - self.energy_at_pj(v_lo)).max(0.0)
    }

    /// Energy still available before the voltage would fall to `v_floor`.
    pub fn energy_above_pj(&self, v_floor: f64) -> Pj {
        self.energy_between_pj(self.voltage, v_floor)
    }

    /// Energy still available before the voltage would fall to `v_min` —
    /// equal to `energy_above_pj(self.v_min())`, with the floor energy
    /// taken from the construction-time cache instead of recomputed on
    /// every call (this sits on the simulator's per-retire path).
    #[inline]
    pub fn energy_above_min_pj(&self) -> Pj {
        (self.energy_at_pj(self.voltage) - self.e_at_v_min_pj).max(0.0)
    }

    /// Drains `pj` picojoules, lowering the voltage (floored at 0 V).
    /// Returns the new voltage.
    #[inline]
    pub fn drain_pj(&mut self, pj: Pj) -> f64 {
        let e = (self.energy_pj() - pj).max(0.0);
        self.voltage = self.voltage_for_energy(e);
        self.voltage
    }

    /// Adds `pj` picojoules of charge, raising the voltage (capped at
    /// `v_max`). Returns the new voltage.
    #[inline]
    pub fn charge_pj(&mut self, pj: Pj) -> f64 {
        let e = self.energy_pj() + pj;
        self.voltage = self.voltage_for_energy(e).min(self.v_max);
        self.voltage
    }

    /// Voltage corresponding to a stored energy of `pj` picojoules.
    #[inline]
    pub fn voltage_for_energy(&self, pj: Pj) -> f64 {
        (2.0 * pj / J_TO_PJ / self.capacitance_f).max(0.0).sqrt()
    }

    /// Register-carried counterpart of [`Capacitor::charge_pj`]: the
    /// voltage after adding `pj` picojoules to a capacitor currently at
    /// `v`, computed with the identical f64 operations in the identical
    /// order, but with the voltage passed in and returned instead of
    /// read from and written to `self.voltage`. The batched settlement
    /// loop keeps the carried voltage in a register across a whole run
    /// of settlements; bit-identity with the mutating path is pinned by
    /// a proptest below.
    #[inline]
    pub fn charged_voltage_at(&self, v: f64, pj: Pj) -> f64 {
        let e = self.energy_at_pj(v) + pj;
        self.voltage_for_energy(e).min(self.v_max)
    }

    /// Register-carried counterpart of [`Capacitor::drain_pj`]: the
    /// voltage after draining `pj` picojoules from a capacitor at `v`.
    #[inline]
    pub fn drained_voltage_at(&self, v: f64, pj: Pj) -> f64 {
        let e = (self.energy_at_pj(v) - pj).max(0.0);
        self.voltage_for_energy(e)
    }
}

impl Default for Capacitor {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_default_geometry() {
        let c = Capacitor::paper_default();
        assert_eq!(c.capacitance_f(), 1e-6);
        assert_eq!(c.v_min(), 2.8);
        assert_eq!(c.v_max(), 3.5);
        assert_eq!(c.voltage(), 2.8);
    }

    #[test]
    fn energy_formula_half_cv2() {
        let c = Capacitor::with_uf(1.0, 0.0, 5.0);
        // ½ · 1e-6 F · (2 V)² = 2e-6 J = 2e6 pJ
        assert!((c.energy_at_pj(2.0) - 2e6).abs() < 1.0);
    }

    #[test]
    fn usable_window_of_paper_buffer() {
        // ½·1µF·(3.3² − 2.8²) ≈ 1.525 µJ: the compute budget of an
        // NV-cache interval (boot at 3.3, die at 2.8).
        let c = Capacitor::paper_default();
        let e = c.energy_between_pj(3.3, 2.8);
        assert!((e - 1.525e6).abs() < 1e3, "got {e}");
    }

    #[test]
    fn drain_then_charge_round_trips() {
        let mut c = Capacitor::paper_default();
        c.set_voltage(3.3);
        let e0 = c.energy_pj();
        c.drain_pj(100_000.0);
        c.charge_pj(100_000.0);
        assert!((c.energy_pj() - e0).abs() < 1.0);
    }

    #[test]
    fn charge_saturates_at_v_max() {
        let mut c = Capacitor::paper_default();
        c.set_voltage(3.49);
        c.charge_pj(1e9);
        assert_eq!(c.voltage(), 3.5);
    }

    #[test]
    fn drain_floors_at_zero() {
        let mut c = Capacitor::paper_default();
        c.set_voltage(2.9);
        c.drain_pj(1e12);
        assert_eq!(c.voltage(), 0.0);
        assert_eq!(c.energy_pj(), 0.0);
    }

    #[test]
    fn set_voltage_clamps() {
        let mut c = Capacitor::paper_default();
        c.set_voltage(9.0);
        assert_eq!(c.voltage(), 3.5);
        c.set_voltage(-1.0);
        assert_eq!(c.voltage(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacitance")]
    fn zero_capacitance_rejected() {
        let _ = Capacitor::new(0.0, 2.8, 3.5);
    }

    proptest! {
        #[test]
        fn voltage_for_energy_inverts_energy_at(v in 0.0f64..5.0) {
            let c = Capacitor::with_uf(3.3, 0.0, 5.0);
            let e = c.energy_at_pj(v);
            prop_assert!((c.voltage_for_energy(e) - v).abs() < 1e-9);
        }

        #[test]
        fn energy_above_min_matches_uncached(v in 0.0f64..3.5) {
            let mut c = Capacitor::paper_default();
            c.set_voltage(v);
            // Bit-identical, not approximately equal: the cached floor
            // energy must not perturb the per-retire context values.
            prop_assert_eq!(
                c.energy_above_min_pj().to_bits(),
                c.energy_above_pj(c.v_min()).to_bits()
            );
        }

        #[test]
        fn drain_is_monotone(v in 2.8f64..3.5, pj in 0.0f64..1e6) {
            let mut c = Capacitor::paper_default();
            c.set_voltage(v);
            let before = c.voltage();
            c.drain_pj(pj);
            prop_assert!(c.voltage() <= before);
        }

        #[test]
        fn charged_voltage_at_matches_charge_pj(v in 0.0f64..3.5, pj in 0.0f64..1e7) {
            let mut c = Capacitor::paper_default();
            c.set_voltage(v);
            // Bit-identical, not approximately equal: the batched
            // settlement loop substitutes the register-carried form for
            // the mutating one mid-sequence.
            let carried = c.charged_voltage_at(c.voltage(), pj);
            c.charge_pj(pj);
            prop_assert_eq!(carried.to_bits(), c.voltage().to_bits());
        }

        #[test]
        fn drained_voltage_at_matches_drain_pj(v in 0.0f64..3.5, pj in 0.0f64..1e7) {
            let mut c = Capacitor::paper_default();
            c.set_voltage(v);
            let carried = c.drained_voltage_at(c.voltage(), pj);
            c.drain_pj(pj);
            prop_assert_eq!(carried.to_bits(), c.voltage().to_bits());
        }
    }
}
