//! Reading and writing power traces as text.
//!
//! Real deployments record harvesting power with a data logger; this
//! module lets such recordings drive the simulator. The format is a
//! plain text table, one segment per line: `<duration_us> <power_uw>`,
//! whitespace-separated, with `#` comments and blank lines ignored —
//! the same shape as the CSV exports of common source-meter tools.

use crate::PowerTrace;
use ehsim_mem::Ps;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for TraceParseError {}

/// Parses a trace from its text form.
///
/// # Errors
///
/// Returns [`TraceParseError`] for malformed lines, non-positive
/// durations, negative/non-finite power, or an empty trace.
///
/// # Examples
///
/// ```
/// let trace = ehsim_energy::parse_trace(
///     "# bursty source\n\
///      500 12000\n\
///      1500 80\n",
/// )?;
/// assert_eq!(trace.total_ps(), 2_000_000_000);
/// # Ok::<(), ehsim_energy::TraceParseError>(())
/// ```
pub fn parse_trace(text: &str) -> Result<PowerTrace, TraceParseError> {
    let mut segments: Vec<(Ps, f64)> = Vec::new();
    for (ix, raw) in text.lines().enumerate() {
        let line = ix + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split([' ', '\t', ',']).filter(|p| !p.is_empty());
        let err = |message: String| TraceParseError { line, message };
        let dur_us: f64 = parts
            .next()
            .ok_or_else(|| err("missing duration".into()))?
            .parse()
            .map_err(|e| err(format!("bad duration: {e}")))?;
        let power_uw: f64 = parts
            .next()
            .ok_or_else(|| err("missing power".into()))?
            .parse()
            .map_err(|e| err(format!("bad power: {e}")))?;
        if parts.next().is_some() {
            return Err(err("trailing fields".into()));
        }
        if dur_us <= 0.0 || !dur_us.is_finite() {
            return Err(err(format!("duration must be positive, got {dur_us}")));
        }
        if power_uw < 0.0 || !power_uw.is_finite() {
            return Err(err(format!("power must be >= 0, got {power_uw}")));
        }
        segments.push(((dur_us * 1e6).round() as Ps, power_uw));
    }
    if segments.is_empty() {
        return Err(TraceParseError {
            line: 0,
            message: "trace has no segments".into(),
        });
    }
    Ok(PowerTrace::from_segments(segments))
}

/// Renders a trace back to the text form accepted by [`parse_trace`].
pub fn format_trace(trace: &PowerTrace) -> String {
    let mut out = String::from("# duration_us power_uw\n");
    for (dur_ps, uw) in trace.segments_iter() {
        out.push_str(&format!("{} {:.3}\n", dur_ps as f64 / 1e6, uw));
    }
    out
}

/// Loads a trace from a file.
///
/// # Errors
///
/// Returns I/O errors and parse errors as boxed errors.
pub fn load_trace(path: impl AsRef<Path>) -> Result<PowerTrace, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_trace(&text)?)
}

/// Saves a trace to a file in the text format.
///
/// # Errors
///
/// Returns I/O errors.
pub fn save_trace(trace: &PowerTrace, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, format_trace(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceKind;

    #[test]
    fn parse_accepts_comments_blanks_and_separators() {
        let t = parse_trace(
            "# a comment\n\
             \n\
             100 5000   # inline comment\n\
             200,125.5\n\
             50\t0\n",
        )
        .unwrap();
        assert_eq!(t.total_ps(), 350_000_000);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_trace("100 5\nbogus 7\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        let e = parse_trace("100 5 9\n").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_trace("-5 100\n").unwrap_err();
        assert!(e.message.contains("positive"));
        let e = parse_trace("# only comments\n").unwrap_err();
        assert!(e.message.contains("no segments"));
    }

    #[test]
    fn round_trips_builtin_traces() {
        let original = TraceKind::Rf1.build();
        let text = format_trace(&original);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.total_ps(), original.total_ps());
        assert!((parsed.mean_power_uw() - original.mean_power_uw()).abs() < 0.01);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ehsim-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solar.trace");
        let t = TraceKind::Solar.build();
        save_trace(&t, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back.total_ps(), t.total_ps());
        let _ = std::fs::remove_file(&path);
    }
}
