//! Harvesting power traces.
//!
//! The paper evaluates with two RF power traces recorded at a home and an
//! office (from NVPsim \[16\]), a third RFID-class RF trace (Mementos \[57\]),
//! and solar/thermal traces. Those recordings are not publicly
//! distributed, so this module synthesises deterministic, seeded
//! equivalents as two-state (burst/fade) renewal processes. During a
//! burst the harvester delivers more power than the system draws (the
//! capacitor tops up and execution proceeds); during a fade delivery is
//! near zero and the system drains its buffer and fails — so outage
//! counts are governed by fade arrivals, exactly the dynamics of real
//! RF sources. Solar/thermal are strong with rare shallow dips. The
//! generator parameters are calibrated so that full-benchmark
//! simulations land near the paper's reported outage counts
//! (33/45/121/12/9 for tr1/tr2/tr3/solar/thermal, §6.6); see DESIGN.md
//! §4, substitution 2.
//!
//! Storage is shared: a [`PowerTrace`] holds its segments behind an
//! `Arc`, so [`PowerTrace::cursor`] hands out cursors without deep
//! copies no matter how many machines simulate against the same trace.
//! Cursor queries are the seed implementation's exact segment walk —
//! the committed figure goldens depend on its accumulation order, so
//! the sharing refactor must not (and does not) change a single
//! floating-point operation.

use ehsim_mem::{Pj, Ps};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// 1 µW sustained for 1 ps delivers 1e-6 pJ.
const UW_PS_TO_PJ: f64 = 1e-6;

/// Which harvesting environment to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// No power failures: an effectively unlimited supply (Fig 4).
    None,
    /// RF, home recording — the paper's Power Trace 1 (more stable).
    Rf1,
    /// RF, office recording — the paper's Power Trace 2 (less stable).
    Rf2,
    /// RF, RFID-class (Mementos \[57\]) — very frequent outages.
    Rf3,
    /// Solar — strong and stable.
    Solar,
    /// Thermal — strongest and most stable.
    Thermal,
}

impl TraceKind {
    /// All trace kinds, in the order used by Fig 13(a).
    pub const ALL: [TraceKind; 6] = [
        TraceKind::None,
        TraceKind::Rf1,
        TraceKind::Rf2,
        TraceKind::Rf3,
        TraceKind::Solar,
        TraceKind::Thermal,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::None => "no-failure",
            TraceKind::Rf1 => "tr.1(RF)",
            TraceKind::Rf2 => "tr.2(RF)",
            TraceKind::Rf3 => "tr.3(RF)",
            TraceKind::Solar => "solar",
            TraceKind::Thermal => "thermal",
        }
    }

    /// Builds the deterministic power trace for this kind.
    pub fn build(self) -> PowerTrace {
        match self {
            // 10 W constant: the capacitor stays pinned at Vmax, so the
            // voltage monitor never fires — "no power failure" mode.
            TraceKind::None => PowerTrace::constant(1e7),
            TraceKind::Rf1 => PowerTrace::two_state(
                TRACE_SEED,
                TwoState {
                    p_good: 0.55,
                    good_uw: (8_000.0, 20_000.0),
                    bad_uw: (0.0, 300.0),
                    good_dur_us: (200.0, 800.0),
                    bad_dur_us: (300.0, 1_500.0),
                },
            ),
            TraceKind::Rf2 => PowerTrace::two_state(
                TRACE_SEED ^ 1,
                TwoState {
                    p_good: 0.50,
                    good_uw: (7_000.0, 18_000.0),
                    bad_uw: (0.0, 250.0),
                    good_dur_us: (150.0, 700.0),
                    bad_dur_us: (300.0, 1_800.0),
                },
            ),
            TraceKind::Rf3 => PowerTrace::two_state(
                TRACE_SEED ^ 2,
                TwoState {
                    p_good: 0.40,
                    good_uw: (6_000.0, 14_000.0),
                    bad_uw: (0.0, 200.0),
                    good_dur_us: (80.0, 400.0),
                    bad_dur_us: (300.0, 2_000.0),
                },
            ),
            TraceKind::Solar => PowerTrace::two_state(
                TRACE_SEED ^ 3,
                TwoState {
                    p_good: 0.75,
                    good_uw: (15_000.0, 18_000.0),
                    bad_uw: (1_500.0, 3_000.0),
                    good_dur_us: (1_000.0, 3_500.0),
                    bad_dur_us: (600.0, 2_000.0),
                },
            ),
            TraceKind::Thermal => PowerTrace::two_state(
                TRACE_SEED ^ 4,
                TwoState {
                    p_good: 0.80,
                    good_uw: (16_000.0, 18_500.0),
                    bad_uw: (1_800.0, 3_200.0),
                    good_dur_us: (1_500.0, 5_000.0),
                    bad_dur_us: (500.0, 1_800.0),
                },
            ),
        }
    }
}

/// Base seed shared by all built-in traces (xor'd with a per-kind index).
const TRACE_SEED: u64 = 0x574c_4341_4348_4531; // "WLCACHE1"

/// Parameters of the two-state (good-burst / quiet) RF renewal process.
#[derive(Debug, Clone, Copy)]
struct TwoState {
    p_good: f64,
    good_uw: (f64, f64),
    bad_uw: (f64, f64),
    good_dur_us: (f64, f64),
    bad_dur_us: (f64, f64),
}

/// One constant-power span of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    duration_ps: Ps,
    power_uw: f64,
}

/// Immutable trace storage shared between a [`PowerTrace`] and all of
/// its cursors.
#[derive(Debug)]
struct TraceData {
    segments: Vec<Segment>,
    total_ps: Ps,
}

/// A harvesting power trace: piecewise-constant power over time, cycled
/// indefinitely.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    data: Arc<TraceData>,
}

impl PartialEq for PowerTrace {
    fn eq(&self, other: &Self) -> bool {
        self.data.segments == other.data.segments
    }
}

impl PowerTrace {
    /// A trace with a single constant power level (µW).
    ///
    /// # Panics
    ///
    /// Panics if `uw` is negative or not finite.
    pub fn constant(uw: f64) -> Self {
        Self::from_segments(vec![(1_000_000_000_000, uw)]) // 1 s segment
    }

    /// Builds a trace from `(duration_ps, power_uw)` pairs. The trace
    /// repeats from the beginning when the last segment ends.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, any duration is zero, or any power
    /// is negative/not finite.
    pub fn from_segments(segments: Vec<(Ps, f64)>) -> Self {
        assert!(!segments.is_empty(), "trace needs at least one segment");
        let mut total: Ps = 0;
        let segs = segments
            .into_iter()
            .map(|(d, p)| {
                assert!(d > 0, "segment duration must be positive");
                assert!(p >= 0.0 && p.is_finite(), "power must be finite and >= 0");
                total += d;
                Segment {
                    duration_ps: d,
                    power_uw: p,
                }
            })
            .collect();
        Self {
            data: Arc::new(TraceData {
                segments: segs,
                total_ps: total,
            }),
        }
    }

    fn two_state(seed: u64, p: TwoState) -> Self {
        const SEGMENTS: usize = 4_096;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut segs = Vec::with_capacity(SEGMENTS);
        for _ in 0..SEGMENTS {
            let good = rng.random_range(0.0..1.0) < p.p_good;
            let (uw, dur) = if good {
                (p.good_uw, p.good_dur_us)
            } else {
                (p.bad_uw, p.bad_dur_us)
            };
            let power = if uw.0 < uw.1 {
                rng.random_range(uw.0..uw.1)
            } else {
                uw.0
            };
            let dur_us = rng.random_range(dur.0..dur.1);
            segs.push(((dur_us * 1e6) as Ps, power));
        }
        Self::from_segments(segs)
    }

    /// Length of one cycle of the trace, in picoseconds.
    pub fn total_ps(&self) -> Ps {
        self.data.total_ps
    }

    /// Time-weighted mean power in µW over one cycle.
    pub fn mean_power_uw(&self) -> f64 {
        let sum: f64 = self
            .data
            .segments
            .iter()
            .map(|s| s.power_uw * s.duration_ps as f64)
            .sum();
        sum / self.data.total_ps as f64
    }

    /// Iterates over the trace's `(duration_ps, power_uw)` segments.
    pub fn segments_iter(&self) -> impl Iterator<Item = (Ps, f64)> + '_ {
        self.data
            .segments
            .iter()
            .map(|s| (s.duration_ps, s.power_uw))
    }

    /// Creates a cursor positioned at the start of the trace.
    ///
    /// The cursor shares the trace's segment storage (behind an `Arc`),
    /// so this is O(1) and allocation-free no matter how many machines
    /// hold cursors into the same trace.
    pub fn cursor(&self) -> TraceCursor {
        let first = self.data.segments[0];
        TraceCursor {
            data: Arc::clone(&self.data),
            seg_ix: 0,
            offset_ps: 0,
            seg_power_uw: first.power_uw,
            seg_left_ps: first.duration_ps,
        }
    }
}

/// A position within a [`PowerTrace`], advancing monotonically and
/// wrapping around at the end of the trace.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    data: Arc<TraceData>,
    seg_ix: usize,
    offset_ps: Ps,
    /// Mirror of `segments[seg_ix].power_uw`, kept in the cursor so the
    /// common-case advance never dereferences the `Arc`.
    seg_power_uw: f64,
    /// Mirror of `segments[seg_ix].duration_ps - offset_ps` — time left
    /// in the current segment. Invariant: always > 0 (the cursor wraps
    /// eagerly at segment boundaries, exactly like the seed loop).
    seg_left_ps: Ps,
}

impl TraceCursor {
    /// Instantaneous harvesting power (µW) at the cursor.
    pub fn power_uw(&self) -> f64 {
        self.seg_power_uw
    }

    /// Re-derives the current-segment mirrors after `seg_ix`/`offset_ps`
    /// moved along the slow path.
    fn resync(&mut self) {
        let seg = &self.data.segments[self.seg_ix];
        self.seg_power_uw = seg.power_uw;
        self.seg_left_ps = seg.duration_ps - self.offset_ps;
    }

    /// Advances the cursor by `dt` picoseconds, returning the energy (pJ)
    /// harvested during that span.
    ///
    /// The typical settlement step is far shorter than a trace segment
    /// (segments are hundreds of µs, steps are ns), so the fast path
    /// below — stay inside the current segment, one multiply — is O(1)
    /// amortized. Its product `power · dt · 1e-6` is the exact
    /// single-iteration value of the seed's segment walk (`0.0 + x == x`
    /// for the non-negative energies involved), and the slow path *is*
    /// the seed's segment walk, so either path returns bit-identical
    /// energy. Prefix-sum differencing over the segment energies was
    /// deliberately rejected: a sum of per-segment totals rounds
    /// differently than the seed's sequential accumulation and would
    /// shift the figure goldens.
    #[inline]
    pub fn advance(&mut self, dt: Ps) -> Pj {
        if dt < self.seg_left_ps {
            self.seg_left_ps -= dt;
            self.offset_ps += dt;
            return self.seg_power_uw * dt as f64 * UW_PS_TO_PJ;
        }
        self.advance_slow(dt)
    }

    /// Segment-crossing tail of [`advance`](Self::advance), kept out of
    /// line so the sub-segment fast path inlines cheaply at call sites.
    #[inline(never)]
    fn advance_slow(&mut self, mut dt: Ps) -> Pj {
        let mut harvested = 0.0;
        while dt > 0 {
            let seg = &self.data.segments[self.seg_ix];
            let left = seg.duration_ps - self.offset_ps;
            let step = left.min(dt);
            harvested += seg.power_uw * step as f64 * UW_PS_TO_PJ;
            dt -= step;
            self.offset_ps += step;
            if self.offset_ps == seg.duration_ps {
                self.offset_ps = 0;
                self.seg_ix = (self.seg_ix + 1) % self.data.segments.len();
            }
        }
        self.resync();
        harvested
    }

    /// Advances until `target_pj` picojoules have been harvested, up to a
    /// budget of `max_ps` picoseconds.
    ///
    /// Returns `Some(elapsed_ps)` on success (the cursor ends exactly at
    /// the point of completion, rounded up to the enclosing picosecond),
    /// or `None` if the target cannot be reached within `max_ps` (the
    /// cursor is then `max_ps` further along).
    pub fn time_to_harvest(&mut self, target_pj: Pj, max_ps: Ps) -> Option<Ps> {
        let mut remaining = target_pj;
        let mut elapsed: Ps = 0;
        while remaining > 0.0 {
            if elapsed >= max_ps {
                return None;
            }
            let seg = &self.data.segments[self.seg_ix];
            let left = seg.duration_ps - self.offset_ps;
            let budget = left.min(max_ps - elapsed);
            let seg_pj = seg.power_uw * budget as f64 * UW_PS_TO_PJ;
            if seg_pj >= remaining && seg.power_uw > 0.0 {
                // Finishes within this segment.
                let need_ps = (remaining / (seg.power_uw * UW_PS_TO_PJ)).ceil() as Ps;
                let need_ps = need_ps.min(budget);
                self.advance(need_ps);
                return Some(elapsed + need_ps);
            }
            remaining -= seg_pj;
            elapsed += budget;
            self.advance(budget);
        }
        Some(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_harvests_linearly() {
        let t = PowerTrace::constant(1_000.0); // 1 mW
        let mut c = t.cursor();
        // 1 mW for 1 µs = 1 nJ = 1000 pJ.
        let pj = c.advance(1_000_000);
        assert!((pj - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn cursor_wraps_around() {
        let t = PowerTrace::from_segments(vec![(100, 1.0), (100, 3.0)]);
        let mut c = t.cursor();
        let one_cycle = c.advance(200);
        let again = c.advance(200);
        assert!((one_cycle - again).abs() < 1e-12);
        assert!((t.mean_power_uw() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advance_splits_segments_exactly() {
        let t = PowerTrace::from_segments(vec![(100, 10.0), (100, 0.0)]);
        let mut c = t.cursor();
        let a = c.advance(150);
        let b = c.advance(50);
        // All energy is in the first 100 ps.
        assert!((a - 10.0 * 100.0 * 1e-6).abs() < 1e-12);
        assert_eq!(b, 0.0);
    }

    #[test]
    fn split_advances_sum_to_whole() {
        let t = TraceKind::Rf1.build();
        let mut split = t.cursor();
        let mut whole = t.cursor();
        let parts: f64 = (0..100).map(|i| split.advance(37_000 + i)).sum();
        let total = whole.advance((0..100).map(|i| 37_000 + i).sum());
        assert!((parts - total).abs() < 1e-6 * total.abs().max(1.0));
    }

    #[test]
    fn time_to_harvest_constant_power() {
        let t = PowerTrace::constant(1_000.0); // 1 mW = 1e-3 pJ/ps
        let mut c = t.cursor();
        let dt = c.time_to_harvest(1_000.0, u64::MAX).unwrap();
        assert_eq!(dt, 1_000_000); // 1 µs
    }

    #[test]
    fn time_to_harvest_skips_dead_segments() {
        let t = PowerTrace::from_segments(vec![(1_000, 0.0), (1_000_000, 1_000.0)]);
        let mut c = t.cursor();
        let dt = c.time_to_harvest(1.0, u64::MAX).unwrap();
        assert_eq!(dt, 1_000 + 1_000);
    }

    #[test]
    fn time_to_harvest_respects_cap() {
        let t = PowerTrace::constant(1.0);
        let mut c = t.cursor();
        assert_eq!(c.time_to_harvest(1e12, 1_000), None);
    }

    /// The seed implementation's segment walk, as an independent oracle
    /// for the fast-path cursor.
    struct RefWalk {
        segs: Vec<(Ps, f64)>,
        ix: usize,
        off: Ps,
    }

    impl RefWalk {
        fn new(t: &PowerTrace) -> Self {
            Self {
                segs: t.segments_iter().collect(),
                ix: 0,
                off: 0,
            }
        }

        fn advance(&mut self, mut dt: Ps) -> f64 {
            let mut harvested = 0.0;
            while dt > 0 {
                let (dur, p) = self.segs[self.ix];
                let left = dur - self.off;
                let step = left.min(dt);
                harvested += p * step as f64 * UW_PS_TO_PJ;
                dt -= step;
                self.off += step;
                if self.off == dur {
                    self.off = 0;
                    self.ix = (self.ix + 1) % self.segs.len();
                }
            }
            harvested
        }
    }

    #[test]
    fn advance_is_bit_identical_to_seed_segment_walk() {
        let t = TraceKind::Rf2.build();
        let mut oracle = RefWalk::new(&t);
        let mut c = t.cursor();
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for i in 0..20_000u64 {
            // Mixed step sizes: zero, ns-scale (fast path), exactly to
            // the segment boundary, and multi-segment spans (slow path).
            let step = match i % 8 {
                0 => 0,
                1..=5 => x % 100_000,
                6 => t.data.segments[oracle.ix].duration_ps - oracle.off,
                _ => 300_000_000 + x % 1_000_000_000,
            };
            assert_eq!(
                c.advance(step).to_bits(),
                oracle.advance(step).to_bits(),
                "harvested energy diverged at step {i}"
            );
            assert_eq!((c.seg_ix, c.offset_ps), (oracle.ix, oracle.off));
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
    }

    #[test]
    fn advance_is_monotonic_and_keeps_segment_mirrors() {
        let t = TraceKind::Rf1.build();
        let total = t.total_ps();
        let mut c = t.cursor();
        let mut elapsed: Ps = 0;
        let mut prev_pos: Ps = 0;
        for i in 0..5_000u64 {
            let step = (i * 977) % 250_000;
            c.advance(step);
            elapsed += step;
            // The cursor's absolute position advances by exactly `dt`
            // per call (modulo one trace cycle) and never runs backwards
            // within a cycle.
            let pos = t.data.segments[..c.seg_ix]
                .iter()
                .map(|s| s.duration_ps)
                .sum::<Ps>()
                + c.offset_ps;
            assert_eq!(pos, elapsed % total, "position drifted at step {i}");
            if elapsed % total >= prev_pos {
                assert!(pos >= prev_pos);
            }
            prev_pos = pos;
            // Mirror invariants behind the fast path.
            let seg = &t.data.segments[c.seg_ix];
            assert_eq!(c.seg_power_uw.to_bits(), seg.power_uw.to_bits());
            assert_eq!(c.seg_left_ps, seg.duration_ps - c.offset_ps);
            assert!(c.seg_left_ps > 0, "cursor must wrap eagerly");
        }
    }

    #[test]
    fn cursor_shares_segment_storage() {
        let t = TraceKind::Rf1.build();
        let a = t.cursor();
        let b = t.cursor();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert!(Arc::ptr_eq(&a.data, &t.data));
    }

    #[test]
    fn builtin_traces_are_deterministic() {
        let a = TraceKind::Rf1.build();
        let b = TraceKind::Rf1.build();
        assert_eq!(a, b);
        assert_ne!(a, TraceKind::Rf2.build());
    }

    #[test]
    fn rf_traces_are_ordered_by_quality() {
        let m1 = TraceKind::Rf1.build().mean_power_uw();
        let m2 = TraceKind::Rf2.build().mean_power_uw();
        let m3 = TraceKind::Rf3.build().mean_power_uw();
        let ms = TraceKind::Solar.build().mean_power_uw();
        let mt = TraceKind::Thermal.build().mean_power_uw();
        assert!(m1 > m2 && m2 > m3, "{m1} {m2} {m3}");
        assert!(ms > m1 && mt > ms, "{ms} {mt}");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(TraceKind::Rf1.label(), "tr.1(RF)");
        assert_eq!(TraceKind::Solar.label(), "solar");
        assert_eq!(TraceKind::ALL.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_trace_rejected() {
        let _ = PowerTrace::from_segments(vec![]);
    }
}
