//! Per-design voltage operating points (Table 2 of the paper).

/// Voltage thresholds that govern the power-failure protocol.
///
/// - `v_backup`: when the supply drops below this, the system JIT
///   checkpoints and powers down. `E(v_backup) − E(v_min)` is the energy
///   *reserved* for checkpointing — designs with larger worst-case
///   checkpoints must reserve more and therefore get less compute energy
///   per interval.
/// - `v_on`: at reboot the system waits until the capacitor recharges to
///   this voltage. Designs that must re-fill a warm NV cache (NVSRAM)
///   boot at a higher `v_on`, costing extra recharge time per outage.
/// - `v_min`/`v_max`: absolute operating window of the buffer.
///
/// Table 2 gives `Vbackup/restore`: NV (2.9/3.3), NVSRAM (3.1/3.5),
/// WL (2.95–3.1 / 3.3–3.5, scaled with the configured maxline), with
/// `Vmin/max` 2.8/3.5 for all designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageThresholds {
    /// JIT-checkpoint trigger voltage.
    pub v_backup: f64,
    /// Boot/restore voltage.
    pub v_on: f64,
    /// Absolute minimum operating voltage.
    pub v_min: f64,
    /// Maximum (fully charged) voltage.
    pub v_max: f64,
}

impl VoltageThresholds {
    /// Thresholds for designs that checkpoint registers only: plain NVP,
    /// NVCache-WB and VCache-WT (Table 2, "NV" row).
    pub fn nv() -> Self {
        Self {
            v_backup: 2.9,
            v_on: 3.3,
            v_min: 2.8,
            v_max: 3.5,
        }
    }

    /// Thresholds for NVSRAM(ideal): the reserve must cover the all-dirty
    /// worst case and the warm-cache restore requires a full charge
    /// (Table 2, "NVSRAM" row).
    pub fn nvsram() -> Self {
        Self {
            v_backup: 3.1,
            v_on: 3.5,
            v_min: 2.8,
            v_max: 3.5,
        }
    }

    /// Thresholds for ReplayCache: no dirty-line checkpoint (region replay
    /// reconstructs lost stores), so register-only reserves apply.
    pub fn replay() -> Self {
        Self::nv()
    }

    /// Thresholds for WL-Cache at a given `maxline`, linearly interpolated
    /// across Table 2's `2.95–3.1 / 3.3–3.5` ranges by the fraction of the
    /// DirtyQueue capacity `dq_capacity` in use.
    ///
    /// # Panics
    ///
    /// Panics if `dq_capacity == 0` or `maxline > dq_capacity`.
    pub fn wl(maxline: usize, dq_capacity: usize) -> Self {
        assert!(dq_capacity > 0, "DirtyQueue capacity must be positive");
        assert!(
            maxline <= dq_capacity,
            "maxline ({maxline}) must not exceed DirtyQueue capacity ({dq_capacity})"
        );
        let frac = maxline as f64 / dq_capacity as f64;
        Self {
            v_backup: 2.95 + 0.15 * frac,
            v_on: 3.3 + 0.2 * frac,
            v_min: 2.8,
            v_max: 3.5,
        }
    }

    /// `true` if the thresholds are internally consistent:
    /// `v_min <= v_backup < v_on <= v_max`.
    pub fn is_valid(&self) -> bool {
        self.v_min <= self.v_backup && self.v_backup < self.v_on && self.v_on <= self.v_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let nv = VoltageThresholds::nv();
        assert_eq!((nv.v_backup, nv.v_on), (2.9, 3.3));
        let s = VoltageThresholds::nvsram();
        assert_eq!((s.v_backup, s.v_on), (3.1, 3.5));
        assert!(nv.is_valid() && s.is_valid());
    }

    #[test]
    fn wl_interpolates_table2_range() {
        let lo = VoltageThresholds::wl(0, 8);
        assert!((lo.v_backup - 2.95).abs() < 1e-12);
        assert!((lo.v_on - 3.3).abs() < 1e-12);
        let hi = VoltageThresholds::wl(8, 8);
        assert!((hi.v_backup - 3.1).abs() < 1e-12);
        assert!((hi.v_on - 3.5).abs() < 1e-12);
        let mid = VoltageThresholds::wl(6, 8);
        assert!(mid.v_backup > lo.v_backup && mid.v_backup < hi.v_backup);
        assert!(mid.is_valid());
    }

    #[test]
    fn wl_reserve_grows_with_maxline() {
        let a = VoltageThresholds::wl(2, 8);
        let b = VoltageThresholds::wl(6, 8);
        assert!(b.v_backup > a.v_backup);
        assert!(b.v_on > a.v_on);
    }

    #[test]
    fn wl_never_exceeds_nvsram_reserve() {
        for m in 0..=8 {
            let wl = VoltageThresholds::wl(m, 8);
            assert!(wl.v_backup <= VoltageThresholds::nvsram().v_backup + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "maxline")]
    fn wl_rejects_maxline_above_capacity() {
        let _ = VoltageThresholds::wl(9, 8);
    }
}
