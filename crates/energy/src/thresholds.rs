//! Per-design voltage operating points (Table 2 of the paper).

/// One of the named voltage rails in [`VoltageThresholds`].
///
/// Used by the observability layer to label capacitor crossings of the
/// operating points that drive the power-failure protocol. `v_max` is
/// not listed: the capacitor clamps at it, so it is never *crossed*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rail {
    /// Boot/restore voltage `v_on`.
    Von,
    /// JIT-checkpoint trigger voltage `v_backup`.
    Vbackup,
    /// Absolute minimum operating voltage `v_min`.
    Vmin,
}

impl Rail {
    /// Short label for trace output.
    pub fn label(self) -> &'static str {
        match self {
            Rail::Von => "Von",
            Rail::Vbackup => "Vbackup",
            Rail::Vmin => "Vmin",
        }
    }
}

/// Voltage thresholds that govern the power-failure protocol.
///
/// - `v_backup`: when the supply drops below this, the system JIT
///   checkpoints and powers down. `E(v_backup) − E(v_min)` is the energy
///   *reserved* for checkpointing — designs with larger worst-case
///   checkpoints must reserve more and therefore get less compute energy
///   per interval.
/// - `v_on`: at reboot the system waits until the capacitor recharges to
///   this voltage. Designs that must re-fill a warm NV cache (NVSRAM)
///   boot at a higher `v_on`, costing extra recharge time per outage.
/// - `v_min`/`v_max`: absolute operating window of the buffer.
///
/// Table 2 gives `Vbackup/restore`: NV (2.9/3.3), NVSRAM (3.1/3.5),
/// WL (2.95–3.1 / 3.3–3.5, scaled with the configured maxline), with
/// `Vmin/max` 2.8/3.5 for all designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageThresholds {
    /// JIT-checkpoint trigger voltage.
    pub v_backup: f64,
    /// Boot/restore voltage.
    pub v_on: f64,
    /// Absolute minimum operating voltage.
    pub v_min: f64,
    /// Maximum (fully charged) voltage.
    pub v_max: f64,
}

impl VoltageThresholds {
    /// Thresholds for designs that checkpoint registers only: plain NVP,
    /// NVCache-WB and VCache-WT (Table 2, "NV" row).
    pub fn nv() -> Self {
        Self {
            v_backup: 2.9,
            v_on: 3.3,
            v_min: 2.8,
            v_max: 3.5,
        }
    }

    /// Thresholds for NVSRAM(ideal): the reserve must cover the all-dirty
    /// worst case and the warm-cache restore requires a full charge
    /// (Table 2, "NVSRAM" row).
    pub fn nvsram() -> Self {
        Self {
            v_backup: 3.1,
            v_on: 3.5,
            v_min: 2.8,
            v_max: 3.5,
        }
    }

    /// Thresholds for ReplayCache: no dirty-line checkpoint (region replay
    /// reconstructs lost stores), so register-only reserves apply.
    pub fn replay() -> Self {
        Self::nv()
    }

    /// Thresholds for WL-Cache at a given `maxline`, linearly interpolated
    /// across Table 2's `2.95–3.1 / 3.3–3.5` ranges by the fraction of the
    /// DirtyQueue capacity `dq_capacity` in use.
    ///
    /// # Panics
    ///
    /// Panics if `dq_capacity == 0` or `maxline > dq_capacity`.
    pub fn wl(maxline: usize, dq_capacity: usize) -> Self {
        assert!(dq_capacity > 0, "DirtyQueue capacity must be positive");
        assert!(
            maxline <= dq_capacity,
            "maxline ({maxline}) must not exceed DirtyQueue capacity ({dq_capacity})"
        );
        let frac = maxline as f64 / dq_capacity as f64;
        Self {
            v_backup: 2.95 + 0.15 * frac,
            v_on: 3.3 + 0.2 * frac,
            v_min: 2.8,
            v_max: 3.5,
        }
    }

    /// `true` if the thresholds are internally consistent:
    /// `v_min <= v_backup < v_on <= v_max`.
    pub fn is_valid(&self) -> bool {
        self.v_min <= self.v_backup && self.v_backup < self.v_on && self.v_on <= self.v_max
    }

    /// Rail crossings of a voltage step from `v0` to `v1`.
    ///
    /// A rail at voltage `t` is crossed *rising* when `v0 < t && v1 >= t`
    /// and *falling* when `v0 >= t && v1 < t` (so sitting exactly on a
    /// rail counts as being at-or-above it). Returns one slot per rail in
    /// falling voltage order (`Von`, `Vbackup`, `Vmin`); `None` where the
    /// step did not cross that rail. Pure — observation only.
    pub fn crossings(&self, v0: f64, v1: f64) -> [Option<(Rail, bool)>; 3] {
        let cross = |rail: Rail, t: f64| -> Option<(Rail, bool)> {
            if v0 < t && v1 >= t {
                Some((rail, true))
            } else if v0 >= t && v1 < t {
                Some((rail, false))
            } else {
                None
            }
        };
        [
            cross(Rail::Von, self.v_on),
            cross(Rail::Vbackup, self.v_backup),
            cross(Rail::Vmin, self.v_min),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let nv = VoltageThresholds::nv();
        assert_eq!((nv.v_backup, nv.v_on), (2.9, 3.3));
        let s = VoltageThresholds::nvsram();
        assert_eq!((s.v_backup, s.v_on), (3.1, 3.5));
        assert!(nv.is_valid() && s.is_valid());
    }

    #[test]
    fn wl_interpolates_table2_range() {
        let lo = VoltageThresholds::wl(0, 8);
        assert!((lo.v_backup - 2.95).abs() < 1e-12);
        assert!((lo.v_on - 3.3).abs() < 1e-12);
        let hi = VoltageThresholds::wl(8, 8);
        assert!((hi.v_backup - 3.1).abs() < 1e-12);
        assert!((hi.v_on - 3.5).abs() < 1e-12);
        let mid = VoltageThresholds::wl(6, 8);
        assert!(mid.v_backup > lo.v_backup && mid.v_backup < hi.v_backup);
        assert!(mid.is_valid());
    }

    #[test]
    fn wl_reserve_grows_with_maxline() {
        let a = VoltageThresholds::wl(2, 8);
        let b = VoltageThresholds::wl(6, 8);
        assert!(b.v_backup > a.v_backup);
        assert!(b.v_on > a.v_on);
    }

    #[test]
    fn wl_never_exceeds_nvsram_reserve() {
        for m in 0..=8 {
            let wl = VoltageThresholds::wl(m, 8);
            assert!(wl.v_backup <= VoltageThresholds::nvsram().v_backup + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "maxline")]
    fn wl_rejects_maxline_above_capacity() {
        let _ = VoltageThresholds::wl(9, 8);
    }

    #[test]
    fn crossings_rising_and_falling() {
        let th = VoltageThresholds::nv(); // 2.8 / 2.9 / 3.3 / 3.5
                                          // Full recharge from empty rises through all three rails.
        let up = th.crossings(0.0, 3.3);
        assert_eq!(up[0], Some((Rail::Von, true)));
        assert_eq!(up[1], Some((Rail::Vbackup, true)));
        assert_eq!(up[2], Some((Rail::Vmin, true)));
        // A small drain through v_backup only crosses that rail.
        let down = th.crossings(2.95, 2.85);
        assert_eq!(down, [None, Some((Rail::Vbackup, false)), None]);
        // No movement, no crossings.
        assert_eq!(th.crossings(3.0, 3.0), [None, None, None]);
        // Landing exactly on a rail counts as a rising cross…
        assert_eq!(th.crossings(3.2, 3.3)[0], Some((Rail::Von, true)));
        // …and leaving it downward as a falling one.
        assert_eq!(
            th.crossings(3.3, 3.2),
            [Some((Rail::Von, false)), None, None]
        );
    }
}
