//! Running assembled programs as standard workloads.

use crate::{Cpu, Program, StepOutcome};
use ehsim_mem::{Bus, Workload};

/// Safety cap on retired instructions, so a buggy program cannot hang
/// the simulator.
const MAX_RETIRED: u64 = 200_000_000;

/// An assembled [`Program`] packaged as an [`ehsim_mem::Workload`].
///
/// The program image is loaded at address 0 (through the bus, so the
/// loader traffic is simulated too, like a boot-time copy); the CPU
/// then runs until `halt`. The workload checksum is
/// `(r10 << 32) | r11` at halt — programs place their results there by
/// convention.
#[derive(Debug, Clone)]
pub struct IsaWorkload {
    name: String,
    program: Program,
    mem_bytes: u32,
}

impl IsaWorkload {
    /// Packages `program` under `name` with `mem_bytes` of address
    /// space (code at 0; data wherever the program puts it).
    ///
    /// # Panics
    ///
    /// Panics if the program image does not fit in `mem_bytes`.
    pub fn new(name: impl Into<String>, program: Program, mem_bytes: u32) -> Self {
        assert!(
            program.byte_len() <= mem_bytes,
            "program image larger than the address space"
        );
        Self {
            name: name.into(),
            program,
            mem_bytes,
        }
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl Workload for IsaWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn mem_bytes(&self) -> u32 {
        self.mem_bytes
    }

    fn run(&self, bus: &mut dyn Bus) -> u64 {
        // Boot loader: copy the image into memory.
        for (i, w) in self.program.words().iter().enumerate() {
            bus.store_u32(4 * i as u32, *w);
        }
        let mut cpu = Cpu::new(0);
        while cpu.step(bus) == StepOutcome::Continue {
            assert!(
                cpu.retired() < MAX_RETIRED,
                "{}: exceeded {MAX_RETIRED} instructions without halting",
                self.name
            );
        }
        (u64::from(cpu.reg(crate::Reg::R10)) << 32) | u64::from(cpu.reg(crate::Reg::R11))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assembler;
    use crate::Reg::*;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn result_convention_is_r10_r11() {
        let mut asm = Assembler::new();
        asm.li(R10, 0xaabb);
        asm.li(R11, 0xccdd);
        asm.halt();
        let w = IsaWorkload::new("conv", asm.assemble().unwrap(), 1024);
        let mut mem = FunctionalMem::new(w.mem_bytes());
        assert_eq!(w.run(&mut mem), 0x0000_aabb_0000_ccdd);
        assert_eq!(w.name(), "conv");
    }

    #[test]
    #[should_panic(expected = "larger than the address space")]
    fn oversized_image_rejected() {
        let mut asm = Assembler::new();
        for _ in 0..100 {
            asm.addi(R1, R1, 1);
        }
        asm.halt();
        let _ = IsaWorkload::new("big", asm.assemble().unwrap(), 64);
    }
}
