//! The in-order interpreter core.

use crate::{Instr, Reg};
use ehsim_mem::Bus;

/// What a single [`Cpu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired; execution continues.
    Continue,
    /// A `halt` retired.
    Halted,
}

/// A 16-register in-order core executing over a [`Bus`].
///
/// Every instruction fetch is a 4-byte load through the bus — code and
/// data share the cache, so instruction locality behaves exactly like
/// data locality. ALU work is charged via `bus.compute` (one cycle per
/// simple op, a few for multiplies), matching the convention of the
/// native kernels in `ehsim-workloads`.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 16],
    pc: u32,
    halted: bool,
    retired: u64,
}

impl Cpu {
    /// Creates a core with all registers zero and `pc = entry`.
    pub fn new(entry: u32) -> Self {
        Self {
            regs: [0; 16],
            pc: entry,
            halted: false,
            retired: 0,
        }
    }

    /// Reads register `r` (R0 is always zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes register `r` (writes to R0 are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::R0 {
            self.regs[r.index()] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether a `halt` has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// # Panics
    ///
    /// Panics on an undecodable instruction word (a program bug) or if
    /// called after `halt`.
    pub fn step(&mut self, bus: &mut dyn Bus) -> StepOutcome {
        assert!(!self.halted, "stepping a halted CPU");
        let word = bus.load_u32(self.pc);
        let instr = Instr::decode(word).unwrap_or_else(|e| panic!("pc {:#x}: {e}", self.pc));
        let mut next_pc = self.pc.wrapping_add(4);
        self.retired += 1;

        use Instr::*;
        match instr {
            Add(d, a, b) => self.alu(bus, d, self.reg(a).wrapping_add(self.reg(b))),
            Sub(d, a, b) => self.alu(bus, d, self.reg(a).wrapping_sub(self.reg(b))),
            And(d, a, b) => self.alu(bus, d, self.reg(a) & self.reg(b)),
            Or(d, a, b) => self.alu(bus, d, self.reg(a) | self.reg(b)),
            Xor(d, a, b) => self.alu(bus, d, self.reg(a) ^ self.reg(b)),
            Sll(d, a, b) => self.alu(bus, d, self.reg(a) << (self.reg(b) & 31)),
            Srl(d, a, b) => self.alu(bus, d, self.reg(a) >> (self.reg(b) & 31)),
            Mul(d, a, b) => {
                bus.compute(3); // iterative multiplier
                let v = self.reg(a).wrapping_mul(self.reg(b));
                self.set_reg(d, v);
            }
            SltU(d, a, b) => self.alu(bus, d, u32::from(self.reg(a) < self.reg(b))),
            Addi(d, a, i) => self.alu(bus, d, self.reg(a).wrapping_add(i as u32)),
            Andi(d, a, i) => self.alu(bus, d, self.reg(a) & (i as u32)),
            Ori(d, a, i) => self.alu(bus, d, self.reg(a) | (i as u32)),
            Xori(d, a, i) => self.alu(bus, d, self.reg(a) ^ (i as u32)),
            Slli(d, a, s) => self.alu(bus, d, self.reg(a) << (s & 31)),
            Srli(d, a, s) => self.alu(bus, d, self.reg(a) >> (s & 31)),
            Lui(d, imm) => self.alu(bus, d, u32::from(imm) << 16),
            Lw(d, a, off) => {
                let v = bus.load_u32(self.addr(a, off));
                self.set_reg(d, v);
            }
            Lh(d, a, off) => {
                let v = bus.load_u16(self.addr(a, off));
                self.set_reg(d, u32::from(v));
            }
            Lb(d, a, off) => {
                let v = bus.load_u8(self.addr(a, off));
                self.set_reg(d, u32::from(v));
            }
            Sw(s, a, off) => bus.store_u32(self.addr(a, off), self.reg(s)),
            Sh(s, a, off) => bus.store_u16(self.addr(a, off), self.reg(s) as u16),
            Sb(s, a, off) => bus.store_u8(self.addr(a, off), self.reg(s) as u8),
            Beq(a, b, off) => {
                bus.compute(1);
                if self.reg(a) == self.reg(b) {
                    next_pc = branch_target(self.pc, off);
                }
            }
            Bne(a, b, off) => {
                bus.compute(1);
                if self.reg(a) != self.reg(b) {
                    next_pc = branch_target(self.pc, off);
                }
            }
            Bltu(a, b, off) => {
                bus.compute(1);
                if self.reg(a) < self.reg(b) {
                    next_pc = branch_target(self.pc, off);
                }
            }
            Bgeu(a, b, off) => {
                bus.compute(1);
                if self.reg(a) >= self.reg(b) {
                    next_pc = branch_target(self.pc, off);
                }
            }
            Jal(d, off) => {
                bus.compute(1);
                self.set_reg(d, self.pc.wrapping_add(4));
                next_pc = branch_target(self.pc, off);
            }
            Halt => {
                self.halted = true;
                return StepOutcome::Halted;
            }
        }
        self.pc = next_pc;
        StepOutcome::Continue
    }

    fn alu(&mut self, bus: &mut dyn Bus, d: Reg, v: u32) {
        bus.compute(1);
        self.set_reg(d, v);
    }

    fn addr(&self, base: Reg, off: i16) -> u32 {
        self.reg(base).wrapping_add(off as u32)
    }
}

fn branch_target(pc: u32, off: i16) -> u32 {
    pc.wrapping_add(4).wrapping_add((i32::from(off) * 4) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assembler;
    use crate::Reg::*;
    use ehsim_mem::FunctionalMem;

    /// Assembles, loads at 0, runs to halt, returns the CPU.
    fn run(asm: &Assembler) -> Cpu {
        let program = asm.assemble().expect("assembles");
        let mut mem = FunctionalMem::new(16 * 1024);
        for (i, w) in program.words().iter().enumerate() {
            mem.store_u32(4 * i as u32, *w);
        }
        let mut cpu = Cpu::new(0);
        for _ in 0..1_000_000 {
            if cpu.step(&mut mem) == StepOutcome::Halted {
                return cpu;
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut asm = Assembler::new();
        asm.addi(R0, R0, 123);
        asm.add(R1, R0, R0);
        asm.halt();
        let cpu = run(&asm);
        assert_eq!(cpu.reg(R0), 0);
        assert_eq!(cpu.reg(R1), 0);
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut asm = Assembler::new();
        asm.addi(R1, R0, 100);
        asm.addi(R2, R0, 7);
        asm.sub(R3, R1, R2); // 93
        asm.mul(R4, R2, R2); // 49
        asm.xor(R5, R1, R2); // 100 ^ 7 = 99
        asm.slli(R6, R2, 4); // 112
        asm.srli(R7, R1, 2); // 25
        asm.sltu(R8, R2, R1); // 1
        asm.halt();
        let cpu = run(&asm);
        assert_eq!(cpu.reg(R3), 93);
        assert_eq!(cpu.reg(R4), 49);
        assert_eq!(cpu.reg(R5), 99);
        assert_eq!(cpu.reg(R6), 112);
        assert_eq!(cpu.reg(R7), 25);
        assert_eq!(cpu.reg(R8), 1);
    }

    #[test]
    fn li_materialises_32bit_constants() {
        for value in [0u32, 42, 2047, 2048, 0xffff, 0x1234_5678, 0xdead_beef] {
            let mut asm = Assembler::new();
            asm.li(R1, value);
            asm.halt();
            assert_eq!(run(&asm).reg(R1), value, "{value:#x}");
        }
    }

    #[test]
    fn loads_and_stores_subword() {
        let mut asm = Assembler::new();
        asm.li(R1, 0x2000); // data base, clear of the code
        asm.li(R2, 0xa1b2_c3d4);
        asm.sw(R2, R1, 0);
        asm.lb(R3, R1, 0); // 0xd4
        asm.lh(R4, R1, 2); // 0xa1b2
        asm.sb(R3, R1, 8);
        asm.lw(R5, R1, 8); // 0x000000d4
        asm.halt();
        let cpu = run(&asm);
        assert_eq!(cpu.reg(R3), 0xd4);
        assert_eq!(cpu.reg(R4), 0xa1b2);
        assert_eq!(cpu.reg(R5), 0xd4);
    }

    #[test]
    fn loop_with_branches_sums() {
        // sum 1..=100 = 5050
        let mut asm = Assembler::new();
        let top = asm.new_label();
        asm.addi(R1, R0, 0);
        asm.addi(R2, R0, 100);
        asm.bind(top);
        asm.add(R1, R1, R2);
        asm.addi(R2, R2, -1);
        asm.bne(R2, R0, top);
        asm.halt();
        assert_eq!(run(&asm).reg(R1), 5050);
    }

    #[test]
    fn jal_links_and_jumps() {
        let mut asm = Assembler::new();
        let skip = asm.new_label();
        asm.jmp(skip); // index 0
        asm.addi(R1, R0, 99); // skipped
        asm.bind(skip);
        asm.addi(R2, R0, 1);
        asm.halt();
        let cpu = run(&asm);
        assert_eq!(cpu.reg(R1), 0);
        assert_eq!(cpu.reg(R2), 1);
    }

    #[test]
    fn retired_counts_instructions() {
        let mut asm = Assembler::new();
        asm.addi(R1, R0, 1);
        asm.addi(R1, R1, 1);
        asm.halt();
        let cpu = run(&asm);
        assert_eq!(cpu.retired(), 3);
        assert!(cpu.is_halted());
    }
}
