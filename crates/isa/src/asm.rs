//! A small two-pass assembler with label fixups.

use crate::{Instr, Reg};
use std::error::Error;
use std::fmt;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembled program: encoded words plus its entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    words: Vec<u32>,
}

impl Program {
    /// The encoded instruction words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Code size in bytes.
    pub fn byte_len(&self) -> u32 {
        (self.words.len() * 4) as u32
    }
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(
        /// Index of the offending label.
        usize,
    ),
    /// A branch target is further than a 12-bit instruction offset.
    BranchOutOfRange {
        /// Instruction index of the branch.
        at: usize,
        /// Required offset in instructions.
        offset: i64,
    },
    /// The program has no `halt` (it would run off the end).
    MissingHalt,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(ix) => write!(f, "label {ix} referenced but never bound"),
            AsmError::BranchOutOfRange { at, offset } => {
                write!(
                    f,
                    "branch at instruction {at} needs offset {offset} (max ±2047)"
                )
            }
            AsmError::MissingHalt => write!(f, "program does not contain halt"),
        }
    }
}

impl Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum Pending {
    /// A branch instruction whose 12-bit offset points at a label.
    Branch(Label),
    /// Fully resolved.
    None,
}

/// Builder-style assembler.
///
/// Instructions are appended with the mnemonic methods; branch targets
/// are [`Label`]s created with [`Assembler::new_label`] and placed with
/// [`Assembler::bind`] (before or after the uses). [`Assembler::assemble`]
/// resolves all fixups.
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<(Instr, Pending)>,
    labels: Vec<Option<usize>>,
}

macro_rules! alu3 {
    ($($fn_name:ident => $variant:ident),* $(,)?) => {
        $(
            /// Appends the corresponding three-register ALU instruction.
            pub fn $fn_name(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
                self.push(Instr::$variant(d, a, b))
            }
        )*
    };
}

macro_rules! alui {
    ($($fn_name:ident => $variant:ident),* $(,)?) => {
        $(
            /// Appends the corresponding register-immediate instruction.
            pub fn $fn_name(&mut self, d: Reg, a: Reg, imm: i16) -> &mut Self {
                self.push(Instr::$variant(d, a, imm))
            }
        )*
    };
}

macro_rules! memop {
    ($($fn_name:ident => $variant:ident),* $(,)?) => {
        $(
            /// Appends the corresponding memory instruction
            /// (`reg, base, byte_offset`).
            pub fn $fn_name(&mut self, r: Reg, base: Reg, offset: i16) -> &mut Self {
                self.push(Instr::$variant(r, base, offset))
            }
        )*
    };
}

macro_rules! branch {
    ($($fn_name:ident => $variant:ident),* $(,)?) => {
        $(
            /// Appends the corresponding compare-and-branch to `target`.
            pub fn $fn_name(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
                self.instrs.push((Instr::$variant(a, b, 0), Pending::Branch(target)));
                self
            }
        )*
    };
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].replace(self.instrs.len()).is_none(),
            "label bound twice"
        );
        self
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push((i, Pending::None));
        self
    }

    alu3! {
        add => Add, sub => Sub, and => And, or => Or, xor => Xor,
        sll => Sll, srl => Srl, mul => Mul, sltu => SltU,
    }

    alui! {
        addi => Addi, andi => Andi, ori => Ori, xori => Xori,
    }

    /// Appends a shift-left-immediate.
    pub fn slli(&mut self, d: Reg, a: Reg, shamt: u8) -> &mut Self {
        self.push(Instr::Slli(d, a, shamt))
    }

    /// Appends a shift-right-immediate.
    pub fn srli(&mut self, d: Reg, a: Reg, shamt: u8) -> &mut Self {
        self.push(Instr::Srli(d, a, shamt))
    }

    /// Appends `lui` (load the upper 16 bits).
    pub fn lui(&mut self, d: Reg, imm: u16) -> &mut Self {
        self.push(Instr::Lui(d, imm))
    }

    /// Loads a full 32-bit constant.
    ///
    /// Uses a single `addi` when the value fits in 11 bits, `lui`+`ori`
    /// when the low half fits in a positive imm12, and otherwise builds
    /// the value from three positive ≤ 11-bit chunks with interleaved
    /// shifts (5 instructions, correct for any `u32`).
    pub fn li(&mut self, d: Reg, value: u32) -> &mut Self {
        if value < 2048 {
            return self.addi(d, Reg::R0, value as i16);
        }
        if value & 0xffff < 0x800 {
            self.lui(d, (value >> 16) as u16);
            return self.ori(d, d, (value & 0x7ff) as i16);
        }
        self.addi(d, Reg::R0, ((value >> 21) & 0x7ff) as i16);
        self.slli(d, d, 11);
        self.ori(d, d, ((value >> 10) & 0x7ff) as i16);
        self.slli(d, d, 10);
        self.ori(d, d, (value & 0x3ff) as i16)
    }

    memop! {
        lw => Lw, lh => Lh, lb => Lb, sw => Sw, sh => Sh, sb => Sb,
    }

    branch! {
        beq => Beq, bne => Bne, bltu => Bltu, bgeu => Bgeu,
    }

    /// Appends an unconditional jump to `target` (discarding the link).
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.instrs
            .push((Instr::Jal(Reg::R0, 0), Pending::Branch(target)));
        self
    }

    /// Appends `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Resolves fixups and produces the encoded [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for unbound labels, out-of-range branches,
    /// or a program lacking `halt`.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if !self.instrs.iter().any(|(i, _)| *i == Instr::Halt) {
            return Err(AsmError::MissingHalt);
        }
        let mut words = Vec::with_capacity(self.instrs.len());
        for (at, (instr, pending)) in self.instrs.iter().enumerate() {
            let resolved = match pending {
                Pending::None => *instr,
                Pending::Branch(label) => {
                    let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(label.0))?;
                    let offset = target as i64 - at as i64 - 1;
                    if !(-2048..=2047).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { at, offset });
                    }
                    let o = offset as i16;
                    use Instr::*;
                    match *instr {
                        Beq(a, b, _) => Beq(a, b, o),
                        Bne(a, b, _) => Bne(a, b, o),
                        Bltu(a, b, _) => Bltu(a, b, o),
                        Bgeu(a, b, _) => Bgeu(a, b, o),
                        Jal(d, _) => Jal(d, o),
                        other => other,
                    }
                }
            };
            words.push(resolved.encode());
        }
        Ok(Program { words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        let fwd = asm.new_label();
        let back = asm.new_label();
        asm.bind(back);
        asm.addi(R1, R1, 1);
        asm.beq(R1, R2, fwd);
        asm.jmp(back);
        asm.bind(fwd);
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.words().len(), 4);
        // beq at index 1 targets index 3: offset = 3 - 1 - 1 = 1.
        assert_eq!(Instr::decode(p.words()[1]), Ok(Instr::Beq(R1, R2, 1)));
        // jmp at index 2 targets index 0: offset = 0 - 2 - 1 = -3.
        assert_eq!(Instr::decode(p.words()[2]), Ok(Instr::Jal(R0, -3)));
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.beq(R0, R0, l);
        asm.halt();
        assert_eq!(asm.assemble(), Err(AsmError::UnboundLabel(0)));
    }

    #[test]
    fn missing_halt_is_reported() {
        let mut asm = Assembler::new();
        asm.addi(R1, R0, 1);
        assert_eq!(asm.assemble(), Err(AsmError::MissingHalt));
    }

    #[test]
    fn li_loads_arbitrary_constants() {
        // Verified against the CPU in cpu.rs tests; here check lengths.
        let mut asm = Assembler::new();
        asm.li(R1, 42);
        assert_eq!(asm.len(), 1, "small constants use one addi");
        asm.li(R2, 0x12345678);
        asm.halt();
        assert!(asm.assemble().is_ok());
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.bind(l);
        asm.bind(l);
    }
}
