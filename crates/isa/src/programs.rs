//! Demo programs written in the crate's assembly language.
//!
//! Each builder returns an [`IsaWorkload`] whose checksum (R10:R11 at
//! halt) is verified in tests against a Rust reference implementation —
//! so the assembler, the CPU and the memory hierarchy are all checked
//! end to end.

use crate::Reg::*;
use crate::{Assembler, IsaWorkload};

/// Bitwise (table-less) CRC-32 over a `len`-byte buffer the program
/// first fills with the pattern `(i * 31 + 7) & 0xff`.
///
/// Result: R10 = 0, R11 = final CRC.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn crc32(len: u32) -> IsaWorkload {
    assert!(len > 0);
    let buf = 0x4000u32;
    let mut asm = Assembler::new();

    // ---- fill: for i in 0..len { buf[i] = (i*31 + 7) & 0xff } ----
    asm.li(R1, buf);
    asm.li(R2, len);
    asm.addi(R3, R0, 0); // i
    asm.addi(R4, R0, 31);
    let fill = asm.new_label();
    asm.bind(fill);
    asm.mul(R5, R3, R4);
    asm.addi(R5, R5, 7);
    asm.andi(R5, R5, 0xff);
    asm.add(R6, R1, R3);
    asm.sb(R5, R6, 0);
    asm.addi(R3, R3, 1);
    asm.bltu(R3, R2, fill);

    // ---- crc: reflected poly 0xEDB88320 ----
    asm.li(R7, 0xEDB8_8320);
    asm.li(R3, 0); // i
    asm.li(R8, 0xFFFF_FFFF); // crc
    asm.addi(R9, R0, 1); // constant 1
    let byte_loop = asm.new_label();
    let bit_loop = asm.new_label();
    let no_xor = asm.new_label();
    let next_byte = asm.new_label();
    asm.bind(byte_loop);
    asm.add(R6, R1, R3);
    asm.lb(R5, R6, 0);
    asm.xor(R8, R8, R5);
    asm.addi(R4, R0, 8); // k
    asm.bind(bit_loop);
    asm.andi(R5, R8, 1);
    asm.srli(R8, R8, 1);
    asm.beq(R5, R0, no_xor);
    asm.xor(R8, R8, R7);
    asm.bind(no_xor);
    asm.addi(R4, R4, -1);
    asm.bne(R4, R0, bit_loop);
    asm.addi(R3, R3, 1);
    asm.bltu(R3, R2, byte_loop);
    asm.bind(next_byte); // (label kept for readability)
                         // R11 = !crc
    asm.li(R5, 0xFFFF_FFFF);
    asm.xor(R11, R8, R5);
    asm.halt();

    IsaWorkload::new(
        format!("isa-crc32-{len}"),
        asm.assemble().expect("crc32 assembles"),
        buf + len + 64,
    )
}

/// The Rust reference for [`crc32`] (used in tests and doctests).
pub fn crc32_reference(len: u32) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for i in 0..len {
        let b = (i.wrapping_mul(31) + 7) & 0xff;
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Insertion sort over `n` 32-bit LCG-generated words, returning
/// `xor-of-all ^ rotations` plus boundary samples so ordering matters.
///
/// Result: R10 = a\[0\] (minimum), R11 = xor of `a[i] + i` over the
/// sorted array.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn insertion_sort(n: u32) -> IsaWorkload {
    assert!(n >= 2);
    let buf = 0x4000u32;
    let mut asm = Assembler::new();

    // ---- generate: x = x*1664525 + 1013904223 ----
    asm.li(R1, buf);
    asm.li(R2, n);
    asm.li(R3, 0x1234_5678); // x
    asm.li(R4, 1_664_525);
    asm.li(R5, 1_013_904_223);
    asm.addi(R6, R0, 0); // i
    let gen = asm.new_label();
    asm.bind(gen);
    asm.mul(R3, R3, R4);
    asm.add(R3, R3, R5);
    asm.slli(R7, R6, 2);
    asm.add(R7, R7, R1);
    asm.sw(R3, R7, 0);
    asm.addi(R6, R6, 1);
    asm.bltu(R6, R2, gen);

    // ---- insertion sort ----
    // for i in 1..n: key=a[i]; j=i;
    //   while j>0 && a[j-1] > key { a[j]=a[j-1]; j-=1 } ; a[j]=key
    asm.addi(R6, R0, 1); // i
    let outer = asm.new_label();
    let inner = asm.new_label();
    let place = asm.new_label();
    let outer_next = asm.new_label();
    asm.bind(outer);
    asm.slli(R7, R6, 2);
    asm.add(R7, R7, R1); // &a[i]
    asm.lw(R8, R7, 0); // key
    asm.add(R9, R0, R6); // j
    asm.bind(inner);
    asm.beq(R9, R0, place);
    asm.slli(R7, R9, 2);
    asm.add(R7, R7, R1); // &a[j]
    asm.lw(R12, R7, -4); // a[j-1]
    asm.bgeu(R8, R12, place); // key >= a[j-1] → place
    asm.sw(R12, R7, 0); // a[j] = a[j-1]
    asm.addi(R9, R9, -1);
    asm.jmp(inner);
    asm.bind(place);
    asm.slli(R7, R9, 2);
    asm.add(R7, R7, R1);
    asm.sw(R8, R7, 0); // a[j] = key
    asm.addi(R6, R6, 1);
    asm.bltu(R6, R2, outer);
    asm.bind(outer_next);

    // ---- checksum: R11 = xor(a[i] + i); R10 = a[0] ----
    asm.lw(R10, R1, 0);
    asm.addi(R11, R0, 0);
    asm.addi(R6, R0, 0);
    let fold = asm.new_label();
    asm.bind(fold);
    asm.slli(R7, R6, 2);
    asm.add(R7, R7, R1);
    asm.lw(R8, R7, 0);
    asm.add(R8, R8, R6);
    asm.xor(R11, R11, R8);
    asm.addi(R6, R6, 1);
    asm.bltu(R6, R2, fold);
    asm.halt();

    IsaWorkload::new(
        format!("isa-sort-{n}"),
        asm.assemble().expect("sort assembles"),
        buf + 4 * n + 64,
    )
}

/// The Rust reference for [`insertion_sort`]: `(min, xor-fold)`.
pub fn insertion_sort_reference(n: u32) -> (u32, u32) {
    let mut x = 0x1234_5678u32;
    let mut a: Vec<u32> = (0..n)
        .map(|_| {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            x
        })
        .collect();
    a.sort_unstable();
    let fold = a
        .iter()
        .enumerate()
        .fold(0u32, |acc, (i, v)| acc ^ v.wrapping_add(i as u32));
    (a[0], fold)
}

/// Fixed-point dot product of two `n`-element vectors (strided
/// generation, sequential consumption).
///
/// Result: R10:R11 = 64-bit accumulated sum (upper:lower), built from
/// 32-bit multiplies with manual carry.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn dot_product(n: u32) -> IsaWorkload {
    assert!(n > 0);
    let a_base = 0x4000u32;
    let b_base = a_base + 4 * n;
    let mut asm = Assembler::new();

    asm.li(R1, a_base);
    asm.li(R2, b_base);
    asm.li(R3, n);
    asm.addi(R4, R0, 0); // i
    let gen = asm.new_label();
    asm.bind(gen);
    asm.addi(R5, R4, 3);
    asm.mul(R5, R5, R5);
    asm.andi(R5, R5, 0x7ff);
    asm.slli(R6, R4, 2);
    asm.add(R7, R6, R1);
    asm.sw(R5, R7, 0);
    asm.addi(R5, R5, 17);
    asm.add(R7, R6, R2);
    asm.sw(R5, R7, 0);
    asm.addi(R4, R4, 1);
    asm.bltu(R4, R3, gen);

    // sum64 += a[i]*b[i]  (products fit in 22 bits, so no mul carry)
    asm.addi(R10, R0, 0); // high
    asm.addi(R11, R0, 0); // low
    asm.addi(R4, R0, 0);
    let acc = asm.new_label();
    let no_carry = asm.new_label();
    asm.bind(acc);
    asm.slli(R6, R4, 2);
    asm.add(R7, R6, R1);
    asm.lw(R8, R7, 0);
    asm.add(R7, R6, R2);
    asm.lw(R9, R7, 0);
    asm.mul(R8, R8, R9);
    asm.add(R11, R11, R8);
    // carry if new low < addend
    asm.bgeu(R11, R8, no_carry);
    asm.addi(R10, R10, 1);
    asm.bind(no_carry);
    asm.addi(R4, R4, 1);
    asm.bltu(R4, R3, acc);
    asm.halt();

    IsaWorkload::new(
        format!("isa-dot-{n}"),
        asm.assemble().expect("dot assembles"),
        b_base + 4 * n + 64,
    )
}

/// The Rust reference for [`dot_product`].
pub fn dot_product_reference(n: u32) -> u64 {
    let mut sum = 0u64;
    for i in 0..n {
        let a = u64::from((i + 3).wrapping_mul(i + 3) & 0x7ff);
        let b = (a + 17) & 0xffff_ffff;
        sum = sum.wrapping_add(a * b);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehsim_mem::{FunctionalMem, Workload};

    fn run(w: &IsaWorkload) -> u64 {
        let mut mem = FunctionalMem::new(w.mem_bytes());
        w.run(&mut mem)
    }

    #[test]
    fn crc32_matches_reference() {
        for len in [1u32, 7, 64, 500] {
            let got = run(&crc32(len));
            assert_eq!(got as u32, crc32_reference(len), "len {len}");
            assert_eq!(got >> 32, 0);
        }
    }

    #[test]
    fn crc32_reference_sanity() {
        // Independent check of the reference against a textbook
        // implementation for a known input ("123456789" is not our
        // pattern, so check self-consistency instead: changing length
        // changes the CRC).
        assert_ne!(crc32_reference(10), crc32_reference(11));
    }

    #[test]
    fn sort_matches_reference() {
        for n in [2u32, 10, 64, 200] {
            let got = run(&insertion_sort(n));
            let (min, fold) = insertion_sort_reference(n);
            assert_eq!((got >> 32) as u32, min, "n {n}: min");
            assert_eq!(got as u32, fold, "n {n}: fold");
        }
    }

    #[test]
    fn dot_matches_reference() {
        for n in [1u32, 33, 256] {
            assert_eq!(run(&dot_product(n)), dot_product_reference(n), "n {n}");
        }
    }
}
