//! Instruction-level frontend for the WL-Cache reproduction.
//!
//! The paper evaluates compiled ARM binaries on gem5, where instruction
//! fetches and data accesses both traverse the memory hierarchy. The
//! main `ehsim-workloads` suite substitutes native kernels (DESIGN.md
//! §4); this crate closes the remaining gap for users who want
//! *instruction-granular* simulation: a small RISC ISA ([`Instr`]), an
//! [`Assembler`] with label fixups, a [`Cpu`] interpreter whose fetches
//! and memory operations all flow through [`ehsim_mem::Bus`], and
//! [`IsaWorkload`] to run an assembled [`Program`] as a standard
//! workload on the `ehsim` machine.
//!
//! The encoding is a compact custom format (not RISC-V compatible):
//! one 32-bit word per instruction, opcode in the low byte. Instruction
//! fetches go through the same cache as data (a unified L1, as in small
//! microcontrollers), so code locality matters exactly as data locality
//! does — hot loops hit, cold code misses.
//!
//! # Examples
//!
//! ```
//! use ehsim_isa::{Assembler, IsaWorkload, Reg::*};
//! use ehsim_mem::{FunctionalMem, Workload};
//!
//! // sum = 1 + 2 + ... + 10; R10:R11 is the result convention.
//! let mut asm = Assembler::new();
//! let top = asm.new_label();
//! asm.addi(R11, R0, 0);
//! asm.addi(R2, R0, 10);
//! asm.bind(top);
//! asm.add(R11, R11, R2);
//! asm.addi(R2, R2, -1);
//! asm.bne(R2, R0, top);
//! asm.halt();
//! let program = asm.assemble()?;
//!
//! let w = IsaWorkload::new("triangle", program, 4096);
//! let mut mem = FunctionalMem::new(w.mem_bytes());
//! assert_eq!(w.run(&mut mem), 55);
//! # Ok::<(), ehsim_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cpu;
mod isa;
pub mod programs;
mod workload;

pub use asm::{AsmError, Assembler, Label, Program};
pub use cpu::{Cpu, StepOutcome};
pub use isa::{DecodeError, Instr, Reg};
pub use workload::IsaWorkload;
