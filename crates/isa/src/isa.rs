//! Instruction set definition, encoding and decoding.

use std::error::Error;
use std::fmt;

/// One of the 16 general-purpose registers. `R0` is hard-wired to zero
/// (writes to it are discarded), as in most RISC ISAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Register index (0–15).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|r| *r == self).expect("in table")
    }

    fn from_index(ix: u32) -> Reg {
        Self::ALL[(ix & 0xf) as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// The instruction set: three-operand ALU, immediate ALU, sub-word
/// loads/stores, compare-and-branch, jump-and-link, and `Halt`.
///
/// Branch/jump offsets are in *instructions* (not bytes), relative to
/// the following instruction, sign-extended from 12 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    // ALU register-register.
    Add(Reg, Reg, Reg),
    Sub(Reg, Reg, Reg),
    And(Reg, Reg, Reg),
    Or(Reg, Reg, Reg),
    Xor(Reg, Reg, Reg),
    Sll(Reg, Reg, Reg),
    Srl(Reg, Reg, Reg),
    Mul(Reg, Reg, Reg),
    SltU(Reg, Reg, Reg),
    // ALU immediate (12-bit signed immediate).
    Addi(Reg, Reg, i16),
    Andi(Reg, Reg, i16),
    Ori(Reg, Reg, i16),
    Xori(Reg, Reg, i16),
    Slli(Reg, Reg, u8),
    Srli(Reg, Reg, u8),
    /// Load upper 16 bits of the immediate into `rd` (low bits zero).
    Lui(Reg, u16),
    // Memory: rd/rs, base, 12-bit signed byte offset.
    Lw(Reg, Reg, i16),
    Lh(Reg, Reg, i16),
    Lb(Reg, Reg, i16),
    Sw(Reg, Reg, i16),
    Sh(Reg, Reg, i16),
    Sb(Reg, Reg, i16),
    // Control flow: 12-bit signed instruction offset.
    Beq(Reg, Reg, i16),
    Bne(Reg, Reg, i16),
    Bltu(Reg, Reg, i16),
    Bgeu(Reg, Reg, i16),
    /// Jump and link: `rd ← pc + 4`, `pc ← pc + 4 + 4·offset`.
    Jal(Reg, i16),
    /// Stop the program.
    Halt,
}

/// Failed to decode an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(
    /// The undecodable word.
    pub u32,
);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.0)
    }
}

impl Error for DecodeError {}

// Encoding: [ imm12/shamt : 12 | rb : 4 | ra : 4 | rd : 4 | opcode : 8 ]
// Lui: [ imm16 : 16 | -- : 4 | rd : 4 | opcode : 8 ]
// (The opcode occupies bits 0..8; no shift constant is needed.)
const RD_SHIFT: u32 = 8;
const RA_SHIFT: u32 = 12;
const RB_SHIFT: u32 = 16;
const IMM_SHIFT: u32 = 20;

fn enc_imm12(v: i16) -> u32 {
    debug_assert!((-2048..=2047).contains(&v), "imm12 overflow: {v}");
    (v as u32 & 0xfff) << IMM_SHIFT
}

fn dec_imm12(w: u32) -> i16 {
    let raw = (w >> IMM_SHIFT) & 0xfff;
    // Sign-extend from 12 bits.
    ((raw << 4) as i16) >> 4
}

macro_rules! opcodes {
    ($($name:ident = $val:expr),* $(,)?) => {
        $(const $name: u32 = $val;)*
    };
}

opcodes! {
    OP_ADD = 0x01, OP_SUB = 0x02, OP_AND = 0x03, OP_OR = 0x04, OP_XOR = 0x05,
    OP_SLL = 0x06, OP_SRL = 0x07, OP_MUL = 0x08, OP_SLTU = 0x09,
    OP_ADDI = 0x10, OP_ANDI = 0x11, OP_ORI = 0x12, OP_XORI = 0x13,
    OP_SLLI = 0x14, OP_SRLI = 0x15, OP_LUI = 0x16,
    OP_LW = 0x20, OP_LH = 0x21, OP_LB = 0x22,
    OP_SW = 0x23, OP_SH = 0x24, OP_SB = 0x25,
    OP_BEQ = 0x30, OP_BNE = 0x31, OP_BLTU = 0x32, OP_BGEU = 0x33,
    OP_JAL = 0x34,
    OP_HALT = 0xff,
}

impl Instr {
    /// Encodes the instruction into a 32-bit word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        let r3 = |op: u32, d: Reg, a: Reg, b: Reg| {
            op | ((d.index() as u32) << RD_SHIFT)
                | ((a.index() as u32) << RA_SHIFT)
                | ((b.index() as u32) << RB_SHIFT)
        };
        let ri = |op: u32, d: Reg, a: Reg, imm: i16| {
            op | ((d.index() as u32) << RD_SHIFT)
                | ((a.index() as u32) << RA_SHIFT)
                | enc_imm12(imm)
        };
        match self {
            Add(d, a, b) => r3(OP_ADD, d, a, b),
            Sub(d, a, b) => r3(OP_SUB, d, a, b),
            And(d, a, b) => r3(OP_AND, d, a, b),
            Or(d, a, b) => r3(OP_OR, d, a, b),
            Xor(d, a, b) => r3(OP_XOR, d, a, b),
            Sll(d, a, b) => r3(OP_SLL, d, a, b),
            Srl(d, a, b) => r3(OP_SRL, d, a, b),
            Mul(d, a, b) => r3(OP_MUL, d, a, b),
            SltU(d, a, b) => r3(OP_SLTU, d, a, b),
            Addi(d, a, i) => ri(OP_ADDI, d, a, i),
            Andi(d, a, i) => ri(OP_ANDI, d, a, i),
            Ori(d, a, i) => ri(OP_ORI, d, a, i),
            Xori(d, a, i) => ri(OP_XORI, d, a, i),
            Slli(d, a, s) => ri(OP_SLLI, d, a, i16::from(s)),
            Srli(d, a, s) => ri(OP_SRLI, d, a, i16::from(s)),
            Lui(d, imm) => OP_LUI | ((d.index() as u32) << RD_SHIFT) | (u32::from(imm) << 16),
            Lw(d, a, i) => ri(OP_LW, d, a, i),
            Lh(d, a, i) => ri(OP_LH, d, a, i),
            Lb(d, a, i) => ri(OP_LB, d, a, i),
            Sw(s, a, i) => ri(OP_SW, s, a, i),
            Sh(s, a, i) => ri(OP_SH, s, a, i),
            Sb(s, a, i) => ri(OP_SB, s, a, i),
            Beq(x, y, i) => ri(OP_BEQ, x, y, i),
            Bne(x, y, i) => ri(OP_BNE, x, y, i),
            Bltu(x, y, i) => ri(OP_BLTU, x, y, i),
            Bgeu(x, y, i) => ri(OP_BGEU, x, y, i),
            Jal(d, i) => ri(OP_JAL, d, Reg::R0, i),
            Halt => OP_HALT,
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode byte is unknown.
    pub fn decode(w: u32) -> Result<Instr, DecodeError> {
        use Instr::*;
        let d = Reg::from_index(w >> RD_SHIFT);
        let a = Reg::from_index(w >> RA_SHIFT);
        let b = Reg::from_index(w >> RB_SHIFT);
        let imm = dec_imm12(w);
        Ok(match w & 0xff {
            OP_ADD => Add(d, a, b),
            OP_SUB => Sub(d, a, b),
            OP_AND => And(d, a, b),
            OP_OR => Or(d, a, b),
            OP_XOR => Xor(d, a, b),
            OP_SLL => Sll(d, a, b),
            OP_SRL => Srl(d, a, b),
            OP_MUL => Mul(d, a, b),
            OP_SLTU => SltU(d, a, b),
            OP_ADDI => Addi(d, a, imm),
            OP_ANDI => Andi(d, a, imm),
            OP_ORI => Ori(d, a, imm),
            OP_XORI => Xori(d, a, imm),
            OP_SLLI => Slli(d, a, (imm & 31) as u8),
            OP_SRLI => Srli(d, a, (imm & 31) as u8),
            OP_LUI => Lui(d, (w >> 16) as u16),
            OP_LW => Lw(d, a, imm),
            OP_LH => Lh(d, a, imm),
            OP_LB => Lb(d, a, imm),
            OP_SW => Sw(d, a, imm),
            OP_SH => Sh(d, a, imm),
            OP_SB => Sb(d, a, imm),
            OP_BEQ => Beq(d, a, imm),
            OP_BNE => Bne(d, a, imm),
            OP_BLTU => Bltu(d, a, imm),
            OP_BGEU => Bgeu(d, a, imm),
            OP_JAL => Jal(d, imm),
            OP_HALT => Halt,
            _ => return Err(DecodeError(w)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn register_indices_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i as u32), *r);
        }
        assert_eq!(Reg::R7.to_string(), "r7");
    }

    #[test]
    fn imm12_sign_extension() {
        for v in [-2048i16, -1, 0, 1, 2047] {
            assert_eq!(dec_imm12(enc_imm12(v)), v, "{v}");
        }
    }

    #[test]
    fn every_instruction_round_trips() {
        use Instr::*;
        let samples = [
            Add(Reg::R1, Reg::R2, Reg::R3),
            Sub(Reg::R15, Reg::R0, Reg::R8),
            Mul(Reg::R4, Reg::R4, Reg::R4),
            SltU(Reg::R2, Reg::R3, Reg::R4),
            Addi(Reg::R5, Reg::R6, -100),
            Andi(Reg::R1, Reg::R1, 0xff),
            Slli(Reg::R2, Reg::R2, 31),
            Srli(Reg::R2, Reg::R2, 1),
            Lui(Reg::R9, 0xdead),
            Lw(Reg::R1, Reg::R2, 64),
            Lb(Reg::R1, Reg::R2, -1),
            Sw(Reg::R3, Reg::R4, 2047),
            Sb(Reg::R3, Reg::R4, -2048),
            Beq(Reg::R1, Reg::R2, -4),
            Bne(Reg::R1, Reg::R0, 100),
            Bltu(Reg::R5, Reg::R6, 7),
            Bgeu(Reg::R5, Reg::R6, -7),
            Jal(Reg::R14, 12),
            Halt,
        ];
        for i in samples {
            assert_eq!(Instr::decode(i.encode()), Ok(i), "{i:?}");
        }
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        assert_eq!(Instr::decode(0xf0), Err(DecodeError(0xf0)));
    }

    proptest! {
        #[test]
        fn decode_never_panics(w: u32) {
            let _ = Instr::decode(w);
        }

        #[test]
        fn alu_encodings_round_trip(d in 0u32..16, a in 0u32..16, b in 0u32..16) {
            let i = Instr::Add(Reg::from_index(d), Reg::from_index(a), Reg::from_index(b));
            prop_assert_eq!(Instr::decode(i.encode()), Ok(i));
        }
    }
}
