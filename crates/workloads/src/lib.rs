//! The 23 benchmark kernels used by the WL-Cache evaluation.
//!
//! The paper runs 15 MediaBench \[31\] and 8 MiBench \[17\] applications
//! compiled for ARM. Shipping and cross-compiling those C programs is
//! outside this reproduction's scope, so each application is replaced by
//! a native kernel implementing the same algorithm family with the same
//! memory-access character (DESIGN.md §4, substitution 3):
//!
//! | Label | Kernel |
//! |---|---|
//! | `adpcmdecode` / `adpcmencode` | real IMA ADPCM codec |
//! | `epic` | 2-D Haar wavelet pyramid + quantisation |
//! | `g721decode` / `g721encode` | G.721-style adaptive quantiser codec |
//! | `gsmdecode` / `gsmencode` | LPC analysis/synthesis with LTP search |
//! | `jpegdecode` / `jpegencode` | 8×8 integer DCT/IDCT + quant + zigzag |
//! | `mpeg2decode` / `mpeg2encode` | motion estimation / compensation |
//! | `pegwitdecrypt` | wide-word modular arithmetic + stream cipher |
//! | `sha` | real SHA-1 |
//! | `susancorners` / `susanedges` | SUSAN mask-based corner/edge detection |
//! | `basicmath` | cube roots, integer sqrt, angle conversion |
//! | `qsort` | in-memory iterative quicksort |
//! | `dijkstra` | dense-graph shortest paths |
//! | `FFT` / `FFT_i` | fixed-point radix-2 (I)FFT |
//! | `patricia` | Patricia trie insert/lookup |
//! | `rijndael_d` / `rijndael_e` | real AES-128 CBC |
//!
//! Every kernel is deterministic, performs its computation through the
//! [`ehsim_mem::Bus`] trait (so all data flows through the simulated
//! hierarchy) and returns a checksum; the integration suite compares
//! checksums from crash-ridden simulations against functional runs.
//!
//! # Examples
//!
//! ```
//! use ehsim_mem::{FunctionalMem, Workload};
//! use ehsim_workloads::prelude::*;
//!
//! let w = Sha::small();
//! let mut mem = FunctionalMem::new(w.mem_bytes());
//! let a = w.run(&mut mem);
//! let mut mem2 = FunctionalMem::new(w.mem_bytes());
//! let b = w.run(&mut mem2);
//! assert_eq!(a, b, "kernels are deterministic");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod media;
mod mi;
pub(crate) mod util;

pub use media::{
    AdpcmDecode, AdpcmEncode, Epic, G721Decode, G721Encode, GsmDecode, GsmEncode, JpegDecode,
    JpegEncode, Mpeg2Decode, Mpeg2Encode, PegwitDecrypt, Sha, SusanCorners, SusanEdges,
};
pub use mi::{
    BasicMath, Dijkstra, Fft, FftInverse, Patricia, Qsort, RijndaelDecrypt, RijndaelEncrypt,
};

use ehsim_mem::Workload;

/// Workload size preset.
///
/// `Small` keeps unit/integration tests fast; `Default` is sized so a
/// full run draws enough energy to see the paper's outage cadence
/// (dozens of power failures on the RF traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Test-sized (tens of thousands of instructions).
    Small,
    /// Experiment-sized (hundreds of thousands to millions).
    #[default]
    Default,
}

/// The 15 MediaBench-style kernels, in the paper's figure order.
pub fn mediabench(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(AdpcmDecode::with_scale(scale)),
        Box::new(AdpcmEncode::with_scale(scale)),
        Box::new(Epic::with_scale(scale)),
        Box::new(G721Decode::with_scale(scale)),
        Box::new(G721Encode::with_scale(scale)),
        Box::new(GsmDecode::with_scale(scale)),
        Box::new(GsmEncode::with_scale(scale)),
        Box::new(JpegDecode::with_scale(scale)),
        Box::new(JpegEncode::with_scale(scale)),
        Box::new(Mpeg2Decode::with_scale(scale)),
        Box::new(Mpeg2Encode::with_scale(scale)),
        Box::new(PegwitDecrypt::with_scale(scale)),
        Box::new(Sha::with_scale(scale)),
        Box::new(SusanCorners::with_scale(scale)),
        Box::new(SusanEdges::with_scale(scale)),
    ]
}

/// The 8 MiBench-style kernels, in the paper's figure order.
pub fn mibench(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(BasicMath::with_scale(scale)),
        Box::new(Qsort::with_scale(scale)),
        Box::new(Dijkstra::with_scale(scale)),
        Box::new(Fft::with_scale(scale)),
        Box::new(FftInverse::with_scale(scale)),
        Box::new(Patricia::with_scale(scale)),
        Box::new(RijndaelDecrypt::with_scale(scale)),
        Box::new(RijndaelEncrypt::with_scale(scale)),
    ]
}

/// All 23 kernels in the paper's figure order (MediaBench then MiBench).
pub fn all23(scale: Scale) -> Vec<Box<dyn Workload>> {
    let mut v = mediabench(scale);
    v.extend(mibench(scale));
    v
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::{
        all23, mediabench, mibench, AdpcmDecode, AdpcmEncode, BasicMath, Dijkstra, Epic, Fft,
        FftInverse, G721Decode, G721Encode, GsmDecode, GsmEncode, JpegDecode, JpegEncode,
        Mpeg2Decode, Mpeg2Encode, Patricia, PegwitDecrypt, Qsort, RijndaelDecrypt, RijndaelEncrypt,
        Scale, Sha, SusanCorners, SusanEdges,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(mediabench(Scale::Small).len(), 15);
        assert_eq!(mibench(Scale::Small).len(), 8);
        assert_eq!(all23(Scale::Small).len(), 23);
    }

    #[test]
    fn labels_match_figures_and_are_unique() {
        let names: Vec<String> = all23(Scale::Small)
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        let expected = [
            "adpcmdecode",
            "adpcmencode",
            "epic",
            "g721decode",
            "g721encode",
            "gsmdecode",
            "gsmencode",
            "jpegdecode",
            "jpegencode",
            "mpeg2decode",
            "mpeg2encode",
            "pegwitdecrypt",
            "sha",
            "susancorners",
            "susanedges",
            "basicmath",
            "qsort",
            "dijkstra",
            "FFT",
            "FFT_i",
            "patricia",
            "rijndael_d",
            "rijndael_e",
        ];
        assert_eq!(names, expected);
    }
}
