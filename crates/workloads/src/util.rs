//! Shared kernel infrastructure: deterministic data generation, a bump
//! allocator for the per-workload address space, and checksum folding.

use ehsim_mem::Bus;

/// SplitMix64: a tiny, high-quality deterministic generator used to
/// synthesise input data (PCM samples, images, graphs, keys) without
/// pulling `rand` into the hot path.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0);
        (self.next_u64() % u64::from(bound)) as u32
    }

    /// A smooth-ish 16-bit PCM sample stream (sum of two "sine-like"
    /// triangle waves plus noise), suitable for codec kernels.
    pub fn pcm_sample(&mut self, t: u32) -> i16 {
        let tri = |p: u32, period: u32, amp: i32| -> i32 {
            let x = (p % period) as i32;
            let half = (period / 2) as i32;
            amp * (half - (x - half).abs()) / half
        };
        let noise = (self.next_u32() & 0x3f) as i32 - 32;
        (tri(t, 97, 9_000) + tri(t, 389, 14_000) + noise) as i16
    }
}

/// Bump allocator carving a workload's flat address space into
/// line-aligned arrays.
#[derive(Debug, Clone)]
pub struct Alloc {
    next: u32,
}

impl Alloc {
    /// Starts allocating at address 0.
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// Reserves `bytes` bytes, aligned to a 64 B cache line, and returns
    /// the base address.
    pub fn array(&mut self, bytes: u32) -> u32 {
        let base = self.next;
        self.next = (base + bytes + 63) & !63;
        base
    }

    /// Total bytes reserved so far (rounded to whole lines).
    pub fn used(&self) -> u32 {
        self.next
    }
}

impl Default for Alloc {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a accumulator for folding outputs into a `u64` checksum.
#[derive(Debug, Clone)]
pub struct Checksum {
    hash: u64,
}

impl Checksum {
    /// Creates a fresh accumulator.
    pub fn new() -> Self {
        Self {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds a value into the checksum.
    pub fn push(&mut self, v: u64) {
        for i in 0..8 {
            self.hash ^= (v >> (8 * i)) & 0xff;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The folded checksum.
    pub fn value(&self) -> u64 {
        self.hash
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads back `words` u32s starting at `base` and folds them into a
/// checksum — the standard way kernels summarise their output buffers.
pub fn checksum_region(bus: &mut dyn Bus, base: u32, words: u32) -> u64 {
    let mut c = Checksum::new();
    for i in 0..words {
        c.push(u64::from(bus.load_u32(base + i * 4)));
    }
    c.value()
}

#[cfg(test)]
pub(crate) mod test_support {
    use ehsim_mem::{FunctionalMem, Workload};

    /// Standard per-kernel checks: determinism, self-described footprint,
    /// and scale sensitivity.
    pub fn check_workload<W: Workload>(small: W, default: W) {
        let mut m1 = FunctionalMem::new(small.mem_bytes());
        let a = small.run(&mut m1);
        let mut m2 = FunctionalMem::new(small.mem_bytes());
        let b = small.run(&mut m2);
        assert_eq!(a, b, "{}: non-deterministic", small.name());
        assert_ne!(a, 0, "{}: degenerate checksum", small.name());

        let mut m3 = FunctionalMem::new(default.mem_bytes());
        let c = default.run(&mut m3);
        assert_ne!(a, c, "{}: scale has no effect", default.name());
        assert!(default.mem_bytes() >= small.mem_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn pcm_samples_are_bounded() {
        let mut r = SplitMix64::new(9);
        for t in 0..10_000 {
            let s = r.pcm_sample(t);
            assert!(s.abs() < 24_000);
        }
    }

    #[test]
    fn alloc_is_line_aligned() {
        let mut a = Alloc::new();
        let x = a.array(10);
        let y = a.array(100);
        assert_eq!(x, 0);
        assert_eq!(y % 64, 0);
        assert_eq!(y, 64);
        assert_eq!(a.used(), 64 + 128);
    }

    #[test]
    fn checksum_orders_matter() {
        let mut a = Checksum::new();
        a.push(1);
        a.push(2);
        let mut b = Checksum::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn checksum_region_reads_memory() {
        use ehsim_mem::FunctionalMem;
        let mut mem = FunctionalMem::new(256);
        mem.store_u32(0, 0xaaaa);
        let a = checksum_region(&mut mem, 0, 4);
        mem.store_u32(0, 0xbbbb);
        let b = checksum_region(&mut mem, 0, 4);
        assert_ne!(a, b);
    }
}
