//! SUSAN corner and edge detection (MediaBench/MiBench `susancorners` /
//! `susanedges`).
//!
//! SUSAN slides a 37-pixel circular mask over the image; each
//! neighbour's brightness similarity to the nucleus is looked up in a
//! precomputed table and summed into the USAN area, which is compared
//! against the geometric threshold (three quarters of the max area for
//! edges, half for corners). This kernel implements that faithfully: the
//! similarity LUT lives in simulated memory, and the mask walk produces
//! SUSAN's characteristic multi-row access pattern.

use crate::util::{checksum_region, Alloc, SplitMix64};
use crate::Scale;
use ehsim_mem::{Bus, Workload};

/// Offsets of the 37-pixel circular mask (radius ≈ 3.4).
const MASK: [(i32, i32); 37] = [
    (-1, -3),
    (0, -3),
    (1, -3),
    (-2, -2),
    (-1, -2),
    (0, -2),
    (1, -2),
    (2, -2),
    (-3, -1),
    (-2, -1),
    (-1, -1),
    (0, -1),
    (1, -1),
    (2, -1),
    (3, -1),
    (-3, 0),
    (-2, 0),
    (-1, 0),
    (0, 0),
    (1, 0),
    (2, 0),
    (3, 0),
    (-3, 1),
    (-2, 1),
    (-1, 1),
    (0, 1),
    (1, 1),
    (2, 1),
    (3, 1),
    (-2, 2),
    (-1, 2),
    (0, 2),
    (1, 2),
    (2, 2),
    (-1, 3),
    (0, 3),
    (1, 3),
];

/// Brightness-difference threshold of the similarity function.
const BT: i32 = 20;

struct Layout {
    lut: u32,
    image: u32,
    response: u32,
    total: u32,
}

fn layout(w: u32, h: u32) -> Layout {
    let mut a = Alloc::new();
    let lut = a.array(512);
    let image = a.array(w * h);
    let response = a.array(w * h * 2);
    Layout {
        lut,
        image,
        response,
        total: a.used(),
    }
}

fn init(bus: &mut dyn Bus, l: &Layout, w: u32, h: u32, seed: u64) {
    // Similarity LUT: exp-like falloff of |Δbrightness|, as in SUSAN's
    // `setup_brightness_lut` (values 0–100).
    for d in 0..512i32 {
        let diff = d - 256;
        let x = (diff * diff) / (BT * BT / 4).max(1);
        let sim = (100 / (1 + x)) as u8;
        bus.store_u8(l.lut + d as u32, sim);
    }
    // Test card: flat regions, a vertical edge, a corner and noise.
    let mut rng = SplitMix64::new(seed);
    for y in 0..h {
        for x in 0..w {
            let mut v: u32 = if x > w / 2 { 180 } else { 60 };
            if x > w / 3 && y > h / 2 {
                v = 220;
            }
            v += rng.next_u32() & 7;
            bus.store_u8(l.image + y * w + x, v as u8);
        }
    }
}

fn usan_pass(bus: &mut dyn Bus, l: &Layout, w: u32, h: u32, corners: bool) -> u64 {
    // Max USAN = 37 neighbours × 100 similarity. SUSAN's geometric
    // thresholds: half the maximum for corners, three quarters for
    // edges.
    let geometric_threshold: i32 = if corners {
        37 * 100 / 2
    } else {
        37 * 100 * 3 / 4
    };
    for y in 3..h - 3 {
        for x in 3..w - 3 {
            let nucleus = i32::from(bus.load_u8(l.image + y * w + x));
            let mut usan = 0i32;
            for (dx, dy) in MASK {
                let nx = (x as i32 + dx) as u32;
                let ny = (y as i32 + dy) as u32;
                let p = i32::from(bus.load_u8(l.image + ny * w + nx));
                let sim = i32::from(bus.load_u8(l.lut + (p - nucleus + 256) as u32));
                usan += sim;
                bus.compute(3);
            }
            let response = (geometric_threshold - usan).max(0);
            bus.store_u16(l.response + 2 * (y * w + x), response as u16);
            bus.compute(2);
        }
    }
    // Non-maximum suppression along rows, then fold.
    let mut hits: u64 = 0;
    for y in 4..h - 4 {
        for x in 4..w - 4 {
            let c = bus.load_u16(l.response + 2 * (y * w + x));
            let left = bus.load_u16(l.response + 2 * (y * w + x - 1));
            let right = bus.load_u16(l.response + 2 * (y * w + x + 1));
            if c > 0 && c >= left && c > right {
                hits += 1;
            }
            bus.compute(3);
        }
    }
    checksum_region(bus, l.response, w * h / 2) ^ (hits << 32)
}

macro_rules! susan_workload {
    ($name:ident, $label:literal, $corners:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            w: u32,
            h: u32,
        }

        impl $name {
            /// Detector over a `w × h` 8-bit image.
            ///
            /// # Panics
            ///
            /// Panics if either dimension is below 16.
            pub fn new(w: u32, h: u32) -> Self {
                assert!(w >= 16 && h >= 16);
                Self { w, h }
            }

            /// Test-sized instance.
            pub fn small() -> Self {
                Self::new(32, 24)
            }

            /// Instance for `scale`.
            pub fn with_scale(scale: Scale) -> Self {
                match scale {
                    Scale::Small => Self::small(),
                    Scale::Default => Self::new(128, 96),
                }
            }
        }

        impl Workload for $name {
            fn name(&self) -> &str {
                $label
            }

            fn mem_bytes(&self) -> u32 {
                layout(self.w, self.h).total
            }

            fn run(&self, bus: &mut dyn Bus) -> u64 {
                let l = layout(self.w, self.h);
                init(bus, &l, self.w, self.h, 0x5a5a ^ u64::from($corners));
                usan_pass(bus, &l, self.w, self.h, $corners)
            }
        }
    };
}

susan_workload!(
    SusanCorners,
    "susancorners",
    true,
    "MediaBench `susancorners`: SUSAN corner detection (half-area threshold)."
);
susan_workload!(
    SusanEdges,
    "susanedges",
    false,
    "MediaBench `susanedges`: SUSAN edge detection (three-quarter-area threshold)."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::test_support::check_workload;
    use ehsim_mem::FunctionalMem;

    #[test]
    fn corners_properties() {
        check_workload(
            SusanCorners::small(),
            SusanCorners::with_scale(Scale::Default),
        );
    }

    #[test]
    fn edges_properties() {
        check_workload(SusanEdges::small(), SusanEdges::with_scale(Scale::Default));
    }

    #[test]
    fn mask_has_37_pixels_and_is_symmetric() {
        assert_eq!(MASK.len(), 37);
        for (dx, dy) in MASK {
            assert!(
                MASK.contains(&(-dx, -dy)),
                "mask not centro-symmetric at ({dx},{dy})"
            );
        }
    }

    #[test]
    fn edge_detector_fires_on_the_vertical_edge() {
        let w = SusanEdges::small();
        let mut mem = FunctionalMem::new(w.mem_bytes());
        let _ = w.run(&mut mem);
        let l = layout(32, 24);
        // Response near the x = w/2 edge should exceed the flat region.
        let edge = mem.load_u16(l.response + 2 * (10 * 32 + 16));
        let flat = mem.load_u16(l.response + 2 * (4 * 32 + 8));
        assert!(edge > flat, "edge {edge} vs flat {flat}");
    }
}
